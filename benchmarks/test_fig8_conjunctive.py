"""Figure 8: factorized vs listing representations of conjunctive queries.

Left: the natural join of Retailer under updates to the largest relation —
factorized payloads vs listing payloads vs listing keys, throughput and
memory along the stream.

Right: the natural join of Housing across scale factors — the listing
representations grow cubically with scale while the factorized one grows
linearly, producing the paper's widening runtime/memory gap.
"""

from __future__ import annotations

import time

from repro.apps import ConjunctiveQuery
from repro.bench import format_table, run_stream
from repro.datasets import housing, retailer, round_robin_stream

from benchmarks.conftest import SCALE, TIME_BUDGET, report, stream_results_data

MODES = ("factorized", "listing_payloads", "listing_keys")
LABELS = {
    "factorized": "Fact payloads",
    "listing_payloads": "List payloads",
    "listing_keys": "List keys",
}


def test_fig8_left_retailer(benchmark):
    workload = retailer.generate(scale=0.2 * SCALE, seed=9)
    free = tuple(dict.fromkeys(a for s in workload.schemas.values() for a in s))
    stream = round_robin_stream(
        workload.schemas, workload.tables,
        batch_size=max(10, int(100 * SCALE)),
        relations=["Inventory"],
    )

    def experiment():
        from repro.data import Database, Relation

        results = []
        for mode in MODES:
            engine = ConjunctiveQuery(
                "retailer_join", workload.schemas, free,
                mode=mode, order=workload.variable_order,
                updatable=["Inventory"],
            )
            # Preload the static dimension relations; only Inventory streams.
            ring = engine.ring
            static_db = Database()
            for rel, schema in workload.schemas.items():
                contents = Relation(rel, schema, ring)
                if rel != "Inventory":
                    for row in workload.tables[rel]:
                        contents.add(row, ring.one)
                static_db.add(contents)
            engine.engine.initialize(static_db)
            results.append(
                run_stream(LABELS[mode], engine.engine, stream, ring,
                           time_budget=TIME_BUDGET)
            )
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    by_name = {r.name: r for r in results}
    rows = [
        [r.name, f"{r.average_throughput:.0f}", r.peak_memory,
         f"{r.fractions[-1]:.2f}" + (" (timeout)" if r.timed_out else "")]
        for r in results
    ]
    table = format_table(
        f"Figure 8 (left): Retailer natural join, updates to Inventory "
        f"({stream.total_tuples} tuples)",
        ["representation", "tuples/sec", "peak logical memory", "fraction"],
        rows,
    )
    report(
        "fig8_left_retailer", table, data=stream_results_data(results)
    )

    fact = by_name["Fact payloads"]
    assert fact.peak_memory < by_name["List payloads"].peak_memory
    assert fact.peak_memory < by_name["List keys"].peak_memory
    assert fact.average_throughput > by_name["List payloads"].average_throughput


def test_fig8_right_housing_scales(benchmark):
    scales = [1, 2, 3, 4]
    postcodes = max(6, int(12 * SCALE))

    def experiment():
        rows = []
        for factor in scales:
            workload = housing.generate(scale=factor, postcodes=postcodes, seed=3)
            free = tuple(
                dict.fromkeys(a for s in workload.schemas.values() for a in s)
            )
            row = [factor]
            for mode in MODES:
                engine = ConjunctiveQuery(
                    "housing_join", workload.schemas, free,
                    mode=mode, order=workload.variable_order,
                )
                stream = round_robin_stream(
                    workload.schemas, workload.tables, batch_size=50
                )
                start = time.perf_counter()
                for delta in stream.deltas(engine.ring):
                    engine.apply_update(delta)
                elapsed = time.perf_counter() - start
                row.extend([elapsed, engine.memory()])
            rows.append(row)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = format_table(
        f"Figure 8 (right): Housing natural join across scale factors "
        f"({postcodes} postcodes; time in seconds, memory in stored scalars)",
        ["scale", "Fact time", "Fact mem", "ListPay time", "ListPay mem",
         "ListKey time", "ListKey mem"],
        rows,
    )
    first, last = rows[0], rows[-1]
    gap_first = first[4] / first[2]
    gap_last = last[4] / last[2]
    report(
        "fig8_right_housing_scales",
        table + f"\nlisting/factorized memory gap grows {gap_first:.1f}x -> "
        f"{gap_last:.1f}x across scales",
        data={
            "headers": ["scale", "fact_time", "fact_mem", "listpay_time",
                        "listpay_mem", "listkey_time", "listkey_mem"],
            "rows": rows,
        },
    )

    # Factorized memory grows ~linearly; listing grows ~cubically: the gap
    # must widen monotonically with the scale factor.
    gaps = [row[4] / row[2] for row in rows]
    assert all(b > a for a, b in zip(gaps, gaps[1:]))
    # At the largest scale, factorized wins time and memory outright.
    assert last[1] < last[3] and last[1] < last[5]
    assert last[2] < last[4] and last[2] < last[6]
