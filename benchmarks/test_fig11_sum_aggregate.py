"""Figure 11 (table): maintenance of a SUM aggregate over natural joins.

Reproduces the Appendix C table: average throughput of F-IVM, DBT, 1-IVM,
F-RE (factorized re-evaluation), and DBT-RE (naive re-evaluation) for a
single SUM over Retailer (sum of inventory units) and Housing (sum of the
join key), under round-robin batches to all relations.
"""

from __future__ import annotations

from repro.baselines import (
    FactorizedReevaluator,
    FirstOrderIVM,
    NaiveReevaluator,
    RecursiveIVM,
)
from repro.bench import format_table, run_stream
from repro.core import FIVMEngine, Query
from repro.datasets import housing, retailer, round_robin_stream
from repro.rings import Lifting, RealRing

from benchmarks.conftest import SCALE, TIME_BUDGET, report, stream_results_data


def _sum_query(name, schemas, summed_variable):
    ring = RealRing()
    lifting = Lifting(ring, {summed_variable: float})
    return Query(name, schemas, ring=ring, lifting=lifting)


def _run_workload(tag, workload, summed_variable, batch_size):
    query = _sum_query(tag, workload.schemas, summed_variable)
    order = workload.variable_order
    stream = round_robin_stream(workload.schemas, workload.tables, batch_size)
    strategies = {
        "F-IVM": FIVMEngine(query, order),
        "DBT": RecursiveIVM(query),
        "1-IVM": FirstOrderIVM(query, order),
        "F-RE": FactorizedReevaluator(query, order),
        "DBT-RE": NaiveReevaluator(query),
    }
    results = {}
    for name, strategy in strategies.items():
        budget = TIME_BUDGET if name in ("F-RE", "DBT-RE") else None
        results[name] = run_stream(
            name, strategy, stream, query.ring,
            checkpoints=4, time_budget=budget,
        )
    reference = results["F-IVM"]
    finished = {
        n for n, r in results.items() if not r.timed_out
    }
    for name in finished - {"F-IVM"}:
        got = strategies[name].result().payload(())
        expected = strategies["F-IVM"].result().payload(())
        assert abs(got - expected) < 1e-6 * max(1.0, abs(expected)), name
    del reference
    return results


def test_fig11_sum_throughput(benchmark):
    retailer_workload = retailer.generate(scale=0.6 * SCALE, seed=2)
    housing_workload = housing.generate(
        scale=max(1, int(2 * SCALE)), postcodes=max(50, int(200 * SCALE)), seed=2
    )
    batch = max(10, int(50 * SCALE))

    def experiment():
        return {
            "Retailer": _run_workload(
                "retailer_sum", retailer_workload, "inventoryunits", batch
            ),
            # Smaller Housing batches give re-evaluation more recomputation
            # rounds over a growing database, exposing its cumulative cost.
            "Housing": _run_workload(
                "housing_sum", housing_workload, "postcode", max(10, batch // 2)
            ),
        }

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    strategies = ["F-IVM", "DBT", "1-IVM", "F-RE", "DBT-RE"]
    rows = []
    for dataset, results in outcomes.items():
        row = [dataset]
        for name in strategies:
            r = results[name]
            cell = f"{r.average_throughput:.0f}"
            if r.timed_out:
                cell += "*"
            row.append(cell)
        rows.append(row)
    table = format_table(
        "Figure 11: SUM-aggregate maintenance, avg throughput (tuples/sec); "
        "* = hit the scaled timeout",
        ["dataset"] + strategies,
        rows,
    )
    report(
        "fig11_sum_aggregate",
        table,
        data={
            dataset: stream_results_data(results.values())
            for dataset, results in outcomes.items()
        },
    )

    for dataset, results in outcomes.items():
        fivm = results["F-IVM"].average_throughput
        # IVM beats re-evaluation by a wide margin (paper: ~3 orders).
        assert fivm > 3 * results["F-RE"].average_throughput, dataset
        assert fivm > 4 * results["DBT-RE"].average_throughput, dataset
        # F-IVM leads DBT on both datasets (paper: 2.4x / 1.3x).
        assert fivm > results["DBT"].average_throughput, dataset
    # On the star join, 1-IVM's linear-time deltas lag far behind (paper:
    # 22.9M vs 2.4M ≈ 9.5x).
    housing_results = outcomes["Housing"]
    assert (
        housing_results["F-IVM"].average_throughput
        > 1.5 * housing_results["1-IVM"].average_throughput
    )
