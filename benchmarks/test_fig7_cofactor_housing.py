"""Figure 7 (right): cofactor matrix maintenance over Housing.

Housing is a star join on ``postcode`` — a q-hierarchical query — so F-IVM
and SQL-OPT process single-tuple updates in O(1), and DBT-RING coincides
with F-IVM's strategy (the paper notes they use identical views here).
Scalar-payload DBT and 1-IVM maintain each of the 378 aggregates (over the
26 non-join variables) separately and fall far behind.
"""

from __future__ import annotations

from repro.apps import CofactorModel
from repro.baselines import (
    FirstOrderIVM,
    RecursiveIVM,
    ScalarAggregateBank,
    SQLOptCofactor,
)
from repro.apps.regression import cofactor_query
from repro.bench import format_table, run_stream
from repro.core import Query
from repro.datasets import housing, round_robin_stream
from repro.rings import RealRing

from benchmarks.conftest import SCALE, TIME_BUDGET, report, stream_results_data
from benchmarks.test_fig7_cofactor_retailer import scalar_aggregates


def test_fig7_housing_cofactor(benchmark):
    workload = housing.generate(
        scale=max(1, int(2 * SCALE)), postcodes=max(20, int(80 * SCALE)), seed=5
    )
    numeric = tuple(v for v in workload.numeric_variables if v != "postcode")
    stream = round_robin_stream(
        workload.schemas, workload.tables, batch_size=max(10, int(50 * SCALE))
    )
    n_aggregates = 1 + len(numeric) + len(numeric) * (len(numeric) + 1) // 2

    def experiment():
        results = []
        fivm = CofactorModel(
            "housing", workload.schemas, numeric, order=workload.variable_order
        )
        results.append(
            run_stream("F-IVM", fivm.engine, stream, fivm.query.ring,
                       time_budget=TIME_BUDGET)
        )
        sql_opt = SQLOptCofactor(
            "housing", workload.schemas, numeric, order=workload.variable_order
        )
        results.append(
            run_stream("SQL-OPT", sql_opt, stream, sql_opt.query.ring,
                       time_budget=TIME_BUDGET)
        )
        ring_query = cofactor_query("housing_ring", workload.schemas, numeric)
        dbt_ring = RecursiveIVM(ring_query)
        results.append(
            run_stream("DBT-RING", dbt_ring, stream, ring_query.ring,
                       time_budget=TIME_BUDGET)
        )
        scalar_query = Query("scalar", workload.schemas, ring=RealRing())
        aggregates = scalar_aggregates(numeric)
        dbt = ScalarAggregateBank(
            lambda q: RecursiveIVM(q), scalar_query, aggregates
        )
        results.append(
            run_stream("DBT", dbt, stream, RealRing(),
                       checkpoints=3, time_budget=TIME_BUDGET)
        )
        first_order = ScalarAggregateBank(
            lambda q: FirstOrderIVM(q, workload.variable_order),
            scalar_query,
            aggregates,
        )
        results.append(
            run_stream("1-IVM", first_order, stream, RealRing(),
                       checkpoints=3, time_budget=TIME_BUDGET)
        )
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    by_name = {r.name: r for r in results}

    rows = [
        [
            r.name,
            f"{r.average_throughput:.0f}",
            f"{r.fractions[-1]:.2f}" + (" (timeout)" if r.timed_out else ""),
            r.peak_memory,
        ]
        for r in results
    ]
    table = format_table(
        f"Figure 7 (right): Housing cofactor maintenance "
        f"({stream.total_tuples} tuples, {n_aggregates} aggregates)",
        ["strategy", "tuples/sec", "stream fraction", "peak logical memory"],
        rows,
    )
    report(
        "fig7_housing_cofactor", table, data=stream_results_data(results)
    )

    assert by_name["F-IVM"].average_throughput > 5 * by_name["DBT"].average_throughput
    assert by_name["F-IVM"].average_throughput > 5 * by_name["1-IVM"].average_throughput
    # DBT-RING uses the identical strategy on this star query: same order of
    # magnitude (generously bounded to damp CI noise).
    assert (
        by_name["DBT-RING"].average_throughput
        > by_name["F-IVM"].average_throughput / 5
    )
    finished = [r for r in results if not r.timed_out]
    assert by_name["F-IVM"].peak_memory == min(r.peak_memory for r in finished)
    # View-count story: F-IVM/DBT-RING 7 views vs hundreds for scalar DBT.
    fivm_views = CofactorModel(
        "hv", workload.schemas, numeric, order=workload.variable_order
    ).engine.tree.view_count()
    assert fivm_views == 7
