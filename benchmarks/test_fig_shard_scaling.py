"""Shard scaling: hash-partitioned parallel F-IVM over Retailer.

Not a paper figure — the scaling companion the ROADMAP's production goal
adds to Figure 7: the fig7 retailer cofactor workload driven through
:class:`ShardedFIVMEngine` at S ∈ {1, 2, 4, 8} with the multiprocessing
executor, in both the round-robin form (dimension updates broadcast to
every shard) and the ONE form (dimensions preloaded, the fact relation
streaming — every update hash-routes on ``locn``).

Reported: throughput per shard count and scenario, the S=4/S=1 speedups,
and the core count; ``BENCH_shard_scaling.json`` feeds the CI
bench-regression ratchet.  Differential guard: every configuration's
maintained cofactor triple must equal the unsharded engine's.  The
parallel-speedup assertion is enforced only on hosts with ≥ 4 CPUs —
speedup needs hardware — while the merge guard always holds.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.apps import CofactorModel
from repro.apps.regression import cofactor_query
from repro.bench import format_table, run_stream
from repro.core.sharded import ShardedFIVMEngine
from repro.datasets import retailer, round_robin_stream
from repro.datasets.streams import single_relation_stream

from benchmarks.conftest import SCALE, report

SHARD_COUNTS = (1, 2, 4, 8)
MIN_SPEEDUP_S4 = 1.5
MIN_CPUS_TO_ENFORCE = 4
GROUP = 16


#: Timing repeats for the ONE scenario (best-of damps scheduler noise on
#: the enforced S=4 floor); the broadcast-heavy full scenario runs once.
ONE_REPEATS = 2


def test_fig_shard_scaling(benchmark):
    workload = retailer.generate(scale=0.25 * SCALE, seed=23)
    numeric = workload.numeric_variables
    order = workload.variable_order
    query = cofactor_query("retailer_shards", workload.schemas, numeric)
    ring = query.ring
    full_stream = round_robin_stream(
        workload.schemas, workload.tables, batch_size=max(10, int(40 * SCALE))
    )
    one_stream = single_relation_stream(
        workload.schemas, workload.tables, "Inventory",
        batch_size=max(10, int(40 * SCALE)),
    )
    static_db = workload.preloaded_database(ring, streaming=["Inventory"])

    def experiment():
        results: Dict[str, Dict[str, object]] = {"full": {}, "one": {}}
        totals: Dict[str, Dict[str, object]] = {"full": {}, "one": {}}

        # Unsharded references (the fig7 strategies this extends).
        reference = CofactorModel(
            "retailer_shards", workload.schemas, numeric, order=order
        )
        results["full"]["single"] = run_stream(
            "single", reference.engine, full_stream, ring,
            checkpoints=2, group=GROUP,
        )
        totals["full"]["single"] = reference.engine.result().payload(())
        for repeat in range(ONE_REPEATS):
            reference_one = CofactorModel(
                "retailer_shards_one", workload.schemas, numeric, order=order,
                updatable=["Inventory"], db=static_db,
            )
            run = run_stream(
                "single", reference_one.engine, one_stream, ring,
                checkpoints=2, group=GROUP,
            )
            best = results["one"].get("single")
            if best is None or run.average_throughput > best.average_throughput:
                results["one"]["single"] = run
            totals["one"]["single"] = reference_one.engine.result().payload(())

        for shards in SHARD_COUNTS:
            engine = ShardedFIVMEngine(
                query, order=order, shards=shards, executor="process"
            )
            try:
                results["full"][f"S={shards}"] = run_stream(
                    f"S={shards}", engine, full_stream, ring,
                    checkpoints=2, group=GROUP,
                )
                totals["full"][f"S={shards}"] = engine.result().payload(())
            finally:
                engine.close()
            for repeat in range(ONE_REPEATS):
                engine = ShardedFIVMEngine(
                    query, order=order, shards=shards,
                    updatable=["Inventory"], db=static_db, executor="process",
                )
                try:
                    run = run_stream(
                        f"S={shards}", engine, one_stream, ring,
                        checkpoints=2, group=GROUP,
                    )
                    best = results["one"].get(f"S={shards}")
                    if (
                        best is None
                        or run.average_throughput > best.average_throughput
                    ):
                        results["one"][f"S={shards}"] = run
                    totals["one"][f"S={shards}"] = engine.result().payload(())
                finally:
                    engine.close()
        return results, totals

    results, totals = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Ring-merge soundness: every configuration maintained the same triple.
    for scenario, per_config in totals.items():
        expected = per_config["single"]
        for name, got in per_config.items():
            assert ring.eq(expected, got), (
                f"{scenario}/{name}: sharded cofactor result diverged"
            )

    cpu_count = os.cpu_count() or 1
    speedups = {
        scenario: {
            f"S={shards}": (
                results[scenario][f"S={shards}"].average_throughput
                / results[scenario]["S=1"].average_throughput
            )
            for shards in SHARD_COUNTS
        }
        for scenario in ("full", "one")
    }

    rows: List[List[object]] = []
    for scenario in ("one", "full"):
        for name, result in results[scenario].items():
            rows.append([
                scenario, name,
                f"{result.average_throughput:.0f}",
                f"{speedups[scenario].get(name, 1.0):.2f}x"
                if name in speedups[scenario] else "-",
            ])
    table = format_table(
        f"Shard scaling: Retailer cofactor, multiprocessing executor "
        f"({one_stream.total_tuples} ONE / {full_stream.total_tuples} full "
        f"tuples, {cpu_count} CPUs)",
        ["scenario", "engine", "tuples/sec", "speedup vs S=1"],
        rows,
    )
    report(
        "shard_scaling",
        table,
        data={
            "cpu_count": cpu_count,
            "executor": "process",
            "group": GROUP,
            "throughput": {
                scenario: {
                    name: result.average_throughput
                    for name, result in per.items()
                }
                for scenario, per in results.items()
            },
            "speedup": speedups,
            "merge_equal": True,  # asserted above; recorded for the ratchet
            "min_speedup_s4": MIN_SPEEDUP_S4,
            "scaling_enforced": cpu_count >= MIN_CPUS_TO_ENFORCE,
        },
    )

    # Routing a single shard through the coordinator must stay close to the
    # direct engine (coordinator + IPC overhead bounded on any hardware).
    assert (
        results["one"]["S=1"].average_throughput
        > 0.5 * results["one"]["single"].average_throughput
    )
    if cpu_count >= MIN_CPUS_TO_ENFORCE:
        assert speedups["one"]["S=4"] >= MIN_SPEEDUP_S4, (
            f"S=4 reached only {speedups['one']['S=4']:.2f}x S=1 "
            f"on {cpu_count} CPUs (floor {MIN_SPEEDUP_S4}x)"
        )
