"""Ingest throughput: columnar vs dict storage under absorb_bulk churn.

The storage-engine ablation behind the columnar refactor.  A stream of
staged deltas — inserts, repeated-key updates, and exact cancellations —
is absorbed into one relation carrying a registered secondary index, so
every round exercises the full maintenance surface:

* ``dict`` storage merges per key and replays each effective update
  through the index (per-tuple ``ring.add`` on bucket sums), while
* ``columnar`` storage packs the delta column once, scatter-adds it into
  the payload blocks, and maintains the index as grouped bucket sweeps
  (``np.add.at`` over group ids) — no per-tuple ring arithmetic.

Both storages must produce identical relations (same keys, payloads,
index sums); the columnar engine must clear the dict engine by the
asserted margin, recorded and ratcheted in CI.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import format_table
from repro.data import ColumnarRelation, Relation
from repro.rings import CofactorRing

from benchmarks.conftest import SCALE, report

SCHEMA = ("A", "B")
INDEX_ATTRS = ("B",)

#: Churn profile: every round re-touches half the keyspace, and every
#: fourth round cancels the previous round exactly (row deletions and
#: bucket evictions, not just in-place updates).
CANCEL_EVERY = 4


def make_deltas(ring, rounds, rows):
    """Deterministic staged deltas (the engine's wire format: plain dict
    relations) with inserts, updates, and exact cancellations."""
    rng = np.random.default_rng(7)
    lift = ring.lift(1)
    keyspace = max(4, rows // 2)
    deltas = []
    for r in range(rounds):
        if r % CANCEL_EVERY == CANCEL_EVERY - 1:
            deltas.append(deltas[-1].negate())
            continue
        stage = Relation("dS", SCHEMA, ring)
        a_col = rng.integers(0, keyspace, size=rows)
        b_col = rng.integers(0, 64, size=rows)
        x_col = rng.normal(size=rows)
        data = stage._data
        add = ring.add
        for a, b, x in zip(a_col.tolist(), b_col.tolist(), x_col.tolist()):
            key = (a, b)
            payload = lift(x)
            current = data.get(key)
            data[key] = payload if current is None else add(current, payload)
        deltas.append(stage)
    return deltas


def ingest(relation_cls, ring, deltas):
    target = relation_cls("S", SCHEMA, ring)
    target.register_index(INDEX_ATTRS)
    tuples = sum(len(d) for d in deltas)
    start = time.perf_counter()
    for delta in deltas:
        target.absorb_bulk(delta)
    elapsed = time.perf_counter() - start
    return tuples / elapsed, target


def test_ingest_throughput(benchmark):
    ring = CofactorRing(4)
    rounds = max(8, int(24 * SCALE))
    rows = max(200, int(2000 * SCALE))
    deltas = make_deltas(ring, rounds, rows)

    def experiment():
        best = {"columnar": 0.0, "dict": 0.0}
        witness = {}
        for _ in range(3):  # interleaved best-of-three damps scheduler noise
            for label, cls in (("columnar", ColumnarRelation), ("dict", Relation)):
                throughput, target = ingest(cls, ring, deltas)
                best[label] = max(best[label], throughput)
                witness[label] = target
        assert witness["columnar"].same_as(witness["dict"])
        # Index state agrees too: every maintained bucket sum matches.
        _, _, dict_sums = witness["dict"]._indexes[INDEX_ATTRS]
        col = witness["columnar"]
        for subkey, expected in dict_sums.items():
            assert ring.eq(col.lookup_sum(INDEX_ATTRS, subkey), expected)
        return best

    best = benchmark.pedantic(experiment, rounds=1, iterations=1)
    speedup = best["columnar"] / best["dict"]
    rows_out = [
        [label, f"{value:,.0f} tuples/s"] for label, value in best.items()
    ]
    table = format_table(
        "ingest throughput", ["storage", "absorb_bulk throughput"], rows_out
    )
    report(
        "ingest_throughput",
        table + f"\ncolumnar-over-dict speedup: {speedup:.2f}x",
        data={
            "headers": ["storage", "throughput"],
            "rows": [[label, value] for label, value in best.items()],
            "speedup": speedup,
        },
    )
    assert speedup >= 2.0, f"columnar ingest only {speedup:.2f}x dict"
