"""Shared configuration for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's evaluation
(Section 7 / Appendix C), prints a paper-style table, and writes it under
``benchmarks/results/``.  Workloads are scaled down so the full suite runs
in minutes; set ``FIVM_BENCH_SCALE`` (default 1.0) to grow them.

Absolute numbers are not comparable to the paper's compiled C++ on an Azure
DS14 — the *shape* (who wins, by what factor, where crossovers fall) is
what these benches verify, via assertions in each test.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Global workload multiplier (FIVM_BENCH_SCALE=4 → 4× larger streams).
SCALE = float(os.environ.get("FIVM_BENCH_SCALE", "1.0"))

#: Per-strategy time budget in seconds (the paper's one-hour timeout,
#: scaled); slow baselines report the stream fraction they reached.
TIME_BUDGET = float(os.environ.get("FIVM_BENCH_BUDGET", "10.0")) * SCALE

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print a results table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


@pytest.fixture
def scale() -> float:
    return SCALE
