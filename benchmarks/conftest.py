"""Shared configuration for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's evaluation
(Section 7 / Appendix C), prints a paper-style table, and writes it under
``benchmarks/results/``.  Workloads are scaled down so the full suite runs
in minutes; set ``FIVM_BENCH_SCALE`` (default 1.0) to grow them.

Absolute numbers are not comparable to the paper's compiled C++ on an Azure
DS14 — the *shape* (who wins, by what factor, where crossovers fall) is
what these benches verify, via assertions in each test.
"""

from __future__ import annotations

import gc
import json
import os
from pathlib import Path

import pytest

#: Global workload multiplier (FIVM_BENCH_SCALE=4 → 4× larger streams).
SCALE = float(os.environ.get("FIVM_BENCH_SCALE", "1.0"))

#: Per-strategy time budget in seconds (the paper's one-hour timeout,
#: scaled); slow baselines report the stream fraction they reached.
TIME_BUDGET = float(os.environ.get("FIVM_BENCH_BUDGET", "10.0")) * SCALE

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, text: str, data=None) -> None:
    """Print a results table and persist it under benchmarks/results/.

    ``data`` (any JSON-serializable value) is additionally written to
    ``BENCH_<name>.json`` next to the text table, so the perf trajectory is
    machine-readable across PRs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    if data is not None:
        json_path = RESULTS_DIR / f"BENCH_{name}.json"
        json_path.write_text(
            json.dumps(data, indent=2, sort_keys=True, default=float) + "\n"
        )
        print(f"[metrics written to {json_path}]")


def stream_results_data(results) -> dict:
    """JSON payload for a list of :class:`StreamRunResult`.

    Captures, per strategy, the average throughput and peak memory plus the
    full per-checkpoint (fraction, throughput, memory) series — the axes of
    the paper's figures, keyed for cross-PR comparison.
    """
    return {
        r.name: {
            "average_throughput": r.average_throughput,
            "peak_memory": r.peak_memory,
            "total_tuples": r.total_tuples,
            "total_seconds": r.total_seconds,
            "timed_out": r.timed_out,
            "checkpoints": [
                {"fraction": f, "throughput": t, "memory": m}
                for f, t, m in zip(r.fractions, r.throughput, r.memory)
            ],
        }
        for r in results
    }


@pytest.fixture
def scale() -> float:
    return SCALE


@pytest.fixture(autouse=True)
def _collect_between_benches():
    """Drain cyclic garbage before each timed experiment.

    Columnar relations tie their payload stores, index states, and dict
    facades into reference cycles, so a previous benchmark's engines
    linger as cyclic garbage until a gen-2 pass — which would otherwise
    fire (and be billed) inside a later benchmark's timed region.
    """
    gc.collect()
    yield
