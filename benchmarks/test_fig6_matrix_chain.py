"""Figure 6: matrix chain maintenance, A = A₁A₂A₃ under updates to A₂.

Left plot: time per one-row update vs matrix dimension, for F-IVM
(factorized rank-1 propagation), 1-IVM (recompute δA = A₁ δA₂ A₃), and
RE-EVAL (recompute the product), each in two runtimes — the ring-relational
hash-map engine and the dense numpy engine (the paper's Octave analog).

Right plot: time per rank-r update at fixed n; F-IVM's cost is linear in r
while re-evaluation is flat, giving the paper's crossover.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps import (
    DenseChainFIVM,
    DenseChainFirstOrder,
    DenseChainReeval,
    MatrixChainIVM,
    chain_query,
)
from repro.baselines import FactorizedReevaluator, FirstOrderIVM
from repro.apps.matrix_chain import chain_variable_order
from repro.bench import format_table, timed_per_update as _timed
from repro.datasets.matrices import (
    matrix_as_relation,
    random_matrix,
    rank_r_update,
    row_update,
)

from benchmarks.conftest import SCALE, report


def _dense_rows(ns: List[int], rng) -> List[List[object]]:
    rows = []
    for n in ns:
        mats = [random_matrix(n, n, rng) for _ in range(3)]
        engines = {
            "F-IVM": DenseChainFIVM(*mats),
            "1-IVM": DenseChainFirstOrder(*mats),
            "RE-EVAL": DenseChainReeval(*mats),
        }
        updates = [row_update(n, int(rng.integers(0, n)), rng) for _ in range(5)]
        for name, engine in engines.items():
            queue = iter(updates * 5)

            def one_update(engine=engine, queue=queue):
                u, v = next(queue)
                engine.apply_rank_one(u, v)

            seconds = _timed(one_update, repeats=5)
            rows.append(["dense", name, n, seconds])
    return rows


def _hash_rows(ns: List[int], rng) -> List[List[object]]:
    rows = []
    query = chain_query(3)
    order = chain_variable_order(3)
    for n in ns:
        mats = [random_matrix(n, n, rng) for _ in range(3)]

        fivm = MatrixChainIVM(mats, updatable=["A2"])

        def fivm_update():
            u, v = row_update(n, int(rng.integers(0, n)), rng)
            fivm.apply_rank_one(2, u, v)

        rows.append(["hash", "F-IVM", n, _timed(fivm_update, 3)])

        from repro.data import Database

        db = Database(
            matrix_as_relation(f"A{i+1}", m, f"X{i+1}", f"X{i+2}")
            for i, m in enumerate(mats)
        )
        first_order = FirstOrderIVM(query, order, db=db)

        def fo_update():
            u, v = row_update(n, int(rng.integers(0, n)), rng)
            delta = matrix_as_relation("A2", np.outer(u, v), "X2", "X3")
            first_order.apply_update(delta)

        rows.append(["hash", "1-IVM", n, _timed(fo_update, 2)])

        reeval = FactorizedReevaluator(query, order, db=db)

        def re_update():
            u, v = row_update(n, int(rng.integers(0, n)), rng)
            delta = matrix_as_relation("A2", np.outer(u, v), "X2", "X3")
            reeval.apply_update(delta)

        rows.append(["hash", "RE-EVAL", n, _timed(re_update, 2)])
    return rows


def test_fig6_left_row_updates(benchmark):
    rng = np.random.default_rng(12)
    dense_ns = [int(n * SCALE) for n in (64, 128, 256)]
    hash_ns = [max(4, int(n * SCALE)) for n in (8, 16, 28)]

    def experiment():
        return _dense_rows(dense_ns, rng) + _hash_rows(hash_ns, rng)

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = format_table(
        "Figure 6 (left): seconds per one-row update to A2  (A = A1 A2 A3)",
        ["runtime", "strategy", "n", "sec/update"],
        rows,
    )
    report(
        "fig6_left_row_updates",
        table,
        data={
            "headers": ["runtime", "strategy", "n", "sec_per_update"],
            "rows": rows,
        },
    )

    def sec(runtime, strategy, n):
        return next(r[3] for r in rows if r[:3] == [runtime, strategy, n])

    n_big = dense_ns[-1]
    assert sec("dense", "F-IVM", n_big) < sec("dense", "1-IVM", n_big)
    assert sec("dense", "1-IVM", n_big) <= sec("dense", "RE-EVAL", n_big) * 1.2
    # The F-IVM vs 1-IVM gap grows with n (O(n²) vs O(n³)).
    gap_small = sec("dense", "1-IVM", dense_ns[0]) / sec("dense", "F-IVM", dense_ns[0])
    gap_big = sec("dense", "1-IVM", n_big) / sec("dense", "F-IVM", n_big)
    assert gap_big > gap_small
    h_big = hash_ns[-1]
    assert sec("hash", "F-IVM", h_big) < sec("hash", "1-IVM", h_big)
    assert sec("hash", "F-IVM", h_big) < sec("hash", "RE-EVAL", h_big)


def test_fig6_right_rank_r_updates(benchmark):
    rng = np.random.default_rng(13)
    n = int(256 * SCALE)
    ranks = [1, 2, 4, 8, 16, 32, 64]
    mats = [random_matrix(n, n, rng) for _ in range(3)]

    def experiment():
        rows = []
        for rank in ranks:
            terms = rank_r_update(n, rank, rng)
            fivm = DenseChainFIVM(*mats)
            t_fivm = _timed(lambda: fivm.apply_rank_r(terms), 3)
            reeval = DenseChainReeval(*mats)
            delta = sum(np.outer(u, v) for u, v in terms)
            t_re = _timed(lambda: reeval.apply_dense_delta(delta), 3)
            rows.append([rank, t_fivm, t_re])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = format_table(
        f"Figure 6 (right): seconds per rank-r update to A2 (n = {n})",
        ["rank r", "F-IVM", "RE-EVAL (once)"],
        rows,
    )
    crossover = next((r[0] for r in rows if r[1] > r[2]), None)
    report(
        "fig6_right_rank_r",
        table + f"\nincremental beats re-evaluation up to rank ≈ "
        f"{crossover if crossover else f'>{ranks[-1]}'}",
        data={
            "headers": ["rank", "fivm_sec", "reeval_sec"],
            "rows": rows,
            "crossover_rank": crossover,
        },
    )

    # F-IVM cost grows with rank; it wins at rank 1 by a wide margin.
    assert rows[0][1] < rows[0][2] / 1.5
    assert rows[-1][1] > rows[0][1] * 4
