"""Recovery asymmetry: snapshot + journal-tail replay vs full recompute.

The paper's core asymmetry — incremental maintenance is far cheaper than
re-evaluation — is the same asymmetry a recovery story should exploit.
This bench warms a cofactor serving engine (``Q(A) = R ⋈ S ⋈ T`` with
lifts on B/C/D), checkpoints it mid-stream, journals the remaining
updates, then brings up two fresh engines:

* **recover**: ``restore(snapshot)`` + ``apply_batch`` replay of the
  journal tail (:class:`repro.core.checkpoint.JournaledFIVMEngine`);
* **reinitialize**: ``initialize(db)`` over the fully updated base data
  — the from-scratch recompute that was the only recovery path before
  the durability layer existed.

Both must land on identical views (asserted — the bench refuses to
report a speedup on wrong answers); the recover/reinitialize wall-clock
ratio is asserted > 1 and ratcheted across PRs via
``BENCH_recovery.json`` (``repro/bench/regression.py``).  This is the
quantitative half of the crash-recovery acceptance criterion; the
correctness half lives in ``tests/core/test_crash_recovery.py``.
"""

from __future__ import annotations

import random
import time

from repro.bench import format_table
from repro.core import FIVMEngine, Query, VariableOrder
from repro.core.checkpoint import JournaledFIVMEngine
from repro.data import Database, Relation
from repro.rings import CofactorRing, Lifting

from benchmarks.conftest import SCALE, report

SCHEMAS = {"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D")}

DOMAIN = max(400, int(1500 * SCALE))
#: Updates journaled after the checkpoint — the tail recovery replays.
TAIL_UPDATES = max(10, int(40 * SCALE))
ROWS_PER_UPDATE = 20


def make_query(tag: str) -> Query:
    ring = CofactorRing(3)
    lifts = {"B": ring.lift(0), "C": ring.lift(1), "D": ring.lift(2)}
    return Query(
        tag, SCHEMAS, free=("A",), ring=ring, lifting=Lifting(ring, lifts)
    )


def base_database(ring) -> Database:
    """Three rows per A key per relation: recompute pays the full join
    (27 combinations per key) while the snapshot holds only the
    group-aggregated views — the asymmetry under measurement."""
    rels = []
    for rel, schema in SCHEMAS.items():
        rels.append(Relation(
            rel, schema, ring,
            {
                (a, b): ring.from_int(1)
                for a in range(DOMAIN) for b in (1, 2, 3)
            },
        ))
    return Database(rels)


def tail_deltas(ring, seed: int = 0xC0FFEE):
    rng = random.Random(seed)
    for _ in range(TAIL_UPDATES):
        rel = rng.choice(sorted(SCHEMAS))
        schema = SCHEMAS[rel]
        delta = Relation(rel, schema, ring)
        for _ in range(ROWS_PER_UPDATE):
            key = (rng.randrange(DOMAIN), rng.randint(2, 9))
            delta.add(key, ring.from_int(1))
        yield delta


def test_recovery_beats_reinitialize():
    query = make_query("Qw")
    ring = query.ring
    order = VariableOrder.auto(query)

    # -- straight line: init, checkpoint, journaled tail ----------------
    journaled = JournaledFIVMEngine(FIVMEngine(make_query("Qj"), order))
    db = base_database(ring)
    journaled.initialize(db)  # checkpoints the loaded state
    for delta in tail_deltas(ring):
        journaled.apply_update(delta)
    assert len(journaled.journal) == TAIL_UPDATES

    # the fully updated base data, for the recompute contender
    updated_db = base_database(ring)
    for delta in tail_deltas(ring):
        updated_db.apply_update(delta)

    # -- contender 1: snapshot + journal-tail replay --------------------
    recovered = FIVMEngine(make_query("Qr"), order)
    t0 = time.perf_counter()
    replayed = journaled.recover_into(recovered)
    recover_seconds = time.perf_counter() - t0
    assert replayed == TAIL_UPDATES

    # -- contender 2: full from-scratch recompute -----------------------
    reinitialized = FIVMEngine(make_query("Qi"), order)
    t0 = time.perf_counter()
    reinitialized.initialize(updated_db)
    reinitialize_seconds = time.perf_counter() - t0

    # identical state, or the speedup is meaningless
    ok = True
    assert set(recovered.views) == set(reinitialized.views)
    for name, view in recovered.views.items():
        same = view.same_as(reinitialized.views[name])
        ok = ok and same
        assert same, f"view {name} diverged between recovery paths"

    speedup = reinitialize_seconds / max(recover_seconds, 1e-9)
    rows = [
        ("snapshot + tail replay", f"{recover_seconds * 1e3:9.1f}",
         f"{replayed}"),
        ("initialize(db) recompute", f"{reinitialize_seconds * 1e3:9.1f}",
         "—"),
    ]
    text = format_table(
        f"Recovery: snapshot + {TAIL_UPDATES}-group journal tail vs "
        f"recompute (domain {DOMAIN}, cofactor ring) — "
        f"speedup {speedup:.1f}×",
        ("strategy", "ms", "groups replayed"),
        rows,
    )
    report("recovery", text, data={
        "speedup": speedup,
        "recover_seconds": recover_seconds,
        "reinitialize_seconds": reinitialize_seconds,
        "tail_updates": TAIL_UPDATES,
        "domain": DOMAIN,
        "ok": ok,
    })
    # The acceptance bar: recovery must be measurably faster than
    # recompute.  The margin is generous locally (typically ≥ 5×); the
    # ratchet in repro/bench/regression.py guards the trajectory.
    assert speedup > 1.5, (
        f"snapshot+replay ({recover_seconds:.3f}s) should beat recompute "
        f"({reinitialize_seconds:.3f}s)"
    )
