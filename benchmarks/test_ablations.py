"""Ablations of F-IVM's design choices (beyond the paper's figures).

Quantifies the individual ingredients the paper motivates qualitatively:

* **chain collapsing** (Section 3's practical composition for wide
  relations) — fewer views, less per-update view traffic;
* **group-aware delta joins** (the operational form of the paper's
  pre-aggregated sibling lookups) — O(1) star-root updates;
* **variable-order choice for matrix chains** (Section 6.1) — the optimal
  parenthesization vs a naive left-deep chain order;
* **factorized vs listing update propagation** (Section 5) — rank-1 deltas
  kept as products vs flattened;
* **compiled vs generic factorized propagation** — the factor programs
  generated from the IR (direct index lookups, fused join_project, shared
  probe cache) vs the IR-interpreter reference;
* **NumPy kernel backend vs generated source** — the batched array
  execution of the delta-program IR (payload columns packed, products and
  ``Ring.sum`` folds as grouped array reductions) vs the per-tuple
  generated triggers, on the fig7 retailer cofactor batch workload.
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps import MatrixChainIVM
from repro.apps.regression import CofactorModel, cofactor_query
from repro.bench import format_table, run_stream, timed_chain_rank_one
from repro.core import FIVMEngine, Query
from repro.datasets import housing, retailer, round_robin_stream
from repro.datasets.matrices import random_matrix, rank_r_update, row_update
from repro.rings import INT_RING

from benchmarks.conftest import SCALE, report


def test_ablation_chain_collapsing(benchmark):
    workload = retailer.generate(scale=0.1 * SCALE, seed=31)
    query = cofactor_query(
        "retailer", workload.schemas, workload.numeric_variables
    )
    stream = round_robin_stream(workload.schemas, workload.tables, batch_size=50)

    def experiment():
        rows = []
        for collapse in (True, False):
            engine = FIVMEngine(
                query, workload.variable_order, collapse_chains=collapse
            )
            result = run_stream(
                f"collapse={collapse}", engine, stream, query.ring, checkpoints=2
            )
            rows.append([
                "on" if collapse else "off",
                engine.tree.view_count(),
                f"{result.average_throughput:.0f}",
                result.peak_memory,
            ])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = format_table(
        "Ablation: chain collapsing on the Retailer cofactor workload",
        ["collapsing", "views in tree", "tuples/sec", "peak memory"],
        rows,
    )
    report(
        "ablation_chain_collapsing",
        table,
        data={
            "headers": ["collapsing", "views", "throughput", "peak_memory"],
            "rows": rows,
        },
    )
    views_on, views_off = rows[0][1], rows[1][1]
    assert views_on == 9
    assert views_off > 3 * views_on  # one view per variable without it


def test_ablation_group_aware_joins(benchmark):
    """Group-aware probes pay when sibling views have wide keys per probe
    subkey — exactly the factorized result representation, where each chain
    view keeps one key per base row.  (On fully pre-aggregated COUNT views
    buckets are singletons and the probes are equivalent.)"""
    from repro.core.view_tree import build_view_tree
    from repro.apps.conjunctive import _factorize_tree

    workload = housing.generate(
        scale=max(4, int(8 * SCALE)), postcodes=max(15, int(30 * SCALE)), seed=31
    )
    free = tuple(dict.fromkeys(a for s in workload.schemas.values() for a in s))
    stream = round_robin_stream(workload.schemas, workload.tables, batch_size=20)

    def experiment():
        rows = []
        outputs = []
        for group_aware in (True, False):
            query = Query("housing_fact", workload.schemas, ring=INT_RING)
            tree = _factorize_tree(
                build_view_tree(query, workload.variable_order), free
            )
            engine = FIVMEngine(
                query, tree=tree, materialize="all", group_aware=group_aware
            )
            result = run_stream(
                f"ga={group_aware}", engine, stream, query.ring, checkpoints=2
            )
            rows.append([
                "on" if group_aware else "off",
                f"{result.average_throughput:.0f}",
                result.average_throughput,
            ])
            outputs.append(len(engine.result()))
        assert outputs[0] == outputs[1], "ablation must not change results"
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = format_table(
        "Ablation: group-aware delta joins (Housing factorized representation)",
        ["group-aware probes", "tuples/sec"],
        [row[:2] for row in rows],
    )
    speedup = rows[0][2] / rows[1][2]
    report(
        "ablation_group_aware",
        table + f"\nspeedup from group-aware probes: {speedup:.2f}x",
        data={
            "headers": ["group_aware", "throughput"],
            "rows": [row[:2] for row in rows],
            "speedup": speedup,
        },
    )
    assert rows[0][2] > rows[1][2]


def test_ablation_matrix_chain_order(benchmark):
    """Optimal parenthesization vs worst-case order for a skewed chain."""
    rng = np.random.default_rng(32)
    p_big = int(96 * SCALE)
    p_small = 4
    # A1 (small × big), A2 (big × big), A3 (big × small): the optimal order
    # shrinks intermediates to small dimensions early.
    mats = [
        random_matrix(p_small, p_big, rng),
        random_matrix(p_big, p_big, rng),
        random_matrix(p_big, p_small, rng),
    ]

    def experiment():
        rows = []
        for optimal in (True, False):
            chain = MatrixChainIVM(
                mats, updatable=["A2"], use_optimal_order=optimal
            )
            u, v = row_update(p_big, 3, rng)
            start = time.perf_counter()
            for _ in range(3):
                chain.apply_rank_one(2, u, v)
            elapsed = (time.perf_counter() - start) / 3
            rows.append(["optimal" if optimal else "balanced", elapsed])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = format_table(
        f"Ablation: variable order for the matrix chain "
        f"(dims {p_small}x{p_big}, {p_big}x{p_big}, {p_big}x{p_small})",
        ["order", "sec per rank-1 update"],
        rows,
    )
    report(
        "ablation_matrix_chain_order",
        table,
        data={"headers": ["order", "sec_per_update"], "rows": rows},
    )


def test_ablation_compiled_factorized(benchmark):
    """Generated factor programs vs the IR-interpreter factor path, on
    rank-1 updates to the middle of a matrix chain (both hash-engine
    runtimes; identical update sequences).  The generated path replaces
    the per-op IR walk and its per-combination bindings with fused,
    specialized loop nests, so it must clear the interpreter by a real
    margin."""
    rng = np.random.default_rng(34)
    n = int(48 * SCALE)
    updates = 10
    mats = [random_matrix(n, n, rng) for _ in range(3)]
    terms = rank_r_update(n, 1, rng) * updates

    def experiment():
        rows = []
        outputs = []
        for compiled in (True, False):
            chain, seconds = timed_chain_rank_one(mats, terms, compiled)
            rows.append([
                "compiled" if compiled else "generic", seconds
            ])
            outputs.append(chain.result_matrix())
        assert np.allclose(outputs[0], outputs[1]), \
            "ablation must not change results"
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    speedup = rows[1][1] / rows[0][1]
    table = format_table(
        f"Ablation: compiled vs generic factorized propagation (n = {n})",
        ["factorized path", "sec/rank-1 update"],
        rows,
    )
    report(
        "ablation_compiled_factorized",
        table + f"\ncompiled speedup: {speedup:.2f}x",
        data={
            "headers": ["path", "sec_per_update"],
            "rows": rows,
            "speedup": speedup,
        },
    )
    assert speedup >= 1.2, f"compiled factorized path only {speedup:.2f}x"


def test_ablation_kernel_backend(benchmark):
    """NumPy kernel backend vs generated source triggers on the fig7
    retailer cofactor batch workload (degree-43 ring, batched listing
    deltas).  The kernel backend runs the same IR programs but executes
    them over packed arrays; with columnar views the payloads *live* in
    packed blocks end-to-end — gathers append row ids resolved by one
    array take, view absorbs are grouped scatter-adds, and each trigger's
    reduced block passes straight through to the parent's absorb and the
    next gather (zero-pack) — so the per-tuple ``CofactorTriple``
    arithmetic that dominates the source backend's profile disappears
    from the hot path entirely.  The stack must clear the source backend
    by a wide margin (recorded for the perf trajectory and ratcheted in
    CI)."""
    workload = retailer.generate(scale=3.0 * SCALE, seed=21)
    stream = round_robin_stream(
        workload.schemas, workload.tables, batch_size=max(100, int(600 * SCALE))
    )

    def experiment():
        best = {"kernels": 0.0, "source": 0.0}
        reference = None
        for _ in range(3):  # interleaved best-of-three damps scheduler noise
            for backend, storage in (
                ("kernels", "columnar"), ("source", "dict")
            ):
                model = CofactorModel(
                    "retailer_kb", workload.schemas,
                    workload.numeric_variables,
                    order=workload.variable_order, backend=backend,
                    storage=storage,
                )
                result = run_stream(
                    backend, model.engine, stream, model.query.ring,
                    checkpoints=2,
                )
                best[backend] = max(best[backend], result.average_throughput)
                if reference is None:
                    reference = model.engine.result()
                else:
                    assert model.engine.result().same_as(reference), (
                        "ablation must not change results"
                    )
        return best

    best = benchmark.pedantic(experiment, rounds=1, iterations=1)
    speedup = best["kernels"] / best["source"]
    rows = [
        ["kernels", f"{best['kernels']:.0f}"],
        ["source", f"{best['source']:.0f}"],
    ]
    table = format_table(
        "Ablation: NumPy kernel backend vs generated source "
        "(Retailer cofactor, batched stream)",
        ["backend", "tuples/sec"],
        rows,
    )
    report(
        "ablation_kernel_backend",
        table + f"\nkernel-backend speedup: {speedup:.2f}x",
        data={
            "headers": ["backend", "throughput"],
            "rows": rows,
            "speedup": speedup,
        },
    )
    assert speedup >= 4.0, f"kernel backend only {speedup:.2f}x source"


def test_ablation_factorized_vs_listing_updates(benchmark):
    """A *dense* rank-1 delta ``u vᵀ`` (Section 5 / Example 5.1): the listing
    trigger must materialize and propagate all n² changed entries, while the
    factorized path keeps the two n-vectors apart and marginalizes them
    through the tree (fused join+marginalize), touching O(n) keys per
    sibling.  (A one-hot row update would have only n non-zero entries and
    level the comparison — density is what factorization pays off on.)"""
    rng = np.random.default_rng(33)
    n = int(48 * SCALE)
    mats = [random_matrix(n, n, rng) for _ in range(3)]

    def experiment():
        factored = MatrixChainIVM(mats, updatable=["A2"])
        listing = MatrixChainIVM(mats, updatable=["A2"])
        u, v = rank_r_update(n, 1, rng)[0]

        start = time.perf_counter()
        for _ in range(3):
            factored.apply_rank_one(2, u, v)
        t_factored = (time.perf_counter() - start) / 3

        delta = np.outer(u, v)
        start = time.perf_counter()
        for _ in range(3):
            listing.apply_dense_delta(2, delta)
        t_listing = (time.perf_counter() - start) / 3
        assert np.allclose(factored.result_matrix(), listing.result_matrix())
        return [["factorized (rank-1)", t_factored], ["listing", t_listing]]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = format_table(
        f"Ablation: factorized vs listing delta propagation (n = {n})",
        ["update form", "sec/update"],
        rows,
    )
    speedup = rows[1][1] / rows[0][1]
    report(
        "ablation_factorized_updates",
        table + f"\nfactorized speedup: {speedup:.1f}x",
        data={
            "headers": ["update_form", "sec_per_update"],
            "rows": rows,
            "speedup": speedup,
        },
    )
    assert rows[0][1] < rows[1][1]
