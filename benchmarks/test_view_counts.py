"""View-count claims from Sections 1 and 7.

The paper's headline structural numbers: F-IVM and SQL-OPT maintain 9 views
on Retailer and 7 on Housing; DBT-RING adds auxiliary joined views;
scalar-payload DBT and 1-IVM multiply their footprint by the number of
aggregates (990 / 378 here).  These are static properties of the strategies
and are asserted exactly where the paper gives exact numbers.
"""

from __future__ import annotations

from repro.apps import CofactorModel
from repro.baselines import RecursiveIVM, SQLOptCofactor
from repro.apps.regression import cofactor_query
from repro.bench import format_table
from repro.core import Query
from repro.datasets import housing, retailer
from repro.rings import INT_RING

from benchmarks.conftest import report


def test_view_counts(benchmark):
    def experiment():
        rows = []
        retailer_workload = retailer.generate(scale=0.02)
        housing_workload = housing.generate(scale=1, postcodes=5)

        for tag, workload in (
            ("Retailer", retailer_workload), ("Housing", housing_workload)
        ):
            numeric = tuple(
                v for v in workload.numeric_variables if v != "postcode"
            ) if tag == "Housing" else workload.numeric_variables
            n_aggregates = (
                1 + len(numeric) + len(numeric) * (len(numeric) + 1) // 2
            )
            fivm = CofactorModel(
                tag, workload.schemas, numeric, order=workload.variable_order
            )
            sql_opt = SQLOptCofactor(
                tag, workload.schemas, numeric, order=workload.variable_order
            )
            ring_query = cofactor_query(f"{tag}_ring", workload.schemas, numeric)
            dbt_ring = RecursiveIVM(ring_query)
            count_query = Query(f"{tag}_count", workload.schemas, ring=INT_RING)
            dbt_scalar_per_aggregate = RecursiveIVM(count_query).view_count()
            rows.append([
                tag,
                fivm.engine.tree.view_count(),
                sql_opt.tree.view_count(),
                dbt_ring.view_count(),
                dbt_scalar_per_aggregate * n_aggregates,
                n_aggregates,
            ])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = format_table(
        "View counts per strategy (paper §7: F-IVM/SQL-OPT 9 & 7; scalar DBT "
        "≈ views × aggregates, cf. 3814/995 on Retailer, 702/412 on Housing)",
        ["dataset", "F-IVM", "SQL-OPT", "DBT-RING", "DBT (scalar)", "aggregates"],
        rows,
    )
    report(
        "view_counts",
        table,
        data={
            "headers": ["dataset", "fivm", "sql_opt", "dbt_ring",
                        "dbt_scalar", "aggregates"],
            "rows": rows,
        },
    )

    by_dataset = {row[0]: row for row in rows}
    assert by_dataset["Retailer"][1] == 9
    assert by_dataset["Retailer"][2] == 9
    assert by_dataset["Housing"][1] == 7
    assert by_dataset["Housing"][2] == 7
    # DBT-RING needs at least as many views as F-IVM; scalar DBT explodes.
    for row in rows:
        assert row[3] >= row[1]
        assert row[4] > 50 * row[1]
