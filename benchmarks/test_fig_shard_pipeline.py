"""Shard pipelining: send-ahead window vs per-update round trips.

Not a paper figure — the transport companion to the shard-scaling bench:
the fig7 retailer cofactor ONE workload (dimensions preloaded, the
``Inventory`` fact relation streaming) driven through
:class:`ShardedFIVMEngine` at S=4 in three configurations:

* ``per-update``: multiprocessing executor, ``pipeline_depth=0`` — every
  update is a full send/await round trip per shard, the PR-8 behaviour;
* ``pipelined``: the same executor with a send-ahead window
  (``pipeline_depth=32``) and deferred root-delta collection — acks drain
  opportunistically, the clock stops blocking on the scheduler;
* ``socket``: the pipelined window over the loopback TCP transport
  (length-prefixed pickle frames), the off-box deployment shape.

Reported: throughput per configuration and the pipelined/per-update
speedup; ``BENCH_shard_pipeline.json`` feeds the CI bench-regression
ratchet.  Differential guard: every configuration's maintained cofactor
triple must equal the unsharded engine's.  Unlike parallel scaling, the
pipelining win does not need cores — it amortizes per-update IPC wake-ups
— so the speedup floor is enforced on any host.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.apps import CofactorModel
from repro.apps.regression import cofactor_query
from repro.bench import format_table, run_stream
from repro.core.sharded import ShardedFIVMEngine
from repro.datasets import retailer
from repro.datasets.streams import single_relation_stream

from benchmarks.conftest import SCALE, report

SHARDS = 4
PIPELINE_DEPTH = 32
MIN_SPEEDUP = 1.3

#: Best-of repeats per configuration (damps scheduler noise on the
#: enforced pipelined/per-update floor).
REPEATS = 3


def test_fig_shard_pipeline(benchmark):
    workload = retailer.generate(scale=0.25 * SCALE, seed=23)
    numeric = workload.numeric_variables
    order = workload.variable_order
    query = cofactor_query("retailer_pipeline", workload.schemas, numeric)
    ring = query.ring
    # Per-tuple updates on purpose: the cost under measurement is the
    # per-request round trip, so every tuple is its own request and each
    # hash-routes to exactly one shard.
    stream = single_relation_stream(
        workload.schemas, workload.tables, "Inventory", batch_size=1,
    )
    static_db = workload.preloaded_database(ring, streaming=["Inventory"])

    configs = {
        "per-update": {"executor": "process", "pipeline_depth": 0},
        "pipelined": {"executor": "process", "pipeline_depth": PIPELINE_DEPTH},
        "socket": {"executor": "socket", "pipeline_depth": PIPELINE_DEPTH},
    }

    def experiment():
        results: Dict[str, object] = {}
        totals: Dict[str, object] = {}

        # Unsharded reference: the merge-equality oracle for every arm.
        reference = CofactorModel(
            "retailer_pipeline", workload.schemas, numeric, order=order,
            updatable=["Inventory"], db=static_db,
        )
        results["single"] = run_stream(
            "single", reference.engine, stream, ring, checkpoints=2,
        )
        totals["single"] = reference.engine.result().payload(())

        # Round-major interleaving: a slow phase of the host machine hits
        # every configuration of that round, not one arm of the ratio.
        for _repeat in range(REPEATS):
            for name, kwargs in configs.items():
                engine = ShardedFIVMEngine(
                    query, order=order, shards=SHARDS,
                    updatable=["Inventory"], db=static_db, **kwargs,
                )
                try:
                    run = run_stream(
                        name, engine, stream, ring, checkpoints=2,
                    )
                    # The window drains before any read: result() is on
                    # the safe side of the flush barrier by construction.
                    totals[name] = engine.result().payload(())
                finally:
                    engine.close()
                best = results.get(name)
                if (
                    best is None
                    or run.average_throughput > best.average_throughput
                ):
                    results[name] = run
        return results, totals

    results, totals = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Ring-merge soundness: pipelined and socket arms included.
    expected = totals["single"]
    for name, got in totals.items():
        assert ring.eq(expected, got), (
            f"{name}: sharded cofactor result diverged from the unsharded "
            "reference"
        )

    cpu_count = os.cpu_count() or 1
    per_update = results["per-update"].average_throughput
    speedup = results["pipelined"].average_throughput / per_update
    socket_speedup = results["socket"].average_throughput / per_update

    rows: List[List[object]] = []
    for name, result in results.items():
        ratio = (
            result.average_throughput / per_update
            if name != "single" else None
        )
        rows.append([
            name,
            f"{result.average_throughput:.0f}",
            f"{ratio:.2f}x" if ratio is not None else "-",
        ])
    table = format_table(
        f"Shard pipelining: Retailer cofactor ONE, S={SHARDS}, "
        f"depth={PIPELINE_DEPTH} ({stream.total_tuples} tuples in "
        f"{len(stream.batches)} updates, {cpu_count} CPUs)",
        ["engine", "tuples/sec", "vs per-update"],
        rows,
    )
    report(
        "shard_pipeline",
        table,
        data={
            "cpu_count": cpu_count,
            "shards": SHARDS,
            "pipeline_depth": PIPELINE_DEPTH,
            "throughput": {
                name: result.average_throughput
                for name, result in results.items()
            },
            "speedup": speedup,
            "socket_speedup": socket_speedup,
            "merge_equal": True,  # asserted above; recorded for the ratchet
            "min_speedup": MIN_SPEEDUP,
            "ok": True,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"pipelined S={SHARDS} reached only {speedup:.2f}x the per-update "
        f"executor (floor {MIN_SPEEDUP}x)"
    )
