"""Multi-view maintenance: aggregate throughput vs N registered views.

The north star's "many concurrent views" axis (ROADMAP Open item 3,
modeled on Snowflake Dynamic Tables): N=100 registered queries over one
shared database, every query carrying the same hot join-aggregate core —
``⊕_{B,C,D,E} R(A,B) ⋈ S(B,C) ⋈ U(C,D) ⋈ W(D,E)`` — joined with one
small per-view dimension relation ``Ti(A, F)``.  Updates stream into the
shared core relations, so without sharing every one of the N view trees
re-propagates every delta through the four-relation chain, while with
sharing (`MultiViewEngine(sharing=True)`, the default) one shared
sub-engine maintains the chain once and fans its tiny ``A``-keyed root
delta out to N subscribers, each of which pays a single sibling probe.

Both arms replay the identical eager stream (``target_lag=0``) through
the same :class:`~repro.core.multiview.MultiViewEngine` scheduler, so the
measured ratio isolates the common-sub-view sharing, not the lag
coalescing.  Reported: aggregate maintained-view throughput (applied
delta rows × registered views per second) for both arms at N=100 and the
with/without-sharing speedup, asserted ≥ 1.5× and ratcheted in CI via
``BENCH_multiview.json`` (``repro/bench/regression.py``).  Correctness is
asserted in-run — every sampled view must hold identical contents in both
arms — before any speedup is reported.
"""

from __future__ import annotations

import random
import time

from repro.bench import format_table
from repro.core import MultiViewEngine, Query
from repro.rings import INT_RING

from benchmarks.conftest import SCALE, report

#: The shared four-relation chain every registered query joins.
CORE = {"R": ("A", "B"), "S": ("B", "C"), "U": ("C", "D"), "W": ("D", "E")}

N_VIEWS = 100
DOMAIN = 40
ROWS_PER_EVENT = 16
EVENTS = max(8, int(24 * SCALE))


def make_queries():
    queries = []
    for i in range(N_VIEWS):
        relations = dict(CORE)
        relations[f"T{i:03d}"] = ("A", "F")
        queries.append(
            Query(f"V{i:03d}", relations, free=("A",), ring=INT_RING)
        )
    return queries


def seed_updates(rng: random.Random):
    """Base contents: a dense-ish chain so sibling probes do real work,
    plus one small dimension table per view."""
    seeds = []
    for rel, schema in CORE.items():
        counts = {}
        for _ in range(6 * DOMAIN):
            counts[(rng.randrange(DOMAIN), rng.randrange(DOMAIN))] = 1
        seeds.append((rel, counts))
    for i in range(N_VIEWS):
        counts = {(a, rng.randrange(8)): 1 for a in range(DOMAIN)}
        seeds.append((f"T{i:03d}", counts))
    return seeds


def make_events(rng: random.Random):
    """The timed stream: every event updates one shared-core relation."""
    rels = sorted(CORE)
    events = []
    for _ in range(EVENTS):
        rel = rng.choice(rels)
        counts = {}
        for _ in range(ROWS_PER_EVENT):
            key = (rng.randrange(DOMAIN), rng.randrange(DOMAIN))
            counts[key] = counts.get(key, 0) + rng.choice([-1, 1, 1, 2])
        events.append((rel, counts))
    return events


def run_arm(sharing: bool, queries, seeds, events):
    engine = MultiViewEngine(sharing=sharing)
    for query in queries:
        engine.register(query, target_lag=0.0)
    engine.apply_batch(seeds)
    engine.drain()

    rows = sum(len(counts) for _, counts in events)
    start = time.perf_counter()
    for rel, counts in events:
        engine.apply_update(rel, counts)
    engine.drain()
    elapsed = time.perf_counter() - start
    return {
        "engine": engine,
        "throughput": rows * N_VIEWS / elapsed,
        "seconds": elapsed,
    }


def test_fig_multiview(benchmark):
    rng = random.Random(0xF1B9)
    queries = make_queries()
    seeds = seed_updates(rng)
    events = make_events(rng)

    def experiment():
        return {
            "no sharing": run_arm(False, queries, seeds, events),
            "sharing": run_arm(True, queries, seeds, events),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    plain, shared = results["no sharing"], results["sharing"]

    # Correctness gate: both arms must hold identical contents on every
    # sampled view — a speedup on diverged views must never be reported.
    for i in range(0, N_VIEWS, max(1, N_VIEWS // 10)):
        name = f"V{i:03d}"
        a = dict(plain["engine"].result(name).items())
        b = dict(shared["engine"].result(name).items())
        assert a == b, f"sharing diverged from no-sharing on view {name}"

    shared_stats = shared["engine"].shared_stats()
    assert shared_stats, "no shared sub-view was formed on the chain core"
    core_stat = next(iter(shared_stats.values()))
    assert core_stat["subscribers"] == N_VIEWS

    speedup = shared["throughput"] / plain["throughput"]
    rows = [
        [
            arm,
            f"{results[arm]['throughput']:,.0f} rows·views/s",
            f"{results[arm]['seconds']:.2f} s",
        ]
        for arm in ("no sharing", "sharing")
    ]
    table = format_table(
        f"multi-view maintenance at N={N_VIEWS} registered views "
        "(shared four-relation core)",
        ["arm", "aggregate throughput", "stream time"],
        rows,
    )
    report(
        "multiview",
        table + (
            f"\nwith-sharing over without: {speedup:.2f}x"
            f"  (shared refreshes {core_stat['refreshes']},"
            f" hits {core_stat['hits']},"
            f" fanouts {core_stat['fanouts']})"
        ),
        data={
            "n_views": N_VIEWS,
            "events": len(events),
            "rows_per_event": ROWS_PER_EVENT,
            "throughput": {
                arm: results[arm]["throughput"]
                for arm in ("no sharing", "sharing")
            },
            "speedup": speedup,
            "shared": {
                k: v
                for k, v in core_stat.items()
                if isinstance(v, (int, float))
            },
        },
    )
    assert speedup >= 1.5, (
        f"sharing only {speedup:.2f}x over independent maintenance at "
        f"N={N_VIEWS} views on a shared-core workload"
    )
