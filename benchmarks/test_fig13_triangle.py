"""Figure 13: cofactor maintenance over the triangle query (Twitter).

The triangle query is cyclic: F-IVM's view over S ⊗ T has O(N²) keys, and
throughput declines sharply as the stream grows — for all higher-order
strategies.  DBT-RING materializes all three pairwise joins (the paper
reports 2.3x F-IVM's peak memory); 1-IVM stores only the inputs but pays
linear-time deltas.  F-IVM-ONE (updates to R only, S ⊗ T precomputed) does
one lookup per update.  Appendix B's indicator projection bounds the
pairwise view by the active triangles (Example B.3).
"""

from __future__ import annotations

from repro.apps.regression import cofactor_query
from repro.baselines import FirstOrderIVM, RecursiveIVM
from repro.bench import format_table, run_stream
from repro.core import FIVMEngine, add_indicator_projections, build_view_tree
from repro.datasets import round_robin_stream, twitter

from benchmarks.conftest import SCALE, TIME_BUDGET, report, stream_results_data


def test_fig13_triangle_cofactor(benchmark):
    workload = twitter.generate(
        n_nodes=max(40, int(150 * SCALE)),
        n_edges=max(600, int(3000 * SCALE)),
        seed=13,
    )
    stream = round_robin_stream(
        workload.schemas, workload.tables, batch_size=max(10, int(50 * SCALE))
    )
    one_stream = stream.restricted(["R"])

    def experiment():
        results = []

        query = cofactor_query("tri", workload.schemas, ("A", "B", "C"))
        fivm = FIVMEngine(query, workload.variable_order)
        results.append(
            run_stream("F-IVM", fivm, stream, query.ring,
                       time_budget=TIME_BUDGET)
        )

        q_ind = cofactor_query("tri_ind", workload.schemas, ("A", "B", "C"))
        tree = add_indicator_projections(
            build_view_tree(q_ind, workload.variable_order)
        )
        fivm_ind = FIVMEngine(q_ind, tree=tree)
        results.append(
            run_stream("F-IVM+IND", fivm_ind, stream, q_ind.ring,
                       time_budget=TIME_BUDGET)
        )

        q_ring = cofactor_query("tri_ring", workload.schemas, ("A", "B", "C"))
        dbt_ring = RecursiveIVM(q_ring)
        results.append(
            run_stream("DBT-RING", dbt_ring, stream, q_ring.ring,
                       time_budget=TIME_BUDGET)
        )

        q_fo = cofactor_query("tri_fo", workload.schemas, ("A", "B", "C"))
        first_order = FirstOrderIVM(q_fo, workload.variable_order)
        results.append(
            run_stream("1-IVM", first_order, stream, q_fo.ring,
                       time_budget=TIME_BUDGET)
        )

        # ONE scenario: S and T static (preloaded), only R streams.
        q_one = cofactor_query("tri_one", workload.schemas, ("A", "B", "C"))
        static_db = workload.preloaded_database(q_one.ring, streaming=["R"])
        fivm_one = FIVMEngine(
            q_one, workload.variable_order, updatable=["R"], db=static_db
        )
        results.append(
            run_stream("F-IVM ONE", fivm_one, one_stream, q_one.ring,
                       time_budget=TIME_BUDGET)
        )
        return results, fivm, fivm_ind, dbt_ring

    (results, fivm, fivm_ind, dbt_ring) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    by_name = {r.name: r for r in results}

    rows = [
        [
            r.name,
            f"{r.average_throughput:.0f}",
            f"{r.throughput[0]:.0f} -> {r.throughput[-1]:.0f}",
            r.peak_memory,
            f"{r.fractions[-1]:.2f}" + (" (timeout)" if r.timed_out else ""),
        ]
        for r in results
    ]
    table = format_table(
        f"Figure 13: triangle-query cofactor maintenance "
        f"({stream.total_tuples} tuples)",
        ["strategy", "tuples/sec", "tput first->last ckpt", "peak memory",
         "fraction"],
        rows,
    )

    def st_view_keys(engine):
        node = next(
            n for n in engine.tree.nodes
            if not n.is_leaf and n.relations == frozenset({"S", "T"})
        )
        stored = engine.views.get(node.name)
        return len(stored) if stored is not None else 0

    extra = (
        f"\nS⊗T view keys: F-IVM {st_view_keys(fivm)}, "
        f"with indicator {st_view_keys(fivm_ind)}"
    )
    report(
        "fig13_triangle_cofactor",
        table + extra,
        data=stream_results_data(results),
    )

    # Throughput declines along the stream for the quadratic-view strategies
    # (sharply — the growing S⊗T view dominates), while the ONE variant's
    # one-lookup-per-update trigger stays flat: the paper's shape contrast.
    assert (
        by_name["F-IVM"].throughput[-1] < 0.6 * by_name["F-IVM"].throughput[0]
    )
    assert (
        by_name["F-IVM ONE"].throughput[-1]
        > 0.6 * by_name["F-IVM ONE"].throughput[0]
    )
    # The ONE variant leads at the end of the stream (paper: two orders over
    # 1-IVM on the full-size graph; the slot-compiled general trigger has
    # compressed the F-IVM gap at this scaled-down size, so allow noise).
    assert (
        by_name["F-IVM ONE"].average_throughput
        > 0.85 * by_name["F-IVM"].average_throughput
    )
    assert (
        by_name["F-IVM ONE"].average_throughput
        > 3 * by_name["1-IVM"].average_throughput
    )
    # DBT-RING stores more than F-IVM (extra pairwise joins; paper: 2.3x).
    assert by_name["DBT-RING"].peak_memory > by_name["F-IVM"].peak_memory
    # The indicator projection bounds the S⊗T view (Example B.3).
    assert st_view_keys(fivm_ind) < st_view_keys(fivm)
