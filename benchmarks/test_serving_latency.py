"""Serving under a Zipf-skewed read+write mix: full vs partial roots.

The "millions of users" workload the serving layer exists for: a
read-dominated stream of point lookups over a skewed key distribution,
with a steady trickle of uniform writes over a much larger key domain.
The query is the paper's cofactor workload served per group — ``Q(A) =
R(A,B) ⋈ S(A,C) ⋈ T(A,D)`` under the cofactor ring with lifts on B/C/D,
i.e. per-key regression aggregates kept fresh while being served.

Both materialization modes replay the *same* precomputed op sequence:

* **full** maintains every root key on every write — each delta row
  costs sibling probes plus two cofactor multiplications whether or not
  anyone ever reads that key;
* **partial** (active set sized to the hot set) drops cold-key delta
  rows at the root *before* the probe program runs, so the ~98% of
  uniform writes that miss the hot set never pay the root's ring work.
  Cold reads (the Zipf tail) pay an upquery instead.

Reported: read throughput (reads / total wall-clock of the mixed loop —
the number a serving front end actually observes), p50/p99 per-lookup
latency, and write cost per delta.  The partial-over-full read
throughput ratio is asserted ≥ 2× and ratcheted in CI via
``BENCH_serving_latency.json`` (``repro/bench/regression.py``).
Served-key correctness is asserted in-run against the full engine —
the bench refuses to report a speedup on wrong answers.
"""

from __future__ import annotations

import random
import time

from repro.bench import format_table
from repro.bench.memory import payload_scalars
from repro.core import FIVMEngine, Query, VariableOrder, ViewClient
from repro.data import Database, Relation
from repro.rings import CofactorRing, Lifting

from benchmarks.conftest import SCALE, report

SCHEMAS = {"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D")}

#: Uniform write domain vs served hot set: the Noria-style skew.
DOMAIN = max(500, int(2000 * SCALE))
HOT = 64
ZIPF_S = 1.3


def make_query(tag: str) -> Query:
    ring = CofactorRing(3)
    lifts = {"B": ring.lift(0), "C": ring.lift(1), "D": ring.lift(2)}
    return Query(
        tag, SCHEMAS, free=("A",), ring=ring, lifting=Lifting(ring, lifts)
    )


def base_database(ring) -> Database:
    """Every A key carries one row per relation: the steady serving state
    where the root is dense and every write row joins."""
    rels = []
    for rel, schema in SCHEMAS.items():
        rels.append(Relation(
            rel, schema, ring, {(a, 1): ring.from_int(1) for a in range(DOMAIN)}
        ))
    return Database(rels)


def make_ops(seed: int):
    """One op sequence both modes replay: per round, one uniform write
    (inserts over the whole domain) and a burst of Zipf-skewed reads."""
    rng = random.Random(seed)
    rounds = max(20, int(150 * SCALE))
    reads_per_round = 10
    rows_per_write = 60
    # Zipf over the domain: rank k drawn with probability ∝ 1/(k+1)^s.
    weights = [1.0 / (k + 1) ** ZIPF_S for k in range(DOMAIN)]
    ops = []
    for _ in range(rounds):
        rel = rng.choice(sorted(SCHEMAS))
        data = {}
        for _ in range(rows_per_write):
            key = (rng.randrange(DOMAIN), rng.randrange(100))
            data[key] = data.get(key, 0) + 1
        ops.append(("write", rel, data))
        for rank in rng.choices(range(DOMAIN), weights=weights,
                                k=reads_per_round):
            ops.append(("read", (rank,)))
    return ops


def run_mode(materialization: str, ops):
    ring_query = make_query(f"Q_{materialization}")
    ring = ring_query.ring
    order = VariableOrder.from_spec(("A", ["B", "C", "D"]))
    engine = FIVMEngine(
        ring_query, order, materialization=materialization,
    )
    client = ViewClient(engine)
    root = engine.tree.root.name
    engine.initialize(base_database(ring))
    for rank in range(HOT):  # warm the hot set (registers it in partial)
        client.lookup(root, (rank,))
    if materialization == "partial":
        # Budget: twice the hot set, in logical scalars *as measured* on
        # the warmed entries (bench/memory accounting) — Zipf-tail reads
        # churn the LRU's spare room without thrashing the head.
        unit = 1 + payload_scalars(engine.views[root].payload((0,)))
        engine.partial[root].budget = 2 * HOT * unit

    lookup = client.lookup
    apply_update = engine.apply_update
    read_latencies = []
    reads = writes = 0
    start = time.perf_counter()
    for op in ops:
        if op[0] == "read":
            t0 = time.perf_counter()
            lookup(root, op[1])
            read_latencies.append(time.perf_counter() - t0)
            reads += 1
        else:
            _, rel, data = op
            apply_update(Relation(
                rel, SCHEMAS[rel], ring,
                {k: ring.from_int(c) for k, c in data.items()},
            ))
            writes += 1
    total = time.perf_counter() - start

    read_latencies.sort()
    n = len(read_latencies)
    return {
        "engine": engine,
        "client": client,
        "root": root,
        "read_throughput": reads / total,
        "total_seconds": total,
        "write_ms": 1000.0 * (total - sum(read_latencies)) / writes,
        "p50_us": 1e6 * read_latencies[n // 2],
        "p99_us": 1e6 * read_latencies[min(n - 1, int(n * 0.99))],
    }


def test_serving_latency(benchmark):
    ops = make_ops(0xF1B7)

    def experiment():
        return {mode: run_mode(mode, ops) for mode in ("full", "partial")}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    full, part = results["full"], results["partial"]

    # Correctness gate: the partial engine must serve the full engine's
    # value on every hot key and a sample of the Zipf tail — a speedup
    # on wrong answers must never be reported, let alone ratcheted.
    ring = full["engine"].query.ring
    oracle = full["engine"].views[full["root"]]
    sample = [(rank,) for rank in range(HOT)]
    sample += [(rank,) for rank in range(HOT, DOMAIN, max(1, DOMAIN // 40))]
    for key in sample:
        assert ring.eq(
            part["client"].lookup(part["root"], key), oracle.payload(key)
        ), f"partial diverged from full on served key {key}"
    stats = part["client"].stats(part["root"])
    assert stats["dropped_deltas"] > 0, "uniform writes never missed the set"

    speedup = part["read_throughput"] / full["read_throughput"]
    rows = [
        [
            mode,
            f"{results[mode]['read_throughput']:,.0f} reads/s",
            f"{results[mode]['p50_us']:.0f} us",
            f"{results[mode]['p99_us']:.0f} us",
            f"{results[mode]['write_ms']:.2f} ms",
        ]
        for mode in ("full", "partial")
    ]
    table = format_table(
        "serving under Zipf read+write mix (cofactor ring)",
        ["materialization", "read throughput", "p50 read", "p99 read",
         "write cost/delta"],
        rows,
    )
    report(
        "serving_latency",
        table + (
            f"\npartial-over-full read throughput: {speedup:.2f}x"
            f"  (active keys {stats['active_keys']},"
            f" evictions {stats['evictions']},"
            f" dropped deltas {stats['dropped_deltas']})"
        ),
        data={
            "headers": [
                "materialization", "read_throughput", "p50_us", "p99_us",
                "write_ms",
            ],
            "rows": [
                [
                    mode,
                    results[mode]["read_throughput"],
                    results[mode]["p50_us"],
                    results[mode]["p99_us"],
                    results[mode]["write_ms"],
                ]
                for mode in ("full", "partial")
            ],
            "speedup": speedup,
            "serving_stats": {
                k: v for k, v in stats.items()
            },
        },
    )
    assert speedup >= 2.0, (
        f"partial read throughput only {speedup:.2f}x full on the Zipf "
        "hot-set workload"
    )
