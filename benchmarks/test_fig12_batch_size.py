"""Figure 12: the effect of batch size on cofactor-matrix maintenance.

Throughput of the best strategies on Retailer, Housing, and Twitter for
batch sizes spanning two orders of magnitude.  The paper finds medium
batches (1k-10k) best: small batches cannot amortize per-batch overheads.
(The very-large-batch cache-invalidation penalty is a hardware effect the
pure-Python runtime does not reproduce; we assert the small-batch penalty,
which is runtime-independent.)

The last column feeds the *same* small-batch stream through the batched
multi-relation trigger (:meth:`FIVMEngine.apply_batch`, 100 deltas of 5
tuples per call — effective batch 500): coalescing the round-robin deltas
into one merged delta per relation must beat applying them one by one.
All paths of one ``apply_batch`` pass share the engine's probe cache
(sibling collapses computed for one relation's path are reused by the
others until an absorb invalidates them), and the trigger also accepts
``FactorizedUpdate`` items — rank-1 terms coalesce per relation and ride
the same pass (see ``test_ablations.test_ablation_compiled_factorized``
for the factorized-path numbers).
"""

from __future__ import annotations

from repro.apps import CofactorModel
from repro.bench import format_table, run_stream
from repro.datasets import housing, retailer, round_robin_stream, twitter

from benchmarks.conftest import SCALE, report

BATCH_SIZES = [5, 50, 500]

#: apply_batch group size: bundles of 100 five-tuple deltas = 500 tuples.
BATCH_GROUP = 100


def _throughputs(workload, numeric, batch_sizes):
    def make_model(tag):
        return CofactorModel(
            f"{workload.name}_{tag}",
            workload.schemas,
            numeric,
            order=workload.variable_order,
        )

    out = []
    for batch in batch_sizes:
        model = make_model(f"b{batch}")
        stream = round_robin_stream(
            workload.schemas, workload.tables, batch_size=batch
        )
        result = run_stream(
            f"bs={batch}", model.engine, stream, model.query.ring, checkpoints=2
        )
        out.append(result.average_throughput)
    # Batched trigger over the smallest-batch stream: apply_batch coalesces
    # BATCH_GROUP consecutive deltas per call.
    model = make_model("batched")
    stream = round_robin_stream(
        workload.schemas, workload.tables, batch_size=batch_sizes[0]
    )
    result = run_stream(
        "apply_batch", model.engine, stream, model.query.ring,
        checkpoints=2, group=BATCH_GROUP,
    )
    out.append(result.average_throughput)
    return out


def test_fig12_batch_size_effect(benchmark):
    retailer_workload = retailer.generate(scale=0.1 * SCALE, seed=6)
    housing_workload = housing.generate(
        scale=max(1, int(SCALE)), postcodes=max(20, int(60 * SCALE)), seed=6
    )
    twitter_workload = twitter.generate(
        n_nodes=max(30, int(80 * SCALE)), n_edges=max(300, int(1200 * SCALE)),
        seed=6,
    )

    def experiment():
        rows = []
        rows.append(
            ["Retailer"] + _throughputs(
                retailer_workload, retailer_workload.numeric_variables,
                BATCH_SIZES,
            )
        )
        housing_numeric = tuple(
            v for v in housing_workload.numeric_variables if v != "postcode"
        )
        rows.append(
            ["Housing"] + _throughputs(
                housing_workload, housing_numeric, BATCH_SIZES
            )
        )
        rows.append(
            ["Twitter"] + _throughputs(
                twitter_workload, twitter_workload.numeric_variables,
                BATCH_SIZES,
            )
        )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    headers = (
        ["dataset"]
        + [f"batch {b}" for b in BATCH_SIZES]
        + [f"apply_batch {BATCH_GROUP}x{BATCH_SIZES[0]}"]
    )
    table = format_table(
        "Figure 12: cofactor maintenance throughput (tuples/sec) vs batch size",
        headers,
        rows,
    )
    report(
        "fig12_batch_size",
        table,
        data={
            row[0]: dict(zip(headers[1:], row[1:])) for row in rows
        },
    )

    # Larger batches amortize per-batch overheads: the biggest batch beats
    # the smallest (the paper's left-side slope), and the batched
    # multi-relation trigger (effective batch 500 via coalescing) must beat
    # applying the same small deltas one at a time.  The slope shows on
    # Retailer, whose wide chain pays real per-delta path work.  Housing's
    # star join is O(1) per tuple and the slot-compiled triggers cut the
    # per-batch constant so far that Twitter's curve is flat at this scale
    # too — for those, assert only that bigger batches don't regress.
    for row in rows:
        if row[0] == "Retailer":
            assert row[-2] > row[1], row[0]
            assert row[-1] > row[1], row[0]
        else:
            assert row[-2] > 0.7 * row[1], row[0]
            assert row[-1] > 0.7 * row[1], row[0]
