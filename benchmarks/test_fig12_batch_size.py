"""Figure 12: the effect of batch size on cofactor-matrix maintenance.

Throughput of the best strategies on Retailer, Housing, and Twitter for
batch sizes spanning two orders of magnitude.  The paper finds medium
batches (1k-10k) best: small batches cannot amortize per-batch overheads.
(The very-large-batch cache-invalidation penalty is a hardware effect the
pure-Python runtime does not reproduce; we assert the small-batch penalty,
which is runtime-independent.)
"""

from __future__ import annotations

from repro.apps import CofactorModel
from repro.bench import format_table, run_stream
from repro.datasets import housing, retailer, round_robin_stream, twitter

from benchmarks.conftest import SCALE, report

BATCH_SIZES = [5, 50, 500]


def _throughputs(workload, numeric, batch_sizes):
    out = []
    for batch in batch_sizes:
        model = CofactorModel(
            f"{workload.name}_b{batch}",
            workload.schemas,
            numeric,
            order=workload.variable_order,
        )
        stream = round_robin_stream(
            workload.schemas, workload.tables, batch_size=batch
        )
        result = run_stream(
            f"bs={batch}", model.engine, stream, model.query.ring, checkpoints=2
        )
        out.append(result.average_throughput)
    return out


def test_fig12_batch_size_effect(benchmark):
    retailer_workload = retailer.generate(scale=0.1 * SCALE, seed=6)
    housing_workload = housing.generate(
        scale=max(1, int(SCALE)), postcodes=max(20, int(60 * SCALE)), seed=6
    )
    twitter_workload = twitter.generate(
        n_nodes=max(30, int(80 * SCALE)), n_edges=max(300, int(1200 * SCALE)),
        seed=6,
    )

    def experiment():
        rows = []
        rows.append(
            ["Retailer"] + _throughputs(
                retailer_workload, retailer_workload.numeric_variables,
                BATCH_SIZES,
            )
        )
        housing_numeric = tuple(
            v for v in housing_workload.numeric_variables if v != "postcode"
        )
        rows.append(
            ["Housing"] + _throughputs(
                housing_workload, housing_numeric, BATCH_SIZES
            )
        )
        rows.append(
            ["Twitter"] + _throughputs(
                twitter_workload, twitter_workload.numeric_variables,
                BATCH_SIZES,
            )
        )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = format_table(
        "Figure 12: cofactor maintenance throughput (tuples/sec) vs batch size",
        ["dataset"] + [f"batch {b}" for b in BATCH_SIZES],
        rows,
    )
    report("fig12_batch_size", table)

    # Larger batches amortize per-batch overheads: the biggest batch beats
    # the smallest (the paper's left-side slope).  Housing's star join is
    # O(1) per tuple either way, so its curve is flat — assert only that
    # large batches don't regress there.
    for row in rows:
        if row[0] == "Housing":
            assert row[-1] > 0.7 * row[1], row[0]
        else:
            assert row[-1] > row[1], row[0]
