"""Figure 7 (left): cofactor matrix maintenance over Retailer.

Strategies: F-IVM (degree-43 matrix ring over the shared view tree),
SQL-OPT (same tree, degree-indexed scalar payloads), DBT-RING (recursive
IVM with ring payloads), DBT and 1-IVM (scalar payloads, one strategy per
aggregate — 990 aggregates for 43 variables, run under a time budget that
plays the paper's one-hour timeout), plus the ONE variants (updates to the
largest relation only).

Reported: throughput and logical memory at stream fractions, as in the
paper's four panels.
"""

from __future__ import annotations

from typing import List

from repro.apps import CofactorModel
from repro.baselines import (
    FirstOrderIVM,
    RecursiveIVM,
    ScalarAggregateBank,
    SQLOptCofactor,
)
from repro.apps.regression import cofactor_query
from repro.bench import format_table, run_stream
from repro.datasets import retailer, round_robin_stream
from repro.rings import Lifting, RealRing

from benchmarks.conftest import SCALE, TIME_BUDGET, report, stream_results_data


def scalar_aggregates(variables, limit=None):
    """(name, lifting) pairs for COUNT, all SUMs, and all pairwise products."""
    ring = RealRing()
    out = [("count", Lifting(ring))]
    for i, v in enumerate(variables):
        out.append((f"s_{v}", Lifting(ring, {v: float})))
    for i, v in enumerate(variables):
        for w in variables[i:]:
            if v == w:
                out.append((f"q_{v}", Lifting(ring, {v: lambda x: float(x) ** 2})))
            else:
                out.append((f"q_{v}_{w}", Lifting(ring, {v: float, w: float})))
    return out[:limit] if limit else out


def test_fig7_retailer_cofactor(benchmark):
    workload = retailer.generate(scale=0.15 * SCALE, seed=21)
    stream = round_robin_stream(
        workload.schemas, workload.tables, batch_size=max(10, int(50 * SCALE))
    )
    one_stream = stream.restricted(["Inventory"])
    numeric = workload.numeric_variables
    n_aggregates = 1 + len(numeric) + len(numeric) * (len(numeric) + 1) // 2

    def experiment():
        results = []

        fivm = CofactorModel(
            "retailer", workload.schemas, numeric, order=workload.variable_order
        )
        results.append(
            run_stream("F-IVM", fivm.engine, stream, fivm.query.ring,
                       time_budget=TIME_BUDGET)
        )

        sql_opt = SQLOptCofactor(
            "retailer", workload.schemas, numeric, order=workload.variable_order
        )
        results.append(
            run_stream("SQL-OPT", sql_opt, stream, sql_opt.query.ring,
                       time_budget=TIME_BUDGET)
        )

        ring_query = cofactor_query("retailer_ring", workload.schemas, numeric)
        dbt_ring = RecursiveIVM(ring_query)
        results.append(
            run_stream("DBT-RING", dbt_ring, stream, ring_query.ring,
                       time_budget=TIME_BUDGET)
        )

        # Scalar-payload competitors: one strategy per aggregate, under the
        # timeout.  (The paper: DBT uses 3814 views, 1-IVM 995, and both
        # fail to finish the stream within one hour.)
        from repro.core import Query

        scalar_query = Query("scalar", workload.schemas, ring=RealRing())
        aggregates = scalar_aggregates(numeric)
        dbt = ScalarAggregateBank(
            lambda q: RecursiveIVM(q), scalar_query, aggregates
        )
        results.append(
            run_stream("DBT", dbt, stream, RealRing(),
                       checkpoints=3, time_budget=TIME_BUDGET)
        )
        first_order = ScalarAggregateBank(
            lambda q: FirstOrderIVM(q, workload.variable_order),
            scalar_query,
            aggregates,
        )
        results.append(
            run_stream("1-IVM", first_order, stream, RealRing(),
                       checkpoints=3, time_budget=TIME_BUDGET)
        )

        # ONE variants: only the largest relation streams; dimension tables
        # are preloaded as static.
        static_db = workload.preloaded_database(
            fivm.query.ring, streaming=["Inventory"]
        )
        fivm_one = CofactorModel(
            "retailer_one", workload.schemas, numeric,
            order=workload.variable_order, updatable=["Inventory"],
            db=static_db,
        )
        results.append(
            run_stream("F-IVM ONE", fivm_one.engine, one_stream,
                       fivm_one.query.ring, time_budget=TIME_BUDGET)
        )
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    by_name = {r.name: r for r in results}

    rows: List[List[object]] = []
    for r in results:
        rows.append([
            r.name,
            f"{r.average_throughput:.0f}",
            f"{r.fractions[-1]:.2f}" + (" (timeout)" if r.timed_out else ""),
            r.peak_memory,
        ])
    table = format_table(
        f"Figure 7 (left): Retailer cofactor maintenance "
        f"({stream.total_tuples} tuples, {n_aggregates} aggregates, "
        f"batch {stream.batches[0].rows and len(stream.batches[0])})",
        ["strategy", "tuples/sec", "stream fraction", "peak logical memory"],
        rows,
    )
    series = ["\nthroughput / memory at stream fractions:"]
    for r in results:
        points = ", ".join(
            f"{f:.1f}:{t:.0f}/{m}" for f, t, m in
            zip(r.fractions, r.throughput, r.memory)
        )
        series.append(f"  {r.name}: {points}")
    report(
        "fig7_retailer_cofactor",
        table + "\n" + "\n".join(series),
        data=stream_results_data(results),
    )

    # Shape assertions (the paper's qualitative claims).
    assert by_name["F-IVM"].average_throughput > by_name["DBT-RING"].average_throughput
    assert by_name["F-IVM"].average_throughput > 5 * by_name["DBT"].average_throughput
    assert by_name["F-IVM"].average_throughput > 5 * by_name["1-IVM"].average_throughput
    # F-IVM has the lowest memory among strategies that finished.
    finished = [r for r in results if not r.timed_out and "ONE" not in r.name]
    assert by_name["F-IVM"].peak_memory <= min(r.peak_memory for r in finished)
    # Restricting updates to one relation avoids materializing the views on
    # the fact relation's path: memory drops sharply (and, at the paper's
    # 84M-row scale, throughput improves 3.2x — at this scaled-down size the
    # per-batch overhead masks the speedup, so we assert parity + memory).
    assert by_name["F-IVM ONE"].peak_memory < by_name["F-IVM"].peak_memory
    assert (
        by_name["F-IVM ONE"].average_throughput
        > 0.6 * by_name["F-IVM"].average_throughput
    )
