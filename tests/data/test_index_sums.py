"""Tests for per-bucket payload sums (group-aware join support)."""


import pytest

from repro.data import Relation
from repro.rings import INT_RING, RealRing


class TestLookupSum:
    def test_basic(self):
        r = Relation("R", ("A", "B"), INT_RING, {(1, 10): 2, (1, 20): 3, (2, 10): 4})
        r.register_index(("A",))
        assert r.lookup_sum(("A",), (1,)) == 5
        assert r.lookup_sum(("A",), (2,)) == 4
        assert r.lookup_sum(("A",), (9,)) == 0

    def test_full_schema(self):
        r = Relation("R", ("A",), INT_RING, {(1,): 7})
        assert r.lookup_sum(("A",), (1,)) == 7
        assert r.lookup_sum(("A",), (2,)) == 0

    def test_empty_attrs_totals(self):
        r = Relation("R", ("A",), INT_RING, {(1,): 7, (2,): -3})
        assert r.lookup_sum((), ()) == 4

    def test_without_index_raises(self):
        r = Relation("R", ("A", "B"), INT_RING, {(1, 2): 1})
        with pytest.raises(KeyError):
            r.lookup_sum(("A",), (1,))

    def test_maintained_under_churn(self, rng):
        r = Relation.empty("R", ("A", "B"), INT_RING)
        r.register_index(("A",))
        shadow = {}
        for _ in range(500):
            key = (rng.randint(0, 3), rng.randint(0, 5))
            amount = rng.choice([1, 2, -1, -2])
            r.add(key, amount)
            shadow[key] = shadow.get(key, 0) + amount
            if shadow[key] == 0:
                del shadow[key]
        for a in range(4):
            expected = sum(v for k, v in shadow.items() if k[0] == a)
            assert r.lookup_sum(("A",), (a,)) == expected

    def test_cancelled_sum_with_nonempty_bucket(self):
        r = Relation("R", ("A", "B"), INT_RING, {(1, 10): 2, (1, 20): -2})
        r.register_index(("A",))
        assert r.lookup_sum(("A",), (1,)) == 0
        assert len(list(r.lookup(("A",), (1,)))) == 2

    def test_clear_resets_sums(self):
        r = Relation("R", ("A", "B"), INT_RING, {(1, 10): 2})
        r.register_index(("A",))
        r.clear()
        assert r.lookup_sum(("A",), (1,)) == 0

    def test_float_ring(self):
        ring = RealRing()
        r = Relation("R", ("A", "B"), ring, {(1, 10): 0.5, (1, 20): 0.25})
        r.register_index(("A",))
        assert abs(r.lookup_sum(("A",), (1,)) - 0.75) < 1e-12


class TestGroupAwarePlans:
    def test_star_root_update_uses_aggregated_steps(self):
        """On a star join, sibling chains aggregate to the join key."""
        from repro.core import FIVMEngine, Query, VariableOrder

        schemas = {"R1": ("P", "X"), "R2": ("P", "Y"), "R3": ("P", "Z")}
        q = Query("star", schemas, free=("P",), ring=INT_RING)
        order = VariableOrder.from_spec(("P", ["X", "Y", "Z"]))
        engine = FIVMEngine(q, order)
        root = engine.tree.root
        plan = engine._plans[(root.name, ("child", 0))]
        assert all(step.aggregated for step in plan)

    def test_aggregated_plan_correctness_under_churn(self, rng):
        """Group-aware probing changes cost, never results."""
        from repro.core import FIVMEngine, Query, VariableOrder
        from repro.core import build_view_tree
        from repro.data import Database

        schemas = {"R1": ("P", "X"), "R2": ("P", "Y"), "R3": ("P", "Z")}
        q = Query("star", schemas, free=("P",), ring=INT_RING)
        order = VariableOrder.from_spec(("P", ["X", "Y", "Z"]))
        engine = FIVMEngine(q, order)
        db = Database(
            Relation(rel, schema, INT_RING) for rel, schema in schemas.items()
        )
        for _ in range(80):
            rel = rng.choice(list(schemas))
            key = (rng.randint(0, 2), rng.randint(0, 4))
            amount = rng.choice([1, 1, 2, -1])
            delta = Relation(rel, schemas[rel], INT_RING, {key: amount})
            if delta.is_empty:
                continue
            engine.apply_update(delta.copy())
            db.apply_update(delta)
            tree = build_view_tree(q, order)
            expected = tree.evaluate(db)[tree.root.name]
            assert engine.result().same_as(expected)
