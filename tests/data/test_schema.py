"""Tests for schema utilities."""

import pytest

from repro.data.schema import (
    SchemaError,
    as_schema,
    key_projector,
    merge_schemas,
    schema_positions,
)


class TestAsSchema:
    def test_normalizes(self):
        assert as_schema(["A", "B"]) == ("A", "B")

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            as_schema(["A", "A"])


class TestMergeSchemas:
    def test_natural_join_schema(self):
        assert merge_schemas(("A", "B"), ("B", "C")) == ("A", "B", "C")

    def test_disjoint(self):
        assert merge_schemas(("A",), ("B",)) == ("A", "B")

    def test_identical(self):
        assert merge_schemas(("A", "B"), ("A", "B")) == ("A", "B")


class TestSchemaPositions:
    def test_positions(self):
        assert schema_positions(("A", "B", "C"), ("C", "A")) == (2, 0)

    def test_unknown_attr(self):
        with pytest.raises(SchemaError):
            schema_positions(("A",), ("Z",))


class TestKeyProjector:
    def test_identity_projection(self):
        proj = key_projector(("A", "B"), ("A", "B"))
        key = (1, 2)
        assert proj(key) is key

    def test_empty_projection(self):
        proj = key_projector(("A", "B"), ())
        assert proj((1, 2)) == ()

    def test_single(self):
        proj = key_projector(("A", "B"), ("B",))
        assert proj((1, 2)) == (2,)

    def test_multi(self):
        proj = key_projector(("A", "B", "C"), ("C", "A"))
        assert proj((1, 2, 3)) == (3, 1)
