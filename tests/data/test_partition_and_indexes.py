"""Edge cases for hash partitioning and secondary-index bulk maintenance.

Targets the two data-layer contracts the sharding and batching layers
lean on:

* :meth:`Relation.partition` / :func:`stable_hash` must decompose any
  relation — whatever the key values (``None`` fields, ``bytes``,
  negative ints, empty relations) — into pairwise-disjoint fragments
  whose ``⊎`` is the original, deterministically across processes;
* :meth:`Relation.absorb_bulk` must leave every registered secondary
  index (buckets *and* per-bucket sums) exactly as per-tuple
  :meth:`Relation.add` would, including cancellation deletes and the
  kept-but-zero cancelled sums.
"""

import random

import pytest

from repro.core.sharded import stable_hash
from repro.data import Relation
from repro.data.schema import SchemaError
from repro.rings import INT_RING


def merge_fragments(fragments):
    merged = Relation(fragments[0].name, fragments[0].schema, INT_RING)
    for fragment in fragments:
        merged.absorb_bulk(fragment)
    return merged


class TestPartitionEdgeCases:
    AWKWARD_VALUES = [
        None,
        b"\x00bytes",
        b"",
        -1,
        -(10**12),
        0,
        "",
        "x",
        ("nested", None),
        frozenset({1}),
        2.5,
        True,
    ]

    def test_awkward_values_partition_and_merge_back(self):
        data = {
            (value, i): i + 1 for i, value in enumerate(self.AWKWARD_VALUES)
        }
        r = Relation("R", ("A", "B"), INT_RING, data)
        for shards in (1, 2, 3, 7):
            fragments = r.partition("A", shards, stable_hash)
            assert len(fragments) == shards
            # Disjoint supports...
            seen = set()
            for fragment in fragments:
                keys = set(fragment.keys())
                assert not (keys & seen)
                seen |= keys
            # ...whose union is the original, payload for payload.
            assert merge_fragments(fragments).same_as(r)

    def test_fragment_assignment_is_deterministic(self):
        r = Relation(
            "R", ("A",), INT_RING,
            {(v,): 1 for v in self.AWKWARD_VALUES},
        )
        first = [set(f.keys()) for f in r.partition("A", 4, stable_hash)]
        second = [set(f.keys()) for f in r.partition("A", 4, stable_hash)]
        assert first == second

    def test_empty_relation_partitions_to_empty_fragments(self):
        r = Relation.empty("R", ("A", "B"), INT_RING)
        fragments = r.partition("B", 3, stable_hash)
        assert len(fragments) == 3
        assert all(f.is_empty for f in fragments)
        assert all(f.schema == r.schema for f in fragments)

    def test_partition_rejects_bad_arguments(self):
        r = Relation("R", ("A",), INT_RING, {(1,): 1})
        with pytest.raises(SchemaError):
            r.partition("Z", 2, stable_hash)
        with pytest.raises(SchemaError):
            r.partition("A", 0, stable_hash)

    def test_stable_hash_handles_awkward_values(self):
        for value in self.AWKWARD_VALUES:
            h = stable_hash(value)
            assert isinstance(h, int) and h >= 0
            assert h == stable_hash(value)

    def test_stable_hash_normalizes_numeric_key_equality(self):
        # Tuple-key equality treats True == 1 == 1.0; routing must agree,
        # and negative integral floats must follow their int twins too.
        assert stable_hash(True) == stable_hash(1) == stable_hash(1.0)
        assert stable_hash(False) == stable_hash(0) == stable_hash(0.0)
        assert stable_hash(-3.0) == stable_hash(-3)
        assert stable_hash(-3.5) != stable_hash(-3)

    def test_bytes_and_str_do_not_collide_by_repr_prefix(self):
        # repr(b"x") == "b'x'" and repr("b'x'") shares characters; the
        # encoded reprs must still be distinct inputs.
        assert stable_hash(b"x") != stable_hash("x")


def assert_indexes_consistent(relation):
    """Every registered index must equal one freshly rebuilt from the
    primary map: same buckets, same payloads, and bucket sums that match
    the ring sum of the bucket (cancelled zero sums allowed only while
    their bucket is non-empty)."""
    ring = relation.ring
    for attrs, (projector, buckets, sums) in relation._indexes.items():
        rebuilt = {}
        for key, payload in relation._data.items():
            rebuilt.setdefault(projector(key), {})[key] = payload
        assert {k: dict(v) for k, v in buckets.items()} == rebuilt, attrs
        for subkey, bucket in buckets.items():
            expected = ring.sum(bucket.values())
            assert ring.eq(sums[subkey], expected), (attrs, subkey)
        for subkey in sums:
            assert subkey in buckets, f"dangling sum for {subkey} on {attrs}"


class TestAbsorbBulkIndexConsistency:
    def test_bulk_matches_per_tuple_adds_under_churn(self):
        rng = random.Random(0xB1B)
        bulk = Relation.empty("R", ("A", "B"), INT_RING)
        single = Relation.empty("R", ("A", "B"), INT_RING)
        for r in (bulk, single):
            r.register_index(("A",))
            r.register_index(("B",))
        for _ in range(120):
            data = {}
            for _ in range(rng.randint(1, 6)):
                key = (rng.randint(0, 3), rng.randint(0, 4))
                data[key] = rng.choice([1, 2, -1, -2])
            delta = Relation("D", ("A", "B"), INT_RING, data)
            bulk.absorb_bulk(delta)
            for key, payload in data.items():
                single.add(key, payload)
            assert bulk.same_as(single)
            assert_indexes_consistent(bulk)

    def test_cancellation_delete_keeps_sums_sound(self):
        r = Relation("R", ("A", "B"), INT_RING, {(1, 1): 2, (1, 2): 3})
        r.register_index(("A",))
        # Cancel one key of the bucket: the bucket survives with a reduced
        # (possibly zero) sum; lookups must stay consistent.
        r.absorb_bulk(Relation("D", ("A", "B"), INT_RING, {(1, 1): -2, (1, 2): -3, (1, 3): 5}))
        assert (1, 1) not in r and (1, 2) not in r
        assert r.lookup_sum(("A",), (1,)) == 5
        assert_indexes_consistent(r)
        # Cancel the whole bucket: bucket and sum both disappear.
        r.absorb_bulk(Relation("D", ("A", "B"), INT_RING, {(1, 3): -5}))
        assert r.lookup_sum(("A",), (1,)) == 0
        assert not r._indexes[("A",)][1]
        assert not r._indexes[("A",)][2]
