"""Edge cases for :class:`ColumnarRelation` — the array-native storage.

Ports the partition / bulk-index contracts of
``test_partition_and_indexes.py`` to the columnar engine and adds the
storage-specific ones: dead-row compaction must preserve the container
identities compiled kernels bind to, the ``_data`` / index facades must
speak the full mapping protocol (the interpreter and generated-source
backends read views through them), and the object-column fallback must
give rings without kernel ops identical semantics.
"""

import random

import pytest

from repro.core.sharded import stable_hash
from repro.data import ColumnarRelation, Relation
from repro.data.schema import SchemaError
from repro.rings import (
    CofactorRing,
    DegreeRing,
    INT_RING,
    IntegerRing,
    ProductRing,
    RealRing,
    SquareMatrixRing,
)

def assert_indexes_consistent(relation):
    """Ring-aware version of the dict-storage helper: every registered
    index must equal one freshly rebuilt from the primary map — same
    buckets, ``ring.eq``-equal payloads, and bucket sums matching the ring
    sum of the bucket (cancelled zero sums allowed only while their bucket
    is non-empty).  The dict-storage twin compares payloads with ``==``,
    which works there because lookups return the *stored* objects; the
    columnar facades unpack fresh payloads, so rings whose payloads lack
    ``__eq__`` (cofactor triples, matrices) need the ring's equality.
    """
    ring = relation.ring
    for attrs, (projector, buckets, sums) in relation._indexes.items():
        rebuilt = {}
        for key, payload in relation._data.items():
            rebuilt.setdefault(projector(key), {})[key] = payload
        assert set(buckets.keys()) == set(rebuilt), attrs
        for subkey, bucket in buckets.items():
            expected = rebuilt[subkey]
            assert set(bucket.keys()) == set(expected), (attrs, subkey)
            for key, payload in bucket.items():
                assert ring.eq(payload, expected[key]), (attrs, subkey, key)
            assert ring.eq(sums[subkey], ring.sum(expected.values())), (
                attrs, subkey,
            )
        for subkey in sums:
            assert subkey in buckets, f"dangling sum for {subkey} on {attrs}"


#: Packed rings plus an object-column ring: the same contracts must hold
#: on both code paths.
RINGS = {
    "int": lambda: INT_RING,
    "real": lambda: RealRing(),
    "degree": lambda: DegreeRing(2),
    "cofactor": lambda: CofactorRing(2),
    "product": lambda: ProductRing([IntegerRing(), RealRing()]),
    "matrix": lambda: SquareMatrixRing(2),  # no kernel ops: object column
}


def merge_fragments(fragments):
    merged = ColumnarRelation(
        fragments[0].name, fragments[0].schema, fragments[0].ring
    )
    for fragment in fragments:
        merged.absorb_bulk(fragment)
    return merged


class TestPartitionEdgeCases:
    AWKWARD_VALUES = [
        None,
        b"\x00bytes",
        b"",
        -1,
        -(10**12),
        0,
        "",
        "x",
        ("nested", None),
        frozenset({1}),
        2.5,
        True,
    ]

    def test_awkward_values_partition_and_merge_back(self):
        data = {
            (value, i): i + 1 for i, value in enumerate(self.AWKWARD_VALUES)
        }
        r = ColumnarRelation("R", ("A", "B"), INT_RING, data)
        for shards in (1, 2, 3, 7):
            fragments = r.partition("A", shards, stable_hash)
            assert len(fragments) == shards
            assert all(isinstance(f, ColumnarRelation) for f in fragments)
            seen = set()
            for fragment in fragments:
                keys = set(fragment.keys())
                assert not (keys & seen)
                seen |= keys
            assert merge_fragments(fragments).same_as(r)

    def test_partition_routes_exactly_like_dict_storage(self):
        # Sharding correctness rests on both storages picking the same
        # fragment for every key, so mixed fleets stay consistent.
        data = {
            (value, i): i + 1 for i, value in enumerate(self.AWKWARD_VALUES)
        }
        columnar = ColumnarRelation("R", ("A", "B"), INT_RING, data)
        plain = Relation("R", ("A", "B"), INT_RING, data)
        for shards in (2, 5):
            got = columnar.partition("A", shards, stable_hash)
            want = plain.partition("A", shards, stable_hash)
            for fragment, expected in zip(got, want):
                assert fragment.same_as(expected)

    def test_fragment_assignment_is_deterministic(self):
        r = ColumnarRelation(
            "R", ("A",), INT_RING,
            {(v,): 1 for v in self.AWKWARD_VALUES},
        )
        first = [set(f.keys()) for f in r.partition("A", 4, stable_hash)]
        second = [set(f.keys()) for f in r.partition("A", 4, stable_hash)]
        assert first == second

    def test_empty_relation_partitions_to_empty_fragments(self):
        r = ColumnarRelation("R", ("A", "B"), INT_RING)
        fragments = r.partition("B", 3, stable_hash)
        assert len(fragments) == 3
        assert all(f.is_empty for f in fragments)
        assert all(f.schema == r.schema for f in fragments)

    def test_partition_rejects_bad_arguments(self):
        r = ColumnarRelation("R", ("A",), INT_RING, {(1,): 1})
        with pytest.raises(SchemaError):
            r.partition("Z", 2, stable_hash)
        with pytest.raises(SchemaError):
            r.partition("A", 0, stable_hash)


def make_payload(ring, rng):
    """A small random non-trivial payload for ``ring``."""
    if isinstance(ring, (CofactorRing, DegreeRing)):
        if rng.random() < 0.5:
            return ring.lift(rng.randrange(2))(rng.randint(-2, 3))
        return ring.from_int(rng.choice([1, 2, -1, -2]))
    return ring.from_int(rng.choice([1, 2, -1, -2]))


@pytest.mark.parametrize("ring_name", sorted(RINGS))
class TestAbsorbBulkIndexConsistency:
    def test_bulk_matches_per_tuple_adds_under_churn(self, ring_name):
        ring = RINGS[ring_name]()
        rng = random.Random(0xB1B)
        bulk = ColumnarRelation("R", ("A", "B"), ring)
        single = Relation.empty("R", ("A", "B"), ring)
        for r in (bulk, single):
            r.register_index(("A",))
            r.register_index(("B",))
        for _ in range(120):
            data = {}
            for _ in range(rng.randint(1, 6)):
                key = (rng.randint(0, 3), rng.randint(0, 4))
                data[key] = make_payload(ring, rng)
            delta = Relation("D", ("A", "B"), ring, data)
            bulk.absorb_bulk(delta)
            for key, payload in data.items():
                single.add(key, payload)
            assert bulk.same_as(single)
            assert single.same_as(bulk)
            assert_indexes_consistent(bulk)

    def test_index_registered_after_load_matches_incremental(self, ring_name):
        # ``register_index`` on a populated relation runs the grouped
        # rebuild sweep; it must agree with an incrementally maintained
        # twin bucket for bucket and sum for sum.
        ring = RINGS[ring_name]()
        rng = random.Random(0xCAFE)
        incremental = ColumnarRelation("R", ("A", "B"), ring)
        incremental.register_index(("B",))
        deltas = []
        for _ in range(30):
            data = {
                (rng.randint(0, 3), rng.randint(0, 3)):
                    make_payload(ring, rng)
                for _ in range(rng.randint(1, 5))
            }
            deltas.append(data)
            incremental.absorb_bulk(Relation("D", ("A", "B"), ring, data))
        rebuilt = ColumnarRelation("R", ("A", "B"), ring)
        for data in deltas:
            rebuilt.absorb_bulk(Relation("D", ("A", "B"), ring, data))
        rebuilt.register_index(("B",))
        assert rebuilt.same_as(incremental)
        assert_indexes_consistent(rebuilt)
        _, buckets_a, sums_a = incremental._indexes[("B",)]
        _, buckets_b, sums_b = rebuilt._indexes[("B",)]
        assert set(buckets_a.keys()) == set(buckets_b.keys())
        for subkey in buckets_a:
            got = dict(buckets_a[subkey])
            want = dict(buckets_b[subkey])
            assert set(got) == set(want)
            for key in got:
                assert ring.eq(got[key], want[key])
            assert ring.eq(sums_a[subkey], sums_b[subkey])


class TestCancellationSemantics:
    def test_cancellation_delete_keeps_sums_sound(self):
        r = ColumnarRelation("R", ("A", "B"), INT_RING, {(1, 1): 2, (1, 2): 3})
        r.register_index(("A",))
        # Cancel one key of the bucket: the bucket survives with a reduced
        # (possibly zero) sum; lookups must stay consistent.
        r.absorb_bulk(Relation(
            "D", ("A", "B"), INT_RING, {(1, 1): -2, (1, 2): -3, (1, 3): 5}
        ))
        assert (1, 1) not in r and (1, 2) not in r
        assert r.lookup_sum(("A",), (1,)) == 5
        assert_indexes_consistent(r)
        # Cancel the whole bucket: bucket and sum both disappear.
        r.absorb_bulk(Relation("D", ("A", "B"), INT_RING, {(1, 3): -5}))
        assert r.lookup_sum(("A",), (1,)) == 0
        assert not r._indexes[("A",)][1]
        assert not r._indexes[("A",)][2]

    def test_cancelled_then_reinserted_key_round_trips(self):
        r = ColumnarRelation("R", ("A",), INT_RING, {(1,): 1})
        r.register_index(())  # no-op: full-schema/empty handled elsewhere
        r.absorb_bulk(Relation("D", ("A",), INT_RING, {(1,): -1}))
        assert r.is_empty and (1,) not in r
        r.absorb_bulk(Relation("D", ("A",), INT_RING, {(1,): 7}))
        assert r._data[(1,)] == 7
        assert r.total() == 7


class TestCompaction:
    def test_compaction_preserves_contents_and_bindings(self):
        r = ColumnarRelation("R", ("A", "B"), INT_RING)
        r.register_index(("A",))
        rows_map = r._rows
        keys_list = r._keys
        store = r._store
        state = r._states[("A",)]
        rng = random.Random(3)
        live = {}
        # Churn enough cancellations to trip COMPACT_MIN_DEAD several
        # times over.
        for round_ in range(40):
            data = {}
            for _ in range(12):
                key = (rng.randint(0, 5), rng.randint(0, 40))
                if key in live and rng.random() < 0.6:
                    data[key] = -live[key]
                else:
                    data[key] = rng.choice([1, 2, -1])
            r.absorb_bulk(Relation("D", ("A", "B"), INT_RING, data))
            for key, value in data.items():
                merged = live.get(key, 0) + value
                if merged:
                    live[key] = merged
                else:
                    live.pop(key, None)
            assert dict(r._data.items()) == live
            assert_indexes_consistent(r)
        assert r._dead <= r.COMPACT_MIN_DEAD or r._dead <= len(r._rows)
        # Compaction must rebuild in place: compiled kernel programs bind
        # these container objects directly.
        assert r._rows is rows_map
        assert r._keys is keys_list
        assert r._store is store
        assert r._states[("A",)] is state

    def test_clear_resets_everything(self):
        r = ColumnarRelation("R", ("A",), INT_RING, {(i,): 1 for i in range(5)})
        r.register_index(())
        r.register_index(("A",))  # full schema: ignored like dict storage
        r.clear()
        assert r.is_empty
        assert r.total() == 0
        assert list(r._data.items()) == []


class TestFacades:
    def test_data_facade_speaks_dict(self):
        r = ColumnarRelation(
            "R", ("A", "B"), INT_RING, {(1, 2): 3, (4, 5): 6}
        )
        assert dict(r._data) == {(1, 2): 3, (4, 5): 6}
        assert len(r._data) == 2 and bool(r._data)
        assert (1, 2) in r._data and (9, 9) not in r._data
        assert r._data[(1, 2)] == 3
        with pytest.raises(KeyError):
            r._data[(9, 9)]
        assert r._data.get((4, 5)) == 6
        assert r._data.get((9, 9), "d") == "d"
        assert sorted(r._data.keys()) == [(1, 2), (4, 5)]
        assert sorted(r._data.values()) == [3, 6]
        assert sorted(r._data.items()) == [((1, 2), 3), ((4, 5), 6)]

    def test_index_facades_speak_dict(self):
        r = ColumnarRelation(
            "R", ("A", "B"), INT_RING, {(1, 1): 2, (1, 2): 3, (2, 1): 4}
        )
        r.register_index(("A",))
        _, buckets, sums = r._indexes[("A",)]
        assert set(buckets) == {(1,), (2,)}
        assert len(buckets) == 2 and (1,) in buckets
        assert buckets.get((9,)) is None
        bucket = buckets[(1,)]
        assert dict(bucket) == {(1, 1): 2, (1, 2): 3}
        assert bucket[(1, 1)] == 2 and bucket.get((1, 9), 0) == 0
        assert {k: dict(v) for k, v in buckets.items()} == {
            (1,): {(1, 1): 2, (1, 2): 3},
            (2,): {(2, 1): 4},
        }
        assert dict(sums.items()) == {(1,): 5, (2,): 4}
        assert sums[(1,)] == 5 and sums.get((9,), 0) == 0
        assert sorted(sums.values()) == [4, 5]

    def test_lookup_paths_match_dict_storage(self):
        data = {(1, 1): 2, (1, 2): 3, (2, 1): 4}
        columnar = ColumnarRelation("R", ("A", "B"), INT_RING, data)
        plain = Relation("R", ("A", "B"), INT_RING, data)
        for r in (columnar, plain):
            r.register_index(("B",))
        for subkey in [(1,), (2,), (9,)]:
            assert sorted(columnar.lookup(("B",), subkey)) == sorted(
                plain.lookup(("B",), subkey)
            )
            assert columnar.lookup_sum(("B",), subkey) == plain.lookup_sum(
                ("B",), subkey
            )
        # Full-schema and empty-attrs lookups bypass the index states.
        assert list(columnar.lookup(("A", "B"), (1, 2))) == [((1, 2), 3)]
        assert columnar.lookup(("A", "B"), (9, 9)) == ()
        assert columnar.lookup_sum(("A", "B"), (1, 1)) == 2
        assert sorted(columnar.lookup((), ())) == sorted(data.items())
        assert columnar.lookup_sum((), ()) == 9
        with pytest.raises(KeyError):
            columnar.lookup(("A",), (1,))
        with pytest.raises(KeyError):
            columnar.lookup_sum(("A",), (1,))


class TestRelationProtocol:
    def test_copy_total_and_union_match_dict_storage(self):
        ring = CofactorRing(2)
        rng = random.Random(11)
        data = {
            (rng.randint(0, 3), rng.randint(0, 3)): make_payload(ring, rng)
            for _ in range(20)
        }
        columnar = ColumnarRelation("R", ("A", "B"), ring, data)
        plain = Relation("R", ("A", "B"), ring, dict(data))
        clone = columnar.copy()
        assert isinstance(clone, ColumnarRelation)
        assert clone.same_as(plain)
        assert ring.eq(columnar.total(), plain.total())
        # total() is memoized: mutation must invalidate it.
        extra = {(9, 9): ring.from_int(2)}
        columnar.absorb_bulk(Relation("D", ("A", "B"), ring, extra))
        plain.absorb_bulk(Relation("D", ("A", "B"), ring, extra))
        assert ring.eq(columnar.total(), plain.total())
        assert clone.same_as(Relation("R", ("A", "B"), ring, data))

    def test_zero_payloads_are_dropped_on_construction(self):
        r = ColumnarRelation("R", ("A",), INT_RING, {(1,): 0, (2,): 5})
        assert (1,) not in r and r._data[(2,)] == 5

    def test_columnar_to_columnar_absorb_uses_packed_fast_path(self):
        ring = CofactorRing(2)
        rng = random.Random(5)
        a = ColumnarRelation("R", ("A",), ring)
        b = ColumnarRelation("D", ("A",), ring)
        expected = Relation("R", ("A",), ring)
        data_a = {(i,): ring.lift(0)(i) for i in range(12)}
        data_b = {(i,): ring.lift(0)(-i) for i in range(6, 18)}
        a.absorb_bulk(Relation("x", ("A",), ring, data_a))
        b.absorb_bulk(Relation("x", ("A",), ring, data_b))
        expected.absorb_bulk(Relation("x", ("A",), ring, data_a))
        expected.absorb_bulk(Relation("x", ("A",), ring, data_b))
        a.absorb_bulk(b)  # columnar delta: block-to-block take, no repack
        assert a.same_as(expected)
