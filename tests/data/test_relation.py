"""Tests for relations over rings: the ⊎ ⊗ ⊕ operator semantics."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Relation, SchemaError
from repro.rings import INT_RING, SquareMatrixRing

import numpy as np


def rel(name, schema, data):
    return Relation(name, schema, INT_RING, data)


class TestConstruction:
    def test_zero_payloads_dropped(self):
        r = rel("R", ("A",), {(1,): 0, (2,): 5})
        assert (1,) not in r
        assert len(r) == 1

    def test_key_width_checked(self):
        with pytest.raises(SchemaError):
            rel("R", ("A", "B"), {(1,): 1})

    def test_from_tuples_accumulates(self):
        r = Relation.from_tuples("R", ("A",), INT_RING, [(1,), (1,), (2,)])
        assert r.payload((1,)) == 2
        assert r.payload((2,)) == 1

    def test_from_tuples_custom_payload(self):
        r = Relation.from_tuples("R", ("A",), INT_RING, [(1,)], payload=5)
        assert r.payload((1,)) == 5

    def test_empty(self):
        r = Relation.empty("R", ("A",), INT_RING)
        assert r.is_empty
        assert r.payload((1,)) == 0

    def test_duplicate_schema_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A", "A"), INT_RING)


class TestMutation:
    def test_add_accumulates_and_cancels(self):
        r = Relation.empty("R", ("A",), INT_RING)
        r.add((1,), 2)
        r.add((1,), 3)
        assert r.payload((1,)) == 5
        r.add((1,), -5)
        assert (1,) not in r

    def test_absorb(self):
        r = rel("R", ("A",), {(1,): 1})
        r.absorb(rel("d", ("A",), {(1,): -1, (2,): 4}))
        assert (1,) not in r
        assert r.payload((2,)) == 4

    def test_absorb_schema_mismatch(self):
        r = rel("R", ("A",), {(1,): 1})
        with pytest.raises(SchemaError):
            r.absorb(rel("d", ("B",), {(1,): 1}))

    def test_clear(self):
        r = rel("R", ("A",), {(1,): 1})
        r.clear()
        assert r.is_empty


class TestUnion:
    def test_union_adds_payloads(self):
        a = rel("A", ("X",), {(1,): 2, (2,): 1})
        b = rel("B", ("X",), {(1,): 3, (3,): 7})
        u = a.union(b)
        assert dict(u.items()) == {(1,): 5, (2,): 1, (3,): 7}

    def test_union_cancellation_drops_keys(self):
        a = rel("A", ("X",), {(1,): 2})
        u = a.union(a.negate())
        assert u.is_empty

    def test_union_schema_mismatch(self):
        with pytest.raises(SchemaError):
            rel("A", ("X",), {}).union(rel("B", ("Y",), {}))


class TestJoin:
    def test_natural_join(self):
        r = rel("R", ("A", "B"), {(1, 10): 2, (2, 20): 1})
        s = rel("S", ("B", "C"), {(10, 7): 3, (10, 8): 1})
        j = r.join(s)
        assert j.schema == ("A", "B", "C")
        assert dict(j.items()) == {(1, 10, 7): 6, (1, 10, 8): 2}

    def test_cartesian_product(self):
        r = rel("R", ("A",), {(1,): 2})
        s = rel("S", ("B",), {(5,): 3, (6,): 1})
        j = r.join(s)
        assert dict(j.items()) == {(1, 5): 6, (1, 6): 2}

    def test_join_on_all_attrs(self):
        r = rel("R", ("A",), {(1,): 2, (2,): 1})
        s = rel("S", ("A",), {(1,): 5})
        assert dict(r.join(s).items()) == {(1,): 10}

    def test_join_payload_order_non_commutative(self):
        """Payloads multiply left*right — observable with matrices."""
        ring = SquareMatrixRing(2)
        a = np.array([[0.0, 1.0], [0.0, 0.0]])
        b = np.array([[0.0, 0.0], [1.0, 0.0]])
        r = Relation("R", ("X",), ring, {(1,): a})
        s = Relation("S", ("X",), ring, {(1,): b})
        rs = r.join(s).payload((1,))
        sr = s.join(r).payload((1,))
        assert np.allclose(rs, a @ b)
        assert np.allclose(sr, b @ a)
        assert not np.allclose(rs, sr)

    def test_join_orientation_invariance(self, rng):
        """Build-side choice (size-based) must not change the result."""
        for _ in range(20):
            r = Relation.from_tuples(
                "R", ("A", "B"), INT_RING,
                [(rng.randint(0, 3), rng.randint(0, 3)) for _ in range(rng.randint(0, 8))],
            )
            s = Relation.from_tuples(
                "S", ("B", "C"), INT_RING,
                [(rng.randint(0, 3), rng.randint(0, 3)) for _ in range(rng.randint(0, 8))],
            )
            j1 = r.join(s)
            j2 = s.join(r).reorder(("A", "B", "C"))
            assert j1.same_as(j2)


class TestMarginalize:
    def test_basic_sum(self):
        r = rel("R", ("A", "B"), {(1, 10): 2, (1, 20): 3, (2, 10): 4})
        m = r.marginalize(["B"])
        assert dict(m.items()) == {(1,): 5, (2,): 4}

    def test_with_lift(self):
        r = rel("R", ("A", "B"), {(1, 10): 2, (1, 20): 3})
        m = r.marginalize(["B"], {"B": lambda b: b})
        assert m.payload((1,)) == 2 * 10 + 3 * 20

    def test_multiple_variables(self):
        r = rel("R", ("A", "B", "C"), {(1, 2, 3): 1, (1, 4, 5): 2})
        m = r.marginalize(["B", "C"], {"B": lambda b: b, "C": lambda c: c})
        assert m.payload((1,)) == 2 * 3 + 4 * 5 * 2

    def test_empty_list_copies(self):
        r = rel("R", ("A",), {(1,): 1})
        assert r.marginalize([]).same_as(r)

    def test_unknown_variable(self):
        with pytest.raises(SchemaError):
            rel("R", ("A",), {}).marginalize(["Z"])

    def test_duplicate_variable(self):
        with pytest.raises(SchemaError):
            rel("R", ("A", "B"), {}).marginalize(["B", "B"])

    def test_group_by(self):
        r = rel("R", ("A", "B", "C"), {(1, 2, 3): 1, (2, 2, 5): 4})
        g = r.group_by(["B"])
        assert g.schema == ("B",)
        assert g.payload((2,)) == 5

    def test_marginalize_all(self):
        r = rel("R", ("A", "B"), {(1, 2): 3, (4, 5): 7})
        m = r.marginalize(["A", "B"])
        assert m.schema == ()
        assert m.payload(()) == 10

    def test_total(self):
        r = rel("R", ("A",), {(1,): 3, (2,): -1})
        assert r.total() == 2


class TestReshaping:
    def test_reorder(self):
        r = rel("R", ("A", "B"), {(1, 2): 5})
        out = r.reorder(("B", "A"))
        assert out.schema == ("B", "A")
        assert out.payload((2, 1)) == 5

    def test_reorder_not_permutation(self):
        with pytest.raises(SchemaError):
            rel("R", ("A", "B"), {}).reorder(("A",))

    def test_rename(self):
        r = rel("R", ("A", "B"), {(1, 2): 5})
        out = r.rename({"A": "X"})
        assert out.schema == ("X", "B")
        assert out.payload((1, 2)) == 5

    def test_filter(self):
        r = rel("R", ("A",), {(1,): 1, (2,): 2})
        out = r.filter(lambda key: key[0] > 1)
        assert dict(out.items()) == {(2,): 2}

    def test_scale(self):
        r = rel("R", ("A",), {(1,): 3})
        assert r.scale(2).payload((1,)) == 6

    def test_project(self):
        r = rel("R", ("A", "B"), {(1, 2): 1, (1, 3): 1})
        p = r.project(["A"])
        assert p.payload((1,)) == 2

    def test_indicator_static(self):
        r = rel("R", ("A", "B"), {(1, 2): 5, (1, 3): 2, (4, 9): -1})
        ind = r.indicator(("A",))
        assert dict(ind.items()) == {(1,): 1, (4,): 1}


class TestSecondaryIndexes:
    def test_lookup_via_index(self):
        r = rel("R", ("A", "B"), {(1, 10): 2, (1, 20): 3, (2, 10): 4})
        r.register_index(("A",))
        entries = dict(r.lookup(("A",), (1,)))
        assert entries == {(1, 10): 2, (1, 20): 3}

    def test_lookup_full_schema_needs_no_index(self):
        r = rel("R", ("A", "B"), {(1, 10): 2})
        assert list(r.lookup(("A", "B"), (1, 10))) == [((1, 10), 2)]
        assert list(r.lookup(("A", "B"), (9, 9))) == []

    def test_lookup_empty_attrs_scans(self):
        r = rel("R", ("A",), {(1,): 2, (2,): 3})
        assert dict(r.lookup((), ())) == {(1,): 2, (2,): 3}

    def test_lookup_without_index_raises(self):
        r = rel("R", ("A", "B"), {(1, 10): 2})
        with pytest.raises(KeyError):
            r.lookup(("A",), (1,))

    def test_index_maintained_under_mutation(self, rng):
        r = Relation.empty("R", ("A", "B"), INT_RING)
        r.register_index(("B",))
        shadow = {}
        for _ in range(300):
            key = (rng.randint(0, 3), rng.randint(0, 3))
            amount = rng.choice([1, 2, -1, -2])
            r.add(key, amount)
            shadow[key] = shadow.get(key, 0) + amount
            if shadow[key] == 0:
                del shadow[key]
        for b in range(4):
            expected = {k: v for k, v in shadow.items() if k[1] == b}
            assert dict(r.lookup(("B",), (b,))) == expected

    def test_index_registered_after_data(self):
        r = rel("R", ("A", "B"), {(1, 10): 2, (2, 10): 3})
        r.register_index(("B",))
        assert dict(r.lookup(("B",), (10,))) == {(1, 10): 2, (2, 10): 3}

    def test_clear_empties_indexes(self):
        r = rel("R", ("A", "B"), {(1, 10): 2})
        r.register_index(("B",))
        r.clear()
        assert list(r.lookup(("B",), (10,))) == []


class TestEquality:
    def test_same_as(self):
        a = rel("A", ("X",), {(1,): 2})
        b = rel("B", ("X",), {(1,): 2})
        assert a.same_as(b)

    def test_same_as_detects_differences(self):
        a = rel("A", ("X",), {(1,): 2})
        assert not a.same_as(rel("B", ("X",), {(1,): 3}))
        assert not a.same_as(rel("B", ("X",), {(2,): 2}))
        assert not a.same_as(rel("B", ("Y",), {(1,): 2}))

    def test_pretty_renders(self):
        r = rel("R", ("A",), {(1,): 2})
        assert "R[A]" in r.pretty()


# ----------------------------------------------------------------------
# Property-based: operator algebra
# ----------------------------------------------------------------------

keys2 = st.tuples(st.integers(0, 2), st.integers(0, 2))
payloads = st.integers(min_value=-4, max_value=4)
rel_data = st.dictionaries(keys2, payloads, max_size=6)


@given(rel_data, rel_data)
@settings(max_examples=60)
def test_union_commutative(d1, d2):
    a = Relation("A", ("X", "Y"), INT_RING, d1)
    b = Relation("B", ("X", "Y"), INT_RING, d2)
    assert a.union(b).same_as(b.union(a))


@given(rel_data, rel_data, rel_data)
@settings(max_examples=40)
def test_union_associative(d1, d2, d3):
    a = Relation("A", ("X", "Y"), INT_RING, d1)
    b = Relation("B", ("X", "Y"), INT_RING, d2)
    c = Relation("C", ("X", "Y"), INT_RING, d3)
    assert a.union(b).union(c).same_as(a.union(b.union(c)))


@given(rel_data, rel_data, rel_data)
@settings(max_examples=40)
def test_join_distributes_over_union(d1, d2, d3):
    """δ(V1 ⊗ V2) correctness rests on this distributivity (Figure 4)."""
    a = Relation("A", ("X", "Y"), INT_RING, d1)
    b = Relation("B", ("Y", "Z"), INT_RING, d2)
    c = Relation("C", ("Y", "Z"), INT_RING, d3)
    left = a.join(b.union(c))
    right = a.join(b).union(a.join(c))
    assert left.same_as(right)


@given(rel_data, rel_data)
@settings(max_examples=40)
def test_marginalization_commutes_with_union(d1, d2):
    """δ(⊕_X V) = ⊕_X δV (the third delta rule)."""
    a = Relation("A", ("X", "Y"), INT_RING, d1)
    b = Relation("B", ("X", "Y"), INT_RING, d2)
    lift = {"X": lambda x: x + 1}
    left = a.union(b).marginalize(["X"], lift)
    right = a.marginalize(["X"], lift).union(b.marginalize(["X"], lift))
    assert left.same_as(right)


@given(rel_data, rel_data)
@settings(max_examples=40)
def test_marginalize_after_join_equals_pushed(d1, d2):
    """Aggregates push past joins when the variable is local to one side."""
    a = Relation("A", ("X", "Y"), INT_RING, d1)
    b = Relation("B", ("Y", "Z"), INT_RING, d2)
    lift = {"X": lambda x: 2 * x + 1}
    pushed = a.marginalize(["X"], lift).join(b)
    unpushed = a.join(b).marginalize(["X"], lift)
    assert pushed.same_as(unpushed.reorder(pushed.schema))


class TestKeyCoercion:
    def test_list_key_lands_on_tuple_entry(self):
        """Regression: ``add`` must coerce keys like ``payload``/``in`` do —
        a list key used to create an entry no lookup could ever reach."""
        r = Relation.empty("R", ("A", "B"), INT_RING)
        r.add([1, 2], 3)
        assert [1, 2] in r
        assert (1, 2) in r
        assert r.payload([1, 2]) == 3
        assert r.payload((1, 2)) == 3
        r.add((1, 2), -3)
        assert (1, 2) not in r
        assert len(r) == 0

    def test_list_key_maintains_indexes(self):
        r = Relation.empty("R", ("A", "B"), INT_RING)
        r.register_index(("A",))
        r.add([1, 2], 3)
        assert list(r.lookup(("A",), (1,))) == [((1, 2), 3)]
        assert r.lookup_sum(("A",), (1,)) == 3


class TestAbsorbBulk:
    def _indexed(self, data):
        r = Relation("R", ("A", "B"), INT_RING, data)
        r.register_index(("A",))
        r.register_index(("B",))
        return r

    def _check_indexes_consistent(self, r):
        """Every registered index must equal a freshly built one."""
        for attrs, (projector, buckets, sums) in r._indexes.items():
            fresh = Relation("F", r.schema, r.ring, dict(r._data))
            fresh.register_index(attrs)
            _, fresh_buckets, fresh_sums = fresh._indexes[attrs]
            assert buckets == fresh_buckets, attrs
            for subkey, total in sums.items():
                assert total == fresh_sums.get(subkey, 0), (attrs, subkey)

    def test_matches_per_tuple_absorb(self, rng):
        for _ in range(25):
            base_data = {
                (rng.randint(0, 3), rng.randint(0, 3)): rng.choice([1, 2, -1])
                for _ in range(rng.randint(0, 6))
            }
            delta_data = {
                (rng.randint(0, 3), rng.randint(0, 3)): rng.choice([1, 2, -1])
                for _ in range(rng.randint(1, 6))
            }
            bulk = self._indexed(base_data)
            reference = Relation("S", ("A", "B"), INT_RING, base_data)
            delta = Relation("D", ("A", "B"), INT_RING, delta_data)
            bulk.absorb_bulk(delta)
            for key, payload in delta.items():
                reference.add(key, payload)
            assert bulk.same_as(reference)
            self._check_indexes_consistent(bulk)

    def test_cancellation_clears_buckets(self):
        r = self._indexed({(1, 1): 2, (1, 2): 5})
        r.absorb_bulk(Relation("D", ("A", "B"), INT_RING, {(1, 1): -2}))
        assert (1, 1) not in r
        assert list(r.lookup(("A",), (1,))) == [((1, 2), 5)]
        assert r.lookup_sum(("A",), (1,)) == 5
        r.absorb_bulk(Relation("D", ("A", "B"), INT_RING, {(1, 2): -5}))
        assert r.is_empty
        assert list(r.lookup(("A",), (1,))) == []

    def test_copy_drops_registered_indexes(self):
        """Documented behaviour: copies start index-free."""
        r = self._indexed({(1, 1): 2})
        dup = r.copy()
        assert dup._indexes == {}
        with pytest.raises(KeyError):
            dup.lookup(("A",), (1,))


class TestJoinIndexReuse:
    def test_registered_index_is_reused_and_correct(self):
        left = Relation("L", ("A", "B"), INT_RING, {(1, 10): 2, (2, 20): 3})
        right = Relation("R", ("B", "C"), INT_RING, {(10, 7): 5, (30, 8): 1})
        plain = left.join(right)
        left.register_index(("B",))
        with_index = left.join(right)
        assert with_index.same_as(plain)
        # And the indexed side keeps working after more updates.
        left.add((3, 30), 4)
        updated = left.join(right)
        assert updated.payload((3, 30, 8)) == 4
