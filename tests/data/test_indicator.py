"""Tests for incrementally maintained indicator projections (Example B.2)."""

import random

import pytest

from repro.data import IndicatorView, Relation
from repro.rings import INT_RING


class TestExampleB2:
    """The worked example: R over {A,B}, maintain Q[A] = ∃_A R."""

    def setup_method(self):
        self.base = Relation(
            "R", ("A", "B"), INT_RING,
            {("a1", "b1"): 1, ("a1", "b2"): 2, ("a2", "b3"): 3},
        )
        self.view = IndicatorView.over(self.base, ("A",))

    def test_initial_contents(self):
        assert dict(self.view.relation.items()) == {("a1",): 1, ("a2",): 1}

    def test_partial_delete_no_output_change(self):
        delta = Relation("R", ("A", "B"), INT_RING, {("a1", "b2"): -2})
        change = self.view.compute_delta(delta, self.base)
        assert change.is_empty
        self.view.commit(change)
        self.base.absorb(delta)
        assert ("a1",) in self.view.relation

    def test_last_tuple_delete_emits_minus_one(self):
        first = Relation("R", ("A", "B"), INT_RING, {("a1", "b2"): -2})
        self.view.commit(self.view.compute_delta(first, self.base))
        self.base.absorb(first)
        second = Relation("R", ("A", "B"), INT_RING, {("a1", "b1"): -1})
        change = self.view.compute_delta(second, self.base)
        assert dict(change.items()) == {("a1",): -1}
        self.view.commit(change)
        self.base.absorb(second)
        assert ("a1",) not in self.view.relation

    def test_new_value_emits_plus_one(self):
        delta = Relation("R", ("A", "B"), INT_RING, {("a9", "b9"): 1})
        change = self.view.compute_delta(delta, self.base)
        assert dict(change.items()) == {("a9",): 1}

    def test_existing_value_no_change(self):
        delta = Relation("R", ("A", "B"), INT_RING, {("a1", "b9"): 1})
        change = self.view.compute_delta(delta, self.base)
        assert change.is_empty

    def test_delta_bounded_by_update_size(self):
        delta = Relation(
            "R", ("A", "B"), INT_RING,
            {("x1", "y"): 1, ("x2", "y"): 1, ("x3", "y"): 1},
        )
        change = self.view.compute_delta(delta, self.base)
        assert len(change) <= len(delta)


class TestRandomChurn:
    def test_matches_static_indicator(self):
        """Under random insert/delete churn the maintained indicator always
        equals the static projection of the current base."""
        rng = random.Random(31)
        base = Relation("R", ("A", "B"), INT_RING)
        view = IndicatorView.over(base, ("A",))
        for _ in range(400):
            key = (rng.randint(0, 4), rng.randint(0, 4))
            if rng.random() < 0.4 and key in base:
                amount = -base.payload(key)
            else:
                amount = rng.choice([1, 2])
            delta = Relation("R", ("A", "B"), INT_RING, {key: amount})
            if delta.is_empty:
                continue
            view.commit(view.compute_delta(delta, base))
            base.absorb(delta)
            assert view.relation.same_as(base.indicator(("A",), name=view.name))

    def test_negative_count_rejected(self):
        base = Relation("R", ("A",), INT_RING)
        view = IndicatorView.over(base, ("A",))
        with pytest.raises(ValueError):
            view._bump((1,), -1)


class TestResetFrom:
    def test_reset(self):
        base = Relation("R", ("A", "B"), INT_RING, {(1, 2): 1})
        view = IndicatorView("R", ("A", "B"), ("A",), INT_RING)
        assert len(view) == 0
        view.reset_from(base)
        assert dict(view.relation.items()) == {(1,): 1}
