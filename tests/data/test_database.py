"""Tests for Database collections."""

import pytest

from repro.data import Database, Relation, SchemaError
from repro.rings import INT_RING


def make():
    return Database([
        Relation.from_tuples("R", ("A", "B"), INT_RING, [(1, 2), (3, 4)]),
        Relation.from_tuples("S", ("B", "C"), INT_RING, [(2, 5)]),
    ])


class TestDatabase:
    def test_lookup(self):
        db = make()
        assert db.relation("R").schema == ("A", "B")
        assert db["S"].payload((2, 5)) == 1

    def test_unknown_relation(self):
        with pytest.raises(KeyError):
            make().relation("Z")

    def test_duplicate_name_rejected(self):
        db = make()
        with pytest.raises(SchemaError):
            db.add(Relation("R", ("X",), INT_RING))

    def test_contains_iter_len(self):
        db = make()
        assert "R" in db and "Z" not in db
        assert len(db) == 2
        assert {r.name for r in db} == {"R", "S"}

    def test_size(self):
        assert make().size == 3

    def test_names_and_schemas(self):
        db = make()
        assert db.names == ("R", "S")
        assert db.schemas()["S"] == ("B", "C")

    def test_apply_update(self):
        db = make()
        db.apply_update(Relation("R", ("A", "B"), INT_RING, {(1, 2): -1}))
        assert (1, 2) not in db["R"]

    def test_copy_is_independent(self):
        db = make()
        clone = db.copy()
        clone["R"].add((9, 9), 1)
        assert (9, 9) not in db["R"]
