"""Shared helpers for the F-IVM test suite."""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.core import Query, VariableOrder, build_view_tree
from repro.data import Database, Relation
from repro.rings import INT_RING


def recompute(query: Query, db: Database, order: VariableOrder = None) -> Relation:
    """Reference result: static factorized evaluation from scratch."""
    tree = build_view_tree(query, order)
    return tree.evaluate(db)[tree.root.name]


def brute_force_result(query: Query, db: Database) -> Relation:
    """Second reference: join everything left-to-right, aggregate at the end."""
    current = None
    for rel in query.relations:
        contents = db.relation(rel)
        current = contents if current is None else current.join(contents)
    return current.group_by(query.free, query.lifting.table(), name="result")


def make_database(schemas: Dict[str, Tuple[str, ...]], ring, rows) -> Database:
    """Database from {relation: [row, ...]} with payload 1 per occurrence."""
    return Database(
        Relation.from_tuples(rel, schemas[rel], ring, rows.get(rel, []))
        for rel in schemas
    )


def random_rows(
    rng: random.Random,
    schema: Sequence[str],
    count: int,
    domain: int = 4,
) -> List[tuple]:
    return [
        tuple(rng.randint(0, domain - 1) for _ in schema) for _ in range(count)
    ]


def random_delta(
    rng: random.Random,
    name: str,
    schema: Sequence[str],
    ring,
    max_rows: int = 4,
    domain: int = 4,
    allow_deletes: bool = True,
) -> Relation:
    """A small random delta with mixed inserts/deletes."""
    delta = Relation(name, schema, ring)
    for _ in range(rng.randint(1, max_rows)):
        key = tuple(rng.randint(0, domain - 1) for _ in schema)
        choices = [1, 1, 2, -1] if allow_deletes else [1, 1, 2]
        delta.add(key, ring.from_int(rng.choice(choices)))
    return delta


#: The three-relation query of Examples 1.1/2.2: R(A,B) ⋈ S(A,C,E) ⋈ T(C,D).
PAPER_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    "R": ("A", "B"),
    "S": ("A", "C", "E"),
    "T": ("C", "D"),
}


def paper_variable_order() -> VariableOrder:
    """Figure 2a's variable order A - {B, C - {D, E}}."""
    return VariableOrder.from_spec(("A", ["B", ("C", ["D", "E"])]))


def figure2_database(ring=INT_RING) -> Database:
    """The database of Figure 2c with payload 1 (the COUNT instance, 2d)."""
    rows = {
        "R": [("a1", "b1"), ("a1", "b2"), ("a2", "b3"), ("a3", "b4")],
        "S": [
            ("a1", "c1", "e1"),
            ("a1", "c1", "e2"),
            ("a1", "c2", "e3"),
            ("a2", "c2", "e4"),
        ],
        "T": [("c1", "d1"), ("c2", "d2"), ("c2", "d3"), ("c3", "d4")],
    }
    return make_database(PAPER_SCHEMAS, ring, rows)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xF1B)
