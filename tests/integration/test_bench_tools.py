"""Tests for the benchmark substrate: memory accounting and the harness."""

import numpy as np
import pytest

from repro.bench import (
    format_table,
    payload_scalars,
    relation_scalars,
    run_stream,
    strategy_scalars,
)
from repro.baselines import FirstOrderIVM, RecursiveIVM
from repro.core import FIVMEngine, Query
from repro.data import Relation
from repro.datasets import UpdateBatch, UpdateStream
from repro.rings import INT_RING, CofactorRing

from tests.conftest import PAPER_SCHEMAS, paper_variable_order


class TestPayloadScalars:
    def test_scalars(self):
        assert payload_scalars(3) == 1
        assert payload_scalars(2.5) == 1
        assert payload_scalars(True) == 1
        assert payload_scalars(None) == 0

    def test_numpy(self):
        assert payload_scalars(np.zeros((3, 4))) == 12

    def test_cofactor_triple_counts_support_blocks(self):
        ring = CofactorRing(10)
        assert payload_scalars(ring.one) == 1
        assert payload_scalars(ring.lift(3)(2.0)) == 3  # c + 1-vec + 1x1

    def test_nested_relation(self):
        payload = Relation("p", ("X",), INT_RING, {(1,): 1, (2,): 3})
        assert payload_scalars(payload) == 4  # 2 keys × (1 attr + 1 payload)

    def test_degree_dict(self):
        poly = {(): 1.0, (0,): 2.0, (0, 1): 3.0}
        assert payload_scalars(poly) == 1 + 2 + 3

    def test_tuple_payload(self):
        assert payload_scalars((1, 2.0)) == 2

    def test_relation_scalars(self):
        rel = Relation("R", ("A", "B"), INT_RING, {(1, 2): 1, (3, 4): 2})
        assert relation_scalars(rel) == 2 * (2 + 1)


class TestStrategyScalars:
    def test_fivm_engine(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order())
        engine.apply_update(Relation("R", ("A", "B"), INT_RING, {(1, 2): 1}))
        assert strategy_scalars(engine) > 0

    def test_first_order(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        strategy = FirstOrderIVM(q, paper_variable_order())
        strategy.apply_update(Relation("R", ("A", "B"), INT_RING, {(1, 2): 1}))
        assert strategy_scalars(strategy) >= 3

    def test_recursive(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        strategy = RecursiveIVM(q)
        strategy.apply_update(Relation("R", ("A", "B"), INT_RING, {(1, 2): 1}))
        assert strategy_scalars(strategy) > 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(TypeError):
            strategy_scalars(object())


class TestRunStream:
    def _stream(self, n_batches=10):
        batches = [
            UpdateBatch("R", [(i, i % 3)], +1) for i in range(n_batches)
        ]
        return UpdateStream({"R": ("A", "B"), "S": ("A", "C", "E"), "T": ("C", "D")}, batches)

    def _engine(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        return FIVMEngine(q, paper_variable_order())

    def test_checkpoints_recorded(self):
        result = run_stream("x", self._engine(), self._stream(), INT_RING, checkpoints=5)
        assert result.total_tuples == 10
        assert result.fractions[-1] == 1.0
        assert len(result.fractions) == len(result.throughput) == len(result.memory)
        assert not result.timed_out

    def test_time_budget_marks_timeout(self):
        engine = self._engine()

        def slow_apply(delta):
            import time

            time.sleep(0.01)
            engine.apply_update(delta)

        result = run_stream(
            "slow", engine, self._stream(50), INT_RING,
            time_budget=0.03, apply=slow_apply,
        )
        assert result.timed_out
        assert result.total_tuples < 50

    def test_empty_stream(self):
        result = run_stream("e", self._engine(), UpdateStream(PAPER_SCHEMAS, []), INT_RING)
        assert result.total_tuples == 0
        assert result.average_throughput == float("inf")

    def test_average_and_peak(self):
        result = run_stream("x", self._engine(), self._stream(), INT_RING)
        assert result.average_throughput > 0
        assert result.peak_memory == max(result.memory)


class TestFormatTable:
    def test_alignment_and_values(self):
        table = format_table("T", ["a", "bb"], [[1, 2.5], ["xy", 0.0001]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "1.000e-04" in table

    def test_empty_rows(self):
        table = format_table("T", ["col"], [])
        assert "col" in table
