"""End-to-end stream maintenance over the paper's workloads."""


from repro.apps import CofactorModel, ConjunctiveQuery
from repro.baselines import RecursiveIVM
from repro.core import (
    FIVMEngine,
    Query,
    add_indicator_projections,
    build_view_tree,
)
from repro.datasets import housing, retailer, round_robin_stream, twitter
from repro.rings import INT_RING

from tests.conftest import recompute


class TestRetailerStream:
    def test_count_maintenance_matches_recompute(self):
        workload = retailer.generate(scale=0.05)
        q = Query("retailer", workload.schemas, ring=INT_RING)
        engine = FIVMEngine(q, workload.variable_order)
        stream = round_robin_stream(workload.schemas, workload.tables, batch_size=50)
        for delta in stream.deltas(INT_RING):
            engine.apply_update(delta)
        expected = recompute(q, workload.database(INT_RING), workload.variable_order)
        assert engine.result().same_as(expected)

    def test_cofactor_stream_small(self):
        workload = retailer.generate(scale=0.02)
        model = CofactorModel(
            "retailer",
            workload.schemas,
            workload.numeric_variables,
            order=workload.variable_order,
        )
        ring = model.query.ring
        stream = round_robin_stream(workload.schemas, workload.tables, batch_size=50)
        for delta in stream.deltas(ring):
            model.apply_update(delta)
        static = CofactorModel(
            "retailer_static",
            workload.schemas,
            workload.numeric_variables,
            order=workload.variable_order,
            db=workload.database(ring),
        )
        assert ring.eq(model.triple(), static.triple())

    def test_one_scenario_preloads_dimensions(self):
        """Updates to Inventory only, with dimension tables static."""
        workload = retailer.generate(scale=0.05)
        q = Query("retailer", workload.schemas, ring=INT_RING)
        dims = [r for r in workload.schemas if r != "Inventory"]
        db = workload.empty_database(INT_RING)
        for rel in dims:
            for row in workload.tables[rel]:
                db.relation(rel).add(row, 1)
        engine = FIVMEngine(
            q, workload.variable_order, updatable={"Inventory"}, db=db
        )
        stream = round_robin_stream(
            workload.schemas, workload.tables, batch_size=100,
            relations=["Inventory"],
        )
        for delta in stream.deltas(INT_RING):
            engine.apply_update(delta)
        expected = recompute(q, workload.database(INT_RING), workload.variable_order)
        assert engine.result().same_as(expected)
        # The ONE scenario stores fewer views than the all-updatable one.
        full = FIVMEngine(q, workload.variable_order)
        assert len(engine.views) < len(full.views)


class TestHousingStream:
    def test_count_with_deletes(self):
        workload = housing.generate(scale=1, postcodes=20)
        q = Query("housing", workload.schemas, ring=INT_RING)
        engine = FIVMEngine(q, workload.variable_order)
        stream = round_robin_stream(
            workload.schemas, workload.tables, batch_size=30,
            delete_fraction=0.3, seed=5,
        )
        db = workload.empty_database(INT_RING)
        for delta in stream.deltas(INT_RING):
            engine.apply_update(delta.copy())
            db.apply_update(delta)
        expected = recompute(q, db, workload.variable_order)
        assert engine.result().same_as(expected)

    def test_factorized_natural_join(self):
        workload = housing.generate(scale=2, postcodes=6)
        all_vars = tuple(
            dict.fromkeys(a for s in workload.schemas.values() for a in s)
        )
        fact = ConjunctiveQuery(
            "housing", workload.schemas, all_vars,
            mode="factorized", order=workload.variable_order,
        )
        listing = ConjunctiveQuery(
            "housing", workload.schemas, all_vars,
            mode="listing_keys", order=workload.variable_order,
        )
        stream = round_robin_stream(workload.schemas, workload.tables, batch_size=25)
        for delta in stream.deltas(INT_RING):
            fact.apply_update(delta.copy())
            listing.apply_update(delta)
        assert fact.memory() < listing.memory()
        expected = listing.to_listing()
        got = fact.to_listing()
        assert expected.same_as(got.rename({}, name=expected.name))


class TestTwitterTriangle:
    def test_triangle_count_with_indicators(self):
        workload = twitter.generate(n_nodes=40, n_edges=400, seed=3)
        q = Query("tri", workload.schemas, ring=INT_RING)
        tree = add_indicator_projections(
            build_view_tree(q, workload.variable_order)
        )
        engine = FIVMEngine(q, tree=tree)
        stream = round_robin_stream(workload.schemas, workload.tables, batch_size=20)
        for delta in stream.deltas(INT_RING):
            engine.apply_update(delta)
        expected = recompute(
            q, workload.database(INT_RING), workload.variable_order
        )
        assert engine.result().same_as(expected)

    def test_triangle_count_positive(self):
        """The generated graph actually contains triangles."""
        workload = twitter.generate(n_nodes=40, n_edges=600, seed=3)
        q = Query("tri", workload.schemas, ring=INT_RING)
        result = recompute(q, workload.database(INT_RING), workload.variable_order)
        assert result.payload(()) > 0


class TestViewCountClaims:
    """The paper's headline view counts (Section 7)."""

    def test_retailer_fivm_stores_9_views(self):
        workload = retailer.generate(scale=0.02)
        q = Query("retailer", workload.schemas, ring=INT_RING)
        engine = FIVMEngine(q, workload.variable_order)
        assert engine.tree.view_count() == 9

    def test_housing_fivm_stores_7_views(self):
        workload = housing.generate(scale=1, postcodes=5)
        q = Query("housing", workload.schemas, ring=INT_RING)
        engine = FIVMEngine(q, workload.variable_order)
        assert engine.tree.view_count() == 7

    def test_housing_recursive_matches_fivm_strategy(self):
        """For the star query, DBT-RING and F-IVM coincide: per-relation
        views aggregated to the join key plus the result."""
        workload = housing.generate(scale=1, postcodes=5)
        q = Query("housing", workload.schemas, ring=INT_RING)
        recursive = RecursiveIVM(q)
        assert recursive.view_count() == 7

    def test_retailer_recursive_uses_more_views(self):
        workload = retailer.generate(scale=0.02)
        q = Query("retailer", workload.schemas, ring=INT_RING)
        recursive = RecursiveIVM(q)
        fivm = FIVMEngine(q, workload.variable_order)
        assert recursive.view_count() > fivm.tree.view_count()
