"""Tests for the workload generators and update streams."""

import pytest

from repro.datasets import (
    UpdateBatch,
    UpdateStream,
    housing,
    retailer,
    round_robin_stream,
    single_relation_stream,
    twitter,
)
from repro.rings import INT_RING


class TestRetailerGenerator:
    def test_schema_has_43_attributes(self):
        distinct = {a for s in retailer.SCHEMAS.values() for a in s}
        assert len(distinct) == 43

    def test_deterministic(self):
        a = retailer.generate(scale=0.1, seed=3)
        b = retailer.generate(scale=0.1, seed=3)
        assert a.tables == b.tables

    def test_variable_order_valid(self):
        from repro.core import Query

        workload = retailer.generate(scale=0.05)
        q = Query("r", workload.schemas, ring=INT_RING)
        workload.variable_order.validate(q)

    def test_foreign_keys_resolve(self):
        """Every inventory row joins all four dimension hierarchies."""
        workload = retailer.generate(scale=0.05)
        items = {row[0] for row in workload.tables["Item"]}
        weather = {(row[0], row[1]) for row in workload.tables["Weather"]}
        locations = {row[0] for row in workload.tables["Location"]}
        for locn, dateid, ksn, _units in workload.tables["Inventory"]:
            assert ksn in items
            assert (locn, dateid) in weather
            assert locn in locations

    def test_largest_relation(self):
        workload = retailer.generate(scale=0.05)
        assert workload.largest_relation() == "Inventory"

    def test_scale_grows_fact_table(self):
        small = retailer.generate(scale=0.05)
        large = retailer.generate(scale=0.2)
        assert len(large.tables["Inventory"]) > len(small.tables["Inventory"])


class TestHousingGenerator:
    def test_schema_has_27_attributes(self):
        distinct = {a for s in housing.SCHEMAS.values() for a in s}
        assert len(distinct) == 27

    def test_scaling_relations_grow(self):
        s1 = housing.generate(scale=1, postcodes=10)
        s3 = housing.generate(scale=3, postcodes=10)
        assert len(s3.tables["House"]) == 3 * len(s1.tables["House"])
        assert len(s3.tables["Transport"]) == len(s1.tables["Transport"])

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            housing.generate(scale=0)

    def test_star_join_multiplicity(self):
        """Join size per postcode is scale³ (the cubic growth of Fig. 8)."""
        workload = housing.generate(scale=2, postcodes=5)
        postcode = workload.tables["House"][0][0]
        per = {
            rel: sum(1 for row in rows if row[0] == postcode)
            for rel, rows in workload.tables.items()
        }
        product = 1
        for count in per.values():
            product *= count
        assert product == 8  # 2 × 2 × 2 × 1 × 1 × 1


class TestTwitterGenerator:
    def test_three_relations_roughly_equal(self):
        workload = twitter.generate(n_nodes=50, n_edges=600, seed=1)
        sizes = [len(workload.tables[r]) for r in ("R", "S", "T")]
        assert max(sizes) - min(sizes) <= 1

    def test_no_self_loops(self):
        workload = twitter.generate(n_nodes=30, n_edges=300)
        for rel in ("R", "S", "T"):
            for a, b in workload.tables[rel]:
                assert a != b

    def test_skew(self):
        """Low node ids are heavy hitters (power-law-ish sampling)."""
        workload = twitter.generate(n_nodes=100, n_edges=2000, alpha=2.0)
        sources = [a for a, _ in workload.tables["R"]]
        low = sum(1 for s in sources if s < 20)
        # Under uniform sampling the first fifth of ids would hold ~20% of
        # endpoints; the skewed sampler concentrates noticeably more there
        # (deduplication of repeated edges dampens the raw u^alpha skew).
        assert low > len(sources) * 0.3


class TestWorkloadHelpers:
    def test_database_and_empty_database(self):
        workload = housing.generate(scale=1, postcodes=5)
        db = workload.database(INT_RING)
        assert db.size == workload.total_rows
        empty = workload.empty_database(INT_RING)
        assert empty.size == 0
        assert set(empty.names) == set(workload.schemas)

    def test_database_subset(self):
        workload = housing.generate(scale=1, postcodes=5)
        db = workload.database(INT_RING, relations=["House"])
        assert db.names == ("House",)


class TestStreams:
    def _tables(self):
        return {
            "R": [(i,) for i in range(10)],
            "S": [(i,) for i in range(4)],
        }

    def test_round_robin_interleaves(self):
        stream = round_robin_stream(
            {"R": ("A",), "S": ("A",)}, self._tables(), batch_size=3
        )
        relations = [batch.relation for batch in stream.batches]
        assert relations[:4] == ["R", "S", "R", "S"]
        assert stream.total_tuples == 14

    def test_batch_size_respected(self):
        stream = round_robin_stream(
            {"R": ("A",), "S": ("A",)}, self._tables(), batch_size=3
        )
        assert all(len(batch) <= 3 for batch in stream.batches)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            round_robin_stream({"R": ("A",)}, {"R": []}, batch_size=0)

    def test_deltas_materialize_payloads(self):
        stream = round_robin_stream(
            {"R": ("A",), "S": ("A",)}, self._tables(), batch_size=5
        )
        deltas = list(stream.deltas(INT_RING))
        assert deltas[0].name == "R"
        assert deltas[0].payload((0,)) == 1

    def test_delete_fraction_appends_negative_batches(self):
        stream = round_robin_stream(
            {"R": ("A",)}, {"R": [(i,) for i in range(10)]},
            batch_size=4, delete_fraction=0.5,
        )
        deletes = [b for b in stream.batches if b.multiplicity == -1]
        assert sum(len(b) for b in deletes) == 5

    def test_restricted(self):
        stream = round_robin_stream(
            {"R": ("A",), "S": ("A",)}, self._tables(), batch_size=3
        )
        only_r = stream.restricted(["R"])
        assert all(b.relation == "R" for b in only_r.batches)
        assert only_r.total_tuples == 10

    def test_single_relation_stream(self):
        stream = single_relation_stream(
            {"R": ("A",), "S": ("A",)}, self._tables(), "S", batch_size=3
        )
        assert {b.relation for b in stream.batches} == {"S"}

    def test_negative_multiplicity_payloads(self):
        stream = UpdateStream(
            {"R": ("A",)}, [UpdateBatch("R", [(1,)], multiplicity=-1)]
        )
        delta = next(stream.deltas(INT_RING))
        assert delta.payload((1,)) == -1
