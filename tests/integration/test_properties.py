"""Cross-cutting property tests: numeric stability, enumeration, batching."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import ConjunctiveQuery
from repro.core import FIVMEngine, Query
from repro.data import Database, Relation
from repro.rings import INT_RING, Lifting, RealRing

from tests.conftest import PAPER_SCHEMAS, paper_variable_order, recompute


class TestFloatChurnStability:
    def test_real_ring_views_stay_clean_under_heavy_churn(self, rng):
        """Insert/delete cycles with float payloads must not leave near-zero
        residue keys (the RealRing tolerance story)."""
        ring = RealRing()
        lifting = Lifting(ring, {"B": float, "D": float})
        q = Query("Q", PAPER_SCHEMAS, free=("A",), ring=ring, lifting=lifting)
        engine = FIVMEngine(q, paper_variable_order())
        live = []
        for step in range(300):
            if live and rng.random() < 0.45:
                rel, key, value = live.pop(rng.randrange(len(live)))
                delta = Relation(rel, PAPER_SCHEMAS[rel], ring, {key: -value})
            else:
                rel = rng.choice(list(PAPER_SCHEMAS))
                key = tuple(
                    float(rng.randint(0, 2)) for _ in PAPER_SCHEMAS[rel]
                )
                value = rng.choice([0.25, 1.0, 1.5])
                live.append((rel, key, value))
                delta = Relation(rel, PAPER_SCHEMAS[rel], ring, {key: value})
            engine.apply_update(delta)
        # Drain everything; all views must be empty (no float residue).
        for rel, key, value in live:
            engine.apply_update(
                Relation(rel, PAPER_SCHEMAS[rel], ring, {key: -value})
            )
        assert engine.total_keys() == 0


class TestBatchingEquivalence:
    def test_batch_size_never_changes_results(self, rng):
        """Applying one big delta or many small ones is indistinguishable."""
        q = Query("Q", PAPER_SCHEMAS, free=("A",), ring=INT_RING)
        order = paper_variable_order()
        big = FIVMEngine(q, order)
        small = FIVMEngine(q, order)
        for _ in range(15):
            rel = rng.choice(list(PAPER_SCHEMAS))
            rows = {}
            for _ in range(rng.randint(2, 6)):
                key = tuple(rng.randint(0, 2) for _ in PAPER_SCHEMAS[rel])
                rows[key] = rows.get(key, 0) + rng.choice([1, 1, -1, 2])
            rows = {k: v for k, v in rows.items() if v}
            big.apply_update(Relation(rel, PAPER_SCHEMAS[rel], INT_RING, rows))
            for key, value in rows.items():
                small.apply_update(
                    Relation(rel, PAPER_SCHEMAS[rel], INT_RING, {key: value})
                )
            assert big.result().same_as(small.result())


@st.composite
def small_instance(draw):
    def rel_rows(width):
        n = draw(st.integers(0, 5))
        return [
            tuple(draw(st.integers(0, 2)) for _ in range(width))
            for _ in range(n)
        ]

    return {
        "R": rel_rows(2),
        "S": rel_rows(3),
        "T": rel_rows(2),
    }


@given(small_instance())
@settings(max_examples=25, deadline=None)
def test_factorized_enumeration_matches_listing(rows):
    """Hypothesis: for arbitrary small instances, the factorized result
    enumerates exactly the listing result of Q(A,B,C,D)."""
    free = ("A", "B", "C", "D")
    order = paper_variable_order()
    fact = ConjunctiveQuery("Q", PAPER_SCHEMAS, free, mode="factorized", order=order)
    listing = ConjunctiveQuery("Q", PAPER_SCHEMAS, free, mode="listing_keys", order=order)
    for rel, rel_rows in rows.items():
        for engine in (fact, listing):
            ring = engine.ring
            delta = Relation(rel, PAPER_SCHEMAS[rel], ring)
            for row in rel_rows:
                delta.add(row, ring.one)
            if not delta.is_empty:
                engine.apply_update(delta)
    expected = dict(listing.result_relation().items())
    assert dict(fact.enumerate()) == expected


@given(st.integers(0, 100_000))
@settings(max_examples=20, deadline=None)
def test_engine_matches_recompute_seeded(seed):
    """Hypothesis-driven seeds for the end-to-end maintenance invariant."""
    rng = random.Random(seed)
    q = Query("Q", PAPER_SCHEMAS, free=("C",), ring=INT_RING)
    order = paper_variable_order()
    engine = FIVMEngine(q, order)
    db = Database(
        Relation(rel, schema, INT_RING)
        for rel, schema in PAPER_SCHEMAS.items()
    )
    for _ in range(8):
        rel = rng.choice(list(PAPER_SCHEMAS))
        delta = Relation(rel, PAPER_SCHEMAS[rel], INT_RING)
        for _ in range(rng.randint(1, 3)):
            key = tuple(rng.randint(0, 2) for _ in PAPER_SCHEMAS[rel])
            delta.add(key, rng.choice([1, -1, 2]))
        if delta.is_empty:
            continue
        engine.apply_update(delta.copy())
        db.apply_update(delta)
    assert engine.result().same_as(recompute(q, db, order))
