"""Tests for lifting-function tables."""

from repro.rings import INT_RING, Lifting, constant_one, numeric_identity


class TestLifting:
    def test_default_is_implicit_one(self):
        lifting = Lifting(INT_RING)
        assert lifting.get("X") is None
        assert "X" not in lifting

    def test_set_and_get(self):
        lifting = Lifting(INT_RING)
        lifting.set("X", numeric_identity(INT_RING))
        assert lifting.get("X")(7) == 7
        assert "X" in lifting

    def test_chaining(self):
        lifting = Lifting(INT_RING).set("X", numeric_identity(INT_RING)).set(
            "Y", constant_one(INT_RING)
        )
        assert lifting.get("Y")(123) == 1

    def test_table_and_restricted(self):
        identity = numeric_identity(INT_RING)
        lifting = Lifting(INT_RING, {"X": identity})
        assert lifting.table() == {"X": identity}
        assert lifting.restricted(["X", "Z"]) == {"X": identity}

    def test_constant_one(self):
        lift = constant_one(INT_RING)
        assert lift("anything") == 1
