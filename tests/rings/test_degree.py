"""Tests for the degree-indexed ring (SQL-OPT's payload encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings import CofactorRing, check_ring_axioms
from repro.rings.degree import DegreeRing


class TestDegreeRing:
    def test_identities(self):
        ring = DegreeRing(3)
        assert ring.zero == {}
        assert ring.one == {(): 1.0}

    def test_lift(self):
        ring = DegreeRing(3)
        poly = ring.lift(1)(4.0)
        assert poly == {(): 1.0, (1,): 4.0, (1, 1): 16.0}

    def test_truncation(self):
        """Monomials of degree ≥ 3 vanish (the quotient structure)."""
        ring = DegreeRing(3)
        a = ring.lift(0)(2.0)
        b = ring.lift(1)(3.0)
        c = ring.lift(2)(5.0)
        product = ring.mul(ring.mul(a, b), c)
        assert all(len(monomial) <= 2 for monomial in product)
        # Degree-2 cross terms survive: coefficient of x0·x1 is 2*3.
        assert product[(0, 1)] == 6.0

    def test_lift_validation(self):
        with pytest.raises(ValueError):
            DegreeRing(2).lift(5)
        with pytest.raises(ValueError):
            DegreeRing(0)

    def test_add_cancels(self):
        ring = DegreeRing(2)
        a = ring.lift(0)(1.5)
        assert ring.is_zero(ring.add(a, ring.neg(a)))

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=3, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_axioms(self, seeds):
        ring = DegreeRing(2)
        elements = []
        for seed in seeds:
            rng = np.random.default_rng(seed)
            element = ring.zero
            for _ in range(int(rng.integers(0, 3))):
                j = int(rng.integers(0, 2))
                element = ring.add(element, ring.lift(j)(float(rng.uniform(-2, 2))))
            elements.append(element)
        check_ring_axioms(ring, elements)


class TestIsomorphismWithCofactorRing:
    """DegreeRing and CofactorRing implement the same quotient ring.

    SQL-OPT and F-IVM maintain identical mathematical objects; only the
    payload data structure differs.  Random expressions must agree.
    """

    @staticmethod
    def _to_triple(ring_c: CofactorRing, poly: dict):
        m = ring_c.degree
        count = poly.get((), 0.0)
        sums = np.zeros(m)
        quads = np.zeros((m, m))
        for monomial, coeff in poly.items():
            if len(monomial) == 1:
                sums[monomial[0]] = coeff
            elif len(monomial) == 2:
                i, j = monomial
                quads[i, j] += coeff
                if i != j:
                    quads[j, i] += coeff
        from repro.rings import CofactorTriple

        return CofactorTriple(m, count, sums, quads)

    def test_random_expressions_agree(self):
        """Sums of products of distinct-variable lifts agree across rings.

        This is the query-shaped fragment: each variable is lifted exactly
        once along any join path, so no payload is ever multiplied by
        another payload mentioning the same variable.  (Self-products of a
        shared variable differ by symmetrization and never occur in view
        trees.)
        """
        m = 4
        ring_d = DegreeRing(m)
        ring_c = CofactorRing(m)
        rng = np.random.default_rng(9)
        for _ in range(30):
            poly_acc, triple_acc = ring_d.zero, ring_c.zero
            for _ in range(int(rng.integers(1, 4))):
                variables = rng.permutation(m)[: rng.integers(1, m + 1)]
                poly_term, triple_term = ring_d.one, ring_c.one
                for j in variables:
                    x = float(rng.uniform(-2, 2))
                    poly_term = ring_d.mul(poly_term, ring_d.lift(int(j))(x))
                    triple_term = ring_c.mul(triple_term, ring_c.lift(int(j))(x))
                poly_acc = ring_d.add(poly_acc, poly_term)
                triple_acc = ring_c.add(triple_acc, triple_term)
            assert ring_c.eq(self._to_triple(ring_c, poly_acc), triple_acc)
