"""Unit and property tests for the scalar (semi)rings."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings import (
    BOOL_SEMIRING,
    INT_RING,
    BooleanSemiring,
    IntegerRing,
    MaxProductSemiring,
    RealRing,
    VectorRing,
    check_ring_axioms,
)

ints = st.integers(min_value=-50, max_value=50)
floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


class TestIntegerRing:
    def test_identities(self):
        assert INT_RING.zero == 0
        assert INT_RING.one == 1

    def test_is_zero(self):
        assert INT_RING.is_zero(0)
        assert not INT_RING.is_zero(3)

    def test_from_int_passthrough(self):
        assert INT_RING.from_int(-7) == -7

    def test_sub(self):
        assert INT_RING.sub(5, 8) == -3

    def test_sum_and_product(self):
        assert INT_RING.sum([1, 2, 3]) == 6
        assert INT_RING.product([2, 3, 4]) == 24
        assert INT_RING.sum([]) == 0
        assert INT_RING.product([]) == 1

    def test_scale(self):
        assert INT_RING.scale(3, 5) == 15
        assert INT_RING.scale(-2, 5) == -10

    @given(st.lists(ints, min_size=1, max_size=4))
    @settings(max_examples=50)
    def test_axioms(self, elements):
        check_ring_axioms(INT_RING, elements)


class TestRealRing:
    def test_tolerant_zero(self):
        ring = RealRing(tolerance=1e-9)
        assert ring.is_zero(1e-12)
        assert not ring.is_zero(1e-3)

    def test_eq_close(self):
        ring = RealRing()
        assert ring.eq(0.1 + 0.2, 0.3)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            RealRing(tolerance=-1.0)

    def test_from_int(self):
        assert RealRing().from_int(4) == 4.0

    @given(st.lists(floats, min_size=1, max_size=3))
    @settings(max_examples=30)
    def test_additive_inverse(self, elements):
        ring = RealRing()
        for a in elements:
            assert ring.is_zero(ring.add(a, ring.neg(a)))


class TestBooleanSemiring:
    def test_or_and(self):
        ring = BOOL_SEMIRING
        assert ring.add(True, False) is True
        assert ring.mul(True, False) is False

    def test_no_negation(self):
        with pytest.raises(NotImplementedError):
            BOOL_SEMIRING.neg(True)

    def test_from_int(self):
        assert BOOL_SEMIRING.from_int(0) is False
        assert BOOL_SEMIRING.from_int(2) is True
        with pytest.raises(ValueError):
            BOOL_SEMIRING.from_int(-1)

    def test_has_no_additive_inverse_flag(self):
        assert not BooleanSemiring().has_additive_inverse


class TestMaxProductSemiring:
    def test_add_is_max(self):
        ring = MaxProductSemiring()
        assert ring.add(0.3, 0.7) == 0.7

    def test_mul_is_product(self):
        ring = MaxProductSemiring()
        assert math.isclose(ring.mul(0.5, 0.5), 0.25)

    def test_identities(self):
        ring = MaxProductSemiring()
        probs = [0.1, 0.5, 0.9]
        for p in probs:
            assert ring.eq(ring.add(ring.zero, p), p)
            assert ring.eq(ring.mul(ring.one, p), p)

    def test_no_negation(self):
        with pytest.raises(NotImplementedError):
            MaxProductSemiring().neg(0.5)


class TestVectorRing:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            VectorRing(0)

    def test_elementwise_ops(self):
        ring = VectorRing(3)
        a, b = (1.0, 2.0, 3.0), (4.0, 5.0, 6.0)
        assert ring.add(a, b) == (5.0, 7.0, 9.0)
        assert ring.mul(a, b) == (4.0, 10.0, 18.0)
        assert ring.neg(a) == (-1.0, -2.0, -3.0)

    def test_identities(self):
        ring = VectorRing(2)
        assert ring.zero == (0.0, 0.0)
        assert ring.one == (1.0, 1.0)
        assert ring.from_int(3) == (3.0, 3.0)

    def test_is_zero(self):
        ring = VectorRing(2)
        assert ring.is_zero((0.0, 1e-12))
        assert not ring.is_zero((0.0, 0.5))

    @given(st.lists(st.tuples(floats, floats), min_size=1, max_size=3))
    @settings(max_examples=30)
    def test_axioms(self, elements):
        check_ring_axioms(VectorRing(2), elements)


class TestAxiomChecker:
    def test_detects_broken_ring(self):
        class Broken(IntegerRing):
            def mul(self, a, b):
                return a * b + 1  # breaks identity and distributivity

        with pytest.raises(AssertionError):
            check_ring_axioms(Broken(), [0, 1, 2])
