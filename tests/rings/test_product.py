"""Tests for product rings (compound aggregates without sharing)."""

import pytest

from repro.rings import (
    BOOL_SEMIRING,
    INT_RING,
    ProductRing,
    RealRing,
    check_ring_axioms,
)


class TestProductRing:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ProductRing([])

    def test_componentwise(self):
        ring = ProductRing([INT_RING, RealRing()])
        assert ring.zero == (0, 0.0)
        assert ring.one == (1, 1.0)
        assert ring.add((1, 2.0), (3, 4.0)) == (4, 6.0)
        assert ring.mul((2, 3.0), (4, 5.0)) == (8, 15.0)
        assert ring.neg((1, -2.0)) == (-1, 2.0)

    def test_from_int(self):
        ring = ProductRing([INT_RING, RealRing()])
        assert ring.from_int(3) == (3, 3.0)

    def test_axioms(self):
        ring = ProductRing([INT_RING, RealRing()])
        check_ring_axioms(ring, [(0, 0.0), (1, 1.0), (2, -1.5), (-3, 0.25)])

    def test_semiring_component_disables_inverse(self):
        ring = ProductRing([INT_RING, BOOL_SEMIRING])
        assert not ring.has_additive_inverse
        with pytest.raises(NotImplementedError):
            ring.neg((1, True))

    def test_is_zero(self):
        ring = ProductRing([INT_RING, RealRing()])
        assert ring.is_zero((0, 1e-12))
        assert not ring.is_zero((1, 0.0))

    def test_maintains_two_sums_at_once(self):
        """A COUNT and a SUM maintained as one compound payload."""

        ring = ProductRing([INT_RING, INT_RING])
        lift = lambda x: (1, x)
        total = ring.zero
        for x in [3, 5, 9]:
            total = ring.add(total, lift(x))
        assert total == (3, 17)
