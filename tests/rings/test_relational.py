"""Tests for the relational data ring F[ℤ] (Definition 6.4)."""

import pytest

from repro.data import SchemaError
from repro.rings import (
    RelationalRing,
    bound_lift,
    check_ring_axioms,
    free_lift,
    payload_relation,
)


@pytest.fixture
def ring():
    return RelationalRing()


class TestIdentities:
    def test_one_is_unit_relation(self, ring):
        assert ring.one.schema == ()
        assert ring.one.payload(()) == 1

    def test_zero_is_empty(self, ring):
        assert ring.is_zero(ring.zero)
        assert len(ring.zero) == 0

    def test_mul_by_one(self, ring):
        a = payload_relation(("A",), {("x",): 2, ("y",): 1})
        assert ring.eq(ring.mul(a, ring.one), a)
        assert ring.eq(ring.mul(ring.one, a), a)

    def test_mul_by_zero(self, ring):
        a = payload_relation(("A",), {("x",): 2})
        assert ring.is_zero(ring.mul(a, ring.zero))
        assert ring.is_zero(ring.mul(ring.zero, a))

    def test_add_zero(self, ring):
        a = payload_relation(("A",), {("x",): 2})
        assert ring.eq(ring.add(a, ring.zero), a)
        assert ring.eq(ring.add(ring.zero, a), a)


class TestOperations:
    def test_add_is_union(self, ring):
        a = payload_relation(("A",), {("x",): 2})
        b = payload_relation(("A",), {("x",): 1, ("y",): 3})
        merged = ring.add(a, b)
        assert merged.payload(("x",)) == 3
        assert merged.payload(("y",)) == 3

    def test_add_cancellation(self, ring):
        a = payload_relation(("A",), {("x",): 2})
        assert ring.is_zero(ring.add(a, ring.neg(a)))

    def test_mul_is_join(self, ring):
        a = payload_relation(("A",), {("x",): 2})
        b = payload_relation(("B",), {("u",): 3})
        product = ring.mul(a, b)
        assert product.payload(("x", "u")) == 6

    def test_mul_shared_attribute(self, ring):
        a = payload_relation(("A", "B"), {("x", "u"): 2})
        b = payload_relation(("B",), {("u",): 3, ("v",): 1})
        product = ring.mul(a, b)
        assert product.payload(("x", "u")) == 6
        assert len(product) == 1

    def test_add_schema_mismatch_raises(self, ring):
        a = payload_relation(("A",), {("x",): 1})
        b = payload_relation(("B",), {("u",): 1})
        with pytest.raises(SchemaError):
            ring.add(a, b)

    def test_from_int(self, ring):
        assert ring.from_int(0) is ring.zero
        assert ring.from_int(3).payload(()) == 3


class TestLifts:
    def test_free_lift(self):
        lift = free_lift("X")
        payload = lift(7)
        assert payload.schema == ("X",)
        assert payload.payload((7,)) == 1

    def test_bound_lift_is_one(self):
        ring = RelationalRing()
        lift = bound_lift()
        assert ring.eq(lift("anything"), ring.one)


class TestAxioms:
    def test_axioms_on_nullary_payloads(self, ring):
        """Full ring axioms hold on the ()-schema fragment (cf. footnote 2)."""
        elements = [ring.zero, ring.one, ring.from_int(3), ring.from_int(-2)]
        check_ring_axioms(ring, elements)

    def test_distributivity_same_schema(self, ring):
        a = payload_relation(("A",), {("x",): 2})
        b = payload_relation(("A",), {("x",): 1, ("y",): 3})
        c = payload_relation(("A",), {("y",): 5})
        left = ring.mul(a, ring.add(b, c))
        right = ring.add(ring.mul(a, b), ring.mul(a, c))
        assert ring.eq(left, right)
