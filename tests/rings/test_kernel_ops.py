"""Conformance tests for the packed-column protocol (``Ring.kernel_ops``).

Every ring that exposes array hooks must compute exactly the scalar ring
semantics, column-for-column: pack/unpack round-trips, packed arithmetic
against per-payload ``mul``/``add``/``neg``, grouped reduction against
``Ring.sum``, zero masks against ``is_zero``, and the store hooks
(alloc/grow/put/take/add_at/zero_rows) against a plain list of payloads —
including layout widening when payloads of different cofactor supports or
degree vocabularies land in one block.
"""

import numpy as np
import pytest

from repro.rings import (
    CofactorRing,
    DegreeRing,
    IntegerRing,
    ProductRing,
    RealRing,
    SquareMatrixRing,
)


def _int_cols():
    ring = IntegerRing()
    a = [ring.from_int(v) for v in (3, -1, 4, 1, -5, 9, 2, 6)]
    b = [ring.from_int(v) for v in (2, 7, -1, 8, 2, -8, 1, 0)]
    return ring, a, b


def _real_cols():
    ring = RealRing()
    a = [ring.from_int(v) * 0.5 for v in (3, -1, 4, 1, -5, 9, 2, 6)]
    b = [ring.from_int(v) * 0.25 for v in (2, 7, -1, 8, 2, -8, 1, 4)]
    return ring, a, b


def _degree_cols():
    ring = DegreeRing(3)
    lift0, lift2 = ring.lift(0), ring.lift(2)
    a = [lift0(x) for x in (0.5, -1.0, 2.0, 0.0)] + [
        ring.from_int(v) for v in (1, -2, 3, 4)
    ]
    b = [lift2(x) for x in (1.5, 0.5, -0.5, 2.5)] + [
        ring.one for _ in range(4)
    ]
    return ring, a, b


def _cofactor_cols():
    ring = CofactorRing(3)
    lift1, lift2 = ring.lift(1), ring.lift(2)
    a = [lift1(x) for x in (0.5, -1.0, 2.0, 0.0, 3.0, 1.0, -2.0, 4.0)]
    b = [lift2(x) for x in (1.5, 0.5, -0.5, 2.5, 1.0, -1.0, 2.0, 0.0)]
    return ring, a, b


def _product_cols():
    ring = ProductRing([IntegerRing(), RealRing()])
    a = [(v, 0.5 * v) for v in (3, -1, 4, 1, -5, 9, 2, 6)]
    b = [(v, 0.25 * v) for v in (2, 7, -1, 8, 2, -8, 1, 4)]
    return ring, a, b


COLUMNS = {
    "int": _int_cols,
    "real": _real_cols,
    "degree": _degree_cols,
    "cofactor": _cofactor_cols,
    "product": _product_cols,
}


@pytest.fixture(params=sorted(COLUMNS))
def ring_cols(request):
    return COLUMNS[request.param]()


def test_rings_expose_kernel_ops(ring_cols):
    ring, _, _ = ring_cols
    ops = ring.kernel_ops()
    assert ops is not None
    assert ops is ring.kernel_ops()  # memoized


def test_pack_unpack_round_trip(ring_cols):
    ring, a, _ = ring_cols
    ops = ring.kernel_ops()
    packed = ops.pack(a, len(a))
    assert packed is not None
    out = ops.unpack(packed)
    assert len(out) == len(a)
    for got, want in zip(out, a):
        assert ring.eq(got, want)


def test_packed_arithmetic_matches_scalar(ring_cols):
    ring, a, b = ring_cols
    ops = ring.kernel_ops()
    n = len(a)
    pa, pb = ops.pack(a, n), ops.pack(b, n)
    for got, x, y in zip(ops.unpack(ops.mul_packed(pa, pb, n)), a, b):
        assert ring.eq(got, ring.mul(x, y))
    for got, x, y in zip(ops.unpack(ops.add_packed(pa, pb)), a, b):
        assert ring.eq(got, ring.add(x, y))
    for got, x in zip(ops.unpack(ops.neg_packed(pa)), a):
        assert ring.eq(got, ring.neg(x))
    for got, x in zip(ops.unpack(ops.identity(n)), a):
        assert ring.eq(got, ring.one)


def test_grouped_reduce_matches_ring_sum(ring_cols):
    # One column (uniform layout — a cofactor column mixing a's and b's
    # supports would refuse to pack, by design), three interleaved groups.
    ring, a, _ = ring_cols
    ops = ring.kernel_ops()
    column = a + list(reversed(a))
    n = len(column)
    group_ids = np.array([i % 3 for i in range(n)], dtype=np.intp)
    reduced = ops.unpack(
        ops.reduce(ops.pack(column, n), group_ids, 3)
    )
    for gid in range(3):
        expected = ring.sum(
            [p for i, p in enumerate(column) if i % 3 == gid]
        )
        assert ring.eq(reduced[gid], expected)


def test_zero_mask_matches_is_zero(ring_cols):
    ring, a, _ = ring_cols
    ops = ring.kernel_ops()
    # The cancelled payload keeps its layout (a cofactor triple keeps its
    # support with zeroed blocks), so the column still packs uniformly.
    column = list(a) + [ring.add(a[0], ring.neg(a[0]))]
    packed = ops.pack(column, len(column))
    mask = ops.zero_mask(packed)
    assert mask.dtype == bool and len(mask) == len(column)
    for got, payload in zip(mask.tolist(), column):
        assert got == ring.is_zero(payload)


def test_store_hooks_behave_like_a_payload_list(ring_cols):
    ring, a, b = ring_cols
    ops = ring.kernel_ops()
    n = len(a)
    block = ops.alloc(4, ops.payload_layout(a[0]))
    block = ops.grow(block, 0, 2 * n)
    rows = np.arange(n, dtype=np.intp)
    block = ops.put(block, rows, ops.pack(a, n))
    for got, want in zip(ops.unpack(ops.take(block, rows)), a):
        assert ring.eq(got, want)
    # add_at must handle duplicate rows (scatter-add, not last-wins) and
    # unify layouts when the added column's layout differs.
    dup = np.zeros(n, dtype=np.intp)
    block = ops.add_at(block, dup, ops.pack(b, n))
    merged = ops.unpack(ops.take(block, np.array([0], dtype=np.intp)))[0]
    assert ring.eq(merged, ring.sum([a[0]] + list(b)))
    block = ops.zero_rows(block, rows[1:])
    for got in ops.unpack(ops.take(block, rows[1:])):
        assert ring.is_zero(got)


def test_cofactor_mixed_support_column_does_not_pack():
    ring = CofactorRing(3)
    ops = ring.kernel_ops()
    mixed = [ring.lift(0)(1.0), ring.lift(1)(2.0)]
    assert ops.pack(mixed, 2) is None
    uniform = [ring.lift(0)(1.0), ring.lift(0)(2.0)]
    assert ops.pack(uniform, 2) is not None


def test_degree_pack_unions_vocabularies():
    ring = DegreeRing(2)
    ops = ring.kernel_ops()
    column = [ring.lift(0)(1.0), ring.lift(1)(2.0), ring.one]
    packed = ops.pack(column, 3)
    assert packed is not None  # mixed vocabularies pack fine (dense union)
    for got, want in zip(ops.unpack(packed), column):
        assert ring.eq(got, want)


def test_product_requires_every_component_to_pack():
    assert ProductRing([IntegerRing(), RealRing()]).kernel_ops() is not None
    assert ProductRing(
        [IntegerRing(), SquareMatrixRing(2)]
    ).kernel_ops() is None
    assert SquareMatrixRing(2).kernel_ops() is None
