"""Tests for the non-commutative n×n matrix ring."""

import numpy as np
import pytest

from repro.rings import SquareMatrixRing, check_ring_axioms


class TestSquareMatrixRing:
    def test_identities(self):
        ring = SquareMatrixRing(3)
        assert np.array_equal(ring.zero, np.zeros((3, 3)))
        assert np.array_equal(ring.one, np.eye(3))

    def test_identities_are_frozen(self):
        ring = SquareMatrixRing(2)
        with pytest.raises(ValueError):
            ring.one[0, 0] = 5.0

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            SquareMatrixRing(0)

    def test_non_commutative(self):
        ring = SquareMatrixRing(2)
        a = np.array([[0.0, 1.0], [0.0, 0.0]])
        b = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert not ring.eq(ring.mul(a, b), ring.mul(b, a))
        assert not ring.is_commutative

    def test_axioms(self):
        ring = SquareMatrixRing(2)
        rng = np.random.default_rng(1)
        elements = [ring.random(rng) for _ in range(3)]
        check_ring_axioms(ring, elements)

    def test_from_int(self):
        ring = SquareMatrixRing(2)
        assert np.array_equal(ring.from_int(3), 3.0 * np.eye(2))

    def test_is_zero_tolerance(self):
        ring = SquareMatrixRing(2)
        assert ring.is_zero(1e-12 * np.ones((2, 2)))
        assert not ring.is_zero(np.eye(2))

    def test_ops_do_not_mutate(self):
        ring = SquareMatrixRing(2)
        rng = np.random.default_rng(2)
        a, b = ring.random(rng), ring.random(rng)
        a_copy = a.copy()
        ring.add(a, b)
        ring.mul(a, b)
        ring.neg(a)
        assert np.array_equal(a, a_copy)
