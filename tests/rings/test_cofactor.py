"""Tests for the degree-m matrix ring of regression triples (Def. 6.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings import CofactorRing, CofactorTriple, check_ring_axioms

values = st.floats(
    min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False
)


def triples(ring: CofactorRing):
    """Hypothesis strategy for ring elements built from lifts and sums."""
    m = ring.degree

    def build(seed):
        rng = np.random.default_rng(seed)
        out = ring.zero
        for _ in range(rng.integers(0, 4)):
            j = int(rng.integers(0, m))
            out = ring.add(out, ring.lift(j)(float(rng.uniform(-3, 3))))
        return out

    return st.integers(min_value=0, max_value=10_000).map(build)


class TestDefinition62:
    """The multiplication law, spelled out against the paper's formula."""

    def test_product_formula(self):
        ring = CofactorRing(3)
        rng = np.random.default_rng(5)
        a = CofactorTriple(3, 2.0, rng.normal(size=3), rng.normal(size=(3, 3)))
        b = CofactorTriple(3, 4.0, rng.normal(size=3), rng.normal(size=(3, 3)))
        product = ring.mul(a, b)
        assert product.count == a.count * b.count
        assert np.allclose(
            product.dense_sums(), b.count * a.sums + a.count * b.sums
        )
        expected_q = (
            b.count * a.quads
            + a.count * b.quads
            + np.outer(a.sums, b.sums)
            + np.outer(b.sums, a.sums)
        )
        assert np.allclose(product.dense_quads(), expected_q)

    def test_identities(self):
        ring = CofactorRing(2)
        one, zero = ring.one, ring.zero
        assert one.count == 1.0 and one.sums is None and one.quads is None
        assert zero.count == 0.0
        a = ring.lift(1)(3.0)
        assert ring.eq(ring.mul(a, one), a)
        assert ring.eq(ring.mul(one, a), a)
        assert ring.eq(ring.add(a, zero), a)

    def test_lift(self):
        ring = CofactorRing(3)
        t = ring.lift(1)(4.0)
        assert t.count == 1.0
        assert t.support == (1,)
        assert np.allclose(t.dense_sums(), [0.0, 4.0, 0.0])
        assert t.dense_quads()[1, 1] == 16.0
        assert np.count_nonzero(t.dense_quads()) == 1

    def test_lift_index_validation(self):
        ring = CofactorRing(2)
        with pytest.raises(ValueError):
            ring.lift(2)
        with pytest.raises(ValueError):
            ring.lift(-1)

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            CofactorRing(0)

    def test_negation_and_deletion(self):
        """A delete payload is the additive inverse of the insert payload."""
        ring = CofactorRing(2)
        insert = ring.lift(0)(2.5)
        assert ring.is_zero(ring.add(insert, ring.neg(insert)))

    def test_commutative(self):
        ring = CofactorRing(2)
        a, b = ring.lift(0)(2.0), ring.lift(1)(-3.0)
        assert ring.eq(ring.mul(a, b), ring.mul(b, a))


class TestBlockSparsity:
    """All-zero s/Q blocks stay None through count-only arithmetic."""

    def test_counts_stay_sparse(self):
        ring = CofactorRing(40)
        a = ring.from_int(3)
        b = ring.from_int(5)
        product = ring.mul(a, b)
        assert product.sums is None and product.quads is None
        assert product.count == 15.0
        assert product.scalar_entries() == 1

    def test_mixed_block_product(self):
        ring = CofactorRing(4)
        count_only = ring.from_int(2)
        lifted = ring.lift(2)(3.0)
        product = ring.mul(count_only, lifted)
        assert np.allclose(product.dense_sums(), [0, 0, 6.0, 0])
        assert product.dense_quads()[2, 2] == 18.0

    def test_scalar_entries_follow_support(self):
        ring = CofactorRing(3)
        t = ring.lift(0)(1.0)
        # One variable seen: blocks are 1-vector and 1×1 matrix.
        assert t.scalar_entries() == 1 + 1 + 1
        grown = ring.mul(t, ring.lift(2)(2.0))
        assert grown.support == (0, 2)
        assert grown.scalar_entries() == 1 + 2 + 4


class TestMomentMatrix:
    def test_single_row(self):
        """Lifting one 'row' x and multiplying gives MᵀM of [1, x]."""
        ring = CofactorRing(2)
        row = ring.mul(ring.lift(0)(2.0), ring.lift(1)(3.0))
        mm = row.moment_matrix()
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(mm, np.outer(x, x))

    def test_sum_of_rows(self):
        ring = CofactorRing(2)
        rows = [(1.0, 2.0), (0.5, -1.0), (3.0, 0.0)]
        total = ring.zero
        for x0, x1 in rows:
            total = ring.add(
                total, ring.mul(ring.lift(0)(x0), ring.lift(1)(x1))
            )
        design = np.array([[1.0, x0, x1] for x0, x1 in rows])
        assert np.allclose(total.moment_matrix(), design.T @ design)


class TestRingAxioms:
    @given(triples(CofactorRing(3)), triples(CofactorRing(3)), triples(CofactorRing(3)))
    @settings(max_examples=25, deadline=None)
    def test_axioms_on_generated_elements(self, a, b, c):
        check_ring_axioms(CofactorRing(3), [a, b, c])
