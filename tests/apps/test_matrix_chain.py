"""Tests for matrix chain multiplication (Section 6.1 / LINVIEW)."""

import numpy as np
import pytest

from repro.apps import (
    DenseChainFIVM,
    DenseChainFirstOrder,
    DenseChainReeval,
    MatrixChainIVM,
    chain_query,
    chain_variable_order,
    matrix_chain_order,
)
from repro.datasets.matrices import (
    matrix_as_relation,
    random_matrix,
    rank_r_update,
    relation_as_matrix,
    row_update,
)


@pytest.fixture
def np_rng():
    return np.random.default_rng(17)


class TestChainOrderDP:
    def test_textbook_example(self):
        # CLRS-style: dims (10, 100, 5, 50) → optimal cost 7500, split at 2.
        m, s = matrix_chain_order([10, 100, 5, 50])
        assert m[1][3] == 7500
        assert s[1][3] == 2

    def test_single_matrix(self):
        m, _ = matrix_chain_order([3, 4])
        assert m[1][1] == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            matrix_chain_order([5])


class TestVariableOrder:
    def test_example61_shape(self):
        """ω = X1 - X5 - X3 - {X2, X4} for a balanced 4-chain."""
        vo = chain_variable_order(4)
        assert vo.roots[0].var == "X1"
        assert vo.ancestors("X3") == ("X1", "X5")
        assert {child.var for child in vo.node("X3").children} == {"X2", "X4"}

    def test_valid_for_query(self):
        for k in (1, 2, 3, 5):
            q = chain_query(k)
            chain_variable_order(k).validate(q)

    def test_optimal_split_used(self):
        # dims force the optimal parenthesization A1 · (A2 · A3), so the
        # top bound variable is X2 with X3 below it.
        vo = chain_variable_order(3, dims=[2, 2, 100, 2])
        root_bound = vo.node("X4").children[0].var
        assert root_bound == "X2"
        assert vo.parent("X3") == "X2"


class TestRelationalChain:
    def test_initial_product(self, np_rng):
        mats = [random_matrix(4, 6, np_rng), random_matrix(6, 3, np_rng)]
        chain = MatrixChainIVM(mats)
        assert np.allclose(chain.result_matrix(), mats[0] @ mats[1])

    def test_dimension_mismatch_rejected(self, np_rng):
        with pytest.raises(ValueError):
            MatrixChainIVM([random_matrix(3, 4, np_rng), random_matrix(5, 2, np_rng)])

    def test_rank_one_updates_each_position(self, np_rng):
        mats = [
            random_matrix(3, 4, np_rng),
            random_matrix(4, 5, np_rng),
            random_matrix(5, 2, np_rng),
        ]
        for index in (1, 2, 3):
            chain = MatrixChainIVM(mats, updatable=[f"A{index}"])
            u = np_rng.uniform(-1, 1, mats[index - 1].shape[0])
            v = np_rng.uniform(-1, 1, mats[index - 1].shape[1])
            chain.apply_rank_one(index, u, v)
            updated = [m.copy() for m in mats]
            updated[index - 1] = updated[index - 1] + np.outer(u, v)
            expected = updated[0] @ updated[1] @ updated[2]
            assert np.allclose(chain.result_matrix(), expected), index

    def test_rank_r_update(self, np_rng):
        n = 5
        mats = [random_matrix(n, n, np_rng) for _ in range(3)]
        chain = MatrixChainIVM(mats, updatable=["A2"])
        terms = rank_r_update(n, 3, np_rng)
        chain.apply_rank_r(2, terms)
        delta = sum(np.outer(u, v) for u, v in terms)
        expected = mats[0] @ (mats[1] + delta) @ mats[2]
        assert np.allclose(chain.result_matrix(), expected)

    def test_longer_chain(self, np_rng):
        mats = [random_matrix(3, 3, np_rng) for _ in range(5)]
        chain = MatrixChainIVM(mats, updatable=["A3"])
        u, v = np_rng.uniform(-1, 1, 3), np_rng.uniform(-1, 1, 3)
        chain.apply_rank_one(3, u, v)
        updated = [m.copy() for m in mats]
        updated[2] += np.outer(u, v)
        expected = updated[0]
        for m in updated[1:]:
            expected = expected @ m
        assert np.allclose(chain.result_matrix(), expected)

    def test_dense_delta_listing_path(self, np_rng):
        mats = [random_matrix(3, 3, np_rng) for _ in range(3)]
        chain = MatrixChainIVM(mats)
        delta = 0.1 * random_matrix(3, 3, np_rng)
        chain.apply_dense_delta(2, delta)
        expected = mats[0] @ (mats[1] + delta) @ mats[2]
        assert np.allclose(chain.result_matrix(), expected)

    def test_row_update_helper(self, np_rng):
        u, v = row_update(4, 2, np_rng)
        delta = np.outer(u, v)
        assert np.count_nonzero(delta[0]) == 0
        assert np.count_nonzero(delta[2]) == 4


class TestDenseEngines:
    def test_all_engines_agree(self, np_rng):
        n = 8
        mats = [random_matrix(n, n, np_rng) for _ in range(3)]
        engines = [
            DenseChainFIVM(*mats),
            DenseChainFirstOrder(*mats),
            DenseChainReeval(*mats),
        ]
        for step in range(5):
            u, v = row_update(n, step % n, np_rng)
            for engine in engines:
                engine.apply_rank_one(u, v)
            for engine in engines[1:]:
                assert np.allclose(engine.result, engines[0].result)

    def test_dense_matches_relational(self, np_rng):
        n = 4
        mats = [random_matrix(n, n, np_rng) for _ in range(3)]
        dense = DenseChainFIVM(*mats)
        relational = MatrixChainIVM(mats, updatable=["A2"])
        for _ in range(3):
            u = np_rng.uniform(-1, 1, n)
            v = np_rng.uniform(-1, 1, n)
            dense.apply_rank_one(u, v)
            relational.apply_rank_one(2, u, v)
        assert np.allclose(dense.result, relational.result_matrix())

    def test_rank_r_dense(self, np_rng):
        n = 6
        mats = [random_matrix(n, n, np_rng) for _ in range(3)]
        engine = DenseChainFIVM(*mats)
        terms = rank_r_update(n, 4, np_rng)
        engine.apply_rank_r(terms)
        delta = sum(np.outer(u, v) for u, v in terms)
        assert np.allclose(engine.result, mats[0] @ (mats[1] + delta) @ mats[2])


class TestMatrixRelationCodecs:
    def test_round_trip(self, np_rng):
        m = random_matrix(3, 5, np_rng)
        rel = matrix_as_relation("A", m, "X", "Y")
        assert np.allclose(relation_as_matrix(rel, (3, 5)), m)

    def test_zeros_skipped(self):
        m = np.array([[0.0, 1.0], [0.0, 0.0]])
        rel = matrix_as_relation("A", m, "X", "Y")
        assert len(rel) == 1
