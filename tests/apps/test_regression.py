"""Tests for cofactor maintenance and in-database regression (Section 6.2)."""

import random

import numpy as np
import pytest

from repro.apps import CofactorModel, cofactor_query
from repro.apps.regression import least_squares_from_moments
from repro.data import Database, Relation
from repro.rings import CofactorRing

from tests.conftest import PAPER_SCHEMAS, paper_variable_order


def join_design_matrix(rows, columns):
    """Materialize the natural join of the paper query and extract columns."""
    out = []
    for (a, b) in rows["R"]:
        for (a2, c, e) in rows["S"]:
            if a2 != a:
                continue
            for (c2, d) in rows["T"]:
                if c2 != c:
                    continue
                record = {"A": a, "B": b, "C": c, "D": d, "E": e}
                out.append([record[col] for col in columns])
    return np.array(out, dtype=float)


SAMPLE_ROWS = {
    "R": [(1, 2.0), (1, 3.0), (2, 1.0), (3, 4.0)],
    "S": [(1, 1, 2.0), (1, 1, 5.0), (1, 2, 1.0), (2, 2, 3.0)],
    "T": [(1, 7.0), (2, 2.0), (2, 3.0), (3, 9.0)],
}

NUMERIC = ("B", "D", "E")


def sample_db(ring):
    return Database(
        Relation.from_tuples(rel, PAPER_SCHEMAS[rel], ring, SAMPLE_ROWS[rel])
        for rel in PAPER_SCHEMAS
    )


@pytest.fixture
def model():
    ring = CofactorRing(len(NUMERIC))
    return CofactorModel(
        "reg",
        PAPER_SCHEMAS,
        NUMERIC,
        order=paper_variable_order(),
        db=sample_db(ring),
    )


class TestMomentMatrix:
    def test_matches_numpy_mtm(self, model):
        design = join_design_matrix(SAMPLE_ROWS, NUMERIC)
        extended = np.hstack([np.ones((len(design), 1)), design])
        assert np.allclose(model.moment_matrix(), extended.T @ extended)

    def test_count_in_corner(self, model):
        assert model.moment_matrix()[0, 0] == 10  # join cardinality

    def test_maintained_under_updates(self, model):
        rng = random.Random(4)
        rows = {rel: list(SAMPLE_ROWS[rel]) for rel in SAMPLE_ROWS}
        ring = model.query.ring
        for _ in range(15):
            rel = rng.choice(list(PAPER_SCHEMAS))
            row = tuple(
                float(rng.randint(0, 3)) if i else rng.randint(0, 3)
                for i in range(len(PAPER_SCHEMAS[rel]))
            )
            delta = Relation(rel, PAPER_SCHEMAS[rel], ring, {row: ring.one})
            model.apply_update(delta)
            rows[rel].append(row)
            design = join_design_matrix(rows, NUMERIC)
            if len(design) == 0:
                assert model.moment_matrix()[0, 0] == 0
                continue
            extended = np.hstack([np.ones((len(design), 1)), design])
            assert np.allclose(model.moment_matrix(), extended.T @ extended)

    def test_deletion_removes_contribution(self, model):
        ring = model.query.ring
        delta = Relation(
            "R", PAPER_SCHEMAS["R"], ring, {(1, 2.0): ring.neg(ring.one)}
        )
        model.apply_update(delta)
        rows = dict(SAMPLE_ROWS)
        rows["R"] = [r for r in SAMPLE_ROWS["R"] if r != (1, 2.0)]
        design = join_design_matrix(rows, NUMERIC)
        extended = np.hstack([np.ones((len(design), 1)), design])
        assert np.allclose(model.moment_matrix(), extended.T @ extended)


class TestTraining:
    def test_closed_form_matches_lstsq(self, model):
        design = join_design_matrix(SAMPLE_ROWS, ("D", "E", "B"))
        features = np.hstack([np.ones((len(design), 1)), design[:, :2]])
        theta_np, *_ = np.linalg.lstsq(features, design[:, 2], rcond=None)
        trained = model.solve(["D", "E"], "B")
        assert np.allclose(trained.theta, theta_np, atol=1e-8)

    def test_gradient_descent_converges_to_lstsq(self, model):
        closed = model.solve(["D", "E"], "B")
        iterative = model.gradient_descent(["D", "E"], "B", max_iterations=50_000)
        assert np.allclose(iterative.theta, closed.theta, atol=1e-4)
        assert iterative.iterations > 0

    def test_predict(self, model):
        trained = model.solve(["D", "E"], "B")
        value = trained.predict({"D": 2.0, "E": 1.0})
        expected = trained.theta[0] + trained.theta[1] * 2.0 + trained.theta[2] * 1.0
        assert np.isclose(value, expected)

    def test_any_label_from_same_statistics(self, model):
        """One maintained cofactor matrix serves every feature/label split."""
        for label, features in [("B", ["D", "E"]), ("D", ["B"]), ("E", ["B", "D"])]:
            design = join_design_matrix(SAMPLE_ROWS, tuple(features) + (label,))
            f = np.hstack([np.ones((len(design), 1)), design[:, :-1]])
            theta_np, *_ = np.linalg.lstsq(f, design[:, -1], rcond=None)
            trained = model.solve(features, label)
            assert np.allclose(trained.theta, theta_np, atol=1e-8), label

    def test_training_on_empty_join_rejected(self):
        empty = CofactorModel(
            "reg", PAPER_SCHEMAS, NUMERIC, order=paper_variable_order()
        )
        with pytest.raises(ValueError):
            empty.gradient_descent(["D"], "B")

    def test_ridge_regularization(self, model):
        plain = model.solve(["D", "E"], "B")
        ridged = model.solve(["D", "E"], "B", ridge=10.0)
        assert np.linalg.norm(ridged.theta[1:]) < np.linalg.norm(plain.theta[1:])


class TestGroupByModels:
    def test_one_model_per_group(self):
        """free=(A,) maintains one cofactor matrix per A-value."""
        ring = CofactorRing(3)
        model = CofactorModel(
            "grouped",
            PAPER_SCHEMAS,
            NUMERIC,
            free=("A",),
            order=paper_variable_order(),
            db=sample_db(ring),
        )
        for a in (1, 2):
            rows = {
                "R": [r for r in SAMPLE_ROWS["R"] if r[0] == a],
                "S": [s for s in SAMPLE_ROWS["S"] if s[0] == a],
                "T": SAMPLE_ROWS["T"],
            }
            design = join_design_matrix(rows, NUMERIC)
            extended = np.hstack([np.ones((len(design), 1)), design])
            assert np.allclose(
                model.moment_matrix((a,)), extended.T @ extended
            ), a

    def test_group_variable_cannot_be_numeric(self):
        with pytest.raises(ValueError):
            cofactor_query("bad", PAPER_SCHEMAS, ("A", "B"), free=("A",))


class TestLeastSquaresHelper:
    def test_recovers_exact_linear_relation(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(50, 2))
        y = 3.0 + 2.0 * x[:, 0] - 1.5 * x[:, 1]
        design = np.hstack([np.ones((50, 1)), x, y[:, None]])
        moments = design.T @ design
        theta = least_squares_from_moments(moments, [0, 1], 2)
        assert np.allclose(theta, [3.0, 2.0, -1.5], atol=1e-8)
