"""Tests for graphical-model inference over view trees (the paper's
'going forward' application)."""

import itertools
import random

import pytest

from repro.apps.inference import (
    FactorGraph,
    MaxProductInference,
    SumProductInference,
)


def chain_graph() -> FactorGraph:
    """X1 - X2 - X3 chain with binary variables."""
    g = FactorGraph()
    for v in ("X1", "X2", "X3"):
        g.add_variable(v, (0, 1))
    g.add_factor("f12", ("X1", "X2"), {
        (0, 0): 2.0, (0, 1): 1.0, (1, 0): 0.5, (1, 1): 3.0,
    })
    g.add_factor("f23", ("X2", "X3"), {
        (0, 0): 1.0, (0, 1): 4.0, (1, 0): 2.0, (1, 1): 0.5,
    })
    g.add_factor("u1", ("X1",), {(0,): 1.0, (1,): 2.0})
    return g


def triangle_graph() -> FactorGraph:
    """A loopy (cyclic) model — exact inference still works (elimination)."""
    g = FactorGraph()
    for v in ("A", "B", "C"):
        g.add_variable(v, (0, 1, 2))
    rng = random.Random(4)
    for name, pair in (("fab", ("A", "B")), ("fbc", ("B", "C")), ("fca", ("C", "A"))):
        table = {
            (i, j): rng.uniform(0.1, 2.0) for i in range(3) for j in range(3)
        }
        g.add_factor(name, pair, table)
    return g


class TestFactorGraphValidation:
    def test_duplicate_variable(self):
        g = FactorGraph().add_variable("X", (0, 1))
        with pytest.raises(ValueError):
            g.add_variable("X", (0,))

    def test_empty_domain(self):
        with pytest.raises(ValueError):
            FactorGraph().add_variable("X", ())

    def test_undeclared_factor_variable(self):
        g = FactorGraph().add_variable("X", (0, 1))
        with pytest.raises(ValueError):
            g.add_factor("f", ("X", "Y"), {(0, 0): 1.0})

    def test_negative_potential(self):
        g = FactorGraph().add_variable("X", (0, 1))
        with pytest.raises(ValueError):
            g.add_factor("f", ("X",), {(0,): -1.0})

    def test_assignment_arity(self):
        g = FactorGraph().add_variable("X", (0, 1))
        with pytest.raises(ValueError):
            g.add_factor("f", ("X",), {(0, 1): 1.0})

    def test_duplicate_factor(self):
        g = FactorGraph().add_variable("X", (0, 1))
        g.add_factor("f", ("X",), {(0,): 1.0})
        with pytest.raises(ValueError):
            g.add_factor("f", ("X",), {(0,): 1.0})


class TestSumProduct:
    def test_partition_function_chain(self):
        g = chain_graph()
        inference = SumProductInference(g)
        expected = g.brute_force()[()]
        assert abs(inference.partition_function() - expected) < 1e-9

    def test_marginal_chain(self):
        g = chain_graph()
        inference = SumProductInference(g, free=("X2",))
        reference = g.brute_force(free=("X2",))
        total = sum(reference.values())
        marginal = inference.marginal()
        for key, value in reference.items():
            assert abs(marginal[key] - value / total) < 1e-9

    def test_loopy_graph_exact(self):
        g = triangle_graph()
        inference = SumProductInference(g)
        expected = g.brute_force()[()]
        assert abs(inference.partition_function() - expected) < 1e-7

    def test_incremental_potential_update(self):
        g = chain_graph()
        inference = SumProductInference(g)
        inference.update_potential("f12", (0, 1), 5.0)
        g2 = chain_graph()
        g2.factors["f12"][1][(0, 1)] = 5.0
        assert abs(
            inference.partition_function() - g2.brute_force()[()]
        ) < 1e-9

    def test_incremental_update_stream(self):
        """Random potential churn: maintained Z always equals brute force."""
        rng = random.Random(9)
        g = chain_graph()
        inference = SumProductInference(g)
        tables = {name: dict(table) for name, (_, table) in g.factors.items()}
        for _ in range(30):
            factor = rng.choice(list(tables))
            variables, _ = g.factors[factor]
            assignment = tuple(rng.choice((0, 1)) for _ in variables)
            value = rng.choice([0.0, 0.5, 1.5, 3.0])
            inference.update_potential(factor, assignment, value)
            tables[factor][assignment] = value
            reference = FactorGraph()
            for v in g.domains:
                reference.add_variable(v, g.domains[v])
            for name, (vars_, _) in g.factors.items():
                reference.add_factor(name, vars_, tables[name])
            expected = reference.brute_force().get((), 0.0)
            assert abs(inference.partition_function() - expected) < 1e-9

    def test_condition_on_evidence(self):
        g = chain_graph()
        inference = SumProductInference(g, free=("X3",))
        inference.condition("X1", 1)
        # Reference: brute force over assignments with X1 = 1.
        reference = {}
        for x2, x3 in itertools.product((0, 1), repeat=2):
            weight = (
                g.factors["u1"][1][(1,)]
                * g.factors["f12"][1][(1, x2)]
                * g.factors["f23"][1][(x2, x3)]
            )
            reference[(x3,)] = reference.get((x3,), 0.0) + weight
        total = sum(reference.values())
        marginal = inference.marginal()
        for key, value in reference.items():
            assert abs(marginal[key] - value / total) < 1e-9

    def test_zero_distribution_detected(self):
        g = FactorGraph().add_variable("X", (0, 1))
        g.add_factor("f", ("X",), {(0,): 1.0})
        inference = SumProductInference(g, free=("X",))
        inference.update_potential("f", (0,), 0.0)
        with pytest.raises(ValueError):
            inference.marginal()

    def test_partition_function_requires_no_free(self):
        g = chain_graph()
        inference = SumProductInference(g, free=("X1",))
        with pytest.raises(ValueError):
            inference.partition_function()


class TestMaxProduct:
    def test_map_value_chain(self):
        g = chain_graph()
        inference = MaxProductInference(g)
        expected = g.brute_force(mode="max")[()]
        assert abs(inference.map_value() - expected) < 1e-9

    def test_map_value_loopy(self):
        g = triangle_graph()
        inference = MaxProductInference(g)
        expected = g.brute_force(mode="max")[()]
        assert abs(inference.map_value() - expected) < 1e-9

    def test_max_marginal(self):
        g = chain_graph()
        inference = MaxProductInference(g)
        reference = g.brute_force(free=("X2",), mode="max")
        measured = inference.max_marginal("X2")
        for (key,), value in reference.items():
            assert abs(measured[key] - value) < 1e-9

    def test_map_assignment_achieves_map_value(self):
        for graph in (chain_graph(), triangle_graph()):
            inference = MaxProductInference(graph)
            assignment, best = inference.map_assignment()
            weight = 1.0
            for variables, table in graph.factors.values():
                weight *= table[tuple(assignment[v] for v in variables)]
            assert abs(weight - best) < 1e-9
