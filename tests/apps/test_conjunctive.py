"""Tests for conjunctive query evaluation with three representations (§6.3)."""


import pytest

from repro.apps import MODES, ConjunctiveQuery
from repro.core import VariableOrder
from repro.data import Relation

from tests.conftest import PAPER_SCHEMAS, paper_variable_order

FREE = ("A", "B", "C", "D")  # E stays bound, as in Example 6.5


def engines(order=None, updatable=None):
    order = order or paper_variable_order()
    return {
        mode: ConjunctiveQuery(
            "Q", PAPER_SCHEMAS, FREE, mode=mode, order=order, updatable=updatable
        )
        for mode in MODES
    }


def feed(engine, rel, rows, multiplicity=1):
    ring = engine.ring
    delta = Relation(rel, PAPER_SCHEMAS[rel], ring)
    for row in rows:
        delta.add(row, ring.from_int(multiplicity))
    engine.apply_update(delta)


FIGURE2_ROWS = {
    "R": [("a1", "b1"), ("a1", "b2"), ("a2", "b3"), ("a3", "b4")],
    "S": [("a1", "c1", "e1"), ("a1", "c1", "e2"), ("a1", "c2", "e3"), ("a2", "c2", "e4")],
    "T": [("c1", "d1"), ("c2", "d2"), ("c2", "d3"), ("c3", "d4")],
}


class TestExample65:
    """Q(A,B,C,D) = R(A,B), S(A,C,E), T(C,D) over the Figure 2 database."""

    def _loaded(self, mode):
        engine = ConjunctiveQuery(
            "Q", PAPER_SCHEMAS, FREE, mode=mode, order=paper_variable_order()
        )
        for rel, rows in FIGURE2_ROWS.items():
            feed(engine, rel, rows)
        return engine

    @pytest.mark.parametrize("mode", MODES)
    def test_figure2e_listing(self, mode):
        """The listing of Figure 2e (right column), with multiplicities."""
        expected = {
            ("a1", "b1", "c1", "d1"): 2,
            ("a1", "b1", "c2", "d2"): 1,
            ("a1", "b1", "c2", "d3"): 1,
            ("a1", "b2", "c1", "d1"): 2,
            ("a1", "b2", "c2", "d2"): 1,
            ("a1", "b2", "c2", "d3"): 1,
            ("a2", "b3", "c2", "d2"): 1,
            ("a2", "b3", "c2", "d3"): 1,
        }
        engine = self._loaded(mode)
        assert dict(engine.to_listing().items()) == expected

    def test_factorized_is_smaller(self):
        listing = self._loaded("listing_payloads")
        fact = self._loaded("factorized")
        assert fact.memory() < listing.memory()

    def test_result_size(self):
        assert self._loaded("factorized").result_size() == 8

    def test_result_relation_modes(self):
        listing = self._loaded("listing_keys").result_relation()
        payloads = self._loaded("listing_payloads").result_relation()
        assert listing.same_as(payloads.rename({}, name=listing.name))
        with pytest.raises(ValueError):
            self._loaded("factorized").result_relation()


class TestRandomAgreement:
    def test_modes_agree_under_churn(self, rng):
        all_engines = engines()
        for _ in range(100):
            rel = rng.choice(list(PAPER_SCHEMAS))
            rows = [
                tuple(rng.randint(0, 3) for _ in PAPER_SCHEMAS[rel])
                for _ in range(rng.randint(1, 3))
            ]
            multiplicity = rng.choice([1, 1, 2, -1])
            for engine in all_engines.values():
                feed(engine, rel, rows, multiplicity)
        reference = all_engines["listing_keys"].to_listing()
        for mode in ("listing_payloads", "factorized"):
            other = all_engines[mode].to_listing()
            assert reference.same_as(
                other.rename({}, name=reference.name)
            ), mode

    def test_enumeration_multiplicities(self, rng):
        """Enumerated multiplicities equal listing payload counts."""
        all_engines = engines()
        for _ in range(40):
            rel = rng.choice(list(PAPER_SCHEMAS))
            rows = [tuple(rng.randint(0, 2) for _ in PAPER_SCHEMAS[rel])]
            for engine in all_engines.values():
                feed(engine, rel, rows)
        expected = dict(all_engines["listing_keys"].result_relation().items())
        enumerated = dict(all_engines["factorized"].enumerate())
        assert enumerated == expected


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery("Q", PAPER_SCHEMAS, FREE, mode="columnar")

    def test_shared_bound_variable_rejected_at_enumeration(self):
        engine = ConjunctiveQuery(
            "Q", PAPER_SCHEMAS, ("B", "D"), mode="factorized",
            order=paper_variable_order(),
        )
        feed(engine, "R", [("a1", "b1")])
        with pytest.raises(ValueError, match="shared"):
            list(engine.enumerate())

    def test_all_variables_free_natural_join(self, rng):
        free = ("A", "B", "C", "D", "E")
        listing = ConjunctiveQuery(
            "Q", PAPER_SCHEMAS, free, mode="listing_keys",
            order=paper_variable_order(),
        )
        fact = ConjunctiveQuery(
            "Q", PAPER_SCHEMAS, free, mode="factorized",
            order=paper_variable_order(),
        )
        for _ in range(60):
            rel = rng.choice(list(PAPER_SCHEMAS))
            rows = [tuple(rng.randint(0, 2) for _ in PAPER_SCHEMAS[rel])]
            feed(listing, rel, rows)
            feed(fact, rel, rows)
        expected = listing.to_listing()
        got = fact.to_listing()
        assert expected.same_as(got.rename({}, name=expected.name))


class TestMemoryProfile:
    def test_factorized_grows_slower_on_star_join(self):
        """Per-postcode multiplicities multiply in listing mode but add in
        factorized mode — the Figure 8 (right) effect in miniature."""
        schemas = {"R1": ("P", "X"), "R2": ("P", "Y"), "R3": ("P", "Z")}
        order = VariableOrder.from_spec(("P", ["X", "Y", "Z"]))
        listing = ConjunctiveQuery(
            "star", schemas, ("P", "X", "Y", "Z"), mode="listing_keys", order=order
        )
        fact = ConjunctiveQuery(
            "star", schemas, ("P", "X", "Y", "Z"), mode="factorized", order=order
        )
        per_relation = 8
        for rel, schema in schemas.items():
            rows = [(1, i) for i in range(per_relation)]
            for engine in (listing, fact):
                ring = engine.ring
                delta = Relation(rel, schema, ring)
                for row in rows:
                    delta.add(row, ring.one)
                engine.apply_update(delta)
        # listing: 8³ result tuples; factorized: 3·8 values + views.
        assert listing.result_size() == per_relation ** 3
        assert fact.memory() < listing.memory() / 10
        assert fact.result_size() == per_relation ** 3
