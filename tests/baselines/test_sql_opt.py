"""Tests for SQL-OPT (degree-ring cofactor maintenance) and the scalar bank."""


import numpy as np

from repro.apps import CofactorModel
from repro.baselines import FirstOrderIVM, ScalarAggregateBank, SQLOptCofactor
from repro.core import Query
from repro.data import Relation
from repro.rings import Lifting, RealRing

from tests.conftest import PAPER_SCHEMAS, paper_variable_order

NUMERIC = ("B", "D", "E")


def poly_to_moments(poly: dict, m: int) -> np.ndarray:
    """Decode a degree-ring payload into the extended moment matrix."""
    out = np.zeros((m + 1, m + 1))
    for monomial, coeff in poly.items():
        if len(monomial) == 0:
            out[0, 0] = coeff
        elif len(monomial) == 1:
            out[0, monomial[0] + 1] = coeff
            out[monomial[0] + 1, 0] = coeff
        else:
            i, j = monomial
            out[i + 1, j + 1] += coeff
            if i != j:
                out[j + 1, i + 1] += coeff
    return out


class TestSQLOptAgainstFIVM:
    def test_same_moments_under_random_updates(self, rng):
        sql_opt = SQLOptCofactor(
            "so", PAPER_SCHEMAS, NUMERIC, order=paper_variable_order()
        )
        fivm = CofactorModel(
            "fm", PAPER_SCHEMAS, NUMERIC, order=paper_variable_order()
        )
        for _ in range(25):
            rel = rng.choice(list(PAPER_SCHEMAS))
            rows = [
                tuple(rng.randint(0, 3) for _ in PAPER_SCHEMAS[rel])
                for _ in range(rng.randint(1, 3))
            ]
            mult = rng.choice([1, 1, -1])
            for engine, ring in ((sql_opt, sql_opt.query.ring), (fivm, fivm.query.ring)):
                delta = Relation(rel, PAPER_SCHEMAS[rel], ring)
                for row in rows:
                    delta.add(row, ring.from_int(mult))
                engine.apply_update(delta)
            poly = sql_opt.result().payload(())
            moments = poly_to_moments(poly, len(NUMERIC))
            assert np.allclose(moments, fivm.moment_matrix(), atol=1e-6)

    def test_same_view_tree_as_fivm(self):
        sql_opt = SQLOptCofactor(
            "so", PAPER_SCHEMAS, NUMERIC, order=paper_variable_order()
        )
        fivm = CofactorModel(
            "fm", PAPER_SCHEMAS, NUMERIC, order=paper_variable_order()
        )
        assert sql_opt.view_count() == fivm.engine.view_count()


class TestScalarAggregateBank:
    def _aggregates(self):
        """COUNT, SUM(B), SUM(B*D): three scalar aggregates."""
        ring = RealRing()
        return ring, [
            ("count", Lifting(ring)),
            ("sum_b", Lifting(ring, {"B": float})),
            ("sum_bd", Lifting(ring, {"B": float, "D": float})),
        ]

    def test_bank_matches_compound_payloads(self, rng):
        ring, aggregates = self._aggregates()
        base = Query("Q", PAPER_SCHEMAS, ring=ring)
        bank = ScalarAggregateBank(
            lambda q: FirstOrderIVM(q, paper_variable_order()), base, aggregates
        )
        fivm = CofactorModel(
            "fm", PAPER_SCHEMAS, NUMERIC, order=paper_variable_order()
        )
        for _ in range(15):
            rel = rng.choice(list(PAPER_SCHEMAS))
            rows = [tuple(rng.randint(0, 3) for _ in PAPER_SCHEMAS[rel])]
            bank_delta = Relation(rel, PAPER_SCHEMAS[rel], ring)
            fivm_delta = Relation(rel, PAPER_SCHEMAS[rel], fivm.query.ring)
            for row in rows:
                bank_delta.add(row, 1.0)
                fivm_delta.add(row, fivm.query.ring.one)
            bank.apply_update(bank_delta)
            fivm.apply_update(fivm_delta)
        results = bank.result()
        moments = fivm.moment_matrix()
        assert np.isclose(results["count"].payload(()), moments[0, 0])
        assert np.isclose(results["sum_b"].payload(()), moments[0, 1])
        # B is index 0, D is index 1 in NUMERIC.
        assert np.isclose(results["sum_bd"].payload(()), moments[1, 2])

    def test_view_counts_scale_with_aggregates(self):
        """No sharing: k aggregates cost k maintenance strategies."""
        from repro.baselines import RecursiveIVM

        ring, aggregates = self._aggregates()
        base = Query("Q", PAPER_SCHEMAS, ring=ring)
        bank = ScalarAggregateBank(lambda q: RecursiveIVM(q), base, aggregates)
        single = RecursiveIVM(Query("Q1", PAPER_SCHEMAS, ring=ring))
        assert bank.view_count() == 3 * single.view_count()

    def test_view_sizes_namespaced(self):
        ring, aggregates = self._aggregates()
        base = Query("Q", PAPER_SCHEMAS, ring=ring)
        bank = ScalarAggregateBank(
            lambda q: FirstOrderIVM(q, paper_variable_order()), base, aggregates
        )
        sizes = bank.view_sizes()
        assert any(name.startswith("count:") for name in sizes)
