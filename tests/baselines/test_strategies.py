"""Cross-strategy agreement: every baseline must match F-IVM and recompute."""


import pytest

from repro.baselines import (
    FactorizedReevaluator,
    FirstOrderIVM,
    NaiveReevaluator,
    RecursiveIVM,
)
from repro.core import FIVMEngine, Query
from repro.data import Database, Relation
from repro.rings import INT_RING, Lifting, RealRing

from tests.conftest import (
    PAPER_SCHEMAS,
    figure2_database,
    paper_variable_order,
    random_delta,
    recompute,
)


def all_strategies(query, order):
    return {
        "fivm": FIVMEngine(query, order),
        "first_order": FirstOrderIVM(query, order),
        "recursive": RecursiveIVM(query),
        "f_re": FactorizedReevaluator(query, order),
        "naive_re": NaiveReevaluator(query),
    }


def check_agreement(strategies, reference):
    for name, strategy in strategies.items():
        got = strategy.result()
        aligned = got if got.schema == reference.schema else got.reorder(reference.schema)
        assert reference.same_as(
            aligned.rename({}, name=reference.name)
        ), name


class TestAgreementFuzz:
    @pytest.mark.parametrize("free", [(), ("A",), ("A", "C")])
    def test_random_updates(self, rng, free):
        q = Query("Q", PAPER_SCHEMAS, free=free, ring=INT_RING)
        order = paper_variable_order()
        strategies = all_strategies(q, order)
        db = Database(
            Relation(rel, schema, INT_RING)
            for rel, schema in PAPER_SCHEMAS.items()
        )
        for _ in range(40):
            rel = rng.choice(list(PAPER_SCHEMAS))
            delta = random_delta(rng, rel, PAPER_SCHEMAS[rel], INT_RING)
            for strategy in strategies.values():
                strategy.apply_update(delta.copy())
            db.apply_update(delta)
            check_agreement(strategies, recompute(q, db, order))

    def test_sum_aggregate_with_lifting(self, rng):
        ring = RealRing()
        lifting = Lifting(ring, {"B": float, "D": float})
        q = Query("Q", PAPER_SCHEMAS, free=("A",), ring=ring, lifting=lifting)
        order = paper_variable_order()
        strategies = all_strategies(q, order)
        db = Database(
            Relation(rel, schema, ring) for rel, schema in PAPER_SCHEMAS.items()
        )
        for _ in range(25):
            rel = rng.choice(list(PAPER_SCHEMAS))
            delta = random_delta(rng, rel, PAPER_SCHEMAS[rel], ring)
            for strategy in strategies.values():
                strategy.apply_update(delta.copy())
            db.apply_update(delta)
            check_agreement(strategies, recompute(q, db, order))


class TestInitialization:
    def test_all_strategies_initialize_from_snapshot(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        order = paper_variable_order()
        db = figure2_database()
        strategies = {
            "fivm": FIVMEngine(q, order, db=db),
            "first_order": FirstOrderIVM(q, order, db=db),
            "recursive": RecursiveIVM(q, db=db),
            "f_re": FactorizedReevaluator(q, order, db=db),
            "naive_re": NaiveReevaluator(q, db=db),
        }
        for name, strategy in strategies.items():
            assert strategy.result().payload(()) == 10, name


class TestFirstOrderSpecifics:
    def test_stores_only_bases_and_result(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        strategy = FirstOrderIVM(q, paper_variable_order())
        sizes = strategy.view_sizes()
        assert set(sizes) == {"R", "S", "T", strategy.tree.root.name}

    def test_unknown_relation_rejected(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        strategy = FirstOrderIVM(q, paper_variable_order())
        with pytest.raises(KeyError):
            strategy.apply_update(Relation("Z", ("A",), INT_RING, {(1,): 1}))


class TestRecursiveSpecifics:
    def test_star_query_factors_into_per_relation_views(self):
        """Housing-style: delta binds the join key, so DBT materializes one
        aggregated view per other relation (conditional independence)."""
        schemas = {f"R{i}": ("P", f"X{i}") for i in range(4)}
        q = Query("star", schemas, ring=INT_RING)
        strategy = RecursiveIVM(q)
        # top + one single-relation view per relation (memoized across
        # hierarchies) = 5.
        assert strategy.view_count() == 5

    def test_snowflake_view_count_exceeds_fivm(self):
        """DBT materializes joined subqueries per hierarchy; F-IVM shares
        one tree.  On the paper query DBT needs strictly more views."""
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        recursive = RecursiveIVM(q)
        fivm = FIVMEngine(q, paper_variable_order())
        assert recursive.view_count() > fivm.view_count()

    def test_restricted_updatable(self, rng):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        strategy = RecursiveIVM(q, updatable=["T"])
        full = RecursiveIVM(q)
        assert strategy.view_count() <= full.view_count()
        db = Database(
            Relation(rel, schema, INT_RING)
            for rel, schema in PAPER_SCHEMAS.items()
        )
        for _ in range(20):
            delta = random_delta(rng, "T", PAPER_SCHEMAS["T"], INT_RING)
            strategy.apply_update(delta.copy())
            db.apply_update(delta)
        assert strategy.result().same_as(
            recompute(q, db, paper_variable_order()).rename(
                {}, name=strategy.result().name
            )
        )

    def test_update_to_non_updatable_rejected(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        strategy = RecursiveIVM(q, updatable=["T"])
        with pytest.raises(KeyError):
            strategy.apply_update(Relation("R", ("A", "B"), INT_RING, {(1, 2): 1}))

    def test_view_sizes_reported(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        strategy = RecursiveIVM(q, db=figure2_database())
        sizes = strategy.view_sizes()
        assert len(sizes) == strategy.view_count()
        assert all(size >= 0 for size in sizes.values())
