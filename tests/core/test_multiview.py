"""Targeted multi-view engine tests: sharing, lag scheduling, switching.

The broad exactness guarantee (a sharing MultiViewEngine equals N
independent engines on random queries) lives in the differential suite
(``test_differential_random.py``); this file pins down the mechanisms —
publish/promote sharing, fake-clock lag coalescing, tick ordering, the
incremental-vs-recompute switch boundary, deregistration freeing shared
nodes, and the ViewServer front door.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import FIVMEngine, MultiViewEngine, Query
from repro.data.database import Database
from repro.data.relation import Relation
from repro.rings import INT_RING, SquareMatrixRing
from repro.serve import ViewServer


class FakeClock:
    """Injectable monotonic time: tests advance it explicitly."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


CORE = {"R": ("A", "B"), "S": ("B", "C")}


def chain_query(name: str, extra: str) -> Query:
    """R(A,B) ⋈ S(B,C) ⋈ <extra>(A,D), free A — all share the {R,S} core."""
    relations = dict(CORE)
    relations[extra] = ("A", "D")
    return Query(name, relations, free=("A",), ring=INT_RING)


def oracle(query: Query, tables) -> dict:
    """Ground truth from a fresh single-query engine over final state."""
    ring = query.ring
    engine = FIVMEngine(query)
    engine.initialize(
        Database(
            Relation(
                rel,
                query.relations[rel],
                ring,
                {
                    key: ring.from_int(count)
                    for key, count in tables.get(rel, {}).items()
                },
            )
            for rel in query.relations
        )
    )
    return dict(engine.result().items())


def apply_counts(tables: dict, rel: str, counts: dict) -> None:
    current = tables.setdefault(rel, {})
    for key, count in counts.items():
        total = current.get(key, 0) + count
        if total:
            current[key] = total
        else:
            current.pop(key, None)


def result_dict(mv: MultiViewEngine, name: str) -> dict:
    return dict(mv.result(name).items())


def test_publish_then_promote_shares_common_subtree():
    mv = MultiViewEngine()
    mv.register(chain_query("Q1", "T1"))
    assert mv.shared_stats() == {}  # one occurrence: published, not shared

    mv.register(chain_query("Q2", "T2"))
    stats = mv.shared_stats()
    assert len(stats) == 1  # second occurrence promoted the {R, S} core
    (entry,) = stats.values()
    assert entry["subscribers"] == 2
    assert entry["relations"] == ("R", "S")

    mv.register(chain_query("Q3", "T3"))
    (entry,) = mv.shared_stats().values()
    assert entry["subscribers"] == 3

    tables: dict = {}
    for rel, counts in [
        ("R", {(1, 10): 1, (2, 10): 2}),
        ("S", {(10, 5): 1, (10, 6): 1}),
        ("T1", {(1, 0): 1}),
        ("T2", {(2, 0): 3}),
        ("T3", {(1, 0): 1, (2, 0): 1}),
    ]:
        mv.apply_update(rel, counts)
        apply_counts(tables, rel, counts)
    for name, extra in [("Q1", "T1"), ("Q2", "T2"), ("Q3", "T3")]:
        assert result_dict(mv, name) == oracle(chain_query(name, extra), tables)


def test_shared_core_maintained_once_per_update():
    mv = MultiViewEngine()
    for i in range(4):
        mv.register(chain_query(f"Q{i}", f"T{i}"), target_lag=0.0)
        mv.apply_update(f"T{i}", {(1, 0): 1})
    mv.apply_batch([("R", {(1, 10): 1}), ("S", {(10, 5): 1})])
    (before,) = mv.shared_stats().values()
    # Each of these joins existing rows, so each shared refresh produces a
    # non-empty root delta (empty deltas skip the fanout entirely).
    mv.apply_update("R", {(2, 10): 1})
    mv.apply_update("S", {(10, 6): 1})
    (entry,) = mv.shared_stats().values()
    # Two shared-core updates → two shared refreshes, regardless of the
    # four subscribers; the other three subscribers per update hit the
    # already-fresh state, and every refresh fans out to all four.
    assert entry["refreshes"] - before["refreshes"] == 2
    assert entry["hits"] - before["hits"] == 2 * 3
    assert entry["fanouts"] - before["fanouts"] == 2 * 4


def test_target_lag_coalesces_refreshes():
    clock = FakeClock()
    # recompute_fraction=2 pins the incremental path: this test is about
    # coalescing, not the switch (covered by test_recompute_switch_boundary).
    mv = MultiViewEngine(clock=clock, recompute_fraction=2.0)
    mv.register(chain_query("Q1", "T1"), target_lag=10.0)
    mv.apply_update("T1", {(1, 0): 1})
    mv.apply_update("R", {(1, 10): 1})
    clock.advance(5.0)
    mv.apply_update("S", {(10, 7): 1})
    assert mv.tick() == []  # oldest pending is 5s old < 10s budget
    assert mv._views["Q1"].stats["refreshes"] == 0
    assert result_dict(mv, "Q1") == {}  # served state still the old one

    clock.advance(5.0)
    assert mv.tick() == ["Q1"]  # lag exhausted: one coalesced refresh
    stats = mv.view_stats("Q1")
    assert stats["refreshes"] == 1
    assert stats["incremental"] == 1
    assert stats["pending"] == 0
    assert result_dict(mv, "Q1") == {(1,): 1}
    assert mv.tick() == []  # nothing pending: tick is a no-op


def test_eager_views_refresh_on_ingest():
    mv = MultiViewEngine()
    mv.register(chain_query("Q1", "T1"))  # target_lag defaults to 0
    refreshed = mv.apply_update("R", {(1, 10): 1})
    assert refreshed == ["Q1"]
    assert mv.freshness("Q1")["staleness"] == 0.0


def test_tick_refreshes_most_overdue_first():
    clock = FakeClock()
    mv = MultiViewEngine(clock=clock)
    mv.register(Query("QA", {"RA": ("A",)}, free=("A",), ring=INT_RING),
                target_lag=1.0)
    mv.register(Query("QB", {"RB": ("A",)}, free=("A",), ring=INT_RING),
                target_lag=6.0)
    mv.register(Query("QC", {"RC": ("A",)}, free=("A",), ring=INT_RING),
                target_lag=3.0)
    # Same pending age, different budgets → overdue = age − lag decides.
    mv.apply_batch([("RA", {(1,): 1}), ("RB", {(1,): 1}), ("RC", {(1,): 1})])
    clock.advance(8.0)
    assert mv.tick() == ["QA", "QC", "QB"]


def test_recompute_switch_boundary():
    def make(fraction):
        mv = MultiViewEngine(recompute_fraction=fraction, sharing=False)
        mv.register(
            Query("Q", {"R": ("A", "B")}, free=("A",), ring=INT_RING),
            target_lag=5.0,
        )
        mv.apply_update("R", {(a, 0): 1 for a in range(10)})
        mv.drain()  # the seed refresh itself recomputes (touches 100%)
        return mv, dict(mv.view_stats("Q"))

    # 4 touched keys over a 10-key base: 0.4 > 0.3 → recompute.
    mv, seed = make(0.3)
    mv.apply_update("R", {(a, 0): 1 for a in range(4)})
    mv.drain()
    assert mv.view_stats("Q")["recomputes"] - seed["recomputes"] == 1
    assert result_dict(mv, "Q") == {
        (a,): 2 if a < 4 else 1 for a in range(10)
    }

    # 0.4 is not strictly above a 0.4 threshold → incremental.
    mv, seed = make(0.4)
    mv.apply_update("R", {(a, 0): 1 for a in range(4)})
    mv.drain()
    assert mv.view_stats("Q")["recomputes"] - seed["recomputes"] == 0
    assert mv.view_stats("Q")["incremental"] - seed["incremental"] == 1


def test_deregister_frees_shared_nodes():
    mv = MultiViewEngine()
    mv.register(chain_query("Q1", "T1"))
    mv.register(chain_query("Q2", "T2"))
    mv.register(chain_query("Q3", "T3"))
    (entry,) = mv.shared_stats().values()
    assert entry["subscribers"] == 3

    mv.deregister("Q2")
    (entry,) = mv.shared_stats().values()
    assert entry["subscribers"] == 2
    mv.deregister("Q1")
    mv.deregister("Q3")
    assert mv.shared_stats() == {}  # last subscriber gone → engine freed
    assert mv.view_names() == ()
    assert mv._rel_shared == {}

    # The pool is still usable: a fresh pair shares again from scratch.
    mv.register(chain_query("Q4", "T4"))
    mv.register(chain_query("Q5", "T5"))
    (entry,) = mv.shared_stats().values()
    assert entry["subscribers"] == 2
    mv.apply_update("R", {(1, 10): 1})
    mv.apply_update("S", {(10, 5): 1})
    mv.apply_update("T4", {(1, 0): 1})
    assert result_dict(mv, "Q4") == {(1,): 1}


def test_late_registration_sees_current_state():
    mv = MultiViewEngine()
    mv.register(chain_query("Q1", "T1"))
    tables: dict = {}
    for rel, counts in [
        ("R", {(1, 10): 1}),
        ("S", {(10, 5): 2}),
        ("T1", {(1, 0): 1}),
    ]:
        mv.apply_update(rel, counts)
        apply_counts(tables, rel, counts)
    # Registered after the data arrived: must come up fully fresh.
    mv.register(chain_query("Q2", "T2"))
    apply_counts(tables, "T2", {(1, 9): 1})
    mv.apply_update("T2", {(1, 9): 1})
    assert result_dict(mv, "Q2") == oracle(chain_query("Q2", "T2"), tables)


def test_non_commutative_ring_disables_sharing_but_stays_exact():
    ring = SquareMatrixRing(2)
    queries = []
    for i in range(2):
        relations = dict(CORE)
        relations[f"T{i}"] = ("A", "D")
        queries.append(Query(f"Q{i}", relations, free=("A",), ring=ring))
    mv = MultiViewEngine()
    for query in queries:
        mv.register(query)
    assert mv.shared_stats() == {}  # matrix product does not commute

    tables: dict = {}
    for rel, counts in [
        ("R", {(1, 10): 1}),
        ("S", {(10, 5): 1}),
        ("T0", {(1, 0): 2}),
        ("T1", {(1, 0): 1}),
    ]:
        mv.apply_update(rel, counts)
        apply_counts(tables, rel, counts)
    for query in queries:
        got = result_dict(mv, query.name)
        want = oracle(query, tables)
        assert set(got) == set(want)
        for key in want:  # matrix payloads: compare element-wise
            assert (got[key] == want[key]).all()


def test_registration_errors():
    mv = MultiViewEngine()
    mv.register(chain_query("Q1", "T1"))
    with pytest.raises(ValueError, match="already registered"):
        mv.register(chain_query("Q1", "T9"))
    with pytest.raises(ValueError, match="schema"):
        mv.register(
            Query("Q2", {"R": ("A", "X", "Y")}, free=("A",), ring=INT_RING)
        )
    with pytest.raises(ValueError, match="pseudo-relation"):
        mv.register(
            Query("Q3", {"__sv9__": ("A", "B")}, free=("A",), ring=INT_RING)
        )
    with pytest.raises(KeyError):
        mv.apply_update("NOPE", {(1,): 1})
    # Failed registrations leave no residue.
    assert mv.view_names() == ("Q1",)


def test_view_server_front_door():
    async def main():
        clock = FakeClock()
        mv = MultiViewEngine(clock=clock)
        server = await ViewServer(mv, tick_interval=0.01).start()
        try:
            await server.register(chain_query("Q1", "T1"), target_lag=0.0)
            await server.register(chain_query("Q2", "T2"), target_lag=30.0)
            await server.apply([
                ("R", {(1, 10): 1}),
                ("S", {(10, 5): 1}),
                ("T1", {(1, 0): 1}),
                ("T2", {(1, 0): 2}),
            ])
            payload, fresh = await server.lookup_fresh("Q1", (1,))
            assert payload == 1
            assert fresh["staleness"] == 0.0

            # The lagged view still serves its pre-update (empty) state...
            payload, fresh = await server.lookup_fresh("Q2", (1,))
            assert payload == 0
            assert fresh["pending"] > 0
            # ...until its lag budget runs out and the background tick
            # (real sleeps, fake engine clock) refreshes it.
            clock.advance(31.0)
            for _ in range(100):
                await asyncio.sleep(0.02)
                payload, fresh = await server.lookup_fresh("Q2", (1,))
                if payload:
                    break
            assert payload == 2
            assert fresh["pending"] == 0

            server.set_target_lag("Q2", 0.0)
            await server.deregister("Q1")
            assert mv.view_names() == ("Q2",)
        finally:
            await server.stop()

    asyncio.run(main())


def test_view_server_rejects_multiview_ops_on_single_engine():
    async def main():
        query = chain_query("Q1", "T1")
        engine = FIVMEngine(query)
        engine.initialize(
            Database(
                Relation(rel, query.relations[rel], INT_RING)
                for rel in query.relations
            )
        )
        server = await ViewServer(engine).start()
        try:
            with pytest.raises(TypeError, match="MultiViewEngine"):
                await server.register(chain_query("Q2", "T2"))
        finally:
            await server.stop()

    asyncio.run(main())
