"""Differential tests for the slot-compiled delta programs.

Three implementations must agree key-for-key on random queries and random
insert/delete streams:

* the compiled slot executor (``FIVMEngine(compiled=True)``, the default),
* the dict-binding interpreter (``compiled=False``, the reference
  semantics the programs are compiled from),
* full recomputation (``RecursiveIVM`` and from-scratch evaluation).

Runs across the ℤ, cofactor, and (non-commutative) matrix rings — the
matrix ring guards the compiled product order — plus indicator-adorned
trees and the batched ``apply_batch`` trigger.
"""

import random

import numpy as np
import pytest

from repro.baselines.recursive import RecursiveIVM
from repro.core import (
    FIVMEngine,
    Query,
    VariableOrder,
    add_indicator_projections,
    build_view_tree,
)
from repro.data import Database, Relation
from repro.rings import CofactorRing, INT_RING, Lifting, SquareMatrixRing

from tests.conftest import (
    PAPER_SCHEMAS,
    paper_variable_order,
    random_delta,
    recompute,
)

TRIANGLE_SCHEMAS = {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "A")}

STAR_SCHEMAS = {
    "F": ("K", "X"),
    "D1": ("K", "Y"),
    "D2": ("K", "Z"),
}


def int_query(name, schemas, free=()):
    return Query(name, schemas, free=free, ring=INT_RING)


def cofactor_paper_query():
    ring = CofactorRing(3)
    lifting = Lifting(ring, {
        "B": ring.lift(0), "D": ring.lift(1), "E": ring.lift(2),
    })
    return Query("Qcof", PAPER_SCHEMAS, ring=ring, lifting=lifting)


def matrix_paper_query():
    ring = SquareMatrixRing(2)
    lifting = Lifting(ring, {
        "B": lambda x: np.eye(2) + 0.1 * x * np.array([[0.0, 1], [0, 0]]),
        "D": lambda x: np.eye(2) + 0.1 * x * np.array([[0.0, 0], [1, 0]]),
    })
    return Query("Qmat", PAPER_SCHEMAS, ring=ring, lifting=lifting)


def drive_differentially(
    query, order, schemas, steps, rng, free_ok=True, domain=3
):
    """Random stream through compiled vs interpreter vs recompute."""
    from repro.core.ir import InterpreterDeltaProgram
    from repro.core.plan_exec import SlotProgram

    compiled = FIVMEngine(query, order, compiled=True)
    interpreted = FIVMEngine(query, order, compiled=False)
    assert compiled._programs, "compiled engine must hold slot programs"
    assert all(
        isinstance(p, SlotProgram) for p in compiled._programs.values()
    ), "compiled=True must realize the IR through the source backend"
    assert interpreted._programs and all(
        isinstance(p, InterpreterDeltaProgram)
        for p in interpreted._programs.values()
    ), "compiled=False must realize the IR through the interpreter backend"
    db = Database(
        Relation(rel, schema, query.ring) for rel, schema in schemas.items()
    )
    for step in range(steps):
        rel = rng.choice(list(schemas))
        delta = random_delta(rng, rel, schemas[rel], query.ring, domain=domain)
        root_c = compiled.apply_update(delta.copy())
        root_i = interpreted.apply_update(delta.copy())
        db.apply_update(delta)
        assert root_c.same_as(root_i), f"root deltas diverged at step {step}"
        assert compiled.result().same_as(interpreted.result())
    expected = recompute(query, db, order).reorder(
        compiled.result().schema
    )
    assert compiled.result().same_as(expected)
    # Every materialized auxiliary view agrees too.
    for name, contents in compiled.views.items():
        assert contents.same_as(interpreted.views[name]), name
    return compiled, db


class TestCompiledMatchesReference:
    def test_int_ring_paper_query(self, rng):
        q = int_query("Q", PAPER_SCHEMAS, free=("A",))
        drive_differentially(q, paper_variable_order(), PAPER_SCHEMAS, 30, rng)

    def test_int_ring_random_orders(self, rng):
        for seed in range(4):
            local = random.Random(seed)
            q = int_query(f"Q{seed}", PAPER_SCHEMAS, free=("A", "C"))
            order = VariableOrder.auto(q)
            drive_differentially(q, order, PAPER_SCHEMAS, 15, local)

    def test_star_schema_group_aware(self, rng):
        q = int_query("star", STAR_SCHEMAS)
        drive_differentially(q, None, STAR_SCHEMAS, 25, rng)

    def test_cofactor_ring(self, rng):
        q = cofactor_paper_query()
        drive_differentially(q, paper_variable_order(), PAPER_SCHEMAS, 20, rng)

    def test_matrix_ring_non_commutative(self, rng):
        """Compiled product order must match the interpreter's child order."""
        q = matrix_paper_query()
        drive_differentially(q, paper_variable_order(), PAPER_SCHEMAS, 20, rng)

    def test_group_aware_off_still_agrees(self, rng):
        q = int_query("Q", PAPER_SCHEMAS)
        compiled = FIVMEngine(
            q, paper_variable_order(), group_aware=False, compiled=True
        )
        interpreted = FIVMEngine(
            q, paper_variable_order(), group_aware=False, compiled=False
        )
        for _ in range(20):
            rel = rng.choice(list(PAPER_SCHEMAS))
            delta = random_delta(rng, rel, PAPER_SCHEMAS[rel], INT_RING)
            compiled.apply_update(delta.copy())
            interpreted.apply_update(delta)
        assert compiled.result().same_as(interpreted.result())


class TestCompiledMatchesFullRecompute:
    def test_against_recursive_ivm(self, rng):
        """Third reference: the DBToaster-style recursive baseline."""
        q = int_query("Q", PAPER_SCHEMAS)
        compiled = FIVMEngine(q, paper_variable_order(), compiled=True)
        dbt = RecursiveIVM(int_query("Qd", PAPER_SCHEMAS))
        for _ in range(30):
            rel = rng.choice(list(PAPER_SCHEMAS))
            delta = random_delta(rng, rel, PAPER_SCHEMAS[rel], INT_RING)
            compiled.apply_update(delta.copy())
            dbt.apply_update(delta)
        result = compiled.result()
        reference = dbt.result()
        assert result.payload(()) == reference.payload(())

    def test_cofactor_against_recursive_ivm(self, rng):
        q = cofactor_paper_query()
        ring = q.ring
        compiled = FIVMEngine(q, paper_variable_order(), compiled=True)
        dbt = RecursiveIVM(cofactor_paper_query())
        for _ in range(15):
            rel = rng.choice(list(PAPER_SCHEMAS))
            delta = random_delta(rng, rel, PAPER_SCHEMAS[rel], ring)
            compiled.apply_update(delta.copy())
            dbt.apply_update(delta)
        assert ring.eq(
            compiled.result().payload(()), dbt.result().payload(())
        )


class TestIndicatorPrograms:
    def test_triangle_with_indicators(self, rng):
        """Indicator-source slot programs agree with the interpreter."""
        def adorned_engine(compiled):
            q = int_query("tri", TRIANGLE_SCHEMAS)
            tree = add_indicator_projections(
                build_view_tree(q, VariableOrder.chain(("A", "B", "C")))
            )
            return FIVMEngine(q, tree=tree, compiled=compiled)

        compiled = adorned_engine(True)
        interpreted = adorned_engine(False)
        db = Database(
            Relation(rel, schema, INT_RING)
            for rel, schema in TRIANGLE_SCHEMAS.items()
        )
        for step in range(30):
            rel = rng.choice(list(TRIANGLE_SCHEMAS))
            delta = random_delta(rng, rel, TRIANGLE_SCHEMAS[rel], INT_RING)
            root_c = compiled.apply_update(delta.copy())
            root_i = interpreted.apply_update(delta.copy())
            db.apply_update(delta)
            assert root_c.same_as(root_i), f"diverged at step {step}"
        q = int_query("tri_ref", TRIANGLE_SCHEMAS)
        expected = recompute(q, db).reorder(compiled.result().schema)
        assert compiled.result().same_as(expected)


class TestApplyBatch:
    def _random_deltas(self, rng, schemas, ring, count):
        deltas = []
        for _ in range(count):
            rel = rng.choice(list(schemas))
            deltas.append(random_delta(rng, rel, schemas[rel], ring))
        return deltas

    @pytest.mark.parametrize("make_query", [
        lambda: int_query("Q", PAPER_SCHEMAS, free=("A",)),
        cofactor_paper_query,
        matrix_paper_query,
    ])
    def test_batch_equals_sequential(self, rng, make_query):
        q_batch, q_seq = make_query(), make_query()
        ring = q_batch.ring
        order = paper_variable_order()
        batched = FIVMEngine(q_batch, order)
        sequential = FIVMEngine(q_seq, order)
        for round_no in range(6):
            deltas = self._random_deltas(rng, PAPER_SCHEMAS, ring, 8)
            total = batched.apply_batch([d.copy() for d in deltas])
            expected_total = None
            for delta in deltas:
                contribution = sequential.apply_update(delta)
                expected_total = (
                    contribution if expected_total is None
                    else expected_total.union(contribution)
                )
            assert batched.result().same_as(sequential.result()), round_no
            assert total.same_as(
                expected_total.rename({}, name=total.name)
            ), round_no

    def test_batch_coalesces_cancelling_deltas(self):
        q = int_query("Q", PAPER_SCHEMAS)
        engine = FIVMEngine(q, paper_variable_order())
        up = Relation("R", PAPER_SCHEMAS["R"], INT_RING, {(1, 2): 1})
        down = Relation("R", PAPER_SCHEMAS["R"], INT_RING, {(1, 2): -1})
        root = engine.apply_batch([up, down])
        assert root.is_empty
        assert engine.total_keys() == 0

    def test_delta_groups_feed_matches_sequential_stream(self, rng):
        """The stream→delta_groups→apply_batch pipeline (the harness wiring)
        ends in the same state as applying the stream delta by delta."""
        from repro.datasets.streams import UpdateBatch, UpdateStream

        rows = {
            rel: [
                tuple(rng.randint(0, 2) for _ in schema) for _ in range(12)
            ]
            for rel, schema in PAPER_SCHEMAS.items()
        }
        batches = []
        for i in range(12):
            for rel in PAPER_SCHEMAS:
                batches.append(UpdateBatch(rel, [rows[rel][i]], +1))
        stream = UpdateStream(PAPER_SCHEMAS, batches)
        q_batch = int_query("Qb", PAPER_SCHEMAS, free=("A",))
        q_seq = int_query("Qs", PAPER_SCHEMAS, free=("A",))
        order = paper_variable_order()
        batched = FIVMEngine(q_batch, order)
        sequential = FIVMEngine(q_seq, order)
        for group in stream.delta_groups(INT_RING, 5):
            assert len(group) <= 5
            batched.apply_batch(group)
        for delta in stream.deltas(INT_RING):
            sequential.apply_update(delta)
        assert batched.result().same_as(sequential.result())

    def test_batch_rejects_unknown_relation(self):
        q = int_query("Q", PAPER_SCHEMAS)
        engine = FIVMEngine(q, paper_variable_order(), updatable=["R"])
        bad = Relation("S", PAPER_SCHEMAS["S"], INT_RING, {(1, 2, 3): 1})
        with pytest.raises(KeyError):
            engine.apply_batch([bad])


class TestProgramShape:
    def test_generated_source_is_allocation_free(self):
        """The trigger source must not allocate dict bindings per match."""
        q = int_query("Q", PAPER_SCHEMAS, free=("A",))
        engine = FIVMEngine(q, paper_variable_order())
        assert engine._programs
        for program in engine._programs.values():
            src = program.source_text
            assert src.startswith("def _trigger(")
            assert "dict(" not in src
            assert "zip(" not in src
