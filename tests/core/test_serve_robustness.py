"""Graceful degradation in the serving tier: writer-crash containment,
bounded-queue backpressure/shed, per-request timeouts, cancelled-apply
semantics, and EpochLock behaviour under task cancellation.

The invariants: clients never hang on a queue nobody drains (a dead
writer surfaces its *real* exception, ``stop()`` still returns and is
idempotent), a full queue either blocks or sheds per policy, and a
submitter that stops waiting — timeout or cancellation — does not stop
the commit: the group still applies and its epoch still publishes
(commit-anyway, the documented semantics).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import FIVMEngine, Query
from repro.core.faults import FaultPlan, InjectedCrash
from repro.data import Database, Relation
from repro.rings import INT_RING
from repro.serve import Backpressure, EpochLock, ViewServer, WriterCrashed

SCHEMAS = {"R": ("A", "B"), "S": ("A", "C")}


def make_engine(tag: str = "Q") -> FIVMEngine:
    engine = FIVMEngine(Query(tag, SCHEMAS, free=("A",), ring=INT_RING))
    R = Relation("R", ("A", "B"), INT_RING)
    S = Relation("S", ("A", "C"), INT_RING)
    for a in range(4):
        R.add((a, 0), 1)
        S.add((a, 1), 2)
    engine.initialize(Database([R, S]))
    return engine


def delta(i: int) -> Relation:
    return Relation("R", ("A", "B"), INT_RING, {(i % 4, 5 + i): 1})


# ----------------------------------------------------------------------
# Writer-crash containment
# ----------------------------------------------------------------------


def test_writer_crash_fails_clients_and_stop_does_not_deadlock():
    async def main():
        server = ViewServer(
            make_engine(), faults=FaultPlan.parse("writer.loop@2=crash")
        )
        await server.start()
        await server.apply([delta(0)])
        # the in-flight group gets the writer's real exception
        with pytest.raises(InjectedCrash):
            await server.apply([delta(1)])
        # later submitters fail fast, cause preserved
        with pytest.raises(WriterCrashed) as info:
            await server.apply([delta(2)])
        assert isinstance(info.value.__cause__, InjectedCrash)
        # stop() must not join a queue nobody drains — bound the wait
        await asyncio.wait_for(server.stop(), timeout=2.0)
        await server.stop()  # idempotent

    asyncio.run(main())


def test_writer_crash_fails_queued_futures_with_real_exception():
    async def main():
        server = ViewServer(
            make_engine(), faults=FaultPlan.parse("writer.loop@1=crash")
        )
        await server.start()
        # pile groups up while a reader blocks the writer, so the crash
        # lands with a non-empty queue
        async with server.lock.read():
            tasks = [
                asyncio.create_task(server.apply([delta(i)]))
                for i in range(3)
            ]
            await asyncio.sleep(0.01)
        results = await asyncio.gather(*tasks, return_exceptions=True)
        assert all(isinstance(r, InjectedCrash) for r in results)
        await asyncio.wait_for(server.stop(), timeout=2.0)

    asyncio.run(main())


# ----------------------------------------------------------------------
# Backpressure and shedding
# ----------------------------------------------------------------------


def test_bounded_queue_sheds_when_full():
    async def main():
        server = ViewServer(make_engine(), max_queue=1, overflow="shed")
        await server.start()
        async with server.lock.read():  # writer cannot drain
            first = asyncio.create_task(server.apply([delta(0)]))
            await asyncio.sleep(0)  # writer picks this up, blocks on lock
            second = asyncio.create_task(server.apply([delta(1)]))
            await asyncio.sleep(0)  # fills the queue
            with pytest.raises(Backpressure):
                await server.apply([delta(2)])
        await first
        await second
        await server.stop()

    asyncio.run(main())


def test_bounded_queue_wait_policy_applies_backpressure():
    async def main():
        server = ViewServer(make_engine(), max_queue=1, overflow="wait")
        await server.start()
        submitted = []
        async with server.lock.read():
            first = asyncio.create_task(server.apply([delta(0)]))
            await asyncio.sleep(0)
            second = asyncio.create_task(server.apply([delta(1)]))
            await asyncio.sleep(0)

            async def third():
                result = await server.apply([delta(2)])
                submitted.append(result)

            blocked = asyncio.create_task(third())
            await asyncio.sleep(0.01)
            assert not submitted  # still waiting for queue space
        await asyncio.gather(first, second, blocked)
        assert len(submitted) == 1
        await server.stop()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Timeouts and cancellation: commit-anyway
# ----------------------------------------------------------------------


def test_apply_timeout_commits_anyway_and_publishes_epoch():
    async def main():
        server = ViewServer(make_engine())
        await server.start()
        epoch0 = server.epoch
        root = server.engine.tree.root.name
        async with server.lock.read():  # hold the writer out
            with pytest.raises(asyncio.TimeoutError):
                await server.apply([delta(0)], timeout=0.05)
        await asyncio.sleep(0.05)  # writer drains once readers release
        assert server.epoch > epoch0
        payload = await server.lookup(root, (0,))
        assert payload != INT_RING.zero  # the timed-out group committed
        await server.stop()

    asyncio.run(main())


def test_cancelled_apply_still_commits_and_advances_epoch():
    async def main():
        server = ViewServer(make_engine())
        await server.start()
        epoch0 = server.epoch
        async with server.lock.read():
            submitter = asyncio.create_task(server.apply([delta(0)]))
            await asyncio.sleep(0)  # enqueue before cancelling
            submitter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await submitter
        await asyncio.sleep(0.05)
        # documented commit-anyway semantics: the group applied and its
        # epoch published even though nobody is waiting for the result
        assert server.epoch > epoch0
        root = server.engine.tree.root.name
        assert await server.lookup(root, (0,)) != INT_RING.zero
        await server.stop()

    asyncio.run(main())


def test_default_apply_timeout_from_constructor():
    async def main():
        server = ViewServer(make_engine(), apply_timeout=0.05)
        await server.start()
        async with server.lock.read():
            with pytest.raises(asyncio.TimeoutError):
                await server.apply([delta(0)])
        await server.stop()

    asyncio.run(main())


# ----------------------------------------------------------------------
# EpochLock under cancellation
# ----------------------------------------------------------------------


def test_reader_cancelled_while_waiting_does_not_strand_writer():
    async def main():
        lock = EpochLock()
        started = asyncio.Event()
        release = asyncio.Event()

        async def writer():
            async with lock.write():
                started.set()
                await release.wait()

        w = asyncio.create_task(writer())
        await started.wait()

        async def reader():
            async with lock.read():
                pass  # pragma: no cover - must never acquire

        r = asyncio.create_task(reader())
        await asyncio.sleep(0.01)  # reader parks behind the writer
        r.cancel()
        with pytest.raises(asyncio.CancelledError):
            await r
        release.set()
        await w
        assert lock.epoch == 1
        # the lock is healthy: both sides still acquire
        async with lock.write():
            pass
        async with lock.read() as epoch:
            assert epoch == 2

    asyncio.run(main())


def test_reader_cancelled_while_holding_releases_the_lock():
    async def main():
        lock = EpochLock()
        holding = asyncio.Event()

        async def reader():
            async with lock.read():
                holding.set()
                await asyncio.sleep(30)  # cancelled long before

        r = asyncio.create_task(reader())
        await holding.wait()
        r.cancel()
        with pytest.raises(asyncio.CancelledError):
            await r
        # the read side was released: a writer can acquire promptly
        async def acquire_write():
            async with lock.write():
                pass

        await asyncio.wait_for(acquire_write(), 1.0)
        assert lock.epoch == 1

    asyncio.run(main())


def test_writer_cancelled_while_waiting_unblocks_readers():
    async def main():
        lock = EpochLock()
        holding = asyncio.Event()
        release = asyncio.Event()

        async def reader_hold():
            async with lock.read():
                holding.set()
                await release.wait()

        first = asyncio.create_task(reader_hold())
        await holding.wait()

        async def writer():
            async with lock.write():
                pass  # pragma: no cover - must never acquire

        w = asyncio.create_task(writer())
        await asyncio.sleep(0.01)  # writer now waiting; readers queue behind

        async def reader_blocked():
            async with lock.read() as epoch:
                return epoch

        r = asyncio.create_task(reader_blocked())
        await asyncio.sleep(0.01)
        assert not r.done()  # writer preference holds it back
        w.cancel()
        with pytest.raises(asyncio.CancelledError):
            await w
        # the cancelled writer must have cleared writers_waiting
        assert await asyncio.wait_for(r, 1.0) == 0
        release.set()
        await first
        assert lock.epoch == 0  # no write ever completed

    asyncio.run(main())


def test_lookup_cancellation_leaves_server_serviceable():
    async def main():
        server = ViewServer(make_engine())
        await server.start()
        root = server.engine.tree.root.name

        async def slow_lookup():
            async with server.lock.read():
                await asyncio.sleep(30)

        task = asyncio.create_task(slow_lookup())
        await asyncio.sleep(0.01)
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        # writes and reads proceed; epochs stay consistent
        before = server.epoch
        await asyncio.wait_for(server.apply([delta(0)]), 1.0)
        assert server.epoch == before + 1
        payloads, epoch = await server.lookup_many(root, [(0,), (1,)])
        assert epoch == server.epoch
        await server.stop()

    asyncio.run(main())
