"""Partial materialization and the serving layer, held to the full engine.

Covers the serving-mode failure classes one by one: cold-key upqueries
(recompute through the view tree must equal full maintenance), eviction
and re-lookup round trips (evicted state must come back exactly), deltas
for unregistered keys (dropped, recorded, and sound to re-register
later), the memory-budget ceiling (measured with the same logical-scalar
accounting as :mod:`repro.bench.memory`), the initialize/write
choke-point regression (stale probe-cache entries after a reload), and
the asyncio front door (many readers, one writer, epoch handoff — no
torn reads across an ``apply_batch``).  The randomized cross-backend
sweep lives in ``test_differential_random.py``; these tests pin down
each mechanism with hand-built streams small enough to read.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.bench.memory import relation_scalars
from repro.core import FIVMEngine, Query, VariableOrder, ViewClient, upquery
from repro.data import Relation
from repro.rings import INT_RING
from repro.serve import EpochLock, ViewServer

from tests.conftest import (
    PAPER_SCHEMAS,
    figure2_database,
    paper_variable_order,
    recompute,
)

COMBOS = [
    ("interpreter", "dict"),
    ("source", "dict"),
    ("source", "columnar"),
    ("kernels", "columnar"),
]


def paper_query(tag: str = "Q") -> Query:
    return Query(tag, PAPER_SCHEMAS, free=("A",), ring=INT_RING)


def make_pair(backend="source", storage="dict", budget=None):
    """A (full, partial) engine pair over the paper query."""
    order = paper_variable_order()
    full = FIVMEngine(
        paper_query("Qf"), order, backend=backend, storage=storage
    )
    part = FIVMEngine(
        paper_query("Qp"), order, backend=backend, storage=storage,
        materialization="partial", partial_budget=budget,
    )
    return full, part


def random_stream(seed: int, steps: int = 30, domain: int = 4):
    rng = random.Random(seed)
    for _ in range(steps):
        rel = rng.choice(sorted(PAPER_SCHEMAS))
        schema = PAPER_SCHEMAS[rel]
        delta = Relation(rel, schema, INT_RING)
        for _ in range(rng.randint(1, 3)):
            key = tuple(
                f"{a.lower()}{rng.randint(0, domain - 1)}" for a in schema
            )
            delta.add(key, rng.choice([1, 1, 2, -1]))
        yield delta


# ----------------------------------------------------------------------
# Cold keys: the upquery path
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend,storage", COMBOS)
def test_cold_key_upquery_matches_full_engine(backend, storage):
    """Every key is looked up cold first (upquery), then hot (maintained
    entry) — both reads must equal the fully maintained value."""
    full, part = make_pair(backend, storage)
    client = ViewClient(part)
    root = part.tree.root.name
    keys = [(f"a{i}",) for i in range(5)]
    for step, delta in enumerate(random_stream(101)):
        full.apply_update(delta.copy())
        part.apply_update(delta.copy())
        for key in keys:
            cold_or_hot = client.lookup(root, key)
            assert cold_or_hot == full.views[root].payload(key), (step, key)
            # Immediately re-read: now guaranteed hot, same value.
            assert client.lookup(root, key) == cold_or_hot


def test_upquery_is_a_point_recompute():
    """`upquery` alone (no registration) equals from-scratch recompute."""
    from repro.data import Database

    _, part = make_pair()
    root = part.tree.root.name
    db = Database(
        Relation(rel, schema, INT_RING)
        for rel, schema in PAPER_SCHEMAS.items()
    )
    for delta in random_stream(7, steps=10):
        part.apply_update(delta.copy())
        db.apply_update(delta)
    expected = recompute(paper_query(), db, paper_variable_order())
    for key in [("a0",), ("a1",), ("a9",)]:  # a9: no support -> ring zero
        assert upquery(part, root, key) == expected.payload(key)
    # Nothing was registered, so the partial root is still empty.
    assert len(part.views[root]) == 0


def test_upquery_forces_support_below_unmaterialized_views():
    """A single-relation query leaves the root's child unmaterialized;
    partial mode must force the base leaf into storage so the upquery
    cascade bottoms out, while full mode keeps it unstored."""
    schemas = {"R": ("A", "B")}
    order = VariableOrder.from_spec(("A", ["B"]))

    def mk(tag):
        return Query(tag, schemas, free=("A",), ring=INT_RING)

    full = FIVMEngine(mk("Qf"), order)
    part = FIVMEngine(mk("Qp"), order, materialization="partial")
    leaf = part.tree.leaves["R"].name
    assert not full.flags[leaf], "fixture: leaf must start unmaterialized"
    assert part.flags[leaf], "partial mode must force upquery support"

    client = ViewClient(part)
    root = part.tree.root.name
    for delta in random_stream(13, steps=10):
        if delta.name != "R":
            continue
        full.apply_update(delta.copy())
        part.apply_update(delta.copy())
        for key in [("a0",), ("a1",), ("a2",), ("a3",)]:
            assert client.lookup(root, key) == full.views[root].payload(key)


# ----------------------------------------------------------------------
# Eviction: round trips and the budget ceiling
# ----------------------------------------------------------------------


def test_eviction_and_relookup_round_trip():
    """With a budget of ~2 entries, serving 5 keys churns the LRU; every
    re-lookup of an evicted key must re-upquery to the right value."""
    unit = 1 + 1  # key width (A) + COUNT payload scalars
    full, part = make_pair(budget=2 * unit)
    client = ViewClient(part)
    root = part.tree.root.name
    keys = [(f"a{i}",) for i in range(5)]
    for delta in random_stream(23):
        full.apply_update(delta.copy())
        part.apply_update(delta.copy())
        for key in keys:
            assert client.lookup(root, key) == full.views[root].payload(key)
    stats = client.stats(root)
    assert stats["evictions"] > 0, "budget never forced an eviction"
    assert stats["reactivations"] > 0, "no evicted key was ever re-served"
    # The LRU holds at most 2 entries; 5 keys were in rotation.
    assert stats["active_keys"] <= 2


def test_evicted_entries_leave_storage():
    """Eviction reclaims the stored payload, not just the registry slot."""
    unit = 2
    full, part = make_pair(budget=2 * unit)
    client = ViewClient(part)
    root = part.tree.root.name
    for delta in random_stream(31, steps=12):
        full.apply_update(delta.copy())
        part.apply_update(delta.copy())
    for i in range(5):
        client.lookup(root, (f"a{i}",))
    active = part.partial[root]
    stored_keys = set(part.views[root].keys())
    assert stored_keys <= set(active.entries), (
        "storage holds keys outside the active set"
    )


def test_memory_budget_is_a_ceiling():
    """At every point of a serve-heavy stream, the partial root's
    measured footprint (bench/memory's logical-scalar accounting) stays
    under the configured budget."""
    budget = 6  # three (key + COUNT payload) entries
    full, part = make_pair(budget=budget)
    client = ViewClient(part)
    root = part.tree.root.name
    rng = random.Random(47)
    for delta in random_stream(47, steps=40, domain=6):
        full.apply_update(delta.copy())
        part.apply_update(delta.copy())
        for _ in range(3):
            key = (f"a{rng.randint(0, 5)}",)
            assert client.lookup(root, key) == full.views[root].payload(key)
        active = part.partial[root]
        assert active.total_cost <= budget
        assert relation_scalars(part.views[root]) <= budget
    assert client.stats(root)["evictions"] > 0


# ----------------------------------------------------------------------
# Unregistered keys: drop records and re-registration
# ----------------------------------------------------------------------


def test_unregistered_deltas_drop_with_a_record():
    """Deltas for never-served keys are dropped at the partial root and
    recorded; registration clears the record and serves the full value
    (the dropped deltas are already in the fully maintained children)."""
    full, part = make_pair()
    client = ViewClient(part)
    root = part.tree.root.name

    client.lookup(root, ("a0",))  # register a0 only
    for delta in random_stream(59, steps=15):
        full.apply_update(delta.copy())
        part.apply_update(delta.copy())

    active = part.partial[root]
    full_root = full.views[root]
    # a0 was maintained; other keys with support were dropped + recorded.
    assert part.views[root].payload(("a0",)) == full_root.payload(("a0",))
    dropped_keys = set(active.dropped)
    assert dropped_keys, "stream never touched an unregistered key"
    assert ("a0",) not in dropped_keys
    assert active.stats["dropped_deltas"] >= len(dropped_keys)
    # The partial root must not hold any unregistered key.
    assert set(part.views[root].keys()) <= set(active.entries)

    # Re-registration: correct value, record cleared, counted.
    victim = sorted(dropped_keys)[0]
    assert client.lookup(root, victim) == full_root.payload(victim)
    assert victim not in active.dropped
    assert active.stats["reactivations"] >= 1

    # And from now on the key is maintained incrementally, not dropped.
    bump = Relation("R", PAPER_SCHEMAS["R"], INT_RING, {(victim[0], "bx"): 2})
    full.apply_update(bump.copy())
    part.apply_update(bump.copy())
    assert part.views[root].payload(victim) == full_root.payload(victim)


# ----------------------------------------------------------------------
# The write/invalidation choke point (initialize regression)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend,storage", COMBOS)
def test_initialize_after_updates_serves_fresh_values(backend, storage):
    """Regression: `initialize` used to absorb into views without the
    probe-cache invalidation the delta paths use, so a reload after
    updates could leave memoized sibling collapses pointing at dead
    state.  All writes now share `_write_view`; a post-reload update
    must produce exactly what a fresh engine produces."""
    order = paper_variable_order()
    engine = FIVMEngine(
        paper_query("Qa"), order, backend=backend, storage=storage
    )
    # Populate the probe cache: propagation memoizes sibling collapses.
    for delta in random_stream(71, steps=8):
        engine.apply_update(delta)

    db = figure2_database()
    engine.initialize(db)

    fresh = FIVMEngine(
        paper_query("Qb"), order, backend=backend, storage=storage
    )
    fresh.initialize(db)

    probe = Relation("S", PAPER_SCHEMAS["S"], INT_RING, {
        ("a1", "c1", "e9"): 1, ("a2", "c2", "e4"): -1,
    })
    delta_a = engine.apply_update(probe.copy())
    delta_b = fresh.apply_update(probe.copy())
    assert delta_a.same_as(delta_b.rename({}, name=delta_a.name))
    for name, contents in fresh.views.items():
        assert contents.same_as(
            engine.views[name].rename({}, name=contents.name)
        ), f"view {name} diverged after initialize"


def test_initialize_preserves_partial_active_set():
    """A reload keeps registered keys registered — and restores their
    values from the snapshot, while unregistered keys stay out."""
    full, part = make_pair()
    client = ViewClient(part)
    root = part.tree.root.name
    client.lookup(root, ("a1",))
    db = figure2_database()
    full.initialize(db)
    part.initialize(db)
    active = part.partial[root]
    assert ("a1",) in active.entries
    assert part.views[root].payload(("a1",)) == full.views[root].payload(("a1",))
    assert set(part.views[root].keys()) <= set(active.entries)
    # Cold keys still upquery correctly against the reloaded children.
    assert client.lookup(root, ("a2",)) == full.views[root].payload(("a2",))


# ----------------------------------------------------------------------
# The asyncio front door
# ----------------------------------------------------------------------


def test_concurrent_readers_never_see_torn_batches():
    """One writer applies batches that bump two keys by the same amount
    in lockstep; readers snapshot both keys per request.  Any interleaving
    that exposed a half-applied batch would break the invariant."""

    async def main():
        _, part = make_pair()
        root = part.tree.root.name
        # Seed both keys with equal support so the invariant starts true.
        seed_rows = {("a1", "c0", "e0"): 1, ("a2", "c0", "e0"): 1}
        part.apply_update(
            Relation("S", PAPER_SCHEMAS["S"], INT_RING, dict(seed_rows))
        )
        part.apply_update(
            Relation("T", PAPER_SCHEMAS["T"], INT_RING, {("c0", "d0"): 1})
        )
        part.apply_update(
            Relation("R", PAPER_SCHEMAS["R"], INT_RING,
                     {("a1", "b0"): 1, ("a2", "b0"): 1})
        )
        torn = []

        async with ViewServer(part) as server:
            # Register both keys before racing.
            await server.lookup_many(root, [("a1",), ("a2",)])

            async def reader():
                for _ in range(40):
                    (va1, va2), _epoch = await server.lookup_many(
                        root, [("a1",), ("a2",)]
                    )
                    if va1 != va2:
                        torn.append((va1, va2))
                    await asyncio.sleep(0)

            async def writer():
                for i in range(25):
                    batch = [
                        Relation("R", PAPER_SCHEMAS["R"], INT_RING,
                                 {("a1", f"b{i}"): 1}),
                        Relation("R", PAPER_SCHEMAS["R"], INT_RING,
                                 {("a2", f"b{i}"): 1}),
                    ]
                    await server.apply(batch)
                    await asyncio.sleep(0)

            await asyncio.gather(*(reader() for _ in range(6)), writer())
            final, _ = await server.lookup_many(root, [("a1",), ("a2",)])
        assert not torn, f"torn reads observed: {torn[:3]}"
        assert final[0] == final[1] != 0

    asyncio.run(main())


def test_epoch_advances_once_per_commit_group():
    """`apply` resolves with the root delta and the epoch counts commits."""

    async def main():
        full, part = make_pair()
        root = part.tree.root.name
        async with ViewServer(part) as server:
            assert server.epoch == 0
            d1 = Relation("R", PAPER_SCHEMAS["R"], INT_RING, {("a1", "b1"): 1})
            root_delta = await server.apply([d1.copy()])
            full.apply_update(d1.copy())
            assert root_delta.name == root
            assert server.epoch >= 1
            before = server.epoch
            await server.apply([
                Relation("S", PAPER_SCHEMAS["S"], INT_RING,
                         {("a1", "c1", "e1"): 1}),
            ])
            assert server.epoch > before
            # Reads report the epoch they ran in.
            _, epoch = await server.lookup_many(root, [("a1",)])
            assert epoch == server.epoch

    asyncio.run(main())


def test_writer_preference_blocks_new_readers():
    """A waiting writer gates newly arriving readers (no starvation)."""

    async def main():
        lock = EpochLock()
        order = []

        async def long_reader():
            async with lock.read():
                order.append("r1-in")
                await asyncio.sleep(0.01)
            order.append("r1-out")

        async def writer():
            await asyncio.sleep(0.001)  # arrive while r1 holds the lock
            async with lock.write():
                order.append("w")

        async def late_reader():
            await asyncio.sleep(0.005)  # arrive while the writer waits
            async with lock.read():
                order.append("r2")

        await asyncio.gather(long_reader(), writer(), late_reader())
        # The late reader must run after the writer, despite arriving
        # while only a reader held the lock.
        assert order.index("w") < order.index("r2")
        assert lock.epoch == 1

    asyncio.run(main())


def test_stop_drains_pending_writes():
    """`stop()` waits for queued groups before cancelling the writer."""

    async def main():
        _, part = make_pair()
        root = part.tree.root.name
        server = await ViewServer(part).start()
        futures = [
            asyncio.ensure_future(server.apply([
                Relation("R", PAPER_SCHEMAS["R"], INT_RING,
                         {("a1", f"b{i}"): 1}),
            ]))
            for i in range(5)
        ]
        await asyncio.sleep(0)  # let every apply() enqueue its group
        await server.stop()
        assert all(f.done() for f in futures)
        assert part.views[root].payload(("a1",)) == 0  # no S/T support yet
        assert server.epoch >= 1

    asyncio.run(main())
