"""Tests for the query representation."""

import pytest

from repro.core import Query
from repro.data import SchemaError
from repro.rings import INT_RING

from tests.conftest import PAPER_SCHEMAS


class TestQuery:
    def test_variables_in_first_occurrence_order(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        assert q.variables == ("A", "B", "C", "E", "D")

    def test_free_and_bound(self):
        q = Query("Q", PAPER_SCHEMAS, free=("A", "C"), ring=INT_RING)
        assert q.free == ("A", "C")
        assert set(q.bound) == {"B", "D", "E"}

    def test_requires_ring(self):
        with pytest.raises(ValueError):
            Query("Q", PAPER_SCHEMAS)

    def test_requires_relations(self):
        with pytest.raises(ValueError):
            Query("Q", {}, ring=INT_RING)

    def test_unknown_free_variable(self):
        with pytest.raises(SchemaError):
            Query("Q", PAPER_SCHEMAS, free=("Z",), ring=INT_RING)

    def test_duplicate_free_variable(self):
        with pytest.raises(SchemaError):
            Query("Q", PAPER_SCHEMAS, free=("A", "A"), ring=INT_RING)

    def test_relations_with(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        assert q.relations_with("A") == ("R", "S")
        assert q.relations_with("D") == ("T",)

    def test_schema_of(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        assert q.schema_of("S") == ("A", "C", "E")
        with pytest.raises(KeyError):
            q.schema_of("Z")

    def test_acyclic_and_connected_flags(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        assert q.is_acyclic and q.is_connected
        tri = Query(
            "tri",
            {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "A")},
            ring=INT_RING,
        )
        assert not tri.is_acyclic
        disc = Query("d", {"R": ("A",), "S": ("B",)}, ring=INT_RING)
        assert not disc.is_connected
