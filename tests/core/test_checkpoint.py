"""Durability layer: snapshots, the update journal, and the journaled
engine (``repro/core/checkpoint.py``).

The contract under test is the recovery identity

    restore(snapshot at seq k) ; replay journal tail (> k)  ==  straight line

on every storage engine, with indicator views and partial-mode active
sets riding along, plus the idempotence that makes retried recovery
safe: the tail is selected strictly after the snapshot's sequence
number, so no group is ever applied twice.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    FIVMEngine,
    Query,
    VariableOrder,
    add_indicator_projections,
    build_view_tree,
)
from repro.core.checkpoint import (
    JournaledFIVMEngine,
    UpdateJournal,
    restore_snapshot,
    take_snapshot,
)
from repro.core.serving import ViewClient
from repro.data import Relation
from repro.rings import CofactorRing, DegreeRing, INT_RING, Lifting

from tests.conftest import (
    PAPER_SCHEMAS,
    figure2_database,
    make_database,
    paper_variable_order,
    random_delta,
    random_rows,
)


def numeric_database(ring):
    """A small all-numeric instance (lifted rings need float-able keys)."""
    rng = random.Random(0x11)
    rows = {
        rel: random_rows(rng, schema, 6)
        for rel, schema in PAPER_SCHEMAS.items()
    }
    return make_database(PAPER_SCHEMAS, ring, rows)


def paper_query(tag: str, ring=INT_RING, lifting=None) -> Query:
    return Query(tag, PAPER_SCHEMAS, free=("A",), ring=ring, lifting=lifting)


def stream(seed: int, ring, steps: int = 12):
    rng = random.Random(seed)
    for _ in range(steps):
        rel = rng.choice(sorted(PAPER_SCHEMAS))
        yield random_delta(rng, rel, PAPER_SCHEMAS[rel], ring)


def assert_same_state(a: FIVMEngine, b: FIVMEngine) -> None:
    assert set(a.views) == set(b.views)
    for name, view in a.views.items():
        assert view.same_as(b.views[name]), name
    for node_name, ivs in a._indicator_views.items():
        for iv, other in zip(ivs, b._indicator_views[node_name]):
            assert iv._counts == other._counts
            assert iv.relation.same_as(other.relation)


RINGS = {
    "int": lambda: (INT_RING, None),
    "degree": lambda: (
        DegreeRing(2),
        Lifting(DegreeRing(2), {"B": DegreeRing(2).lift(0)}),
    ),
    "cofactor": lambda: (
        CofactorRing(2),
        Lifting(CofactorRing(2), {"B": CofactorRing(2).lift(0),
                                  "D": CofactorRing(2).lift(1)}),
    ),
}


@pytest.mark.parametrize("storage", ["dict", "columnar"])
@pytest.mark.parametrize("ring_name", sorted(RINGS))
def test_snapshot_restore_round_trip(ring_name, storage):
    ring, lifting = RINGS[ring_name]()
    order = paper_variable_order()
    warm = FIVMEngine(
        paper_query("Qa", ring, lifting), order, storage=storage
    )
    warm.initialize(numeric_database(ring))
    for delta in stream(0xC0DE, ring):
        warm.apply_update(delta)

    snap = warm.snapshot(seq=7)
    assert snap["seq"] == 7
    fresh = FIVMEngine(
        paper_query("Qb", ring, lifting), order, storage=storage
    )
    fresh.restore(snap)
    assert_same_state(warm, fresh)

    # the restored engine is live: both move identically afterwards
    for delta in stream(0xBEEF, ring, steps=4):
        warm.apply_update(delta.copy())
        fresh.apply_update(delta)
    assert_same_state(warm, fresh)


def test_snapshot_restore_covers_indicator_views():
    schemas = {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "A")}
    q = Query("tri", schemas, ring=INT_RING)
    order = VariableOrder.chain(("A", "B", "C"))
    tree = add_indicator_projections(build_view_tree(q, order))
    warm = FIVMEngine(q, tree=tree)
    assert warm._indicator_views  # the query this test is about
    rng = random.Random(0x7A1)
    for _ in range(10):
        rel = rng.choice(sorted(schemas))
        warm.apply_update(random_delta(rng, rel, schemas[rel], INT_RING))

    fresh = FIVMEngine(Query("tri2", schemas, ring=INT_RING),
                       tree=add_indicator_projections(
                           build_view_tree(q, order)))
    fresh.restore(warm.snapshot())
    assert_same_state(warm, fresh)
    for _ in range(5):
        rel = rng.choice(sorted(schemas))
        delta = random_delta(rng, rel, schemas[rel], INT_RING)
        warm.apply_update(delta.copy())
        fresh.apply_update(delta)
    assert_same_state(warm, fresh)


def test_snapshot_restore_covers_partial_mode():
    order = paper_variable_order()
    warm = FIVMEngine(paper_query("Qp"), order,
                      materialization="partial", partial_budget=6)
    warm.initialize(figure2_database())
    client = ViewClient(warm)
    root = warm.tree.root.name
    for delta in stream(0x9A9, INT_RING):
        warm.apply_update(delta)
        client.lookup(root, (1,))
        client.lookup(root, (2,))

    fresh = FIVMEngine(paper_query("Qq"), order,
                       materialization="partial", partial_budget=6)
    fresh.restore(warm.snapshot())
    for name, active in warm.partial.items():
        other = fresh.partial[name]
        assert list(active.entries.items()) == list(other.entries.items())
        assert active.total_cost == other.total_cost
        assert active.dropped == other.dropped
        assert active.stats == other.stats
    # served lookups agree without re-warming
    fresh_client = ViewClient(fresh)
    for key in [(1,), (2,), (3,)]:
        assert INT_RING.eq(
            client.lookup(root, key), fresh_client.lookup(root, key)
        )


def test_restore_rejects_incompatible_engine():
    order = paper_variable_order()
    warm = FIVMEngine(paper_query("Qa"), order, db=figure2_database())
    snap = warm.snapshot()
    other = FIVMEngine(
        Query("other", {"R": ("A", "B")}, free=("A",), ring=INT_RING)
    )
    with pytest.raises(ValueError):
        other.restore(snap)
    with pytest.raises(ValueError):
        warm.restore({**snap, "version": 99})


def test_update_journal_sequencing():
    journal = UpdateJournal()
    for seq in (1, 2, 5):
        journal.append(seq, f"p{seq}")
    assert journal.last_seq == 5
    assert journal.tail(1) == [(2, "p2"), (5, "p5")]
    assert journal.tail(5) == []
    with pytest.raises(ValueError):
        journal.append(5, "dup")
    assert journal.truncate_through(2) == 2
    assert list(journal) == [(5, "p5")]
    journal.clear()
    assert len(journal) == 0 and journal.last_seq == 0


@pytest.mark.parametrize("storage", ["dict", "columnar"])
def test_journaled_recovery_matches_straight_line(storage):
    order = paper_variable_order()

    def make(tag):
        return FIVMEngine(paper_query(tag), order, storage=storage)

    straight = make("Qs")
    straight.initialize(figure2_database())
    journaled = JournaledFIVMEngine(make("Qj"), checkpoint_every=4)
    journaled.initialize(figure2_database())
    deltas = list(stream(0xD00D, INT_RING, steps=10))
    for delta in deltas:
        straight.apply_update(delta.copy())
        journaled.apply_update(delta)
    # auto-checkpointing kept the journal short
    assert len(journaled.journal) < len(deltas)
    assert journaled.applied_seq == len(deltas) + 0

    recovered = make("Qr")
    replayed = journaled.recover_into(recovered)
    assert replayed == len(journaled.journal.tail(
        journaled.snapshot["seq"] or 0
    ))
    assert_same_state(straight, recovered)

    # recovery is idempotent: a retry lands on the same state
    again = make("Qr2")
    journaled.recover_into(again)
    assert_same_state(recovered, again)


def test_journal_detaches_payloads_from_live_deltas():
    order = paper_variable_order()
    journaled = JournaledFIVMEngine(FIVMEngine(paper_query("Qj"), order))
    journaled.initialize(figure2_database())
    delta = Relation("R", PAPER_SCHEMAS["R"], INT_RING, {("a9", "b9"): 1})
    journaled.apply_update(delta)
    delta._data[("a9", "b9")] = 999  # caller mutates after the fact
    recovered = FIVMEngine(paper_query("Qr"), order)
    journaled.recover_into(recovered)
    assert_same_state(journaled.engine, recovered)


def test_journaled_save_load_round_trip(tmp_path):
    order = paper_variable_order()
    journaled = JournaledFIVMEngine(
        FIVMEngine(paper_query("Qj"), order), checkpoint_every=5
    )
    journaled.initialize(figure2_database())
    for delta in stream(0xFEED, INT_RING, steps=7):
        journaled.apply_update(delta)
    path = tmp_path / "state.bin"
    journaled.save(path)

    loaded = JournaledFIVMEngine(FIVMEngine(paper_query("Ql"), order))
    loaded.load(path)
    recovered = FIVMEngine(paper_query("Qr"), order)
    loaded.recover_into(recovered)
    assert_same_state(journaled.engine, recovered)
    # sequence numbering resumes after the loaded tail
    loaded.engine.restore(recovered.snapshot())
    loaded.apply_update(
        Relation("R", PAPER_SCHEMAS["R"], INT_RING, {("a1", "b9"): 1})
    )
    assert loaded.applied_seq > journaled.applied_seq - 1
