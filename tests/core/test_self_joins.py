"""Self-joins: relations occurring several times in a query (Section 4).

The paper treats a relation occurring k times as k instances in the
(multi)set U: "the instances representing the same relation are at
different leaves in the delta tree and lead to changes along multiple
leaf-to-root paths", handled as a sequence of per-instance updates.  Here
self-joins register the physical relation under distinct logical names and
updates are applied to each instance in turn.
"""

import pytest

from repro.core import FIVMEngine, Query, VariableOrder, build_view_tree
from repro.data import Database, Relation
from repro.rings import INT_RING

from tests.conftest import recompute


class TestSelfJoinViaInstances:
    """Paths of length two in a graph: E(A,B) ⋈ E(B,C) as E1, E2."""

    SCHEMAS = {"E1": ("A", "B"), "E2": ("B", "C")}

    def _apply_edge(self, engine, db, edge, multiplicity):
        """One physical edge insert = sequential updates to both instances."""
        a, b = edge
        for name, key in (("E1", (a, b)), ("E2", (a, b))):
            delta = Relation(name, self.SCHEMAS[name], INT_RING, {key: multiplicity})
            engine.apply_update(delta.copy())
            db.apply_update(delta)

    def test_two_hop_path_count(self, rng):
        q = Query("paths", self.SCHEMAS, ring=INT_RING)
        order = VariableOrder.chain(("B", "A", "C"))
        engine = FIVMEngine(q, order)
        db = Database(
            Relation(name, schema, INT_RING)
            for name, schema in self.SCHEMAS.items()
        )
        from collections import Counter

        edges = Counter()
        for _ in range(60):
            edge = (rng.randint(0, 4), rng.randint(0, 4))
            if edges[edge] and rng.random() < 0.4:
                self._apply_edge(engine, db, edge, -1)
                edges[edge] -= 1
            else:
                self._apply_edge(engine, db, edge, +1)
                edges[edge] += 1
            assert engine.result().same_as(recompute(q, db, order))
        # Sanity: the maintained count equals the weighted 2-path count.
        expected = sum(
            m1 * m2
            for (a, b), m1 in edges.items()
            for (b2, c), m2 in edges.items()
            if b == b2
        )
        assert engine.result().payload(()) == expected

    def test_instances_have_distinct_leaves(self):
        """Each registered instance owns its own leaf and update path."""
        q = Query("paths", self.SCHEMAS, ring=INT_RING)
        tree = build_view_tree(q, VariableOrder.chain(("B", "A", "C")))
        assert set(tree.leaves) == {"E1", "E2"}
        with pytest.raises(KeyError):
            tree.leaves["E3"]

    def test_triangle_as_three_instances(self, rng):
        """The triangle query over one edge relation, via three instances."""
        schemas = {"E1": ("A", "B"), "E2": ("B", "C"), "E3": ("C", "A")}
        q = Query("tri", schemas, ring=INT_RING)
        order = VariableOrder.chain(("A", "B", "C"))
        engine = FIVMEngine(q, order)
        db = Database(
            Relation(n, s, INT_RING) for n, s in schemas.items()
        )
        edges = []
        for _ in range(40):
            edge = (rng.randint(0, 3), rng.randint(0, 3))
            edges.append(edge)
            for name in schemas:
                delta = Relation(name, schemas[name], INT_RING, {edge: 1})
                engine.apply_update(delta.copy())
                db.apply_update(delta)
            assert engine.result().same_as(recompute(q, db, order))
        # Directed triangles through the shared edge set.
        count = 0
        from collections import Counter

        multiplicity = Counter(edges)
        for (a, b), m1 in multiplicity.items():
            for (b2, c), m2 in multiplicity.items():
                if b2 != b:
                    continue
                m3 = multiplicity.get((c, a), 0)
                count += m1 * m2 * m3
        assert engine.result().payload(()) == count
