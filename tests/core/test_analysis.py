"""Tests for static query analysis (q-hierarchical detection, cost sketch)."""

from repro.core import Query, VariableOrder
from repro.core.analysis import (
    is_hierarchical,
    is_q_hierarchical,
    update_cost_sketch,
)
from repro.rings import INT_RING

from tests.conftest import PAPER_SCHEMAS, paper_variable_order


class TestHierarchical:
    def test_star_is_hierarchical(self):
        schemas = {f"R{i}": ("P", f"X{i}") for i in range(4)}
        q = Query("star", schemas, ring=INT_RING)
        assert is_hierarchical(q)

    def test_path_join_is_not(self):
        # R(A,B), S(B,C): atoms(A)={R}, atoms(B)={R,S} comparable;
        # with T(C,D): atoms(C)={S,T} vs atoms(B)={R,S} overlap, incomparable.
        q = Query(
            "path",
            {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "D")},
            ring=INT_RING,
        )
        assert not is_hierarchical(q)

    def test_paper_query_not_hierarchical(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        # atoms(A) = {R,S}, atoms(C) = {S,T}: overlapping, incomparable.
        assert not is_hierarchical(q)


class TestQHierarchical:
    def test_housing_star_is_q_hierarchical(self):
        from repro.datasets import housing

        q = Query("housing", housing.SCHEMAS, ring=INT_RING)
        assert is_q_hierarchical(q)

    def test_free_variable_below_bound_breaks_it(self):
        # atoms(X) = {R1} strictly inside atoms(P) = {R1, R2}; X free, P bound.
        schemas = {"R1": ("P", "X"), "R2": ("P", "Y")}
        ok = Query("a", schemas, free=("P",), ring=INT_RING)
        assert is_q_hierarchical(ok)
        broken = Query("b", schemas, free=("X",), ring=INT_RING)
        assert not is_q_hierarchical(broken)

    def test_non_hierarchical_is_not_q_hierarchical(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        assert not is_q_hierarchical(q)


class TestUpdateCostSketch:
    def test_example11_analysis(self):
        """The paper's Example 1.1: O(1) for S, linear for R and T."""
        q = Query("Q", PAPER_SCHEMAS, free=("A", "C"), ring=INT_RING)
        order = VariableOrder.from_spec(("A", [("C", ["B", "D", "E"])]))
        sketch = update_cost_sketch(q, order)
        assert sketch["S"] == "O(1)"
        assert sketch["R"] == "O(N^1)"
        assert sketch["T"] == "O(N^1)"

    def test_housing_star_all_constant(self):
        from repro.datasets import housing

        q = Query("housing", housing.SCHEMAS, ring=INT_RING)
        sketch = update_cost_sketch(q, housing.variable_order())
        assert all(cost == "O(1)" for cost in sketch.values())

    def test_count_query_figure2(self):
        """Example 4.1: single-tuple updates to R or S are O(1), to T linear."""
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        sketch = update_cost_sketch(q, paper_variable_order())
        assert sketch["R"] == "O(1)"
        assert sketch["S"] == "O(1)"
        assert sketch["T"] == "O(N^1)"

    def test_triangle_with_materialized_pair(self):
        q = Query(
            "tri",
            {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "A")},
            ring=INT_RING,
        )
        sketch = update_cost_sketch(q, VariableOrder.chain(("A", "B", "C")))
        assert sketch["R"] == "O(1)"  # Example B.1's space-for-time tradeoff
        assert sketch["S"] == "O(N^1)"
        assert sketch["T"] == "O(N^1)"
