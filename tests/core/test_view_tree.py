"""Tests for view-tree construction (Figure 3) and evaluation (Figure 2)."""

import pytest

from repro.core import Query, VariableOrder, build_view_tree
from repro.data import SchemaError
from repro.rings import INT_RING, Lifting

from tests.conftest import (
    PAPER_SCHEMAS,
    figure2_database,
    paper_variable_order,
)


def count_query(free=()):
    return Query("Q", PAPER_SCHEMAS, free=free, ring=INT_RING)


class TestFigure2:
    """The worked COUNT example: exact view contents from Figure 2d."""

    def setup_method(self):
        self.tree = build_view_tree(count_query(), paper_variable_order())
        self.results = self.tree.evaluate(figure2_database())

    def _view(self, fragment):
        for name, contents in self.results.items():
            if name.startswith(fragment):
                return contents
        raise AssertionError(f"no view named like {fragment}")

    def test_root_count(self):
        assert dict(self._view("V@A").items()) == {(): 10}

    def test_view_at_b(self):
        assert dict(self._view("V@B").items()) == {
            ("a1",): 2, ("a2",): 1, ("a3",): 1,
        }

    def test_view_at_c(self):
        assert dict(self._view("V@C").items()) == {("a1",): 4, ("a2",): 2}

    def test_view_at_d(self):
        assert dict(self._view("V@D").items()) == {
            ("c1",): 1, ("c2",): 2, ("c3",): 1,
        }

    def test_view_at_e(self):
        assert dict(self._view("V@E").items()) == {
            ("a1", "c1"): 2, ("a1", "c2"): 1, ("a2", "c2"): 1,
        }

    def test_keys_match_figure(self):
        by_prefix = {
            "V@A": (), "V@B": ("A",), "V@C": ("A",),
            "V@D": ("C",), "V@E": ("A", "C"),
        }
        for node in self.tree.inner_views():
            prefix = node.name.split("_")[0]
            assert node.keys == by_prefix[prefix], node


class TestStructure:
    def test_five_inner_views(self):
        tree = build_view_tree(count_query(), paper_variable_order())
        assert tree.view_count() == 5
        assert len(tree.leaves) == 3

    def test_path_to_root(self):
        tree = build_view_tree(count_query(), paper_variable_order())
        path = [n.name.split("_")[0] for n in tree.path_to_root("T")]
        assert path == ["V@D", "V@C", "V@A"]

    def test_parent_pointers(self):
        tree = build_view_tree(count_query(), paper_variable_order())
        assert tree.root.parent is None
        for node in tree.nodes:
            for child in node.children:
                assert child.parent is node

    def test_pretty_contains_all_views(self):
        tree = build_view_tree(count_query(), paper_variable_order())
        rendering = tree.pretty()
        for node in tree.inner_views():
            assert node.name in rendering

    def test_relations_sets(self):
        tree = build_view_tree(count_query(), paper_variable_order())
        assert tree.root.relations == frozenset({"R", "S", "T"})


class TestFreeVariables:
    def test_free_vars_kept_in_keys(self):
        """Example 2.3's Q[A, C]: group-by keys survive to the root."""
        tree = build_view_tree(count_query(free=("A", "C")), paper_variable_order())
        assert set(tree.root.keys) == {"A", "C"}
        results = tree.evaluate(figure2_database())
        root = results[tree.root.name]
        # COUNT per (A, C) group over the join:
        # (a1,c1): 2 B-values × 2 E-values × 1 D-value = 4, etc.
        assert dict(root.items()) == {
            ("a1", "c1"): 4,
            ("a1", "c2"): 4,
            ("a2", "c2"): 2,
        }

    def test_identical_views_elided(self):
        """Free variables on top produce identical views, stored once."""
        order = VariableOrder.from_spec(
            ("A", [("C", ["B", "D", "E"])])
        )
        query = count_query(free=("A", "C"))
        tree = build_view_tree(query, order)
        # Without elision there would be views at A and C with equal keys.
        names = [n.name for n in tree.inner_views()]
        assert len(names) == len(set(names))
        keys = [n.keys for n in tree.inner_views()]
        assert keys.count(("A", "C")) <= len(query.relations)
        results = tree.evaluate(figure2_database())
        assert results[tree.root.name].payload(("a1", "c1")) == 4


class TestChainCollapsing:
    def test_wide_relation_collapses(self):
        query = Query(
            "wide", {"W": ("K", "P1", "P2", "P3", "P4")}, ring=INT_RING
        )
        order = VariableOrder.chain(("K", "P1", "P2", "P3", "P4"))
        collapsed = build_view_tree(query, order, collapse_chains=True)
        expanded = build_view_tree(query, order, collapse_chains=False)
        assert collapsed.view_count() < expanded.view_count()
        # Collapsing must not change results.
        db_rows = [(1, 2, 3, 4, 5), (1, 6, 7, 8, 9), (2, 1, 1, 1, 1)]
        from tests.conftest import make_database

        db = make_database({"W": query.schema_of("W")}, INT_RING, {"W": db_rows})
        r1 = collapsed.evaluate(db)[collapsed.root.name]
        r2 = expanded.evaluate(db)[expanded.root.name]
        assert r1.same_as(r2)

    def test_collapse_preserves_lifting_order(self):
        """Lifted marginalization gives identical results when collapsed."""
        query_args = dict(
            relations={"W": ("K", "P1", "P2")}, free=("K",), ring=INT_RING
        )
        lifting = Lifting(INT_RING, {"P1": lambda x: x, "P2": lambda x: x + 1})
        q = Query("wide", lifting=lifting, **query_args)
        order = VariableOrder.chain(("K", "P1", "P2"))
        from tests.conftest import make_database

        db = make_database({"W": q.schema_of("W")}, INT_RING, {"W": [(1, 2, 3), (1, 4, 5)]})
        collapsed = build_view_tree(q, order, collapse_chains=True)
        expanded = build_view_tree(q, order, collapse_chains=False)
        r1 = collapsed.evaluate(db)[collapsed.root.name]
        r2 = expanded.evaluate(db)[expanded.root.name]
        assert r1.same_as(r2)
        assert r1.payload((1,)) == 2 * (3 + 1) + 4 * (5 + 1)


class TestEdgeCases:
    def test_single_relation_query(self):
        q = Query("one", {"R": ("A", "B")}, free=("A",), ring=INT_RING)
        tree = build_view_tree(q)
        from tests.conftest import make_database

        db = make_database({"R": ("A", "B")}, INT_RING, {"R": [(1, 2), (1, 3)]})
        result = tree.evaluate(db)[tree.root.name]
        assert dict(result.items()) == {(1,): 2}

    def test_disconnected_query_synthetic_root(self):
        q = Query("d", {"R": ("A",), "S": ("B",)}, ring=INT_RING)
        tree = build_view_tree(q)
        from tests.conftest import make_database

        db = make_database(
            {"R": ("A",), "S": ("B",)}, INT_RING,
            {"R": [(1,), (2,)], "S": [(5,), (6,), (7,)]},
        )
        result = tree.evaluate(db)[tree.root.name]
        assert result.payload(()) == 6  # 2 × 3 Cartesian count

    def test_invalid_order_rejected(self):
        q = count_query()
        bad = VariableOrder.from_spec(("A", [("B", ["E"]), ("C", ["D"])]))
        with pytest.raises(SchemaError):
            build_view_tree(q, bad)

    def test_example61_tree_shape(self):
        """Example 6.1: chain of four matrices, ω = X1-X5-X3-{X2,X4}."""
        from repro.apps import chain_query, chain_variable_order

        q = chain_query(4)
        vo = chain_variable_order(4)
        tree = build_view_tree(q, vo)
        # Root keys are the free endpoints; inner views marginalize X2/X4/X3.
        assert set(tree.root.keys) == {"X1", "X5"}
        marginalized = {
            v for node in tree.inner_views() for v in node.marginalized
        }
        assert marginalized == {"X2", "X3", "X4"}
        assert tree.view_count() == 3  # V@X2, V@X4, V@X3 (X5/X1 elided)
