"""Tests for variable orders (Definition 3.1)."""


import pytest

from repro.core import Query, VariableOrder
from repro.data import SchemaError
from repro.rings import INT_RING

from tests.conftest import PAPER_SCHEMAS, paper_variable_order


def paper_query(free=()):
    return Query("Q", PAPER_SCHEMAS, free=free, ring=INT_RING)


class TestConstruction:
    def test_from_spec(self):
        vo = paper_variable_order()
        assert vo.variables == ("A", "B", "C", "D", "E")
        assert vo.parent("C") == "A"
        assert vo.parent("A") is None

    def test_duplicate_variable_rejected(self):
        with pytest.raises(SchemaError):
            VariableOrder.from_spec(("A", ["B", ("B", [])]))

    def test_chain(self):
        vo = VariableOrder.chain(["A", "B", "C"])
        assert vo.ancestors("C") == ("A", "B")

    def test_empty_chain_rejected(self):
        with pytest.raises(SchemaError):
            VariableOrder.chain([])

    def test_forest(self):
        vo = VariableOrder.from_spec("A", "B")
        assert len(vo.roots) == 2


class TestStructure:
    def test_ancestors_order_root_first(self):
        vo = paper_variable_order()
        assert vo.ancestors("E") == ("A", "C")

    def test_subtree(self):
        vo = paper_variable_order()
        assert vo.subtree_vars("C") == {"C", "D", "E"}

    def test_canonical_sort(self):
        vo = paper_variable_order()
        assert vo.canonical_sort({"E", "A", "C"}) == ("A", "C", "E")

    def test_unknown_variable(self):
        with pytest.raises(KeyError):
            paper_variable_order().node("Z")


class TestDepFigure2a:
    """dep() values spelled out in Figure 2a."""

    def test_all(self):
        vo = paper_variable_order()
        q = paper_query()
        assert vo.dep(q, "A") == set()
        assert vo.dep(q, "B") == {"A"}
        assert vo.dep(q, "C") == {"A"}
        assert vo.dep(q, "D") == {"C"}
        assert vo.dep(q, "E") == {"A", "C"}


class TestValidation:
    def test_paper_order_is_valid(self):
        paper_variable_order().validate(paper_query())

    def test_missing_variable_rejected(self):
        vo = VariableOrder.from_spec(("A", ["B", ("C", ["D"])]))
        with pytest.raises(SchemaError):
            vo.validate(paper_query())

    def test_off_path_relation_rejected(self):
        # B and C on different branches, but S needs A,C,E together with ...
        vo = VariableOrder.from_spec(("A", [("B", ["E"]), ("C", ["D"])]))
        with pytest.raises(SchemaError):
            vo.validate(paper_query())

    def test_chain_always_valid(self):
        q = paper_query()
        VariableOrder.chain(q.variables).validate(q)

    def test_anchor(self):
        vo = paper_variable_order()
        assert vo.anchor(("A", "B")) == "B"
        assert vo.anchor(("A", "C", "E")) == "E"
        assert vo.anchor(("C", "D")) == "D"


class TestAuto:
    def test_valid_for_paper_query(self):
        q = paper_query()
        VariableOrder.auto(q).validate(q)

    def test_valid_for_triangle(self):
        q = Query(
            "tri",
            {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "A")},
            ring=INT_RING,
        )
        VariableOrder.auto(q).validate(q)

    def test_free_variables_prefer_top(self):
        q = paper_query(free=("C",))
        vo = VariableOrder.auto(q)
        vo.validate(q)
        # C is a root (free variables on top, per the paper's preference).
        assert any(root.var == "C" for root in vo.roots)

    def test_disconnected_query_gives_forest(self):
        q = Query("d", {"R": ("A",), "S": ("B",)}, ring=INT_RING)
        vo = VariableOrder.auto(q)
        assert len(vo.roots) == 2
        vo.validate(q)

    def test_random_queries_always_valid(self, rng):
        variables = ["V0", "V1", "V2", "V3", "V4", "V5"]
        for trial in range(40):
            relations = {}
            for index in range(rng.randint(1, 5)):
                width = rng.randint(1, 3)
                schema = tuple(rng.sample(variables, width))
                relations[f"R{index}"] = schema
            free = tuple(
                v
                for v in dict.fromkeys(a for s in relations.values() for a in s)
                if rng.random() < 0.3
            )
            q = Query(f"q{trial}", relations, free=free, ring=INT_RING)
            VariableOrder.auto(q).validate(q)
