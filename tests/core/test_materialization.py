"""Tests for the materialization choice µ(τ, U) (Figure 5, Example 4.2)."""

import pytest

from repro.core import (
    Query,
    add_indicator_projections,
    build_view_tree,
    materialization_flags,
    materialized_views,
)
from repro.rings import INT_RING

from tests.conftest import PAPER_SCHEMAS, paper_variable_order


def make_tree():
    q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
    return build_view_tree(q, paper_variable_order())


def prefixes(names):
    return {n.split("_")[0].split("#")[0] for n in names}


class TestExample42:
    """U = {T}: store the root, V@E_S, and V@B_R — nothing else."""

    def test_updates_to_t_only(self):
        tree = make_tree()
        stored = materialized_views(tree, {"T"})
        assert prefixes(stored) == {"V@A", "V@B", "V@E"}

    def test_updates_to_all_relations_store_every_view(self):
        tree = make_tree()
        stored = materialized_views(tree, {"R", "S", "T"})
        # "For updates to all input relations, it materializes the view at
        # each node in the view tree" — every inner view is stored.  The raw
        # leaves are not: each has a covering unary view, so no delta ever
        # joins with a base relation directly.
        assert {n.name for n in tree.inner_views()} <= stored
        assert prefixes(stored) == {"V@A", "V@B", "V@C", "V@D", "V@E"}

    def test_no_updates_stores_only_root(self):
        tree = make_tree()
        stored = materialized_views(tree, set())
        assert stored == {tree.root.name}

    def test_root_always_stored(self):
        tree = make_tree()
        for updates in [set(), {"R"}, {"S"}, {"T"}, {"R", "S", "T"}]:
            assert tree.root.name in materialized_views(tree, updates)


class TestSingleRelationScenarios:
    def test_updates_to_r_only(self):
        """For U={R}: the sibling subtree (V@C over S,T) must be stored;
        nothing on R's own path below the root is."""
        tree = make_tree()
        stored = prefixes(materialized_views(tree, {"R"}))
        assert "V@C" in stored
        assert "V@B" not in stored
        assert "R" not in stored

    def test_updates_to_s_only(self):
        tree = make_tree()
        stored = prefixes(materialized_views(tree, {"S"}))
        # Per Example 1.1: for updates to S only, materialize V@B_R and V@D_T.
        assert "V@B" in stored and "V@D" in stored
        assert "V@E" not in stored

    def test_unknown_relation_rejected(self):
        tree = make_tree()
        with pytest.raises(KeyError):
            materialization_flags(tree, {"Z"})


class TestIndicatorExtension:
    def test_indicator_base_and_host_children_stored(self):
        q = Query(
            "tri",
            {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "A")},
            ring=INT_RING,
        )
        from repro.core import VariableOrder

        tree = build_view_tree(q, VariableOrder.chain(("A", "B", "C")))
        add_indicator_projections(tree)
        host = next(n for n in tree.nodes if n.indicators)
        stored = materialized_views(tree, {"R"})
        # The indicator's base must be stored to track support changes,
        # and the host's children (S, T) feed the indicator-delta join.
        assert "R" in stored
        for child in host.children:
            assert child.name in stored
