"""Unit tests for the kernel backend's execution policy.

The vectorized path has two exactness escape hatches — the
:data:`MIN_VECTOR_ROWS` row threshold (below it the scalar fold beats
array packing) and the mixed-support pack failure (a cofactor column
spanning several supports refuses to pack) — both of which must produce
bit-identical results to the vectorized path.  Columnar storage adds the
zero-pack passthrough: a kernel program's output delta carries its packed
block to the absorbing view and the next trigger in the chain.
"""

from __future__ import annotations

import pytest

from repro.core import FIVMEngine, Query
from repro.core.kernels import (
    _MIN_VECTOR_ROWS,
    KernelDeltaProgram,
    MIN_VECTOR_ROWS,
)
from repro.data import Relation
from repro.rings import CofactorRing, INT_RING, Lifting

SCHEMAS = {"R": ("A", "B"), "S": ("B", "C")}


def make_engine(ring, lifts=None, **kwargs):
    lifting = Lifting(ring, lifts or {})
    query = Query("Q", SCHEMAS, ring=ring, lifting=lifting)
    return FIVMEngine(query, backend="kernels", **kwargs)


def delta(rel, ring, data):
    return Relation(rel, SCHEMAS[rel], ring, data)


def test_threshold_is_a_named_public_constant():
    assert isinstance(MIN_VECTOR_ROWS, int) and MIN_VECTOR_ROWS == 8
    assert _MIN_VECTOR_ROWS is MIN_VECTOR_ROWS  # back-compat alias


def test_threshold_picks_scalar_below_and_vector_at_or_above(monkeypatch):
    calls = []
    original = KernelDeltaProgram._finish_scalar

    def spy(self, keys, factor_cols, lift_cols, out):
        calls.append(len(keys))
        return original(self, keys, factor_cols, lift_cols, out)

    monkeypatch.setattr(KernelDeltaProgram, "_finish_scalar", spy)
    engine = make_engine(INT_RING, storage="dict")
    small = {(i, 0): 1 for i in range(MIN_VECTOR_ROWS - 1)}
    engine.apply_update(delta("R", INT_RING, small))
    assert calls and all(n < MIN_VECTOR_ROWS for n in calls)
    calls.clear()
    large = {(i, 1): 1 for i in range(MIN_VECTOR_ROWS)}
    engine.apply_update(delta("R", INT_RING, large))
    assert calls == []  # every gather was at or above the threshold


def test_columnar_gathers_vectorize_below_the_threshold(monkeypatch):
    # Packed-store columns always vectorize: the scalar fold would have
    # to unpack rows into payload objects first, inverting the trade the
    # threshold exists to make.
    calls = []
    original = KernelDeltaProgram._finish_scalar

    def spy(self, keys, factor_cols, lift_cols, out):
        calls.append(self._any_store)
        return original(self, keys, factor_cols, lift_cols, out)

    monkeypatch.setattr(KernelDeltaProgram, "_finish_scalar", spy)
    engine = make_engine(INT_RING, storage="columnar")
    engine.apply_update(delta("S", INT_RING, {(0, 0): 1, (1, 1): 2}))
    # This R-delta joins against the columnar S-view: the join trigger's
    # probe column resolves from the packed store, so even 2 rows take
    # the array path.  Source-only leaf triggers (no store factors) may
    # still fold scalar below the threshold.
    engine.apply_update(delta("R", INT_RING, {(5, 0): 1, (6, 1): 1}))
    interp = FIVMEngine(
        Query("Q", SCHEMAS, ring=INT_RING, lifting=Lifting(INT_RING, {})),
        backend="interpreter",
    )
    interp.apply_update(delta("S", INT_RING, {(0, 0): 1, (1, 1): 2}))
    interp.apply_update(delta("R", INT_RING, {(5, 0): 1, (6, 1): 1}))
    for name, view in interp.views.items():
        assert view.same_as(engine.views[name])
    assert any(
        p._any_store
        for p in engine._programs.values()
        if isinstance(p, KernelDeltaProgram)
    )
    assert not any(calls)  # no store-backed program took the scalar fold


def test_scalar_and_vector_paths_agree_across_the_threshold():
    reference = make_engine(INT_RING, storage="dict")
    interp_query = Query("Q", SCHEMAS, ring=INT_RING, lifting=Lifting(INT_RING, {}))
    interp = FIVMEngine(interp_query, backend="interpreter")
    for size in (1, MIN_VECTOR_ROWS - 1, MIN_VECTOR_ROWS, 3 * MIN_VECTOR_ROWS):
        data = {(i, i % 3): 1 + (i % 2) for i in range(size)}
        r1 = reference.apply_update(delta("R", INT_RING, dict(data)))
        r2 = interp.apply_update(delta("R", INT_RING, dict(data)))
        assert r2.same_as(r1.rename({}, name=r2.name))
    for name, view in interp.views.items():
        assert view.same_as(reference.views[name])


@pytest.mark.parametrize("storage", ["dict", "columnar"])
def test_mixed_support_batch_falls_back_exactly(storage):
    # Lifting only B: R-deltas produce payload columns mixing the lifted
    # support with count-only (empty-support) triples, which refuse to
    # pack — the run must take the scalar fold and still match the
    # interpreter exactly.
    ring = CofactorRing(3)
    lifts = {"B": ring.lift(1)}
    kernels = make_engine(ring, lifts, storage=storage)
    interp = FIVMEngine(
        Query("Q", SCHEMAS, ring=ring, lifting=Lifting(ring, lifts)),
        backend="interpreter",
    )
    n = 2 * MIN_VECTOR_ROWS
    mixed = {}
    for i in range(n):
        payload = ring.lift(2)(float(i)) if i % 2 else ring.from_int(1)
        mixed[(i, i % 4)] = payload
    for engine in (kernels, interp):
        engine.apply_update(delta("R", ring, dict(mixed)))
        engine.apply_update(
            delta("S", ring, {(i % 4, i): ring.from_int(1) for i in range(n)})
        )
    for name, view in interp.views.items():
        assert view.same_as(kernels.views[name])


def test_kernel_program_output_carries_its_packed_block():
    engine = make_engine(INT_RING, storage="columnar")
    programs = {
        key: program
        for key, program in engine._programs.items()
        if isinstance(program, KernelDeltaProgram)
    }
    assert programs  # columnar + packed ring: every flat trigger is a kernel
    leaf = programs[("V@A_R", ("child", 0))]
    out = leaf.run(
        delta("R", INT_RING, {(i, i % 5): 1 for i in range(4 * MIN_VECTOR_ROWS)})
    )
    assert out._kernel_packed is not None
    unpacked = engine.query.ring.kernel_ops().unpack(out._kernel_packed)
    assert unpacked == list(out._data.values())  # aligned, insertion order
    # A packed output feeds the next program without re-packing (the
    # passthrough consumes the block) and still computes the same delta.
    parent = programs[("V@B_RS", ("child", 0))]
    with_hint = parent.run(out)
    plain = Relation(out.name, out.schema, out.ring, dict(out._data))
    without_hint = parent.run(plain)
    assert with_hint.same_as(without_hint)
    # The passthrough hint dies on mutation: the delta is then plain data.
    out.add((99,), 1)
    assert out._kernel_packed is None
