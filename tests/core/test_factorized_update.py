"""Tests for factorizable updates (Section 5)."""

import numpy as np
import pytest

from repro.core import FIVMEngine, FactorizedUpdate, Query, decompose
from repro.data import Relation, SchemaError
from repro.rings import INT_RING, REAL_RING, SquareMatrixRing

from tests.conftest import (
    PAPER_SCHEMAS,
    figure2_database,
    paper_variable_order,
)


def unary(name, var, data, ring=INT_RING):
    return Relation(name, (var,), ring, data)


class TestFactorizedUpdateContainer:
    def test_rank_one(self):
        update = FactorizedUpdate.rank_one(
            "R", [unary("u", "A", {(1,): 2}), unary("v", "B", {(5,): 3})]
        )
        assert update.rank == 1
        flat = update.flatten(("A", "B"))
        assert dict(flat.items()) == {(1, 5): 6}

    def test_rank_r_flatten_sums_terms(self):
        terms = [
            [unary("u1", "A", {(1,): 1}), unary("v1", "B", {(5,): 1})],
            [unary("u2", "A", {(1,): 1}), unary("v2", "B", {(5,): 2, (6,): 1})],
        ]
        update = FactorizedUpdate("R", terms)
        assert update.rank == 2
        flat = update.flatten(("A", "B"))
        assert dict(flat.items()) == {(1, 5): 3, (1, 6): 1}

    def test_overlapping_factor_schemas_rejected(self):
        with pytest.raises(SchemaError):
            FactorizedUpdate.rank_one(
                "R", [unary("u", "A", {(1,): 1}), unary("v", "A", {(2,): 1})]
            )

    def test_inconsistent_terms_rejected(self):
        with pytest.raises(SchemaError):
            FactorizedUpdate("R", [
                [unary("u", "A", {(1,): 1})],
                [unary("v", "B", {(1,): 1})],
            ])

    def test_flatten_schema_checked(self):
        update = FactorizedUpdate.rank_one("R", [unary("u", "A", {(1,): 1})])
        with pytest.raises(SchemaError):
            update.flatten(("A", "B"))

    def test_rank_zero_flattens_to_ring_zero(self):
        """An empty term list is the additive identity, not an error: it
        flattens to the empty relation over any schema (the regression for
        the old divergence from a no-op apply_update)."""
        update = FactorizedUpdate("R", [], ring=INT_RING)
        assert update.rank == 0
        assert update.attributes == frozenset()
        flat = update.flatten(("A", "B"))
        assert flat.is_empty
        assert flat.schema == ("A", "B")

    def test_rank_zero_without_ring_cannot_flatten(self):
        update = FactorizedUpdate("R", [])
        with pytest.raises(ValueError):
            update.flatten(("A",))

    def test_all_empty_terms_without_ring_cannot_flatten(self):
        """terms=[[]] leaves no factor to infer the ring from: flatten must
        raise the clear ValueError, not crash on ring=None."""
        update = FactorizedUpdate("R", [[]])
        assert update.attributes == frozenset()
        with pytest.raises(ValueError):
            update.flatten(())

    def test_empty_term_with_ring_is_the_unit(self):
        update = FactorizedUpdate("R", [[]], ring=INT_RING)
        flat = update.flatten(())
        assert dict(flat.items()) == {(): 1}

    def test_empty_factor_term_flattens_empty(self):
        """A term containing an empty factor contributes nothing."""
        update = FactorizedUpdate.rank_one(
            "R",
            [unary("u", "A", {(1,): 1}), Relation("v", ("B",), INT_RING)],
        )
        assert update.flatten(("A", "B")).is_empty

    def test_cumulative_size_example51(self):
        """Example 5.1: nm keys decompose into n + m values."""
        n, m = 6, 9
        full = Relation(
            "R", ("A", "B"), INT_RING,
            {(i, j): 1 for i in range(n) for j in range(m)},
        )
        update = decompose(full)
        assert update.cumulative_size() == n + m
        assert len(full) == n * m


class TestDecompose:
    def test_product_relation_recovers_factors(self):
        u = unary("u", "A", {(1,): 2, (2,): 1})
        v = unary("v", "B", {(5,): 3, (6,): 1})
        product = u.join(v).rename({}, name="R")
        update = decompose(product)
        assert update.rank == 1
        assert len(update.terms[0]) == 2
        assert update.flatten(("A", "B")).same_as(product)

    def test_non_factorizable_kept_whole(self):
        diagonal = Relation("R", ("A", "B"), INT_RING, {(1, 1): 1, (2, 2): 1})
        update = decompose(diagonal)
        assert len(update.terms[0]) == 1
        assert update.flatten(("A", "B")).same_as(diagonal)

    def test_three_way_product(self):
        u = unary("u", "A", {(1,): 1, (2,): 1})
        v = unary("v", "B", {(3,): 2})
        w = unary("w", "C", {(4,): 1, (5,): 1})
        product = u.join(v).join(w).rename({}, name="R")
        update = decompose(product)
        assert len(update.terms[0]) == 3
        assert update.flatten(("A", "B", "C")).same_as(product)

    def test_float_payloads(self):
        u = Relation("u", ("A",), REAL_RING, {(1,): 0.5, (2,): 1.5})
        v = Relation("v", ("B",), REAL_RING, {(7,): 2.0})
        product = u.join(v).rename({}, name="R")
        update = decompose(product)
        assert update.flatten(("A", "B")).same_as(product)

    def test_single_column_relation(self):
        r = unary("R", "A", {(1,): 1})
        update = decompose(r)
        assert update.rank == 1
        assert update.flatten(("A",)).same_as(r)

    def test_empty_delta_decomposes_to_rank_zero(self):
        empty = Relation("R", ("A", "B"), INT_RING)
        update = decompose(empty)
        assert update.rank == 0
        assert update.cumulative_size() == 0
        assert update.flatten(("A", "B")).is_empty

    def test_repeated_keys_accumulate_before_decomposition(self):
        """from_tuples accumulates repeated rows; decompose must factor the
        *accumulated* payloads, and the flatten round-trip must agree."""
        rows = [(1, 5), (1, 5), (2, 5), (1, 6), (1, 6), (2, 6)]
        delta = Relation.from_tuples("R", ("A", "B"), INT_RING, rows)
        assert delta.payload((1, 5)) == 2
        update = decompose(delta)
        assert update.rank == 1
        assert len(update.terms[0]) == 2  # {A: 2,1} x {B: 1,1}
        assert update.flatten(("A", "B")).same_as(delta)

    def test_flatten_round_trip_random(self, rng):
        """flatten(decompose(R)) == R for random small relations (both the
        factorizing and the non-factorizing kind)."""
        for trial in range(25):
            data = {}
            for _ in range(rng.randint(0, 6)):
                key = (rng.randint(0, 2), rng.randint(0, 2))
                data[key] = data.get(key, 0) + rng.choice([1, -1, 2])
            delta = Relation("R", ("A", "B"), INT_RING, data)
            update = decompose(delta)
            assert update.flatten(("A", "B")).same_as(delta), trial


class TestEnginePropagation:
    """Factorized propagation must agree with listing-form updates."""

    def _engines(self, updatable=("S",)):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        order = paper_variable_order()
        factored = FIVMEngine(q, order, updatable=updatable, db=figure2_database())
        listing = FIVMEngine(q, order, updatable=updatable, db=figure2_database())
        return q, order, factored, listing

    def test_rank_one_equals_listing(self):
        q, order, factored, listing = self._engines()
        update = FactorizedUpdate.rank_one("S", [
            unary("uA", "A", {("a1",): 1, ("a9",): 2}),
            unary("uC", "C", {("c2",): 1}),
            unary("uE", "E", {("e1",): 3}),
        ])
        factored.apply_factorized_update(update)
        listing.apply_update(update.flatten(("A", "C", "E"), name="S"))
        assert factored.result().same_as(listing.result())

    def test_example52_delta_shape(self):
        """Example 5.2: δS = δSA ⊗ δSC ⊗ δSE propagates as three factors and
        the root delta is correct."""
        q, order, factored, _ = self._engines()
        update = FactorizedUpdate.rank_one("S", [
            unary("uA", "A", {("a1",): 1}),
            unary("uC", "C", {("c1",): 1}),
            unary("uE", "E", {("e7",): 1}),
        ])
        root_delta = factored.apply_factorized_update(update)
        # (a1,c1,e7) joins 2 R-tuples (b1,b2) and 1 T-tuple (d1): delta = 2.
        assert dict(root_delta.items()) == {(): 2}

    def test_negative_payload_rank_one(self):
        """Example 5.1's over-approximation trick needs negative factors."""
        q, order, factored, listing = self._engines()
        update = FactorizedUpdate.rank_one("S", [
            unary("uA", "A", {("a1",): 1}),
            unary("uC", "C", {("c1",): -1}),
            unary("uE", "E", {("e1",): 1}),
        ])
        factored.apply_factorized_update(update)
        listing.apply_update(update.flatten(("A", "C", "E"), name="S"))
        assert factored.result().same_as(listing.result())

    def test_rank_r_sequence(self, rng):
        q, order, factored, listing = self._engines()
        for trial in range(10):
            terms = []
            for _ in range(rng.randint(1, 3)):
                terms.append([
                    unary("uA", "A", {(f"a{rng.randint(0,3)}",): rng.choice([1, -1])}),
                    unary("uC", "C", {(f"c{rng.randint(0,3)}",): 1}),
                    unary("uE", "E", {(f"e{rng.randint(0,3)}",): rng.randint(1, 2)}),
                ])
            update = FactorizedUpdate("S", terms)
            factored.apply_factorized_update(update)
            listing.apply_update(update.flatten(("A", "C", "E"), name="S"))
            assert factored.result().same_as(listing.result())

    def test_updatable_base_absorbs_flattened(self):
        """When the base copy is stored (here: R is a direct sibling of
        another updatable subtree), it receives the delta in listing form."""
        from repro.core import VariableOrder

        schemas = {"R": ("A", "B"), "S": ("B", "C")}
        q = Query("two", schemas, ring=INT_RING)
        order = VariableOrder.chain(("A", "B", "C"))
        engine = FIVMEngine(q, order)  # both updatable
        leaf_name = engine.tree.leaves["R"].name
        assert leaf_name in engine.views, "R must be stored as a sibling"
        update = FactorizedUpdate.rank_one("R", [
            unary("uA", "A", {(1,): 1, (2,): 1}),
            unary("uB", "B", {(7,): 2}),
        ])
        engine.apply_factorized_update(update)
        stored = engine.views[leaf_name]
        assert stored.payload((1, 7)) == 2
        assert stored.payload((2, 7)) == 2

    def test_rank_zero_update_is_noop(self):
        """Engine regression for the empty-term-list fix: rank-0 must equal
        a no-op apply_update — zero root delta, untouched state."""
        q, order, factored, listing = self._engines()
        before_sizes = factored.view_sizes()
        root_delta = factored.apply_factorized_update(
            FactorizedUpdate("S", [], ring=INT_RING)
        )
        assert root_delta.is_empty
        assert root_delta.schema == factored.result().schema
        assert factored.view_sizes() == before_sizes
        assert factored.result().same_as(listing.result())

    def test_rank_zero_interpreted_matches(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order(), compiled=False)
        root_delta = engine.apply_factorized_update(
            FactorizedUpdate("S", [], ring=INT_RING)
        )
        assert root_delta.is_empty

    def test_term_cancelling_to_zero_mid_propagation(self):
        """Opposite-sign terms cancel: state and root delta equal a no-op,
        and the stored base ends exactly where it started."""
        q, order, factored, listing = self._engines()
        up = [
            unary("uA", "A", {("a1",): 1}),
            unary("uC", "C", {("c1",): 1}),
            unary("uE", "E", {("e1",): 1}),
        ]
        down = [
            unary("uA", "A", {("a1",): -1}),
            unary("uC", "C", {("c1",): 1}),
            unary("uE", "E", {("e1",): 1}),
        ]
        update = FactorizedUpdate("S", [up, down])
        root_delta = factored.apply_factorized_update(update)
        assert root_delta.is_empty
        assert factored.result().same_as(listing.result())
        for name, contents in factored.views.items():
            assert contents.same_as(listing.views[name]), name

    def test_factor_cancelled_inside_merge_propagates_zero(self):
        """A factor whose contributions cancel against a sibling mid-path
        (payload sums to zero inside the fused merge) yields the zero root
        delta without corrupting higher views."""
        q, order, factored, listing = self._engines()
        update = FactorizedUpdate.rank_one("S", [
            unary("uA", "A", {("a1",): 1, ("a2",): -1}),
            unary("uC", "C", {("c9",): 1}),  # c9 matches no T tuple
            unary("uE", "E", {("e1",): 1}),
        ])
        factored.apply_factorized_update(update)
        listing.apply_update(update.flatten(("A", "C", "E"), name="S"))
        assert factored.result().same_as(listing.result())
        for name, contents in factored.views.items():
            assert contents.same_as(listing.views[name]), name

    def test_non_commutative_ring_rejected(self):
        ring = SquareMatrixRing(2)
        q = Query("Q", PAPER_SCHEMAS, ring=ring)
        engine = FIVMEngine(q, paper_variable_order())
        update = FactorizedUpdate.rank_one(
            "S",
            [
                Relation("uA", ("A",), ring, {(1,): np.eye(2)}),
                Relation("uC", ("C",), ring, {(1,): np.eye(2)}),
                Relation("uE", ("E",), ring, {(1,): np.eye(2)}),
            ],
        )
        with pytest.raises(ValueError):
            engine.apply_factorized_update(update)
