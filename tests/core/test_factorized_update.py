"""Tests for factorizable updates (Section 5)."""

import numpy as np
import pytest

from repro.core import FIVMEngine, FactorizedUpdate, Query, decompose
from repro.data import Database, Relation, SchemaError
from repro.rings import INT_RING, REAL_RING, SquareMatrixRing

from tests.conftest import (
    PAPER_SCHEMAS,
    figure2_database,
    paper_variable_order,
    recompute,
)


def unary(name, var, data, ring=INT_RING):
    return Relation(name, (var,), ring, data)


class TestFactorizedUpdateContainer:
    def test_rank_one(self):
        update = FactorizedUpdate.rank_one(
            "R", [unary("u", "A", {(1,): 2}), unary("v", "B", {(5,): 3})]
        )
        assert update.rank == 1
        flat = update.flatten(("A", "B"))
        assert dict(flat.items()) == {(1, 5): 6}

    def test_rank_r_flatten_sums_terms(self):
        terms = [
            [unary("u1", "A", {(1,): 1}), unary("v1", "B", {(5,): 1})],
            [unary("u2", "A", {(1,): 1}), unary("v2", "B", {(5,): 2, (6,): 1})],
        ]
        update = FactorizedUpdate("R", terms)
        assert update.rank == 2
        flat = update.flatten(("A", "B"))
        assert dict(flat.items()) == {(1, 5): 3, (1, 6): 1}

    def test_overlapping_factor_schemas_rejected(self):
        with pytest.raises(SchemaError):
            FactorizedUpdate.rank_one(
                "R", [unary("u", "A", {(1,): 1}), unary("v", "A", {(2,): 1})]
            )

    def test_inconsistent_terms_rejected(self):
        with pytest.raises(SchemaError):
            FactorizedUpdate("R", [
                [unary("u", "A", {(1,): 1})],
                [unary("v", "B", {(1,): 1})],
            ])

    def test_flatten_schema_checked(self):
        update = FactorizedUpdate.rank_one("R", [unary("u", "A", {(1,): 1})])
        with pytest.raises(SchemaError):
            update.flatten(("A", "B"))

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            FactorizedUpdate("R", [])

    def test_cumulative_size_example51(self):
        """Example 5.1: nm keys decompose into n + m values."""
        n, m = 6, 9
        full = Relation(
            "R", ("A", "B"), INT_RING,
            {(i, j): 1 for i in range(n) for j in range(m)},
        )
        update = decompose(full)
        assert update.cumulative_size() == n + m
        assert len(full) == n * m


class TestDecompose:
    def test_product_relation_recovers_factors(self):
        u = unary("u", "A", {(1,): 2, (2,): 1})
        v = unary("v", "B", {(5,): 3, (6,): 1})
        product = u.join(v).rename({}, name="R")
        update = decompose(product)
        assert update.rank == 1
        assert len(update.terms[0]) == 2
        assert update.flatten(("A", "B")).same_as(product)

    def test_non_factorizable_kept_whole(self):
        diagonal = Relation("R", ("A", "B"), INT_RING, {(1, 1): 1, (2, 2): 1})
        update = decompose(diagonal)
        assert len(update.terms[0]) == 1
        assert update.flatten(("A", "B")).same_as(diagonal)

    def test_three_way_product(self):
        u = unary("u", "A", {(1,): 1, (2,): 1})
        v = unary("v", "B", {(3,): 2})
        w = unary("w", "C", {(4,): 1, (5,): 1})
        product = u.join(v).join(w).rename({}, name="R")
        update = decompose(product)
        assert len(update.terms[0]) == 3
        assert update.flatten(("A", "B", "C")).same_as(product)

    def test_float_payloads(self):
        u = Relation("u", ("A",), REAL_RING, {(1,): 0.5, (2,): 1.5})
        v = Relation("v", ("B",), REAL_RING, {(7,): 2.0})
        product = u.join(v).rename({}, name="R")
        update = decompose(product)
        assert update.flatten(("A", "B")).same_as(product)

    def test_single_column_relation(self):
        r = unary("R", "A", {(1,): 1})
        update = decompose(r)
        assert update.rank == 1
        assert update.flatten(("A",)).same_as(r)


class TestEnginePropagation:
    """Factorized propagation must agree with listing-form updates."""

    def _engines(self, updatable=("S",)):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        order = paper_variable_order()
        factored = FIVMEngine(q, order, updatable=updatable, db=figure2_database())
        listing = FIVMEngine(q, order, updatable=updatable, db=figure2_database())
        return q, order, factored, listing

    def test_rank_one_equals_listing(self):
        q, order, factored, listing = self._engines()
        update = FactorizedUpdate.rank_one("S", [
            unary("uA", "A", {("a1",): 1, ("a9",): 2}),
            unary("uC", "C", {("c2",): 1}),
            unary("uE", "E", {("e1",): 3}),
        ])
        factored.apply_factorized_update(update)
        listing.apply_update(update.flatten(("A", "C", "E"), name="S"))
        assert factored.result().same_as(listing.result())

    def test_example52_delta_shape(self):
        """Example 5.2: δS = δSA ⊗ δSC ⊗ δSE propagates as three factors and
        the root delta is correct."""
        q, order, factored, _ = self._engines()
        db = figure2_database()
        update = FactorizedUpdate.rank_one("S", [
            unary("uA", "A", {("a1",): 1}),
            unary("uC", "C", {("c1",): 1}),
            unary("uE", "E", {("e7",): 1}),
        ])
        root_delta = factored.apply_factorized_update(update)
        # (a1,c1,e7) joins 2 R-tuples (b1,b2) and 1 T-tuple (d1): delta = 2.
        assert dict(root_delta.items()) == {(): 2}

    def test_negative_payload_rank_one(self):
        """Example 5.1's over-approximation trick needs negative factors."""
        q, order, factored, listing = self._engines()
        update = FactorizedUpdate.rank_one("S", [
            unary("uA", "A", {("a1",): 1}),
            unary("uC", "C", {("c1",): -1}),
            unary("uE", "E", {("e1",): 1}),
        ])
        factored.apply_factorized_update(update)
        listing.apply_update(update.flatten(("A", "C", "E"), name="S"))
        assert factored.result().same_as(listing.result())

    def test_rank_r_sequence(self, rng):
        q, order, factored, listing = self._engines()
        for trial in range(10):
            terms = []
            for _ in range(rng.randint(1, 3)):
                terms.append([
                    unary("uA", "A", {(f"a{rng.randint(0,3)}",): rng.choice([1, -1])}),
                    unary("uC", "C", {(f"c{rng.randint(0,3)}",): 1}),
                    unary("uE", "E", {(f"e{rng.randint(0,3)}",): rng.randint(1, 2)}),
                ])
            update = FactorizedUpdate("S", terms)
            factored.apply_factorized_update(update)
            listing.apply_update(update.flatten(("A", "C", "E"), name="S"))
            assert factored.result().same_as(listing.result())

    def test_updatable_base_absorbs_flattened(self):
        """When the base copy is stored (here: R is a direct sibling of
        another updatable subtree), it receives the delta in listing form."""
        from repro.core import VariableOrder

        schemas = {"R": ("A", "B"), "S": ("B", "C")}
        q = Query("two", schemas, ring=INT_RING)
        order = VariableOrder.chain(("A", "B", "C"))
        engine = FIVMEngine(q, order)  # both updatable
        leaf_name = engine.tree.leaves["R"].name
        assert leaf_name in engine.views, "R must be stored as a sibling"
        update = FactorizedUpdate.rank_one("R", [
            unary("uA", "A", {(1,): 1, (2,): 1}),
            unary("uB", "B", {(7,): 2}),
        ])
        engine.apply_factorized_update(update)
        stored = engine.views[leaf_name]
        assert stored.payload((1, 7)) == 2
        assert stored.payload((2, 7)) == 2

    def test_non_commutative_ring_rejected(self):
        ring = SquareMatrixRing(2)
        q = Query("Q", PAPER_SCHEMAS, ring=ring)
        engine = FIVMEngine(q, paper_variable_order())
        update = FactorizedUpdate.rank_one(
            "S",
            [
                Relation("uA", ("A",), ring, {(1,): np.eye(2)}),
                Relation("uC", ("C",), ring, {(1,): np.eye(2)}),
                Relation("uE", ("E",), ring, {(1,): np.eye(2)}),
            ],
        )
        with pytest.raises(ValueError):
            engine.apply_factorized_update(update)
