"""Tests for indicator projections in view trees (Appendix B)."""

import random

import pytest

from repro.core import (
    FIVMEngine,
    Query,
    VariableOrder,
    add_indicator_projections,
    build_view_tree,
)
from repro.data import Database, Relation
from repro.rings import INT_RING

from tests.conftest import make_database, random_delta, recompute

TRIANGLE_SCHEMAS = {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "A")}


def triangle_query():
    return Query("tri", TRIANGLE_SCHEMAS, ring=INT_RING)


def triangle_tree(with_indicators=True):
    tree = build_view_tree(triangle_query(), VariableOrder.chain(("A", "B", "C")))
    if with_indicators:
        add_indicator_projections(tree)
    return tree


class TestAdornment:
    def test_indicator_added_at_cycle_view(self):
        """Figure 9: ∃_{A,B} R lands below the view joining S and T."""
        tree = triangle_tree()
        hosts = [n for n in tree.nodes if n.indicators]
        assert len(hosts) == 1
        host = hosts[0]
        assert host.relations == frozenset({"S", "T"})
        spec = host.indicators[0]
        assert spec.base_name == "R"
        assert set(spec.attrs) == {"A", "B"}

    def test_acyclic_queries_get_no_indicators(self):
        q = Query(
            "chain",
            {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "D")},
            ring=INT_RING,
        )
        tree = add_indicator_projections(build_view_tree(q))
        assert all(not n.indicators for n in tree.nodes)

    def test_pretty_shows_indicator(self):
        tree = triangle_tree()
        assert "∃" in tree.pretty()


class TestTriangleMaintenance:
    def _random_edge_delta(self, rng, rel):
        delta = Relation(rel, TRIANGLE_SCHEMAS[rel], INT_RING)
        for _ in range(rng.randint(1, 3)):
            key = (rng.randint(0, 4), rng.randint(0, 4))
            delta.add(key, rng.choice([1, 1, 2, -1]))
        return delta

    @pytest.mark.parametrize("with_indicators", [True, False])
    def test_matches_recomputation_under_churn(self, rng, with_indicators):
        q = triangle_query()
        tree = triangle_tree(with_indicators)
        engine = FIVMEngine(q, tree=tree)
        db = Database(
            Relation(rel, schema, INT_RING)
            for rel, schema in TRIANGLE_SCHEMAS.items()
        )
        for _ in range(80):
            rel = rng.choice(list(TRIANGLE_SCHEMAS))
            delta = self._random_edge_delta(rng, rel)
            engine.apply_update(delta.copy())
            db.apply_update(delta)
            expected = recompute(q, db, VariableOrder.chain(("A", "B", "C")))
            assert engine.result().same_as(expected), f"after δ{rel}"

    def test_indicator_constrains_view_size(self):
        """Example B.1/B.3: without the indicator the S⊗T view is O(N²);
        with it, it is bounded by the triangle-participating pairs."""
        rng = random.Random(2)
        n = 12
        # S and T dense-ish, R sparse: the indicator filters hard.
        rows = {
            "S": [(b, c) for b in range(n) for c in range(n) if rng.random() < 0.5],
            "T": [(c, a) for c in range(n) for a in range(n) if rng.random() < 0.5],
            "R": [(a, b) for a in range(n) for b in range(n) if rng.random() < 0.05],
        }
        q = triangle_query()

        def st_view_size(with_ind):
            tree = triangle_tree(with_ind)
            engine = FIVMEngine(q, tree=tree, materialize="all")
            db = make_database(TRIANGLE_SCHEMAS, INT_RING, rows)
            engine.initialize(db)
            host = next(
                node for node in tree.nodes
                if not node.is_leaf and node.relations == frozenset({"S", "T"})
            )
            return len(engine.views[host.name])

        assert st_view_size(True) < st_view_size(False) / 3

    def test_initialize_with_indicators(self):
        rows = {
            "R": [(1, 2), (2, 3)],
            "S": [(2, 5), (3, 5)],
            "T": [(5, 1), (5, 2)],
        }
        q = triangle_query()
        engine = FIVMEngine(
            q, tree=triangle_tree(), db=make_database(TRIANGLE_SCHEMAS, INT_RING, rows)
        )
        expected = recompute(
            q,
            make_database(TRIANGLE_SCHEMAS, INT_RING, rows),
            VariableOrder.chain(("A", "B", "C")),
        )
        assert engine.result().same_as(expected)
        # Triangles: (1,2,5) via R(1,2),S(2,5),T(5,1) and (2,3,5).
        assert engine.result().payload(()) == 2

    def test_loop4_with_chord(self):
        """A 4-cycle with a chord: the chord relation feeds indicators in
        multiple subqueries; maintenance must still match recomputation."""
        schemas = {
            "R1": ("A", "B"),
            "R2": ("B", "C"),
            "R3": ("C", "D"),
            "R4": ("D", "A"),
            "Chord": ("A", "C"),
        }
        q = Query("loop4", schemas, ring=INT_RING)
        order = VariableOrder.chain(("A", "B", "C", "D"))
        tree = add_indicator_projections(build_view_tree(q, order))
        engine = FIVMEngine(q, tree=tree)
        rng = random.Random(5)
        db = Database(
            Relation(rel, schema, INT_RING) for rel, schema in schemas.items()
        )
        for _ in range(60):
            rel = rng.choice(list(schemas))
            delta = random_delta(rng, rel, schemas[rel], INT_RING, domain=3)
            engine.apply_update(delta.copy())
            db.apply_update(delta)
            assert engine.result().same_as(recompute(q, db, order)), rel
