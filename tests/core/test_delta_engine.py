"""The central F-IVM invariant: maintained views equal recomputation.

Random databases, random insert/delete streams, random variable orders,
every payload ring — after every update the engine's root view must equal
evaluating the query from scratch, and every materialized auxiliary view
must equal its own definition.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FIVMEngine,
    Query,
    VariableOrder,
    build_view_tree,
)
from repro.data import Database, Relation
from repro.rings import (
    INT_RING,
    CofactorRing,
    Lifting,
    RealRing,
    RelationalRing,
    SquareMatrixRing,
    free_lift,
)

from tests.conftest import (
    PAPER_SCHEMAS,
    figure2_database,
    paper_variable_order,
    random_delta,
    recompute,
)


def drive_and_check(engine, query, order, schemas, steps, rng, domain=4):
    """Apply random deltas; after each, compare against recomputation."""
    db = Database(
        Relation(rel, schema, query.ring) for rel, schema in schemas.items()
    )
    for _ in range(steps):
        rel = rng.choice(list(schemas))
        delta = random_delta(rng, rel, schemas[rel], query.ring, domain=domain)
        engine.apply_update(delta.copy())
        db.apply_update(delta)
        expected = recompute(query, db, order)
        got = engine.result()
        assert got.same_as(expected), (
            f"divergence after update to {rel}:\n{got.pretty()}\n"
            f"expected:\n{expected.pretty()}"
        )
    return db


class TestExample41:
    """The paper's delta propagation for δT = {(c1,d1)→-1, (c2,d2)→3}."""

    def test_worked_delta(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order(), db=figure2_database())
        delta = Relation(
            "T", ("C", "D"), INT_RING, {("c1", "d1"): -1, ("c2", "d2"): 3}
        )
        root_delta = engine.apply_update(delta)
        assert dict(root_delta.items()) == {(): 5}
        assert engine.result().payload(()) == 15


class TestInvariantAcrossRings:
    def test_int_count(self, rng):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        order = paper_variable_order()
        drive_and_check(FIVMEngine(q, order), q, order, PAPER_SCHEMAS, 60, rng)

    def test_int_with_free_vars(self, rng):
        q = Query("Q", PAPER_SCHEMAS, free=("A", "C"), ring=INT_RING)
        order = paper_variable_order()
        drive_and_check(FIVMEngine(q, order), q, order, PAPER_SCHEMAS, 60, rng)

    def test_real_sum_aggregate(self, rng):
        ring = RealRing()
        lifting = Lifting(ring, {
            "B": lambda x: float(x),
            "D": lambda x: float(x),
            "E": lambda x: float(x),
        })
        q = Query("Q", PAPER_SCHEMAS, free=("A",), ring=ring, lifting=lifting)
        order = paper_variable_order()
        drive_and_check(FIVMEngine(q, order), q, order, PAPER_SCHEMAS, 50, rng)

    def test_cofactor_ring(self, rng):
        ring = CofactorRing(3)
        lifting = Lifting(ring, {
            "B": ring.lift(0), "D": ring.lift(1), "E": ring.lift(2),
        })
        q = Query("Q", PAPER_SCHEMAS, ring=ring, lifting=lifting)
        order = paper_variable_order()
        drive_and_check(FIVMEngine(q, order), q, order, PAPER_SCHEMAS, 25, rng)

    def test_matrix_ring_non_commutative(self, rng):
        """Payload multiplication order must follow child order."""
        ring = SquareMatrixRing(2)
        lifting = Lifting(ring, {
            "B": lambda x: np.eye(2) + 0.1 * x * np.array([[0.0, 1], [0, 0]]),
            "D": lambda x: np.eye(2) + 0.1 * x * np.array([[0.0, 0], [1, 0]]),
        })
        q = Query("Q", PAPER_SCHEMAS, ring=ring, lifting=lifting)
        order = paper_variable_order()
        drive_and_check(
            FIVMEngine(q, order), q, order, PAPER_SCHEMAS, 20, rng, domain=3
        )

    def test_relational_ring(self, rng):
        ring = RelationalRing()
        lifting = Lifting(ring, {"B": free_lift("B"), "D": free_lift("D")})
        q = Query("Q", PAPER_SCHEMAS, ring=ring, lifting=lifting)
        order = paper_variable_order()
        drive_and_check(
            FIVMEngine(q, order), q, order, PAPER_SCHEMAS, 25, rng, domain=3
        )


class TestAuxiliaryViewConsistency:
    def test_every_materialized_view_matches_definition(self, rng):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        order = paper_variable_order()
        engine = FIVMEngine(q, order)
        db = Database(
            Relation(rel, schema, INT_RING)
            for rel, schema in PAPER_SCHEMAS.items()
        )
        for _ in range(50):
            rel = rng.choice(list(PAPER_SCHEMAS))
            delta = random_delta(rng, rel, PAPER_SCHEMAS[rel], INT_RING)
            engine.apply_update(delta.copy())
            db.apply_update(delta)
        reference = build_view_tree(q, order).evaluate(db)
        for name, contents in engine.views.items():
            assert contents.same_as(
                reference[name].reorder(contents.schema, name=name)
            ), f"view {name} diverged"


class TestRootDeltaReporting:
    def test_deltas_sum_to_final_state(self, rng):
        q = Query("Q", PAPER_SCHEMAS, free=("A",), ring=INT_RING)
        order = paper_variable_order()
        engine = FIVMEngine(q, order)
        accumulated = Relation("acc", engine.tree.root.keys, INT_RING)
        for _ in range(40):
            rel = rng.choice(list(PAPER_SCHEMAS))
            delta = random_delta(rng, rel, PAPER_SCHEMAS[rel], INT_RING)
            accumulated.absorb(engine.apply_update(delta))
        assert accumulated.same_as(
            engine.result().rename({}, name="acc")
        )


class TestUpdatableScenarios:
    def test_one_relation_scenario_with_preloaded_db(self, rng):
        """Static relations preloaded; stream touches only one relation."""
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        order = paper_variable_order()
        db = figure2_database()
        engine = FIVMEngine(q, order, updatable={"S"}, db=db)
        live = db.copy()
        for _ in range(40):
            delta = random_delta(rng, "S", PAPER_SCHEMAS["S"], INT_RING)
            engine.apply_update(delta.copy())
            live.apply_update(delta)
            assert engine.result().same_as(recompute(q, live, order))

    def test_fewer_views_for_restricted_updates(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        order = paper_variable_order()
        all_updates = FIVMEngine(q, order)
        one_update = FIVMEngine(q, order, updatable={"S"})
        assert len(one_update.views) < len(all_updates.views)

    def test_update_to_non_updatable_rejected(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order(), updatable={"S"})
        with pytest.raises(KeyError):
            engine.apply_update(Relation("R", ("A", "B"), INT_RING, {(1, 2): 1}))

    def test_wrong_delta_schema_rejected(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order())
        with pytest.raises(ValueError):
            engine.apply_update(Relation("R", ("B", "A"), INT_RING, {(1, 2): 1}))

    def test_empty_delta_is_noop(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order())
        out = engine.apply_update(Relation("R", ("A", "B"), INT_RING))
        assert out.is_empty


class TestInitializeAndIntrospection:
    def test_initialize_from_snapshot(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order(), db=figure2_database())
        assert engine.result().payload(()) == 10

    def test_reinitialize_resets(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order(), db=figure2_database())
        engine.initialize(figure2_database())
        assert engine.result().payload(()) == 10

    def test_view_sizes_and_counts(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order(), db=figure2_database())
        sizes = engine.view_sizes()
        assert sizes[engine.tree.root.name] == 1
        assert engine.total_keys() == sum(sizes.values())
        assert engine.view_count() == 5

    def test_materialize_all(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(
            q, paper_variable_order(), updatable={"T"}, materialize="all"
        )
        assert len(engine.views) == len(engine.tree.nodes)

    def test_materialize_mode_validated(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        with pytest.raises(ValueError):
            FIVMEngine(q, paper_variable_order(), materialize="some")


# ----------------------------------------------------------------------
# Property-based: random schemas, random orders, random streams
# ----------------------------------------------------------------------

@st.composite
def random_query_setup(draw):
    variables = ["V0", "V1", "V2", "V3", "V4"]
    n_relations = draw(st.integers(1, 4))
    relations = {}
    for index in range(n_relations):
        width = draw(st.integers(1, 3))
        start = draw(st.integers(0, len(variables) - width))
        # Contiguous slices keep schemas overlapping often enough to be
        # interesting without exploding join sizes.
        relations[f"R{index}"] = tuple(variables[start:start + width])
    used = tuple(
        dict.fromkeys(a for schema in relations.values() for a in schema)
    )
    free = tuple(v for v in used if draw(st.booleans()) and draw(st.booleans()))
    seed = draw(st.integers(0, 10_000))
    return relations, free, seed


@given(random_query_setup())
@settings(max_examples=40, deadline=None)
def test_invariant_on_random_queries(setup):
    relations, free, seed = setup
    rng = random.Random(seed)
    q = Query("rand", relations, free=free, ring=INT_RING)
    order = VariableOrder.auto(q)
    engine = FIVMEngine(q, order)
    db = Database(
        Relation(rel, schema, INT_RING) for rel, schema in relations.items()
    )
    for _ in range(12):
        rel = rng.choice(list(relations))
        delta = random_delta(rng, rel, relations[rel], INT_RING, domain=3)
        engine.apply_update(delta.copy())
        db.apply_update(delta)
    assert engine.result().same_as(recompute(q, db, order))
