"""Engine feature tests: group-aware joins, decomposed updates, plans."""



from repro.core import FIVMEngine, Query, VariableOrder
from repro.data import Database, Relation
from repro.rings import INT_RING, SquareMatrixRing

import numpy as np

from tests.conftest import (
    PAPER_SCHEMAS,
    paper_variable_order,
    random_delta,
    recompute,
)


class TestGroupAwareEquivalence:
    def test_fuzz_on_paper_query(self, rng):
        """group_aware on/off must produce identical maintained results."""
        q = Query("Q", PAPER_SCHEMAS, free=("A",), ring=INT_RING)
        order = paper_variable_order()
        on = FIVMEngine(q, order, group_aware=True)
        off = FIVMEngine(q, order, group_aware=False)
        for _ in range(60):
            rel = rng.choice(list(PAPER_SCHEMAS))
            delta = random_delta(rng, rel, PAPER_SCHEMAS[rel], INT_RING)
            on.apply_update(delta.copy())
            off.apply_update(delta)
            assert on.result().same_as(off.result())

    def test_non_commutative_with_aggregated_probes(self, rng):
        """Bucket sums must preserve payload multiplication order."""
        ring = SquareMatrixRing(2)
        from repro.rings import Lifting

        lifting = Lifting(ring, {
            "B": lambda x: np.eye(2) + 0.1 * x * np.array([[0.0, 1], [0, 0]]),
            "E": lambda x: np.eye(2) + 0.1 * x * np.array([[0.0, 0], [1, 0]]),
        })
        q = Query("Q", PAPER_SCHEMAS, ring=ring, lifting=lifting)
        order = paper_variable_order()
        engine = FIVMEngine(q, order, group_aware=True)
        db = Database(
            Relation(rel, schema, ring) for rel, schema in PAPER_SCHEMAS.items()
        )
        for _ in range(20):
            rel = rng.choice(list(PAPER_SCHEMAS))
            delta = random_delta(rng, rel, PAPER_SCHEMAS[rel], ring, domain=3)
            engine.apply_update(delta.copy())
            db.apply_update(delta)
            assert engine.result().same_as(recompute(q, db, order))

    def test_lifted_variable_blocks_aggregation(self):
        """A sibling whose extension feeds a lifting function must not be
        read as a pre-aggregated sum."""
        from repro.rings import Lifting

        ring = INT_RING
        schemas = {"R": ("P", "X"), "S": ("P", "Y")}
        lifting = Lifting(ring, {"Y": lambda y: y})
        q = Query("liftstar", schemas, free=("P",), ring=ring, lifting=lifting)
        order = VariableOrder.from_spec(("P", ["X", "Y"]))
        engine = FIVMEngine(q, order)
        engine.apply_update(Relation("S", ("P", "Y"), ring, {(1, 5): 1, (1, 7): 1}))
        engine.apply_update(Relation("R", ("P", "X"), ring, {(1, 0): 1}))
        # SUM(Y) over the join: 5 + 7 = 12.
        assert engine.result().payload((1,)) == 12


class TestDecomposedUpdates:
    def test_factorizable_delta_routes_factored(self, rng):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        order = paper_variable_order()
        engine = FIVMEngine(q, order, updatable={"S"})
        mirror = FIVMEngine(q, order, updatable={"S"})
        # A product delta: {a1,a2} × {c1} × {e1,e2}.
        delta = Relation("S", ("A", "C", "E"), INT_RING)
        for a in ("a1", "a2"):
            for e in ("e1", "e2"):
                delta.add((a, "c1", e), 1)
        engine.apply_decomposed_update(delta.copy())
        mirror.apply_update(delta)
        assert engine.result().same_as(mirror.result())

    def test_non_factorizable_falls_back(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        order = paper_variable_order()
        engine = FIVMEngine(q, order)
        delta = Relation(
            "S", ("A", "C", "E"), INT_RING,
            {("a1", "c1", "e1"): 1, ("a2", "c2", "e2"): 1},
        )
        out = engine.apply_decomposed_update(delta)
        assert out.schema == engine.tree.root.keys

    def test_empty_delta(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order())
        out = engine.apply_decomposed_update(Relation("S", ("A", "C", "E"), INT_RING))
        assert out.is_empty

    def test_random_fuzz(self, rng):
        q = Query("Q", PAPER_SCHEMAS, free=("A",), ring=INT_RING)
        order = paper_variable_order()
        engine = FIVMEngine(q, order)
        db = Database(
            Relation(rel, schema, INT_RING)
            for rel, schema in PAPER_SCHEMAS.items()
        )
        for _ in range(30):
            rel = rng.choice(list(PAPER_SCHEMAS))
            delta = random_delta(rng, rel, PAPER_SCHEMAS[rel], INT_RING)
            engine.apply_decomposed_update(delta.copy())
            db.apply_update(delta)
            assert engine.result().same_as(recompute(q, db, order))


class TestPlanIntrospection:
    def test_plans_exist_only_for_live_sources(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order(), updatable={"T"})
        # No plan should reference subtrees that can never emit deltas.
        for (node_name, source), plan in engine._plans.items():
            node = next(n for n in engine.tree.nodes if n.name == node_name)
            kind, idx = source
            assert kind == "child"
            assert "T" in node.children[idx].relations

    def test_all_probe_indexes_registered(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order())
        for (node_name, _), plan in engine._plans.items():
            node = next(n for n in engine.tree.nodes if n.name == node_name)
            for step in plan:
                target = engine._plan_target_relation(node, step)
                # Lookup must not raise for any planned probe.
                target.lookup(step.probe_attrs, tuple(
                    None for _ in step.probe_attrs
                ))
