"""The crash-recovery differential oracle and targeted supervision tests.

The oracle reuses the randomized case generator of
``test_differential_random.py`` and runs each stream twice: through a
fault-free single :class:`FIVMEngine` and through a supervised
process-executor :class:`ShardedFIVMEngine` whose forked workers carry a
seeded :class:`FaultPlan` — deterministic crashes, hangs, and transient
errors planted at the worker fault sites, including the
applied-but-not-acked window (``worker.post_apply``).  After every event
the per-update root deltas must agree, and at the end the merged views
must equal the fault-free engine's on every tested ring — i.e.
supervision (restart from shard snapshot + journal-tail replay) is
*invisible* to correctness.

``FIVM_FAULTS`` scales the plan pool: an integer runs that many seeded
plans per (ring, shards) combination (tier-1 CI runs a few, the nightly
sweep many), an explicit ``site@hit=action`` spec pins one failure for a
repro.  Hangs are generated long enough (4s) to trip the deliberately
tight 0.5s recv deadline, so a planted hang always reads as a stuck
worker.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core import FIVMEngine, Query, ShardedFIVMEngine, VariableOrder
from repro.core.faults import (
    ACTIONS,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    plans_from_env,
)
from repro.data import Database, Relation
from repro.rings import INT_RING, Lifting

from tests.core.test_differential_random import (
    BASE_SEED,
    RING_FAMILIES,
    _as_delta,
    _as_factorized,
    generate_case,
)

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the process executor needs the fork start method",
)

#: (label, plan factory) pairs — factories because fault-plan hit
#: counters are per process and every engine run needs fresh instances.
PLANS = plans_from_env(default_count=2, hang_seconds=4.0)
SHARD_COUNTS = (2, 4)
#: Tight reply deadline so planted hangs are detected in ~0.5s.
RECV_TIMEOUT = 0.5
#: Small checkpoint interval so recovery exercises snapshot + tail
#: replay (not just whole-journal replay) within short streams.
CHECKPOINT_EVERY = 3


# ----------------------------------------------------------------------
# FaultPlan unit surface (no fork required)
# ----------------------------------------------------------------------


def test_fault_plan_fires_deterministically():
    plan = FaultPlan({"worker.recv": {2: "error"}})
    plan.fire("worker.recv")
    with pytest.raises(InjectedFault):
        plan.fire("worker.recv")
    plan.fire("worker.recv")  # hit 3: inert again
    assert plan.fired == [("worker.recv", 2, "error")]


def test_fault_plan_crash_raise_mode():
    plan = FaultPlan({"writer.loop": {1: "crash"}})
    assert plan.crash_action == "raise"
    with pytest.raises(InjectedCrash):
        plan.fire("writer.loop")


def test_fault_plan_parse_and_seeded():
    plan = FaultPlan.parse("worker.post_apply@2=crash;worker.recv@5=hang")
    assert plan.rules == {
        "worker.post_apply": {2: "crash"},
        "worker.recv": {5: "hang"},
    }
    a = FaultPlan.seeded(42)
    b = FaultPlan.seeded(42)
    assert a.rules == b.rules
    for site, schedule in a.rules.items():
        assert site.startswith("worker.")
        for hit, action in schedule.items():
            assert 1 <= hit <= 12 and action in ACTIONS


def test_fault_plan_rejects_unknown_sites_and_actions():
    with pytest.raises(ValueError):
        FaultPlan({"no.such.site": {1: "crash"}})
    with pytest.raises(ValueError):
        FaultPlan({"worker.recv": {1: "explode"}})
    with pytest.raises(ValueError):
        FaultPlan({"worker.recv": {0: "crash"}})


def test_plans_from_env_integer_and_spec(monkeypatch):
    monkeypatch.setenv("FIVM_FAULTS", "3")
    plans = plans_from_env(default_count=1)
    assert len(plans) == 3
    assert all(callable(factory) for _label, factory in plans)
    monkeypatch.setenv("FIVM_FAULTS", "worker.recv@1=hang")
    (label, factory), = plans_from_env()
    assert label == "spec"
    assert factory().rules == {"worker.recv": {1: "hang"}}


# ----------------------------------------------------------------------
# The crash-recovery differential oracle
# ----------------------------------------------------------------------


def run_crash_case(
    case: dict,
    ring_family,
    shards: int,
    plan_factory,
    executor: str = "process",
    pipeline_depth: int = 0,
):
    """Replay one random stream through a fault-free engine and a
    supervised, fault-injected sharded engine (process or socket
    executor, synchronous or pipelined); return a divergence description
    or None."""
    schemas = case["schemas"]
    attrs = tuple(sorted({a for s in schemas.values() for a in s}))
    ring, lifts = ring_family(attrs)
    lifting = Lifting(ring, lifts)
    commutative = ring.is_commutative

    def make_query(tag: str) -> Query:
        return Query(
            f"Q{tag}", schemas, free=case["free"], ring=ring, lifting=lifting
        )

    order = VariableOrder.auto(make_query("o"))
    reference = FIVMEngine(make_query("ref"), order)
    sharded = ShardedFIVMEngine(
        make_query("s"), order, shards=shards, executor=executor,
        recv_timeout=RECV_TIMEOUT, checkpoint_every=CHECKPOINT_EVERY,
        faults=plan_factory, pipeline_depth=pipeline_depth,
    )
    try:
        if sharded.executor != executor:  # pragma: no cover - no fork
            return None
        empty = Database(
            Relation(rel, schema, ring) for rel, schema in schemas.items()
        )
        reference.initialize(empty)
        sharded.initialize(empty)
        # Under a pipelined executor the per-step root deltas are
        # deferred and compared only after the stream: resolving them
        # inline would drain the window every step and no fault could
        # ever land mid-window.
        pending = []
        for step, event in enumerate(case["events"]):
            kind = event["kind"]
            if kind == "update":
                def fresh():
                    return _as_delta(
                        event["rel"], schemas[event["rel"]], ring,
                        event["data"],
                    )

                expect = reference.apply_update(fresh())
                got = sharded.apply_update(fresh())
            elif kind == "batch":
                def build_items():
                    items = []
                    for item in event["items"]:
                        rel = item["rel"]
                        if item["kind"] == "factorized":
                            items.append(
                                _as_factorized(rel, ring, item["terms"])
                            )
                        else:
                            items.append(
                                _as_delta(
                                    rel, schemas[rel], ring, item["data"]
                                )
                            )
                    return items

                expect = reference.apply_batch(build_items())
                got = sharded.apply_batch(build_items())
            elif kind == "factorized":
                if not commutative:
                    continue
                rel = event["rel"]
                expect = reference.apply_factorized_update(
                    _as_factorized(rel, ring, event["terms"])
                )
                got = sharded.apply_factorized_update(
                    _as_factorized(rel, ring, event["terms"])
                )
            elif kind == "decomposed":
                if not commutative:
                    continue
                rel = event["rel"]

                def fresh():
                    return _as_delta(rel, schemas[rel], ring, event["data"])

                expect = reference.apply_decomposed_update(fresh())
                got = sharded.apply_decomposed_update(fresh())
            else:  # pragma: no cover - generator bug guard
                raise ValueError(f"unknown event kind {kind!r}")
            if pipeline_depth > 0:
                pending.append((step, kind, expect, got))
            else:
                if not expect.same_as(got.rename({}, name=expect.name)):
                    return f"step {step} ({kind}): root delta diverged"
        sharded.flush()
        for step, kind, expect, got in pending:
            if not expect.same_as(got.rename({}, name=expect.name)):
                return f"step {step} ({kind}): deferred root delta diverged"
        merged = sharded.merged_views()
        for view_name, contents in reference.views.items():
            if not contents.same_as(
                merged[view_name].rename({}, name=contents.name)
            ):
                return f"final view {view_name}: fault-free != supervised"
    finally:
        sharded.close()
    return None


@requires_fork
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("ring_name", sorted(RING_FAMILIES))
def test_crash_recovery_oracle(ring_name, shards):
    ring_family = RING_FAMILIES[ring_name]
    allow_factorized = ring_name != "matrix"
    ring_index = sorted(RING_FAMILIES).index(ring_name)
    for i, (label, plan_factory) in enumerate(PLANS):
        # deterministic per-combination seed (hash() is salted per process)
        case = generate_case(
            BASE_SEED + 10_000 * ring_index + 100 * shards + i,
            allow_factorized,
        )
        failure = run_crash_case(case, ring_family, shards, plan_factory)
        assert failure is None, (
            f"ring={ring_name} shards={shards} plan={label}: {failure}\n"
            f"case seed {case['seed']}"
        )


#: Executor shapes the oracle re-runs beyond the synchronous process
#: executor: the send-ahead window and the TCP transport must be exactly
#: as invisible to correctness as supervision itself.
PIPELINED_SHAPES = (("process", 4), ("socket", 4))


@requires_fork
@pytest.mark.parametrize("executor,depth", PIPELINED_SHAPES)
@pytest.mark.parametrize("ring_name", ("int", "cofactor"))
def test_crash_recovery_oracle_pipelined(ring_name, executor, depth):
    """The oracle over a pipelined window (process and socket executors):
    seeded faults land mid-window and every deferred root delta must
    still resolve to the fault-free engine's."""
    ring_family = RING_FAMILIES[ring_name]
    allow_factorized = ring_name != "matrix"
    ring_index = sorted(RING_FAMILIES).index(ring_name)
    shape_index = PIPELINED_SHAPES.index((executor, depth))
    for i, (label, plan_factory) in enumerate(PLANS):
        case = generate_case(
            BASE_SEED + 20_000 * ring_index + 1_000 * shape_index + i,
            allow_factorized,
        )
        failure = run_crash_case(
            case, ring_family, 2, plan_factory,
            executor=executor, pipeline_depth=depth,
        )
        assert failure is None, (
            f"ring={ring_name} executor={executor} depth={depth} "
            f"plan={label}: {failure}\ncase seed {case['seed']}"
        )


# ----------------------------------------------------------------------
# Targeted supervision semantics
# ----------------------------------------------------------------------


SCHEMAS = {"R": ("A", "B"), "S": ("A", "C")}


def small_query(tag: str = "Q") -> Query:
    return Query(tag, SCHEMAS, free=("A",), ring=INT_RING)


def small_db() -> Database:
    R = Relation("R", ("A", "B"), INT_RING)
    S = Relation("S", ("A", "C"), INT_RING)
    for a in range(6):
        R.add((a, 0), 1)
        S.add((a, 1), 2)
    return Database([R, S])


def deltas(n: int):
    for i in range(n):
        yield Relation("R", ("A", "B"), INT_RING, {(i % 6, 10 + i): 1})


def make_sharded(**kwargs) -> ShardedFIVMEngine:
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("executor", "process")
    kwargs.setdefault("recv_timeout", RECV_TIMEOUT)
    return ShardedFIVMEngine(small_query(), **kwargs)


@requires_fork
def test_post_apply_crash_is_applied_exactly_once():
    """A crash in the applied-but-not-acked window must not double-apply:
    recovery rebuilds the shard lineage from snapshot + journal replay."""
    reference = FIVMEngine(small_query("ref"))
    reference.initialize(small_db())
    with make_sharded(
        faults=FaultPlan.parse("worker.post_apply@2=crash"),
        checkpoint_every=2,
    ) as sharded:
        sharded.initialize(small_db())
        for delta in deltas(6):
            expect = reference.apply_update(delta.copy())
            got = sharded.apply_update(delta)
            assert expect.same_as(got.rename({}, name=expect.name))
        assert sharded.result().same_as(
            reference.result().rename({}, name=sharded.tree.root.name)
        )
        assert sum(sharded.shard_restarts) >= 1


@requires_fork
def test_unsupervised_hang_raises_naming_the_shard():
    with make_sharded(
        faults=FaultPlan.parse("worker.recv@2=hang", hang_seconds=4.0),
        supervise=False,
    ) as sharded:
        with pytest.raises(RuntimeError, match=r"shard worker \d"):
            sharded.initialize(small_db())
            for delta in deltas(4):
                sharded.apply_update(delta)


@requires_fork
def test_restart_budget_exhaustion_raises():
    with make_sharded(
        faults=FaultPlan.parse("worker.pre_apply@2=crash"),
        max_restarts=0,
    ) as sharded:
        with pytest.raises(RuntimeError, match="restart budget"):
            sharded.initialize(small_db())
            for delta in deltas(4):
                sharded.apply_update(delta)


@requires_fork
def test_shard_timeout_env_is_honored(monkeypatch):
    monkeypatch.setenv("FIVM_SHARD_TIMEOUT", "0.4")
    with make_sharded(
        recv_timeout=None,  # fall back to the env var
        faults=FaultPlan.parse("worker.recv@3=hang", hang_seconds=4.0),
        supervise=False,
    ) as sharded:
        assert sharded._exec.recv_timeout == 0.4
        with pytest.raises(RuntimeError, match="FIVM_SHARD_TIMEOUT"):
            sharded.initialize(small_db())
            for delta in deltas(4):
                sharded.apply_update(delta)


@requires_fork
def test_injected_error_is_recovered_like_a_crash():
    reference = FIVMEngine(small_query("ref"))
    reference.initialize(small_db())
    with make_sharded(
        faults=FaultPlan.parse("worker.send@3=error"),
    ) as sharded:
        sharded.initialize(small_db())
        for delta in deltas(5):
            expect = reference.apply_update(delta.copy())
            got = sharded.apply_update(delta)
            assert expect.same_as(got.rename({}, name=expect.name))
        assert sum(sharded.shard_restarts) >= 1


@requires_fork
@pytest.mark.parametrize("executor", ["process", "socket"])
def test_mid_window_crash_is_exactly_once(executor):
    """A worker killed with several applied-but-unacked updates in the
    send-ahead window is rebuilt from snapshot + journal-tail replay,
    and every deferred root delta still resolves fault-free."""
    reference = FIVMEngine(small_query("ref"))
    reference.initialize(small_db())
    expected = [reference.apply_update(d) for d in deltas(8)]
    with make_sharded(
        executor=executor,
        pipeline_depth=4,
        checkpoint_every=3,
        faults=FaultPlan.parse("worker.post_apply@3=crash"),
    ) as sharded:
        sharded.initialize(small_db())
        got = [sharded.apply_update(d) for d in deltas(8)]
        sharded.flush()
        for expect, handle in zip(expected, got):
            assert expect.same_as(handle.rename({}, name=expect.name))
        assert sharded.result().same_as(
            reference.result().rename({}, name=sharded.tree.root.name)
        )
        assert sum(sharded.shard_restarts) >= 1


@requires_fork
@pytest.mark.parametrize("executor", ["process", "socket"])
def test_mid_window_hang_trips_the_deadline_and_recovers(executor):
    """A hung worker holding half a window of unacked updates reads as
    dead at the recv deadline; the window is replayed onto its successor."""
    reference = FIVMEngine(small_query("ref"))
    reference.initialize(small_db())
    for d in deltas(8):
        reference.apply_update(d)
    with make_sharded(
        executor=executor,
        pipeline_depth=4,
        checkpoint_every=None,
        faults=FaultPlan.parse("worker.recv@4=hang", hang_seconds=4.0),
    ) as sharded:
        sharded.initialize(small_db())
        for d in deltas(8):
            sharded.apply_update(d)
        sharded.flush()
        assert sharded.result().same_as(
            reference.result().rename({}, name=sharded.tree.root.name)
        )
        assert sum(sharded.shard_restarts) >= 1


@requires_fork
def test_supervision_survives_reads_mid_failure():
    """A worker lost on a *read* request (merged_views) is restarted and
    the read re-served after journal replay."""
    with make_sharded(
        faults=FaultPlan.parse("worker.recv@4=crash"),
        checkpoint_every=None,
    ) as sharded:
        sharded.initialize(small_db())
        for delta in deltas(2):
            sharded.apply_update(delta)
        reference = FIVMEngine(small_query("ref"))
        reference.initialize(small_db())
        for delta in deltas(2):
            reference.apply_update(delta)
        merged = sharded.merged_views()
        for name, contents in reference.views.items():
            assert contents.same_as(
                merged[name].rename({}, name=contents.name)
            )
