"""Targeted tests for compiled factor slot programs (the factorized path).

The randomized differential suite (``test_differential_random.py``) sweeps
broad behavior; these tests pin the *specialized probe shapes* the compiler
emits — group-aware bucket-sum merges, cached lifted collapses, pristine
whole-sibling collapses — on tree shapes constructed to trigger each one,
plus the probe-cache sharing/invalidation contract.
"""

import random


from repro.core import FIVMEngine, FactorizedUpdate, Query, VariableOrder
from repro.core.ir import lower_factor_plan
from repro.core.plan_exec import compile_factor_program
from repro.core.view_tree import ViewNode
from repro.data import Relation
from repro.rings import DegreeRing, INT_RING, Lifting

from tests.conftest import random_delta

#: A chain-collapsed node joining two leaves: V@W marginalizes (V, W) with
#: children [R(A,V), S(V,W)] — so for updates to R the sibling S has probe
#: attrs (V,) and extend attrs (W,) that are dropped *inside* the merge.
COLLAPSE_SCHEMAS = {"R": ("A", "V"), "S": ("V", "W")}


def collapse_order():
    return VariableOrder.from_spec(("A", [("W", ["V"])]))


def seed_s(engine):
    engine.apply_update(Relation(
        "S", ("V", "W"), engine.query.ring,
        {(1, 5): engine.query.ring.from_int(1),
         (1, 6): engine.query.ring.from_int(2),
         (2, 5): engine.query.ring.from_int(1)},
    ))


def rank_one_r(ring, a_data, v_data):
    return FactorizedUpdate.rank_one("R", [
        Relation("uA", ("A",), ring, {k: ring.from_int(c) for k, c in a_data.items()}),
        Relation("uV", ("V",), ring, {k: ring.from_int(c) for k, c in v_data.items()}),
    ])


def drive_alternating(make_engine, steps=25, seed=0xFAC):
    """Alternate flat S updates and factorized R updates through compiled
    and interpreted engines; sibling views change mid-stream, so stale
    probe-cache entries would surface immediately."""
    rng = random.Random(seed)
    compiled = make_engine(True)
    interp = make_engine(False)
    ring = compiled.query.ring
    for step in range(steps):
        if step % 2 == 0:
            delta = random_delta(rng, "S", ("V", "W"), ring, domain=3)
            root_c = compiled.apply_update(delta.copy())
            root_i = interp.apply_update(delta.copy())
        else:
            update = rank_one_r(
                ring,
                {(rng.randint(0, 2),): rng.choice([1, -1, 2])},
                {(rng.randint(0, 2),): 1, (rng.randint(0, 2),): 1},
            )
            root_c = compiled.apply_factorized_update(update)
            root_i = interp.apply_factorized_update(update_copy(update, ring))
        assert root_c.same_as(root_i.rename({}, name=root_c.name)), step
        assert compiled.result().same_as(interp.result()), step
    for name, contents in compiled.views.items():
        assert contents.same_as(interp.views[name]), name
    return compiled


def update_copy(update, ring):
    return FactorizedUpdate(
        update.relation,
        [[f.copy() for f in term] for term in update.terms],
        ring=ring,
    )


class TestAggregatedMerges:
    def test_bucket_sum_merge_compiled_and_correct(self):
        """No lifts: the dropped sibling extends read the index bucket sum
        (one ``_ss`` lookup replaces iterating the bucket)."""
        def make(compiled):
            q = Query("c", COLLAPSE_SCHEMAS, free=("A",), ring=INT_RING)
            return FIVMEngine(q, collapse_order(), compiled=compiled)

        compiled = drive_alternating(make)
        sources = [p.source_text for p in compiled._factor_programs.values()]
        assert any("= _ss" in src for src in sources), \
            "expected a group-aware bucket-sum merge"

    def test_cached_lifted_merge_compiled_and_correct(self):
        """A lift on the dropped extend forces the folded-sum probe-cache
        site (index sums cannot apply lifts)."""
        def make(compiled):
            ring = DegreeRing(2)
            lifting = Lifting(ring, {"V": ring.lift(0), "W": ring.lift(1)})
            q = Query(
                "c", COLLAPSE_SCHEMAS, free=("A",), ring=ring,
                lifting=lifting,
            )
            return FIVMEngine(q, collapse_order(), compiled=compiled)

        compiled = drive_alternating(make)
        sources = [p.source_text for p in compiled._factor_programs.values()]
        assert any("_site(_cache" in src for src in sources), \
            "expected a cached lifted bucket collapse"

    def test_group_aware_off_disables_aggregation_but_agrees(self):
        def make(compiled):
            q = Query("c", COLLAPSE_SCHEMAS, free=("A",), ring=INT_RING)
            return FIVMEngine(
                q, collapse_order(), compiled=compiled, group_aware=False
            )

        compiled = drive_alternating(make)
        for program in compiled._factor_programs.values():
            assert "= _ss" not in program.source_text
            assert "_site(_cache" not in program.source_text


class TestProbeCacheContract:
    def _engine(self, compiled=True):
        ring = DegreeRing(2)
        lifting = Lifting(ring, {"V": ring.lift(0), "W": ring.lift(1)})
        q = Query(
            "c", COLLAPSE_SCHEMAS, free=("A",), ring=ring, lifting=lifting
        )
        return FIVMEngine(q, collapse_order(), compiled=compiled)

    def test_cache_fills_on_factorized_and_invalidates_on_sibling_write(self):
        engine = self._engine()
        ring = engine.query.ring
        seed_s(engine)
        engine.apply_factorized_update(
            rank_one_r(ring, {(7,): 1}, {(1,): 1, (2,): 1})
        )
        sibling = engine.tree.leaves["S"].name
        assert sibling in engine._probe_cache, \
            "lifted collapse results must be memoized per sibling view"
        cached = engine._probe_cache[sibling]
        assert any(site for site in cached.values())
        # A write to the sibling view must drop its entries...
        engine.apply_update(Relation(
            "S", ("V", "W"), ring, {(1, 5): ring.from_int(1)}
        ))
        assert sibling not in engine._probe_cache
        # ...and the next factorized update recomputes correctly.
        interp = self._engine(compiled=False)
        seed_s(interp)
        interp.apply_factorized_update(
            rank_one_r(ring, {(7,): 1}, {(1,): 1, (2,): 1})
        )
        interp.apply_update(Relation(
            "S", ("V", "W"), ring, {(1, 5): ring.from_int(1)}
        ))
        update = rank_one_r(ring, {(8,): 1}, {(1,): 1})
        root_c = engine.apply_factorized_update(update)
        root_i = interp.apply_factorized_update(
            update_copy(update, ring)
        )
        assert root_c.same_as(root_i.rename({}, name=root_c.name))
        assert engine.result().same_as(interp.result())

    def test_cache_shared_across_terms(self):
        """Rank-2 terms probing the same subkey reuse the folded sum: the
        per-site memo holds one entry per distinct subkey, not per term."""
        engine = self._engine()
        ring = engine.query.ring
        seed_s(engine)
        update = FactorizedUpdate("R", [
            rank_one_r(ring, {(7,): 1}, {(1,): 1}).terms[0],
            rank_one_r(ring, {(8,): 1}, {(1,): 1}).terms[0],
        ])
        engine.apply_factorized_update(update)
        sibling = engine.tree.leaves["S"].name
        sites = engine._probe_cache[sibling]
        per_site_keys = [set(entries) for entries in sites.values()]
        assert any((1,) in keys for keys in per_site_keys)

    def test_batch_mixing_flat_and_factorized_items(self):
        """apply_batch accepts FactorizedUpdate items; state and total equal
        the sequential application."""
        engine = self._engine()
        sequential = self._engine()
        ring = engine.query.ring
        seed_s(engine)
        seed_s(sequential)
        flat = Relation("S", ("V", "W"), ring, {(2, 6): ring.from_int(1)})
        fact = rank_one_r(ring, {(7,): 1}, {(1,): 1, (2,): -1})
        total = engine.apply_batch(
            [flat.copy(), update_copy(fact, ring)]
        )
        expected = sequential.apply_update(flat.copy()).union(
            sequential.apply_factorized_update(update_copy(fact, ring))
        )
        assert engine.result().same_as(sequential.result())
        assert total.same_as(expected.rename({}, name=total.name))


class TestPartialMatchMemo:
    """The IR-level partial-match probe memo: a sibling bucket iterated
    with *surviving* extends is reduced (rows pre-aggregated per surviving
    key) and memoized per subkey, shared by every backend."""

    def _make(self, compiled=True):
        # W is free, so the merge of S(V, W) into the V-factor keeps W:
        # extends survive and the probe compiles to the "memo" mode.
        q = Query(
            "pm", COLLAPSE_SCHEMAS, free=("A", "W"), ring=INT_RING
        )
        return FIVMEngine(q, collapse_order(), compiled=compiled)

    def test_memo_mode_compiled_and_differentially_correct(self):
        compiled = drive_alternating(self._make)
        sources = [p.source_text for p in compiled._factor_programs.values()]
        assert any("_rw" in src for src in sources), (
            "expected a memoized partial-match bucket probe"
        )

    def test_memo_fills_reduces_and_invalidates(self):
        engine = self._make()
        ring = engine.query.ring
        seed_s(engine)
        # S holds (1,5):1, (1,6):2, (2,5):1 — probing V=1 must memoize the
        # bucket reduced to its surviving extend W.
        engine.apply_factorized_update(
            rank_one_r(ring, {(7,): 1}, {(1,): 1})
        )
        sibling = engine.tree.leaves["S"].name
        sites = engine._probe_cache[sibling]
        rows_by_subkey = next(iter(sites.values()))
        assert rows_by_subkey[(1,)] == (((5,), 1), ((6,), 2))
        # A second term reuses the entry (same site dict, same subkey) and
        # adds only the new subkey.
        engine.apply_factorized_update(
            rank_one_r(ring, {(8,): 1}, {(1,): 1, (2,): 1})
        )
        rows_by_subkey = next(iter(engine._probe_cache[sibling].values()))
        assert set(rows_by_subkey) == {(1,), (2,)}
        # A write to S drops the memo; results stay correct afterwards.
        engine.apply_update(Relation(
            "S", ("V", "W"), ring, {(1, 5): ring.from_int(3)}
        ))
        assert sibling not in engine._probe_cache
        interp = self._make(compiled=False)
        seed_s(interp)
        interp.apply_factorized_update(rank_one_r(ring, {(7,): 1}, {(1,): 1}))
        interp.apply_factorized_update(
            rank_one_r(ring, {(8,): 1}, {(1,): 1, (2,): 1})
        )
        interp.apply_update(Relation(
            "S", ("V", "W"), ring, {(1, 5): ring.from_int(3)}
        ))
        update = rank_one_r(ring, {(9,): 2}, {(1,): 1})
        root_c = engine.apply_factorized_update(update)
        root_i = interp.apply_factorized_update(update_copy(update, ring))
        assert root_c.same_as(root_i.rename({}, name=root_c.name))
        for name, contents in engine.views.items():
            assert contents.same_as(interp.views[name]), name

    def test_memo_preaggregates_duplicate_surviving_keys(self):
        # Two S rows with the same (V, W) cannot arise in one relation, but
        # rows differing only in dropped attributes can: give S an extra
        # dropped column via a wider schema.
        ring = INT_RING
        q = Query(
            "pm2", {"R": ("A", "V"), "S": ("U", "V", "W")},
            free=("A", "W"), ring=ring,
        )
        order = VariableOrder.from_spec(("A", [("W", [("V", ["U"])])]))
        engine = FIVMEngine(q, order)
        engine.apply_update(Relation(
            "S", ("U", "V", "W"), ring,
            {(0, 1, 5): 1, (9, 1, 5): 2, (0, 1, 6): 4},
        ))
        engine.apply_factorized_update(rank_one_r(ring, {(7,): 1}, {(1,): 1}))
        sibling = engine.tree.leaves["S"].name
        caches = [
            rows
            for sites in engine._probe_cache.values()
            for rows in sites.values()
        ]
        reduced = [rows for rows in caches if (1,) in rows]
        assert reduced, "expected a memo keyed by the V subkey"
        # U is dropped before W survives: the two (V=1, W=5) rows fold to 3.
        assert dict(reduced[0][(1,)]) == {(5,): 3, (6,): 4}


class TestPristineSiblingCollapse:
    def test_fabricated_disjoint_sibling_is_cached_whole(self):
        """A sibling sharing no attributes with the term is appended whole;
        when all its variables are marginalized at the node, the compiled
        program collapses it once and memoizes the result per view state."""
        ring = DegreeRing(1)
        lifting = Lifting(ring, {"B": ring.lift(0)})
        query = Query(
            "x", {"R": ("A",), "S": ("B",)}, free=("A",), ring=ring,
            lifting=lifting,
        )
        entering = ViewNode("R", ("A",), frozenset({"R"}), [], leaf_of="R")
        sibling_node = ViewNode("S", ("B",), frozenset({"S"}), [], leaf_of="S")
        node = ViewNode(
            "top", ("A",), frozenset({"R", "S"}),
            [entering, sibling_node], marginalized=("B",), at_vars=("top",),
        )
        sibling = Relation(
            "S", ("B",), ring,
            {(2,): ring.from_int(1), (3,): ring.from_int(2)},
        )
        ir = lower_factor_plan(
            node, ("child", 0), (("A",),), (sibling.name,),
            (sibling.schema,), True, query,
        )
        program = compile_factor_program(ir, [sibling], query)
        assert "_site(_cache" in program.source_text
        assert program.out_partition == ((), ("A",)) or \
            program.out_partition == (("A",), ())
        cache = {}
        fdatas = ({(9,): ring.from_int(1)},)
        outs, flat = program.run(fdatas, cache)
        # Expected: sum over S of payload * lift(B) = 1*l(2) + 2*l(3).
        expected = ring.add(
            ring.mul(ring.from_int(1), ring.lift(0)(2)),
            ring.mul(ring.from_int(2), ring.lift(0)(3)),
        )
        assert flat is not None
        assert ring.eq(flat[(9,)], expected)
        assert cache["S"], "collapse must be memoized under the view name"
        # Second term: cache hit (mutate the sibling WITHOUT invalidating —
        # the stale value proves the memo was used; the engine pops the
        # view's entries on every absorb, which restores freshness).
        sibling._data[(4,)] = ring.from_int(5)
        outs2, flat2 = program.run(({(9,): ring.from_int(1)},), cache)
        assert ring.eq(flat2[(9,)], expected)
        # After invalidation (what FIVMEngine._invalidate does) the program
        # re-reads the sibling.
        cache.pop("S")
        outs3, flat3 = program.run(({(9,): ring.from_int(1)},), cache)
        expected3 = ring.add(
            expected, ring.mul(ring.from_int(5), ring.lift(0)(4))
        )
        assert ring.eq(flat3[(9,)], expected3)


class TestCanonicalPartitions:
    def test_permuted_factor_orders_share_one_program(self):
        """Two rank-1 updates whose factor lists are permutations of each
        other must hit one compiled program per node, not two: the engine
        canonicalizes the partition (factor schemas sorted) before the
        cache lookup.  Results stay differentially equal either way."""
        def make(compiled):
            q = Query(
                "perm", {"R": ("A", "V", "W"), "S": ("V", "W")},
                free=("A",), ring=INT_RING,
            )
            return FIVMEngine(
                q, VariableOrder.from_spec(("A", [("W", ["V"])])),
                compiled=compiled,
            )

        compiled = make(True)
        interp = make(False)
        ring = INT_RING
        compiled.apply_update(Relation(
            "S", ("V", "W"), ring, {(1, 5): 1, (2, 6): 2}
        ))
        interp.apply_update(Relation(
            "S", ("V", "W"), ring, {(1, 5): 1, (2, 6): 2}
        ))

        def factors():
            return {
                "A": Relation("uA", ("A",), ring, {(1,): 2}),
                "V": Relation("uV", ("V",), ring, {(1,): 1, (2,): 1}),
                "W": Relation("uW", ("W",), ring, {(5,): 1, (6,): -1}),
            }

        for permutation in (("A", "V", "W"), ("W", "A", "V"), ("V", "W", "A")):
            fs = factors()
            update = FactorizedUpdate.rank_one(
                "R", [fs[name] for name in permutation]
            )
            root_c = compiled.apply_factorized_update(update)
            root_i = interp.apply_factorized_update(
                update_copy(update, ring)
            )
            assert root_c.same_as(root_i.rename({}, name=root_c.name))
            # One program per (node, source): permutations reuse the first
            # compile instead of growing the cache.
            per_site = {}
            for (node, source, partition) in compiled._factor_programs:
                per_site.setdefault((node, source), []).append(partition)
            for site, partitions in per_site.items():
                assert len(partitions) == 1, (
                    f"{site} compiled duplicate programs for permuted "
                    f"partitions: {partitions}"
                )
        for name, contents in compiled.views.items():
            assert contents.same_as(interp.views[name]), name
