"""Randomized differential testing of the update triggers.

A seeded generator draws random cases — schemas, variable orders (via the
heuristic), free variables, lifting assignments — and random update
*streams* mixing single-relation deltas, multi-relation ``apply_batch``
groups (including factorized items), factorized rank-r updates, and
``apply_decomposed_update`` calls.  Every trigger backend must agree on
every per-update root delta and on the final state of every materialized
view:

* one :class:`FIVMEngine` per IR backend — ``"source"`` (generated
  triggers, including the compiled factorized path and its shared probe
  cache), ``"kernels"`` (vectorized NumPy execution where the ring packs,
  generated source elsewhere), and ``"interpreter"`` (the IR walker, the
  reference semantics),
* the hash-partitioned :class:`ShardedFIVMEngine` (three shards,
  shard-key defaulted to the variable-order root, inheriting the primary
  backend) — per-update merged root deltas and final merged views.  The
  executor defaults to ``inline``; ``FIVM_SHARD_EXECUTOR`` (with
  ``FIVM_SHARD_PIPELINE`` for the send-ahead window) swaps in the
  process or socket transport so CI sweeps the wire protocol too,
* :class:`RecursiveIVM` (the DBToaster-style baseline) on commutative
  rings, plus from-scratch factorized recomputation on every ring.

Runs across the ℤ, degree, product, cofactor, and (non-commutative) matrix
rings under a fixed seed.  On divergence the harness *shrinks* the failing
case — dropping events, then single keys inside deltas, while the failure
persists — and fails with the minimal stream printed, ready to paste into a
regression test.

**Partial materialization** rides along as a served-key oracle: one
partial-mode engine (eviction-sized active-set budget) per backend ×
storage configuration replays the same stream, and after every event a
random sample of keys is looked up through its :class:`ViewClient` and
compared against the full primary engine's root view.  The sample mixes
the three regimes partial mode can get silently wrong — never-served
keys (cold: the lookup is an upquery), previously served keys (hot: the
maintained entry answers, and must have absorbed every delta since
registration), and evicted-then-re-served keys (the tiny budget keeps
the LRU churning, so earlier-served keys routinely re-enter cold).  Root
deltas of partial engines are *not* compared — dropping cold-key deltas
is the feature — but every key ever served must equal the full engine's
value at every later step, and again after the stream ends.

``FIVM_DIFF_STREAMS_PER_RING`` scales the stream count per ring family
(default 40 → 200 streams total); the scheduled nightly CI job elevates it
to 200 (1000 streams) to sweep a wider seed range than per-push CI can
afford.  ``FIVM_BACKEND`` narrows the backend set to one primary backend
(the interpreter rides along as the reference) — the CI tier-1 matrix
runs the suite once per backend that way.  ``FIVM_STORAGE`` does the same
for the view-storage dimension (``"dict"`` or ``"columnar"``): unset, every
backend runs on both storages; set, the chosen storage runs with the dict
reference alongside.  Either way the dict/interpreter engine is always in
the pool, so every backend × storage combination is differentially held to
the reference semantics on every stream.  ``FIVM_MATERIALIZATION``
narrows the materialization dimension the same way: ``"full"`` drops the
partial riders, ``"partial"`` keeps them (the full engines always run —
they are the oracle), unset runs both.
"""

from __future__ import annotations

import os
import random
from pprint import pformat
from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro.baselines.recursive import RecursiveIVM
from repro.bench.memory import payload_scalars
from repro.core import (
    FIVMEngine,
    FactorizedUpdate,
    Query,
    ShardedFIVMEngine,
    VariableOrder,
    ViewClient,
)
from repro.data import Database, Relation
from repro.rings import (
    CofactorRing,
    DegreeRing,
    INT_RING,
    IntegerRing,
    Lifting,
    ProductRing,
    RealRing,
    SquareMatrixRing,
)

from tests.conftest import recompute

#: Fixed base seed: every CI run replays the exact same ≥200 streams.
BASE_SEED = 0xF1B2

#: Trigger backends under differential test.  ``FIVM_BACKEND=<name>``
#: narrows the set to that backend plus the interpreter reference, which
#: is how the CI matrix runs the suite once per backend.
_ENV_BACKEND = os.environ.get("FIVM_BACKEND", "").strip()
if _ENV_BACKEND:
    BACKENDS = tuple(dict.fromkeys((_ENV_BACKEND, "interpreter")))
else:
    BACKENDS = ("source", "kernels", "interpreter")
#: View storages under differential test, narrowed by ``FIVM_STORAGE``
#: the same way.  The dict storage always rides along as the reference.
_ENV_STORAGE = os.environ.get("FIVM_STORAGE", "").strip()
if _ENV_STORAGE:
    STORAGES = tuple(dict.fromkeys((_ENV_STORAGE, "dict")))
else:
    STORAGES = ("dict", "columnar")
#: Engine configurations: the backend × storage product — except when
#: both envs pin a single combination, where the pool is trimmed to the
#: pinned pair plus the interpreter/dict reference (the CI matrix runs
#: one such pair per job rather than re-checking the full product).
if _ENV_BACKEND and _ENV_STORAGE:
    CONFIGS = tuple(dict.fromkeys(
        ((_ENV_BACKEND, _ENV_STORAGE), ("interpreter", "dict"))
    ))
else:
    CONFIGS = tuple(
        (backend, storage) for backend in BACKENDS for storage in STORAGES
    )
#: Materialization modes, narrowed by ``FIVM_MATERIALIZATION``: the full
#: engines always run (they are the oracle every other mode is held to);
#: ``"partial"`` in the set adds one partial-mode rider per CONFIGS entry,
#: checked key-by-key through the served-key sampler after every event.
_ENV_MATERIALIZATION = os.environ.get("FIVM_MATERIALIZATION", "").strip()
if _ENV_MATERIALIZATION:
    MATERIALIZATIONS = tuple(
        dict.fromkeys((_ENV_MATERIALIZATION, "full"))
    )
else:
    MATERIALIZATIONS = ("full", "partial")
#: Streams per ring family; the nightly CI job raises this via the
#: environment (FIVM_DIFF_STREAMS_PER_RING=200 → 1000 streams) while
#: per-push runs keep the fast default.
STREAMS_PER_RING = int(os.environ.get("FIVM_DIFF_STREAMS_PER_RING", "40"))

ATTR_POOL = ("A", "B", "C", "D", "E")


# ----------------------------------------------------------------------
# Ring families: attrs -> (ring, {attr: lift})
# ----------------------------------------------------------------------


def _int_ring(attrs):
    return INT_RING, {}


def _degree_ring(attrs):
    ring = DegreeRing(len(attrs))
    lifts = {a: ring.lift(i) for i, a in enumerate(attrs) if i % 2 == 0}
    return ring, lifts


def _product_ring(attrs):
    ring = ProductRing([IntegerRing(), RealRing()])

    def lift(value):
        x = float(value)
        return (1, 1.0 + 0.5 * x)

    lifts = {a: lift for i, a in enumerate(attrs) if i % 2 == 1}
    return ring, lifts


def _cofactor_ring(attrs):
    ring = CofactorRing(len(attrs))
    lifts = {a: ring.lift(i) for i, a in enumerate(attrs) if i % 2 == 1}
    return ring, lifts


def _matrix_ring(attrs):
    ring = SquareMatrixRing(2)
    upper = np.array([[0.0, 1.0], [0.0, 0.0]])
    lower = np.array([[0.0, 0.0], [1.0, 0.0]])

    def make_lift(direction):
        return lambda x: np.eye(2) + 0.1 * float(x) * direction

    lifts = {
        a: make_lift(upper if i % 4 == 1 else lower)
        for i, a in enumerate(attrs)
        if i % 2 == 1
    }
    return ring, lifts


RING_FAMILIES = {
    "int": _int_ring,
    "degree": _degree_ring,
    "product": _product_ring,
    "cofactor": _cofactor_ring,
    "matrix": _matrix_ring,
}


# ----------------------------------------------------------------------
# Case generation (plain data — replayable, printable, shrinkable)
# ----------------------------------------------------------------------


def _delta_data(rng: random.Random, schema, domain: int = 3) -> Dict[tuple, int]:
    data: Dict[tuple, int] = {}
    for _ in range(rng.randint(1, 3)):
        key = tuple(rng.randint(0, domain - 1) for _ in schema)
        data[key] = rng.choice([1, 1, 2, -1])
    return data


def _factor_terms(rng: random.Random, schema) -> List[List[Tuple[tuple, dict]]]:
    """Random rank-1/rank-2 terms: each term partitions ``schema`` into
    factor schemas (as the shuffled split), each factor carrying 1-2 keys."""
    terms = []
    for _ in range(rng.randint(1, 2)):
        attrs = list(schema)
        rng.shuffle(attrs)
        cuts = sorted(rng.sample(range(1, len(attrs)), rng.randint(0, len(attrs) - 1))) if len(attrs) > 1 else []
        groups, start = [], 0
        for cut in cuts + [len(attrs)]:
            groups.append(tuple(attrs[start:cut]))
            start = cut
        term = []
        for group in groups:
            data = {}
            for _ in range(rng.randint(1, 2)):
                key = tuple(rng.randint(0, 2) for _ in group)
                data[key] = rng.choice([1, 1, 2, -1])
            term.append((group, data))
        terms.append(term)
    return terms


def generate_case(seed: int, allow_factorized: bool) -> dict:
    rng = random.Random(seed)
    n_attrs = rng.randint(3, 5)
    attrs = ATTR_POOL[:n_attrs]
    schemas: Dict[str, tuple] = {}
    for i in range(rng.randint(2, 3)):
        size = rng.randint(1, min(3, n_attrs))
        schemas[f"R{i}"] = tuple(sorted(rng.sample(attrs, size)))
    used = sorted({a for s in schemas.values() for a in s})
    free = tuple(rng.sample(used, min(rng.randint(0, 2), len(used))))
    events: List[dict] = []
    for _ in range(rng.randint(3, 6)):
        rel = rng.choice(sorted(schemas))
        roll = rng.random()
        if roll < 0.40:
            events.append({
                "kind": "update", "rel": rel,
                "data": _delta_data(rng, schemas[rel]),
            })
        elif roll < 0.60:
            # apply_batch groups run on every ring (non-commutative rings
            # included — the batched trigger guards child-order products).
            items = []
            for _ in range(rng.randint(2, 3)):
                b_rel = rng.choice(sorted(schemas))
                if allow_factorized and rng.random() < 0.3:
                    items.append({
                        "kind": "factorized", "rel": b_rel,
                        "terms": _factor_terms(rng, schemas[b_rel]),
                    })
                else:
                    items.append({
                        "kind": "update", "rel": b_rel,
                        "data": _delta_data(rng, schemas[b_rel]),
                    })
            events.append({"kind": "batch", "items": items})
        elif roll < 0.85:
            if allow_factorized:
                terms = [] if rng.random() < 0.1 else _factor_terms(
                    rng, schemas[rel]
                )
                events.append({
                    "kind": "factorized", "rel": rel, "terms": terms,
                })
            else:
                events.append({
                    "kind": "update", "rel": rel,
                    "data": _delta_data(rng, schemas[rel]),
                })
        elif allow_factorized:
            events.append({
                "kind": "decomposed", "rel": rel,
                "data": _delta_data(rng, schemas[rel]),
            })
        else:
            events.append({
                "kind": "update", "rel": rel,
                "data": _delta_data(rng, schemas[rel]),
            })
    return {
        "seed": seed, "schemas": schemas, "free": free, "events": events,
    }


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------


def _as_delta(rel: str, schema, ring, data: Dict[tuple, int]) -> Relation:
    return Relation(
        rel, schema, ring,
        {key: ring.from_int(c) for key, c in data.items()},
    )


def _as_factorized(rel: str, ring, terms) -> FactorizedUpdate:
    built = []
    for term in terms:
        built.append([
            Relation(
                f"{rel}_f{j}", fschema, ring,
                {key: ring.from_int(c) for key, c in data.items()},
            )
            for j, (fschema, data) in enumerate(term)
        ])
    return FactorizedUpdate(rel, built, ring=ring)


def run_case(case: dict, ring_family) -> Optional[str]:
    """Replay one case through every backend and oracle; returns a
    divergence description, or None when they all agree."""
    schemas = case["schemas"]
    attrs = tuple(sorted({a for s in schemas.values() for a in s}))
    ring, lifts = ring_family(attrs)
    lifting = Lifting(ring, lifts)
    commutative = ring.is_commutative

    def make_query(tag: str) -> Query:
        return Query(
            f"Q{tag}", schemas, free=case["free"], ring=ring, lifting=lifting
        )

    order = VariableOrder.auto(make_query("o"))
    primary = "/".join(CONFIGS[0])
    primary_backend, _ = CONFIGS[0]
    engines = {
        f"{backend}/{storage}": FIVMEngine(
            make_query(f"{backend}_{storage}"), order,
            backend=backend, storage=storage,
        )
        for backend, storage in CONFIGS
    }
    # Partial-materialization riders: the same backend × storage pool in
    # ``materialization="partial"`` mode, under an eviction-sized budget
    # (roughly three root entries at COUNT-payload cost) so the LRU churns
    # and re-served keys routinely take the upquery path.  They replay the
    # same stream and are held to the full primary engine key-by-key via
    # the served-key sampler below.
    partial_clients: Dict[str, ViewClient] = {}
    if "partial" in MATERIALIZATIONS:
        budget = 3 * (1 + payload_scalars(ring.from_int(1)))
        for backend, storage in CONFIGS:
            partial_clients[f"partial/{backend}/{storage}"] = ViewClient(
                FIVMEngine(
                    make_query(f"p_{backend}_{storage}"), order,
                    backend=backend, storage=storage,
                    materialization="partial", partial_budget=budget,
                )
            )
    # The sharded engine inherits the primary backend; its shards run on
    # columnar storage whenever columnar is in the pool, so the sharded
    # wire protocol is exercised against array-native fragments too.
    sharded_storage = (
        "columnar" if any(s == "columnar" for _, s in CONFIGS) else "dict"
    )
    # ``FIVM_SHARD_EXECUTOR`` swaps the sharded rider's executor (CI runs
    # the differential suite once per transport); ``FIVM_SHARD_PIPELINE``
    # is inherited by the engine itself.
    sharded_executor = (
        os.environ.get("FIVM_SHARD_EXECUTOR", "inline").strip() or "inline"
    )
    sharded = ShardedFIVMEngine(
        make_query("s"), order, shards=3, executor=sharded_executor,
        backend=primary_backend, storage=sharded_storage,
    )
    try:
        recursive = RecursiveIVM(make_query("r")) if commutative else None
        db = Database(
            Relation(rel, schema, ring) for rel, schema in schemas.items()
        )

        def recursive_apply(delta: Relation) -> Optional[Relation]:
            if recursive is None:
                return None
            return recursive.apply_update(delta.copy())

        # -- served-key sampling (the partial-mode oracle) ------------------
        # After every event each partial rider serves a sample mixing cold
        # keys (never served → upquery), hot keys (still registered), and
        # previously served keys the tiny budget has since evicted; each must
        # equal the full primary engine's root payload.  ``served`` is the
        # rolling history the hot/evicted picks resample from.
        root_name = engines[primary].tree.root.name
        root_keys = engines[primary].tree.root.keys
        serve_rng = random.Random(case["seed"] ^ 0x5E12)
        served: List[tuple] = []
        served_set = set()

        def check_served(step: int) -> Optional[str]:
            if not partial_clients:
                return None
            oracle = engines[primary].views[root_name]
            picks = list(serve_rng.sample(served, min(2, len(served))))
            existing = list(oracle.keys())
            if existing:
                picks.append(serve_rng.choice(existing))
            picks.append(tuple(serve_rng.randint(0, 2) for _ in root_keys))
            for name, client in partial_clients.items():
                for key in picks:
                    got = client.lookup(root_name, key)
                    if not ring.eq(got, oracle.payload(key)):
                        return f"step {step}: served key {key}: full != {name}"
            for key in picks:
                if key not in served_set:
                    served_set.add(key)
                    served.append(key)
            return None

        for step, event in enumerate(case["events"]):
            kind = event["kind"]
            rec_total: Optional[Relation] = None
            roots: Dict[str, Relation] = {}
            if kind == "update":
                def fresh():
                    return _as_delta(
                        event["rel"], schemas[event["rel"]], ring, event["data"]
                    )

                for name, engine in engines.items():
                    roots[name] = engine.apply_update(fresh())
                for client in partial_clients.values():
                    client.engine.apply_update(fresh())
                roots["sharded"] = sharded.apply_update(fresh())
                rec_total = recursive_apply(fresh())
                db.apply_update(fresh())
            elif kind == "batch":
                def build_items():
                    items = []
                    for item in event["items"]:
                        rel = item["rel"]
                        if item["kind"] == "factorized":
                            items.append(_as_factorized(rel, ring, item["terms"]))
                        else:
                            items.append(
                                _as_delta(rel, schemas[rel], ring, item["data"])
                            )
                    return items

                def build_flats():
                    flats = []
                    for item in event["items"]:
                        rel = item["rel"]
                        if item["kind"] == "factorized":
                            flats.append(
                                _as_factorized(rel, ring, item["terms"]).flatten(
                                    schemas[rel], name=rel
                                )
                            )
                        else:
                            flats.append(
                                _as_delta(rel, schemas[rel], ring, item["data"])
                            )
                    return flats

                for name, engine in engines.items():
                    roots[name] = engine.apply_batch(build_items())
                for client in partial_clients.values():
                    client.engine.apply_batch(build_items())
                roots["sharded"] = sharded.apply_batch(build_items())
                for flat in build_flats():
                    contribution = recursive_apply(flat)
                    if contribution is not None:
                        rec_total = (
                            contribution if rec_total is None
                            else rec_total.union(contribution)
                        )
                    db.apply_update(flat)
            elif kind == "factorized":
                if not commutative:
                    continue
                rel = event["rel"]
                for name, engine in engines.items():
                    roots[name] = engine.apply_factorized_update(
                        _as_factorized(rel, ring, event["terms"])
                    )
                for client in partial_clients.values():
                    client.engine.apply_factorized_update(
                        _as_factorized(rel, ring, event["terms"])
                    )
                roots["sharded"] = sharded.apply_factorized_update(
                    _as_factorized(rel, ring, event["terms"])
                )
                flat = _as_factorized(rel, ring, event["terms"]).flatten(
                    schemas[rel], name=rel
                )
                rec_total = recursive_apply(flat)
                db.apply_update(flat)
            elif kind == "decomposed":
                if not commutative:
                    continue
                rel = event["rel"]

                def fresh():
                    return _as_delta(rel, schemas[rel], ring, event["data"])

                for name, engine in engines.items():
                    roots[name] = engine.apply_decomposed_update(fresh())
                for client in partial_clients.values():
                    client.engine.apply_decomposed_update(fresh())
                roots["sharded"] = sharded.apply_decomposed_update(fresh())
                rec_total = recursive_apply(fresh())
                db.apply_update(fresh())
            else:  # pragma: no cover - generator bug guard
                raise ValueError(f"unknown event kind {kind!r}")

            base = roots[primary]
            for name, root in roots.items():
                if name == primary:
                    continue
                if not base.same_as(root.rename({}, name=base.name)):
                    return (
                        f"step {step} ({kind}): {primary} root delta != {name}"
                    )
            if rec_total is not None:
                rec_cmp = rec_total.reorder(base.schema, name=base.name)
                if not base.same_as(rec_cmp):
                    return f"step {step} ({kind}): {primary} root delta != recursive"
            failure = check_served(step)
            if failure:
                return failure

        primary_engine = engines[primary]
        for name, engine in engines.items():
            if name == primary:
                continue
            if not primary_engine.result().same_as(engine.result()):
                return f"final result: {primary} != {name}"
            for view_name, contents in primary_engine.views.items():
                if not contents.same_as(engine.views[view_name]):
                    return f"final view {view_name}: {primary} != {name}"
        sharded_views = sharded.merged_views()
        for view_name, contents in primary_engine.views.items():
            if not contents.same_as(
                sharded_views[view_name].rename({}, name=contents.name)
            ):
                return f"final view {view_name}: {primary} != sharded merge"
        if recursive is not None:
            rec_result = recursive.result().reorder(
                primary_engine.result().schema, name=primary_engine.result().name
            )
            if not primary_engine.result().same_as(rec_result):
                return "final result: primary != recursive IVM"
        expected = recompute(make_query("x"), db, order).reorder(
            primary_engine.result().schema
        )
        if not primary_engine.result().same_as(expected):
            return "final result: primary != from-scratch recomputation"
        # Every key ever served must still equal the full engine's value —
        # including keys the partial riders have long since evicted.
        oracle = primary_engine.views[root_name]
        for name, client in partial_clients.items():
            for key in served:
                if not ring.eq(client.lookup(root_name, key), oracle.payload(key)):
                    return f"final served key {key}: full != {name}"
        return None
    finally:
        sharded.close()


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


def _data_sites(event: dict) -> List[Dict[tuple, int]]:
    """Every mutable {key: coefficient} dict inside an event."""
    if event["kind"] in ("update", "decomposed"):
        return [event["data"]]
    if event["kind"] == "factorized":
        return [data for term in event["terms"] for _, data in term]
    sites: List[Dict[tuple, int]] = []
    for item in event["items"]:
        if item["kind"] == "factorized":
            sites += [data for term in item["terms"] for _, data in term]
        else:
            sites.append(item["data"])
    return sites


def shrink_case(case: dict, ring_family) -> dict:
    """Greedy delta-debugging: drop events, then single delta keys, while
    the case still fails.  Returns the minimal failing case."""
    import copy

    current = copy.deepcopy(case)
    changed = True
    while changed:
        changed = False
        i = 0
        while i < len(current["events"]):
            trial = copy.deepcopy(current)
            del trial["events"][i]
            if trial["events"] and run_case(trial, ring_family):
                current = trial
                changed = True
            else:
                i += 1
        for ei in range(len(current["events"])):
            for si in range(len(_data_sites(current["events"][ei]))):
                # Re-resolve the site from `current` on every attempt: a
                # successful shrink replaces `current` with a deep copy, so
                # a binding taken before the loop would go stale and the
                # one-key guard would stop guarding.
                for key in list(_data_sites(current["events"][ei])[si]):
                    site = _data_sites(current["events"][ei])[si]
                    if len(site) <= 1 or key not in site:
                        continue
                    trial = copy.deepcopy(current)
                    del _data_sites(trial["events"][ei])[si][key]
                    if run_case(trial, ring_family):
                        current = trial
                        changed = True
    return current


# ----------------------------------------------------------------------
# The suite: ≥ 200 streams under a fixed seed (40 per ring family)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("ring_name", sorted(RING_FAMILIES))
def test_differential_streams(ring_name):
    ring_family = RING_FAMILIES[ring_name]
    probe_ring, _ = ring_family(ATTR_POOL[:3])
    allow_factorized = probe_ring.is_commutative
    # Deterministic per-ring seed offset (not hash(): str hashing is
    # process-randomized) so the five families draw 200 distinct stream
    # structures rather than replaying the same 40.
    ring_offset = sorted(RING_FAMILIES).index(ring_name)
    for i in range(STREAMS_PER_RING):
        seed = BASE_SEED * 1000 + ring_offset * 1000 + i
        case = generate_case(seed, allow_factorized)
        failure = run_case(case, ring_family)
        if failure:
            minimal = shrink_case(case, ring_family)
            minimal_failure = run_case(minimal, ring_family) or failure
            pytest.fail(
                f"[{ring_name}] stream seed={seed}: {failure}\n"
                f"shrunk to ({minimal_failure}):\n{pformat(minimal)}"
            )


# ----------------------------------------------------------------------
# Multi-view rider: a sharing MultiViewEngine vs N independent engines
# ----------------------------------------------------------------------


@pytest.mark.parametrize("ring_name", sorted(RING_FAMILIES))
def test_multiview_differential(ring_name):
    """A sharing :class:`MultiViewEngine` must be indistinguishable from N
    independent eager engines at every forced refresh point.

    Each case draws a pool of shared base relations plus one private
    relation per view, registers N=3 random queries (random free sets,
    random target lags under a fake clock, a random recompute_fraction so
    both refresh paths fire) on one multi-view engine with sharing on, and
    replays a random count-delta stream.  At random drain points — and
    after a final drain — every view's result must equal its own dedicated
    :class:`FIVMEngine` maintained update-by-update.  Runs on every ring
    family: commutative rings exercise the shared-sub-view cuts and the
    publish/promote rebuilds, the matrix ring checks that sharing is
    declined without losing exactness.
    """
    from repro.core import MultiViewEngine

    ring_family = RING_FAMILIES[ring_name]
    ring_offset = sorted(RING_FAMILIES).index(ring_name)
    backend, storage = CONFIGS[0]
    n_cases = max(2, STREAMS_PER_RING // 10)
    for i in range(n_cases):
        seed = BASE_SEED * 2000 + ring_offset * 1000 + i
        rng = random.Random(seed)
        clock_now = [0.0]

        n_attrs = rng.randint(3, 5)
        attrs = ATTR_POOL[:n_attrs]
        shared_schemas = {
            f"R{j}": tuple(
                sorted(rng.sample(attrs, rng.randint(1, min(3, n_attrs))))
            )
            for j in range(rng.randint(2, 3))
        }
        ring, lifts = ring_family(attrs)
        lifting = Lifting(ring, lifts)

        n_views = 3
        queries: List[Query] = []
        for v in range(n_views):
            relations = dict(shared_schemas)
            if rng.random() < 0.7:
                relations[f"T{v}"] = tuple(
                    sorted(rng.sample(attrs, rng.randint(1, 2)))
                )
            used = sorted({a for s in relations.values() for a in s})
            free = tuple(rng.sample(used, min(rng.randint(0, 2), len(used))))
            queries.append(
                Query(f"V{v}", relations, free=free, ring=ring,
                      lifting=lifting)
            )

        mv = MultiViewEngine(
            backend=backend,
            storage=storage,
            recompute_fraction=rng.choice([0.0, 0.3, 1e9]),
            clock=lambda: clock_now[0],
        )
        oracles: Dict[str, FIVMEngine] = {}
        for query in queries:
            mv.register(
                query, target_lag=rng.choice([0.0, 0.0, 5.0, 50.0])
            )
            oracle = FIVMEngine(query, backend=backend, storage=storage)
            oracle.initialize(
                Database(
                    Relation(rel, schema, ring)
                    for rel, schema in query.relations.items()
                )
            )
            oracles[query.name] = oracle

        all_rels = sorted(
            {rel for query in queries for rel in query.relations}
        )

        def compare(step: str) -> None:
            for query in queries:
                got = mv.result(query.name)
                want = oracles[query.name].result()
                keys = set(got.keys()) | {
                    tuple(key[want.schema.index(a)] for a in query.free)
                    if tuple(want.schema) != tuple(query.free)
                    else key
                    for key in want.keys()
                }
                want_free = (
                    want if tuple(want.schema) == tuple(query.free)
                    else want.reorder(tuple(query.free))
                )
                for key in keys:
                    if not ring.eq(got.payload(key), want_free.payload(key)):
                        pytest.fail(
                            f"[{ring_name}] multiview seed={seed} "
                            f"{step}: view {query.name} key {key}: "
                            f"multiview != independent engine"
                        )

        for _ in range(rng.randint(6, 10)):
            rel = rng.choice(all_rels)
            schema = next(
                q.relations[rel] for q in queries if rel in q.relations
            )
            data = _delta_data(rng, schema)
            mv.apply_update(rel, data)
            delta = _as_delta(rel, schema, ring, data)
            for query in queries:
                if rel in query.relations:
                    oracles[query.name].apply_update(delta.copy())
            clock_now[0] += rng.choice([0.0, 1.0, 10.0, 100.0])
            if rng.random() < 0.3:
                mv.drain()
                compare("mid-stream drain")
        mv.drain()
        compare("final drain")


def test_shrinker_minimizes_a_planted_failure():
    """The shrinker itself is code under test: plant a fake oracle that
    rejects any stream touching R0 with key (1,), and check the minimal
    stream is a single one-key event."""
    case = generate_case(BASE_SEED, allow_factorized=True)
    case["events"].append(
        {"kind": "update", "rel": "R0", "data": {(0, 1): 1, (1, 1): 2}}
    )

    def planted_oracle(trial, _family=None):
        for event in trial["events"]:
            for site in _data_sites(event):
                for key in site:
                    if 1 in key:
                        return "planted failure"
        return None

    import copy

    def fake_run(trial, family):
        return planted_oracle(trial)

    original = globals()["run_case"]
    globals()["run_case"] = fake_run
    try:
        minimal = shrink_case(case, _int_ring)
    finally:
        globals()["run_case"] = original
    assert len(minimal["events"]) == 1
    sites = _data_sites(minimal["events"][0])
    assert sum(len(site) for site in sites) == 1
    assert planted_oracle(minimal)
