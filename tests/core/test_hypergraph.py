"""Tests for GYO reduction, acyclicity, and connectivity."""

from repro.core import connected_components, gyo_residual, is_acyclic, is_connected


class TestGYO:
    def test_chain_is_acyclic(self):
        edges = [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "D"))]
        assert is_acyclic(edges)
        assert gyo_residual(edges) == []

    def test_triangle_is_cyclic(self):
        edges = [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "A"))]
        residual = gyo_residual(edges)
        assert {label for label, _ in residual} == {"R", "S", "T"}

    def test_star_is_acyclic(self):
        edges = [(f"R{i}", ("P", f"X{i}")) for i in range(5)]
        assert is_acyclic(edges)

    def test_snowflake_is_acyclic(self):
        edges = [
            ("Inv", ("locn", "dateid", "ksn")),
            ("It", ("ksn",)),
            ("W", ("locn", "dateid")),
            ("L", ("locn", "zip")),
            ("C", ("zip",)),
        ]
        assert is_acyclic(edges)

    def test_cycle_with_pendant_edge(self):
        """The acyclic appendage reduces away; the cycle core remains."""
        edges = [
            ("R", ("A", "B")),
            ("S", ("B", "C")),
            ("T", ("C", "A")),
            ("P", ("A", "X")),
        ]
        residual = {label for label, _ in gyo_residual(edges)}
        assert residual == {"R", "S", "T"}

    def test_contained_edge_absorbed(self):
        edges = [("big", ("A", "B", "C")), ("small", ("A", "B"))]
        assert is_acyclic(edges)

    def test_duplicate_edges_absorb_each_other(self):
        edges = [("e1", ("A", "B")), ("e2", ("A", "B"))]
        assert is_acyclic(edges)

    def test_loop4_is_cyclic(self):
        edges = [
            ("R1", ("A", "B")),
            ("R2", ("B", "C")),
            ("R3", ("C", "D")),
            ("R4", ("D", "A")),
        ]
        assert not is_acyclic(edges)

    def test_triangle_plus_indicator_candidate(self):
        """The Figure 10 use: children edges + a candidate closing a cycle."""
        children = [("S", ("B", "C")), ("T", ("C", "A"))]
        candidate = [("ind:R", ("A", "B"))]
        residual = {label for label, _ in gyo_residual(children + candidate)}
        assert "ind:R" in residual

    def test_empty(self):
        assert is_acyclic([])


class TestConnectivity:
    def test_connected_chain(self):
        edges = [("R", ("A", "B")), ("S", ("B", "C"))]
        assert is_connected(edges)

    def test_disconnected(self):
        edges = [("R", ("A",)), ("S", ("B",))]
        components = connected_components(edges)
        assert sorted(map(sorted, components)) == [["R"], ["S"]]

    def test_empty_edge_is_own_component(self):
        edges = [("R", ()), ("S", ("B",)), ("T", ("B",))]
        components = sorted(map(sorted, connected_components(edges)))
        assert components == [["R"], ["S", "T"]]

    def test_housing_delta_components(self):
        """Binding the update's join key disconnects a star query."""
        reduced = [(f"R{i}", (f"X{i}",)) for i in range(5)]
        assert len(connected_components(reduced)) == 5
