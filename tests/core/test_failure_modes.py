"""Failure injection: error paths and no-residue invariants."""


import pytest

from repro.core import FIVMEngine, Query, VariableOrder
from repro.data import Relation
from repro.rings import BOOL_SEMIRING, INT_RING, MaxProductSemiring

from tests.conftest import PAPER_SCHEMAS, paper_variable_order, random_delta


class TestSemiringLimitations:
    def test_boolean_semiring_insert_only_maintenance(self):
        """Boolean payloads support inserts (existence queries)..."""
        q = Query("Q", PAPER_SCHEMAS, ring=BOOL_SEMIRING)
        engine = FIVMEngine(q, paper_variable_order())
        engine.apply_update(
            Relation("R", ("A", "B"), BOOL_SEMIRING, {(1, 2): True})
        )
        engine.apply_update(
            Relation("S", ("A", "C", "E"), BOOL_SEMIRING, {(1, 5, 0): True})
        )
        engine.apply_update(
            Relation("T", ("C", "D"), BOOL_SEMIRING, {(5, 9): True})
        )
        assert engine.result().payload(()) is True

    def test_boolean_semiring_deletes_rejected(self):
        """...but deletions need an additive inverse and fail loudly."""
        with pytest.raises((NotImplementedError, ValueError)):
            BOOL_SEMIRING.from_int(-1)

    def test_max_product_semiring_static_evaluation(self):
        from repro.core import build_view_tree
        from tests.conftest import make_database

        ring = MaxProductSemiring()
        q = Query("Q", {"R": ("A",), "S": ("A",)}, ring=ring)
        db = make_database({"R": ("A",), "S": ("A",)}, ring, {})
        db.relation("R").add((1,), 0.5)
        db.relation("R").add((2,), 0.9)
        db.relation("S").add((1,), 0.8)
        db.relation("S").add((2,), 0.1)
        tree = build_view_tree(q)
        result = tree.evaluate(db)[tree.root.name]
        assert abs(result.payload(()) - 0.4) < 1e-12  # max(0.4, 0.09)


class TestNoResidue:
    def test_full_deletion_leaves_views_empty(self, rng):
        """Inserting then deleting everything leaves zero stored keys —
        zero payloads are eagerly dropped, so nothing lingers."""
        q = Query("Q", PAPER_SCHEMAS, free=("A",), ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order())
        history = []
        for _ in range(40):
            rel = rng.choice(list(PAPER_SCHEMAS))
            delta = random_delta(
                rng, rel, PAPER_SCHEMAS[rel], INT_RING, allow_deletes=False
            )
            engine.apply_update(delta.copy())
            history.append(delta)
        for delta in reversed(history):
            engine.apply_update(delta.negate(name=delta.name))
        assert engine.total_keys() == 0
        for view in engine.views.values():
            assert view.is_empty

    def test_index_buckets_emptied(self, rng):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order())
        delta = Relation("S", ("A", "C", "E"), INT_RING, {(1, 2, 3): 4})
        engine.apply_update(delta)
        engine.apply_update(delta.negate(name="S"))
        for view in engine.views.values():
            for _, buckets, sums in view._indexes.values():
                assert not buckets
                assert not sums

    def test_indicator_counts_return_to_zero(self):
        from repro.core import add_indicator_projections, build_view_tree

        schemas = {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "A")}
        q = Query("tri", schemas, ring=INT_RING)
        tree = add_indicator_projections(
            build_view_tree(q, VariableOrder.chain(("A", "B", "C")))
        )
        engine = FIVMEngine(q, tree=tree)
        for rel in schemas:
            engine.apply_update(Relation(rel, schemas[rel], INT_RING, {(1, 2): 1}))
        for rel in schemas:
            engine.apply_update(Relation(rel, schemas[rel], INT_RING, {(1, 2): -1}))
        for views in engine._indicator_views.values():
            for iv in views:
                assert len(iv.relation) == 0
                assert not iv._counts


class TestErrorPaths:
    def test_delta_over_wrong_ring_payloads_caught_by_math(self):
        """Feeding float payloads into an int engine is caught at the
        earliest type-sensitive operation rather than corrupting views."""
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order())
        # Int ring operations happily add floats; the engine's contract is
        # payloads from the declared ring — this documents the duck typing.
        delta = Relation("R", ("A", "B"), INT_RING, {(1, 2): 1})
        engine.apply_update(delta)
        assert engine.result().payload(()) == 0  # no join partners yet

    def test_unknown_relation_delta(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        engine = FIVMEngine(q, paper_variable_order())
        with pytest.raises(KeyError):
            engine.apply_update(Relation("Z", ("A",), INT_RING, {(1,): 1}))

    def test_lookup_sum_requires_registered_index(self):
        rel = Relation("R", ("A", "B"), INT_RING, {(1, 2): 1})
        with pytest.raises(KeyError):
            rel.lookup_sum(("B",), (2,))

    def test_engine_rejects_bad_materialize_mode(self):
        q = Query("Q", PAPER_SCHEMAS, ring=INT_RING)
        with pytest.raises(ValueError):
            FIVMEngine(q, paper_variable_order(), materialize="everything")
