"""Shard-merge equivalence: the sharded engine vs the single engine.

The differential contract (see the module docstring of
:mod:`repro.core.sharded`): for every ring, every update path, and every
partitioning shape — balanced, skewed onto one shard, shards left empty —
the hash-partitioned engine's per-update root deltas, final materialized
views, and totals must equal the single-engine run key for key.
"""

from __future__ import annotations

import multiprocessing
import random

import numpy as np
import pytest

from repro.core import (
    FIVMEngine,
    FactorizedUpdate,
    Query,
    ShardedFIVMEngine,
    VariableOrder,
)
from repro.core.sharded import stable_hash
from repro.data import Database, Relation
from repro.rings import (
    CofactorRing,
    DegreeRing,
    INT_RING,
    IntegerRing,
    Lifting,
    ProductRing,
    RealRing,
    SquareMatrixRing,
)

SCHEMAS = {"R": ("A", "B"), "S": ("A", "C"), "T": ("C", "D")}


def _int_family(attrs):
    return INT_RING, {}


def _degree_family(attrs):
    ring = DegreeRing(len(attrs))
    return ring, {a: ring.lift(i) for i, a in enumerate(attrs) if i % 2 == 0}


def _product_family(attrs):
    ring = ProductRing([IntegerRing(), RealRing()])

    def lift(value):
        return (1, 1.0 + 0.5 * float(value))

    return ring, {a: lift for i, a in enumerate(attrs) if i % 2 == 1}


def _cofactor_family(attrs):
    ring = CofactorRing(len(attrs))
    return ring, {a: ring.lift(i) for i, a in enumerate(attrs) if i % 2 == 1}


def _matrix_family(attrs):
    ring = SquareMatrixRing(2)
    upper = np.array([[0.0, 1.0], [0.0, 0.0]])

    def make_lift(direction):
        return lambda x: np.eye(2) + 0.1 * float(x) * direction

    return ring, {a: make_lift(upper) for i, a in enumerate(attrs) if i % 2}


RING_FAMILIES = {
    "int": _int_family,
    "degree": _degree_family,
    "product": _product_family,
    "cofactor": _cofactor_family,
    "matrix": _matrix_family,
}


def make_pair(ring_family, shards=4, free=("B",), executor="inline",
              shard_key=None, schemas=SCHEMAS):
    attrs = tuple(sorted({a for s in schemas.values() for a in s}))
    ring, lifts = ring_family(attrs)
    lifting = Lifting(ring, lifts)

    def query(tag):
        return Query(f"Q{tag}", schemas, free=free, ring=ring, lifting=lifting)

    order = VariableOrder.auto(query("o"))
    single = FIVMEngine(query("1"), order)
    sharded = ShardedFIVMEngine(
        query("s"), order, shards=shards, executor=executor,
        shard_key=shard_key,
    )
    return single, sharded, ring


def assert_equal_state(single: FIVMEngine, sharded: ShardedFIVMEngine):
    merged = sharded.merged_views()
    assert set(merged) == set(single.views)
    for name, contents in single.views.items():
        assert contents.same_as(merged[name].rename({}, name=name)), (
            f"view {name} diverged between sharded and single engine"
        )
    result = single.result()
    assert result.same_as(sharded.result().rename({}, name=result.name))


def drive_stream(single, sharded, ring, seed=0, steps=25, domain=4):
    """Random single-relation updates through both engines, checking every
    root delta; returns nothing — divergence fails inside."""
    rng = random.Random(seed)
    for step in range(steps):
        rel = rng.choice(sorted(SCHEMAS))
        data = {
            tuple(rng.randint(0, domain - 1) for _ in SCHEMAS[rel]):
                ring.from_int(rng.choice([1, 1, 2, -1]))
            for _ in range(rng.randint(1, 3))
        }
        delta = Relation(rel, SCHEMAS[rel], ring, data)
        expected = single.apply_update(delta.copy())
        got = sharded.apply_update(delta.copy())
        assert expected.same_as(got.rename({}, name=expected.name)), (
            f"[seed {seed}] root delta diverged at step {step}"
        )


@pytest.mark.parametrize("ring_name", sorted(RING_FAMILIES))
def test_sharded_equals_single_on_every_ring(ring_name):
    single, sharded, ring = make_pair(RING_FAMILIES[ring_name], shards=4)
    drive_stream(single, sharded, ring, seed=7)
    assert_equal_state(single, sharded)


def test_single_shard_degenerates_to_routed_engine():
    single, sharded, ring = make_pair(_int_family, shards=1)
    drive_stream(single, sharded, ring, seed=1)
    assert_equal_state(single, sharded)


def test_skewed_partition_and_empty_shards():
    """All tuples carry one shard-key value: one shard absorbs the whole
    stream, the others stay empty — merge must still be exact."""
    single, sharded, ring = make_pair(_int_family, shards=5)
    hot = 3  # every B lands here; A/C/D vary freely
    rng = random.Random(11)
    for _ in range(15):
        rel = rng.choice(sorted(SCHEMAS))
        key = tuple(
            hot if attr == "B" else rng.randint(0, 3)
            for attr in SCHEMAS[rel]
        )
        delta = Relation(rel, SCHEMAS[rel], ring, {key: rng.choice([1, -1, 2])})
        expected = single.apply_update(delta.copy())
        got = sharded.apply_update(delta.copy())
        assert expected.same_as(got.rename({}, name=expected.name))
    assert_equal_state(single, sharded)
    # The partitioned relation's fragments really are skewed: exactly one
    # shard holds keys, and shard count exceeding the key space left the
    # rest empty.
    populated = [
        shard for shard, engine in enumerate(sharded._exec.engines)
        if len(engine.views["R"]) > 0
    ]
    assert populated == [stable_hash(hot) % 5]


def test_factorized_update_routing():
    """Rank-r updates: the factor carrying the shard key is split, other
    factors ride along; totals and state match the single engine."""
    single, sharded, ring = make_pair(_cofactor_family, shards=3)
    # Preload some context so propagation meets non-trivial siblings.
    drive_stream(single, sharded, ring, seed=3, steps=10)
    rng = random.Random(5)
    for rank in (1, 2):
        terms = []
        for _ in range(rank):
            u = Relation(
                "R_u", ("A",), ring,
                {(rng.randint(0, 3),): ring.from_int(rng.choice([1, 2]))},
            )
            v = Relation(
                "R_v", ("B",), ring,
                {
                    (rng.randint(0, 3),): ring.from_int(1),
                    (rng.randint(0, 3),): ring.from_int(-1),
                },
            )
            terms.append([u, v])
        update = FactorizedUpdate("R", terms, ring=ring)
        copy = FactorizedUpdate(
            "R", [[f.copy() for f in t] for t in terms], ring=ring
        )
        expected = single.apply_factorized_update(update)
        got = sharded.apply_factorized_update(copy)
        assert expected.same_as(got.rename({}, name=expected.name))
    assert_equal_state(single, sharded)


def test_factorized_update_to_replicated_relation_broadcasts():
    single, sharded, ring = make_pair(_int_family, shards=3)
    # T does not contain the shard key (B): the update must broadcast.
    assert "T" in sharded.replicated
    u = Relation("T_u", ("C",), ring, {(1,): 2, (2,): 1})
    v = Relation("T_v", ("D",), ring, {(0,): 1})
    update = FactorizedUpdate("T", [[u, v]])
    expected = single.apply_factorized_update(update)
    got = sharded.apply_factorized_update(
        FactorizedUpdate("T", [[u.copy(), v.copy()]])
    )
    assert expected.same_as(got.rename({}, name=expected.name))
    assert_equal_state(single, sharded)


def test_rank_zero_factorized_update_is_a_noop():
    single, sharded, ring = make_pair(_int_family, shards=2)
    update = FactorizedUpdate("R", [], ring=ring)
    expected = single.apply_factorized_update(update)
    got = sharded.apply_factorized_update(
        FactorizedUpdate("R", [], ring=ring)
    )
    assert expected.same_as(got.rename({}, name=expected.name))
    assert got.is_empty


def test_apply_batch_mixed_items():
    single, sharded, ring = make_pair(_int_family, shards=4)
    rng = random.Random(13)
    for _ in range(6):
        items_single, items_sharded = [], []
        for _ in range(rng.randint(2, 4)):
            rel = rng.choice(sorted(SCHEMAS))
            if rel == "R" and rng.random() < 0.4:
                u = Relation(
                    "R_u", ("A",), ring, {(rng.randint(0, 3),): 1}
                )
                v = Relation(
                    "R_v", ("B",), ring, {(rng.randint(0, 3),): rng.choice([1, -1])}
                )
                items_single.append(FactorizedUpdate("R", [[u, v]]))
                items_sharded.append(
                    FactorizedUpdate("R", [[u.copy(), v.copy()]])
                )
            else:
                data = {
                    tuple(rng.randint(0, 3) for _ in SCHEMAS[rel]):
                        rng.choice([1, 2, -1])
                    for _ in range(rng.randint(1, 3))
                }
                delta = Relation(rel, SCHEMAS[rel], ring, data)
                items_single.append(delta.copy())
                items_sharded.append(delta)
        expected = single.apply_batch(items_single)
        got = sharded.apply_batch(items_sharded)
        assert expected.same_as(got.rename({}, name=expected.name))
    assert_equal_state(single, sharded)


def test_apply_decomposed_update_routes_through_factors():
    single, sharded, ring = make_pair(_int_family, shards=3)
    # A rank-1-decomposable delta: {1,2} x {0,3} on (A, B).
    data = {(a, b): 2 for a in (1, 2) for b in (0, 3)}
    delta = Relation("R", SCHEMAS["R"], ring, data)
    expected = single.apply_decomposed_update(delta.copy())
    got = sharded.apply_decomposed_update(delta.copy())
    assert expected.same_as(got.rename({}, name=expected.name))
    assert_equal_state(single, sharded)


def test_initialize_partitions_a_database_snapshot():
    single, sharded, ring = make_pair(_int_family, shards=4)
    rng = random.Random(17)
    db = Database(
        Relation(
            rel, schema, ring,
            {
                tuple(rng.randint(0, 4) for _ in schema): rng.choice([1, 2])
                for _ in range(8)
            },
        )
        for rel, schema in SCHEMAS.items()
    )
    single.initialize(db)
    sharded.initialize(db)
    assert_equal_state(single, sharded)
    # And updates on top of the loaded state still agree.
    drive_stream(single, sharded, ring, seed=19, steps=8)
    assert_equal_state(single, sharded)


def test_replicated_only_views_are_read_once():
    """A view over a purely replicated subtree is identical per shard; the
    merge must take one copy, not the S-fold sum."""
    single, sharded, ring = make_pair(_int_family, shards=3)
    assert "T" in sharded.replicated
    delta = Relation("T", SCHEMAS["T"], ring, {(1, 2): 5})
    single.apply_update(delta.copy())
    sharded.apply_update(delta.copy())
    # The stored leaf copy of T is replicated-only.
    leaf_name = sharded.tree.leaves["T"].name
    if sharded.flags[leaf_name]:
        assert leaf_name not in sharded._summed
        merged = sharded.contents(leaf_name)
        assert merged.same_as(
            single.views[leaf_name].rename({}, name=leaf_name)
        )


def test_explicit_shard_key_and_validation_errors():
    ring = INT_RING
    q = Query("q", SCHEMAS, ring=ring)
    order = VariableOrder.auto(q)
    with pytest.raises(ValueError, match="not a query variable"):
        ShardedFIVMEngine(q, order, shards=2, shard_key="Z")
    with pytest.raises(ValueError, match="shard count"):
        ShardedFIVMEngine(q, order, shards=0)
    engine = ShardedFIVMEngine(q, order, shards=2, shard_key="C")
    assert engine.partitioned == frozenset({"S", "T"})
    assert engine.replicated == frozenset({"R"})
    with pytest.raises(KeyError):
        engine.apply_update(
            Relation("Nope", ("A",), ring, {(1,): 1})
        )
    with pytest.raises(ValueError):
        engine.apply_update(Relation("R", ("A",), ring, {(1,): 1}))


def test_inline_shards_share_one_program_library():
    _, sharded, _ = make_pair(_int_family, shards=3)
    libraries = {id(e._library) for e in sharded._exec.engines}
    assert len(libraries) == 1
    assert sharded._exec.engines[0]._library is not None
    assert len(sharded._exec.engines[0]._library) > 0


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process executor needs the fork start method",
)
def test_process_executor_matches_single_engine():
    single, sharded, ring = make_pair(
        _cofactor_family, shards=2, executor="process"
    )
    try:
        assert sharded.executor == "process"
        drive_stream(single, sharded, ring, seed=23, steps=12)
        # Batched + factorized over the wire too.
        u = Relation("R_u", ("A",), ring, {(1,): ring.from_int(2)})
        v = Relation("R_v", ("B",), ring, {(2,): ring.from_int(1)})
        items = [
            Relation("S", SCHEMAS["S"], ring, {(1, 2): ring.from_int(1)}),
            FactorizedUpdate("R", [[u, v]], ring=ring),
        ]
        expected = single.apply_batch(
            [items[0].copy(), FactorizedUpdate(
                "R", [[u.copy(), v.copy()]], ring=ring
            )]
        )
        got = sharded.apply_batch(items)
        assert expected.same_as(got.rename({}, name=expected.name))
        assert_equal_state(single, sharded)
        assert sharded.total_keys() > 0
        assert sharded.logical_scalars() > 0
    finally:
        sharded.close()


def test_stable_hash_agrees_with_dict_key_equality():
    """True, 1, and 1.0 are the same dict key; routing must agree, or
    cross-typed join values silently land in different shards."""
    for shards in (2, 3, 5, 7):
        assert (
            stable_hash(True) % shards
            == stable_hash(1) % shards
            == stable_hash(1.0) % shards
        )
        assert stable_hash(2.0) % shards == stable_hash(2) % shards
    # And an end-to-end mixed-type stream stays equivalent.
    single, sharded, ring = make_pair(_int_family, shards=3)
    for value in (1, 1.0, True, 2, 2.0):
        delta = Relation("R", SCHEMAS["R"], ring, {(0, value): 1})
        expected = single.apply_update(delta.copy())
        got = sharded.apply_update(delta.copy())
        assert expected.same_as(got.rename({}, name=expected.name))
    assert_equal_state(single, sharded)


def test_batch_rejects_factorized_items_on_noncommutative_rings_up_front():
    """The up-front validation contract: a factorized item on a matrix
    ring must fail before any shard absorbs anything."""
    single, sharded, ring = make_pair(_matrix_family, shards=2)
    good = Relation("S", SCHEMAS["S"], ring, {(1, 2): ring.from_int(1)})
    u = Relation("R_u", ("A",), ring, {(1,): ring.from_int(1)})
    v = Relation("R_v", ("B",), ring, {(2,): ring.from_int(1)})
    bad = FactorizedUpdate("R", [[u, v]], ring=ring)
    for engine in (single, sharded):
        with pytest.raises(ValueError, match="commutative"):
            engine.apply_batch([good.copy(), bad])
    # Nothing was applied anywhere — states still match (and are empty).
    assert_equal_state(single, sharded)
    assert single.result().is_empty
