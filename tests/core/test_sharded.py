"""Shard-merge equivalence: the sharded engine vs the single engine.

The differential contract (see the module docstring of
:mod:`repro.core.sharded`): for every ring, every update path, and every
partitioning shape — balanced, skewed onto one shard, shards left empty —
the hash-partitioned engine's per-update root deltas, final materialized
views, and totals must equal the single-engine run key for key.
"""

from __future__ import annotations

import multiprocessing
import random
import socket

import numpy as np
import pytest

from repro.core import (
    DeferredRelation,
    FIVMEngine,
    FactorizedUpdate,
    FrameConn,
    Query,
    ShardedFIVMEngine,
    VariableOrder,
)
from repro.core.sharded import stable_hash

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="out-of-process executors need the fork start method",
)
from repro.data import Database, Relation
from repro.rings import (
    CofactorRing,
    DegreeRing,
    INT_RING,
    IntegerRing,
    Lifting,
    ProductRing,
    RealRing,
    SquareMatrixRing,
)

SCHEMAS = {"R": ("A", "B"), "S": ("A", "C"), "T": ("C", "D")}


def _int_family(attrs):
    return INT_RING, {}


def _degree_family(attrs):
    ring = DegreeRing(len(attrs))
    return ring, {a: ring.lift(i) for i, a in enumerate(attrs) if i % 2 == 0}


def _product_family(attrs):
    ring = ProductRing([IntegerRing(), RealRing()])

    def lift(value):
        return (1, 1.0 + 0.5 * float(value))

    return ring, {a: lift for i, a in enumerate(attrs) if i % 2 == 1}


def _cofactor_family(attrs):
    ring = CofactorRing(len(attrs))
    return ring, {a: ring.lift(i) for i, a in enumerate(attrs) if i % 2 == 1}


def _matrix_family(attrs):
    ring = SquareMatrixRing(2)
    upper = np.array([[0.0, 1.0], [0.0, 0.0]])

    def make_lift(direction):
        return lambda x: np.eye(2) + 0.1 * float(x) * direction

    return ring, {a: make_lift(upper) for i, a in enumerate(attrs) if i % 2}


RING_FAMILIES = {
    "int": _int_family,
    "degree": _degree_family,
    "product": _product_family,
    "cofactor": _cofactor_family,
    "matrix": _matrix_family,
}


def make_pair(ring_family, shards=4, free=("B",), executor="inline",
              shard_key=None, schemas=SCHEMAS, **engine_kwargs):
    attrs = tuple(sorted({a for s in schemas.values() for a in s}))
    ring, lifts = ring_family(attrs)
    lifting = Lifting(ring, lifts)

    def query(tag):
        return Query(f"Q{tag}", schemas, free=free, ring=ring, lifting=lifting)

    order = VariableOrder.auto(query("o"))
    single = FIVMEngine(query("1"), order)
    sharded = ShardedFIVMEngine(
        query("s"), order, shards=shards, executor=executor,
        shard_key=shard_key, **engine_kwargs,
    )
    return single, sharded, ring


def assert_equal_state(single: FIVMEngine, sharded: ShardedFIVMEngine):
    merged = sharded.merged_views()
    assert set(merged) == set(single.views)
    for name, contents in single.views.items():
        assert contents.same_as(merged[name].rename({}, name=name)), (
            f"view {name} diverged between sharded and single engine"
        )
    result = single.result()
    assert result.same_as(sharded.result().rename({}, name=result.name))


def drive_stream(single, sharded, ring, seed=0, steps=25, domain=4):
    """Random single-relation updates through both engines, checking every
    root delta; returns nothing — divergence fails inside."""
    rng = random.Random(seed)
    for step in range(steps):
        rel = rng.choice(sorted(SCHEMAS))
        data = {
            tuple(rng.randint(0, domain - 1) for _ in SCHEMAS[rel]):
                ring.from_int(rng.choice([1, 1, 2, -1]))
            for _ in range(rng.randint(1, 3))
        }
        delta = Relation(rel, SCHEMAS[rel], ring, data)
        expected = single.apply_update(delta.copy())
        got = sharded.apply_update(delta.copy())
        assert expected.same_as(got.rename({}, name=expected.name)), (
            f"[seed {seed}] root delta diverged at step {step}"
        )


@pytest.mark.parametrize("ring_name", sorted(RING_FAMILIES))
def test_sharded_equals_single_on_every_ring(ring_name):
    single, sharded, ring = make_pair(RING_FAMILIES[ring_name], shards=4)
    drive_stream(single, sharded, ring, seed=7)
    assert_equal_state(single, sharded)


def test_single_shard_degenerates_to_routed_engine():
    single, sharded, ring = make_pair(_int_family, shards=1)
    drive_stream(single, sharded, ring, seed=1)
    assert_equal_state(single, sharded)


def test_skewed_partition_and_empty_shards():
    """All tuples carry one shard-key value: one shard absorbs the whole
    stream, the others stay empty — merge must still be exact."""
    single, sharded, ring = make_pair(_int_family, shards=5)
    hot = 3  # every B lands here; A/C/D vary freely
    rng = random.Random(11)
    for _ in range(15):
        rel = rng.choice(sorted(SCHEMAS))
        key = tuple(
            hot if attr == "B" else rng.randint(0, 3)
            for attr in SCHEMAS[rel]
        )
        delta = Relation(rel, SCHEMAS[rel], ring, {key: rng.choice([1, -1, 2])})
        expected = single.apply_update(delta.copy())
        got = sharded.apply_update(delta.copy())
        assert expected.same_as(got.rename({}, name=expected.name))
    assert_equal_state(single, sharded)
    # The partitioned relation's fragments really are skewed: exactly one
    # shard holds keys, and shard count exceeding the key space left the
    # rest empty.
    populated = [
        shard for shard, engine in enumerate(sharded._exec.engines)
        if len(engine.views["R"]) > 0
    ]
    assert populated == [stable_hash(hot) % 5]


def test_factorized_update_routing():
    """Rank-r updates: the factor carrying the shard key is split, other
    factors ride along; totals and state match the single engine."""
    single, sharded, ring = make_pair(_cofactor_family, shards=3)
    # Preload some context so propagation meets non-trivial siblings.
    drive_stream(single, sharded, ring, seed=3, steps=10)
    rng = random.Random(5)
    for rank in (1, 2):
        terms = []
        for _ in range(rank):
            u = Relation(
                "R_u", ("A",), ring,
                {(rng.randint(0, 3),): ring.from_int(rng.choice([1, 2]))},
            )
            v = Relation(
                "R_v", ("B",), ring,
                {
                    (rng.randint(0, 3),): ring.from_int(1),
                    (rng.randint(0, 3),): ring.from_int(-1),
                },
            )
            terms.append([u, v])
        update = FactorizedUpdate("R", terms, ring=ring)
        copy = FactorizedUpdate(
            "R", [[f.copy() for f in t] for t in terms], ring=ring
        )
        expected = single.apply_factorized_update(update)
        got = sharded.apply_factorized_update(copy)
        assert expected.same_as(got.rename({}, name=expected.name))
    assert_equal_state(single, sharded)


def test_factorized_update_to_replicated_relation_broadcasts():
    single, sharded, ring = make_pair(_int_family, shards=3)
    # T does not contain the shard key (B): the update must broadcast.
    assert "T" in sharded.replicated
    u = Relation("T_u", ("C",), ring, {(1,): 2, (2,): 1})
    v = Relation("T_v", ("D",), ring, {(0,): 1})
    update = FactorizedUpdate("T", [[u, v]])
    expected = single.apply_factorized_update(update)
    got = sharded.apply_factorized_update(
        FactorizedUpdate("T", [[u.copy(), v.copy()]])
    )
    assert expected.same_as(got.rename({}, name=expected.name))
    assert_equal_state(single, sharded)


def test_rank_zero_factorized_update_is_a_noop():
    single, sharded, ring = make_pair(_int_family, shards=2)
    update = FactorizedUpdate("R", [], ring=ring)
    expected = single.apply_factorized_update(update)
    got = sharded.apply_factorized_update(
        FactorizedUpdate("R", [], ring=ring)
    )
    assert expected.same_as(got.rename({}, name=expected.name))
    assert got.is_empty


def test_apply_batch_mixed_items():
    single, sharded, ring = make_pair(_int_family, shards=4)
    rng = random.Random(13)
    for _ in range(6):
        items_single, items_sharded = [], []
        for _ in range(rng.randint(2, 4)):
            rel = rng.choice(sorted(SCHEMAS))
            if rel == "R" and rng.random() < 0.4:
                u = Relation(
                    "R_u", ("A",), ring, {(rng.randint(0, 3),): 1}
                )
                v = Relation(
                    "R_v", ("B",), ring, {(rng.randint(0, 3),): rng.choice([1, -1])}
                )
                items_single.append(FactorizedUpdate("R", [[u, v]]))
                items_sharded.append(
                    FactorizedUpdate("R", [[u.copy(), v.copy()]])
                )
            else:
                data = {
                    tuple(rng.randint(0, 3) for _ in SCHEMAS[rel]):
                        rng.choice([1, 2, -1])
                    for _ in range(rng.randint(1, 3))
                }
                delta = Relation(rel, SCHEMAS[rel], ring, data)
                items_single.append(delta.copy())
                items_sharded.append(delta)
        expected = single.apply_batch(items_single)
        got = sharded.apply_batch(items_sharded)
        assert expected.same_as(got.rename({}, name=expected.name))
    assert_equal_state(single, sharded)


def test_apply_decomposed_update_routes_through_factors():
    single, sharded, ring = make_pair(_int_family, shards=3)
    # A rank-1-decomposable delta: {1,2} x {0,3} on (A, B).
    data = {(a, b): 2 for a in (1, 2) for b in (0, 3)}
    delta = Relation("R", SCHEMAS["R"], ring, data)
    expected = single.apply_decomposed_update(delta.copy())
    got = sharded.apply_decomposed_update(delta.copy())
    assert expected.same_as(got.rename({}, name=expected.name))
    assert_equal_state(single, sharded)


def test_initialize_partitions_a_database_snapshot():
    single, sharded, ring = make_pair(_int_family, shards=4)
    rng = random.Random(17)
    db = Database(
        Relation(
            rel, schema, ring,
            {
                tuple(rng.randint(0, 4) for _ in schema): rng.choice([1, 2])
                for _ in range(8)
            },
        )
        for rel, schema in SCHEMAS.items()
    )
    single.initialize(db)
    sharded.initialize(db)
    assert_equal_state(single, sharded)
    # And updates on top of the loaded state still agree.
    drive_stream(single, sharded, ring, seed=19, steps=8)
    assert_equal_state(single, sharded)


def test_replicated_only_views_are_read_once():
    """A view over a purely replicated subtree is identical per shard; the
    merge must take one copy, not the S-fold sum."""
    single, sharded, ring = make_pair(_int_family, shards=3)
    assert "T" in sharded.replicated
    delta = Relation("T", SCHEMAS["T"], ring, {(1, 2): 5})
    single.apply_update(delta.copy())
    sharded.apply_update(delta.copy())
    # The stored leaf copy of T is replicated-only.
    leaf_name = sharded.tree.leaves["T"].name
    if sharded.flags[leaf_name]:
        assert leaf_name not in sharded._summed
        merged = sharded.contents(leaf_name)
        assert merged.same_as(
            single.views[leaf_name].rename({}, name=leaf_name)
        )


def test_explicit_shard_key_and_validation_errors():
    ring = INT_RING
    q = Query("q", SCHEMAS, ring=ring)
    order = VariableOrder.auto(q)
    with pytest.raises(ValueError, match="not a query variable"):
        ShardedFIVMEngine(q, order, shards=2, shard_key="Z")
    with pytest.raises(ValueError, match="shard count"):
        ShardedFIVMEngine(q, order, shards=0)
    engine = ShardedFIVMEngine(q, order, shards=2, shard_key="C")
    assert engine.partitioned == frozenset({"S", "T"})
    assert engine.replicated == frozenset({"R"})
    with pytest.raises(KeyError):
        engine.apply_update(
            Relation("Nope", ("A",), ring, {(1,): 1})
        )
    with pytest.raises(ValueError):
        engine.apply_update(Relation("R", ("A",), ring, {(1,): 1}))


def test_inline_shards_share_one_program_library():
    _, sharded, _ = make_pair(_int_family, shards=3)
    libraries = {id(e._library) for e in sharded._exec.engines}
    assert len(libraries) == 1
    assert sharded._exec.engines[0]._library is not None
    assert len(sharded._exec.engines[0]._library) > 0


@needs_fork
def test_process_executor_matches_single_engine():
    single, sharded, ring = make_pair(
        _cofactor_family, shards=2, executor="process"
    )
    try:
        assert sharded.executor == "process"
        drive_stream(single, sharded, ring, seed=23, steps=12)
        # Batched + factorized over the wire too.
        u = Relation("R_u", ("A",), ring, {(1,): ring.from_int(2)})
        v = Relation("R_v", ("B",), ring, {(2,): ring.from_int(1)})
        items = [
            Relation("S", SCHEMAS["S"], ring, {(1, 2): ring.from_int(1)}),
            FactorizedUpdate("R", [[u, v]], ring=ring),
        ]
        expected = single.apply_batch(
            [items[0].copy(), FactorizedUpdate(
                "R", [[u.copy(), v.copy()]], ring=ring
            )]
        )
        got = sharded.apply_batch(items)
        assert expected.same_as(got.rename({}, name=expected.name))
        assert_equal_state(single, sharded)
        assert sharded.total_keys() > 0
        assert sharded.logical_scalars() > 0
    finally:
        sharded.close()


def test_stable_hash_agrees_with_dict_key_equality():
    """True, 1, and 1.0 are the same dict key; routing must agree, or
    cross-typed join values silently land in different shards."""
    for shards in (2, 3, 5, 7):
        assert (
            stable_hash(True) % shards
            == stable_hash(1) % shards
            == stable_hash(1.0) % shards
        )
        assert stable_hash(2.0) % shards == stable_hash(2) % shards
    # And an end-to-end mixed-type stream stays equivalent.
    single, sharded, ring = make_pair(_int_family, shards=3)
    for value in (1, 1.0, True, 2, 2.0):
        delta = Relation("R", SCHEMAS["R"], ring, {(0, value): 1})
        expected = single.apply_update(delta.copy())
        got = sharded.apply_update(delta.copy())
        assert expected.same_as(got.rename({}, name=expected.name))
    assert_equal_state(single, sharded)


def test_batch_rejects_factorized_items_on_noncommutative_rings_up_front():
    """The up-front validation contract: a factorized item on a matrix
    ring must fail before any shard absorbs anything."""
    single, sharded, ring = make_pair(_matrix_family, shards=2)
    good = Relation("S", SCHEMAS["S"], ring, {(1, 2): ring.from_int(1)})
    u = Relation("R_u", ("A",), ring, {(1,): ring.from_int(1)})
    v = Relation("R_v", ("B",), ring, {(2,): ring.from_int(1)})
    bad = FactorizedUpdate("R", [[u, v]], ring=ring)
    for engine in (single, sharded):
        with pytest.raises(ValueError, match="commutative"):
            engine.apply_batch([good.copy(), bad])
    # Nothing was applied anywhere — states still match (and are empty).
    assert_equal_state(single, sharded)
    assert single.result().is_empty


# ---------------------------------------------------------------------------
# Compound shard keys
# ---------------------------------------------------------------------------


def test_compound_shard_key_partitions_and_routes():
    """``shard_key=("A", "C")``: only relations containing *every*
    component are partitioned; routing hashes the component tuple."""
    single, sharded, ring = make_pair(
        _int_family, shards=3, shard_key=("A", "C")
    )
    # Only S carries both A and C; R lacks C, T lacks A.
    assert sharded.partitioned == frozenset({"S"})
    assert sharded.replicated == frozenset({"R", "T"})
    assert sharded.shard_key == ("A", "C")
    drive_stream(single, sharded, ring, seed=11)
    assert_equal_state(single, sharded)
    # Routing invariant: every key of every shard's S fragment hashes home
    # on the (A, C) component tuple — which is exactly S's full key here.
    leaf = sharded.tree.leaves["S"].name
    occupied = 0
    for shard, engine in enumerate(sharded._exec.engines):
        fragment = engine.views[leaf]
        for key in fragment.keys():
            assert stable_hash(tuple(key)) % sharded.shards == shard
        occupied += bool(len(fragment))
    assert occupied > 1, "compound routing collapsed onto one shard"


def test_compound_shard_key_validation():
    ring = INT_RING
    q = Query("q", SCHEMAS, ring=ring)
    order = VariableOrder.auto(q)
    with pytest.raises(ValueError, match="must not be empty"):
        ShardedFIVMEngine(q, order, shards=2, shard_key=())
    with pytest.raises(ValueError, match="not a query variable"):
        ShardedFIVMEngine(q, order, shards=2, shard_key=("A", "Z"))
    # No relation carries both B and D — sharding would replicate all.
    with pytest.raises(ValueError, match="no relation contains"):
        ShardedFIVMEngine(q, order, shards=2, shard_key=("B", "D"))
    # A one-element tuple normalizes to the bare single-attribute key.
    engine = ShardedFIVMEngine(q, order, shards=2, shard_key=("C",))
    assert engine.shard_key == "C"
    assert engine.partitioned == frozenset({"S", "T"})


@pytest.mark.parametrize("ring_name", ("degree", "matrix"))
def test_compound_shard_key_equals_single_on_hard_rings(ring_name):
    single, sharded, ring = make_pair(
        RING_FAMILIES[ring_name], shards=4, shard_key=("A", "C")
    )
    drive_stream(single, sharded, ring, seed=13)
    assert_equal_state(single, sharded)


# ---------------------------------------------------------------------------
# Pipelined executor: send-ahead window, deferred deltas, flush barrier
# ---------------------------------------------------------------------------


@needs_fork
def test_pipelined_deltas_stay_lazy_until_read():
    """With a send-ahead window, ``apply_update`` returns a
    :class:`DeferredRelation` that resolves only when read — ``flush``
    drains the window without forcing any merge."""
    # checkpoint_every=None: a checkpoint boundary drains the whole
    # window (resolving handles early, by design); disabling it makes
    # every handle's laziness deterministic for the assertions below.
    single, sharded, ring = make_pair(
        _int_family, shards=2, executor="process", pipeline_depth=8,
        checkpoint_every=None,
    )
    try:
        assert sharded.pipeline_depth == 8
        handles = []
        expected = []
        rng = random.Random(3)
        for _ in range(20):
            rel = rng.choice(sorted(SCHEMAS))
            data = {
                tuple(rng.randint(0, 3) for _ in SCHEMAS[rel]): 1,
            }
            delta = Relation(rel, SCHEMAS[rel], ring, data)
            expected.append(single.apply_update(delta.copy()))
            handles.append(sharded.apply_update(delta.copy()))
        assert all(isinstance(h, DeferredRelation) for h in handles)
        # The window (depth 8 per shard) forced some sends to drain acks,
        # but no handle has merged: nothing read them yet.
        assert not any(h.resolved for h in handles)
        sharded.flush()
        assert not any(h.resolved for h in handles), (
            "flush() must drain the window, not force root-delta merges"
        )
        # Reading resolves — and matches the eager single-engine deltas.
        for step, (want, got) in enumerate(zip(expected, handles)):
            assert want.same_as(got.rename({}, name=want.name)), (
                f"deferred root delta diverged at step {step}"
            )
        assert all(h.resolved for h in handles)
        assert_equal_state(single, sharded)
    finally:
        sharded.close()


@needs_fork
def test_pipelined_reads_sit_behind_the_flush_barrier():
    """A read (views/result) while updates are in flight must observe
    every enqueued update, exactly once."""
    single, sharded, ring = make_pair(
        _cofactor_family, shards=2, executor="process", pipeline_depth=16
    )
    try:
        rng = random.Random(5)
        for step in range(12):
            rel = rng.choice(sorted(SCHEMAS))
            data = {
                tuple(rng.randint(0, 3) for _ in SCHEMAS[rel]):
                    ring.from_int(rng.choice([1, 2, -1])),
            }
            delta = Relation(rel, SCHEMAS[rel], ring, data)
            single.apply_update(delta.copy())
            sharded.apply_update(delta.copy())
            if step % 5 == 4:  # mid-window read: implicit flush barrier
                result = single.result()
                assert result.same_as(
                    sharded.result().rename({}, name=result.name)
                )
        assert_equal_state(single, sharded)
    finally:
        sharded.close()


@needs_fork
def test_socket_executor_matches_single_engine():
    """Loopback socket transport: same differential contract, over TCP
    frames, with a pipelined window."""
    single, sharded, ring = make_pair(
        _degree_family, shards=2, executor="socket", pipeline_depth=4
    )
    try:
        assert sharded.executor == "socket"
        drive_stream(single, sharded, ring, seed=17, steps=15)
        u = Relation("R_u", ("A",), ring, {(1,): ring.from_int(2)})
        v = Relation("R_v", ("B",), ring, {(2,): ring.from_int(1)})
        expected = single.apply_factorized_update(
            FactorizedUpdate("R", [[u.copy(), v.copy()]], ring=ring)
        )
        got = sharded.apply_factorized_update(
            FactorizedUpdate("R", [[u, v]], ring=ring)
        )
        assert expected.same_as(got.rename({}, name=expected.name))
        assert_equal_state(single, sharded)
    finally:
        sharded.close()


# ---------------------------------------------------------------------------
# FrameConn: the framed transport under both executors
# ---------------------------------------------------------------------------


def _conn_pair():
    a, b = socket.socketpair()
    return FrameConn(a), FrameConn(b)


def test_frameconn_round_trips_frames_in_order():
    left, right = _conn_pair()
    try:
        payloads = [{"seq": i, "blob": b"x" * (i * 100)} for i in range(5)]
        for obj in payloads:
            left.send(obj)
        # Buffered: nothing crossed yet; the peer sees no frame.
        assert not right.poll(0.0)
        left.flush()
        assert right.poll(1.0)
        assert [right.recv() for _ in payloads] == payloads
    finally:
        left.close()
        right.close()


def test_frameconn_poll_answers_from_buffer_without_flushing():
    """A poll that can be satisfied from already-received bytes must not
    flush pending writes — that is what lets both sides batch."""
    left, right = _conn_pair()
    try:
        left.send("ping")
        left.flush()
        assert right.poll(1.0)  # frame now buffered on the right
        right.send("pong")      # reply sits in the output buffer
        assert right.poll(0.0)  # answered from the input buffer...
        assert right._out, "poll flushed the reply buffer prematurely"
        assert right.recv() == "ping"
        assert not left.poll(0.0), "reply crossed before any flush"
        right.flush()
        assert left.recv() == "pong"
    finally:
        left.close()
        right.close()


def test_frameconn_raises_eoferror_once_the_peer_is_gone():
    left, right = _conn_pair()
    left.send("last words")
    left.close()
    try:
        assert right.recv() == "last words"
        with pytest.raises(EOFError):
            right.recv()
        with pytest.raises(EOFError):
            right.poll(0.5)
    finally:
        right.close()


def test_frameconn_autoflush_ships_every_send():
    left, right = _conn_pair()
    try:
        eager = FrameConn(left._sock, autoflush=True)
        eager.send([1, 2, 3])
        assert not eager._out
        assert right.poll(1.0)
        assert right.recv() == [1, 2, 3]
    finally:
        left.close()
        right.close()
