"""Hash-partitioned parallel F-IVM: sharded engines, ring-merged roots.

The view trees of F-IVM are *ring-homomorphic*: every view is a
join-aggregate whose value is multilinear in the base relations, so
partitioning the domain of one join variable splits the query into
independent summands — ``Q(D) = ⊎_s Q(D_s)`` — that per-shard engines can
maintain in isolation and the coordinator can recombine with plain payload
addition (``Ring.add``, the same decomposability that conditioning work on
probabilistic databases exploits).  Concretely:

* a **shard variable** ``X`` is fixed (default: the root of the variable
  order — the paper keeps join variables on top, so the root is shared by
  the heaviest relations);
* every relation whose schema contains ``X`` is **hash-partitioned** on it
  (fragment ``s`` holds the tuples with ``hash(x) % S == s``); relations
  without ``X`` are **replicated** to all shards (the broadcast side of a
  distributed hash join);
* each shard runs a full, unmodified :class:`~repro.core.engine.FIVMEngine`
  over its fragment database.  Every full-join assignment binds ``X`` to
  one value and therefore contributes to exactly one shard, so for every
  view whose subtree touches a partitioned relation the global contents are
  the ``⊎`` of the per-shard fragments, and the global root delta of any
  update is the ``⊎`` of the per-shard root deltas.  Views over purely
  replicated subtrees are identical in every shard and are read once.

Soundness needs only ``Ring.add`` commutativity — a ring axiom — so every
payload ring works, including the non-commutative matrix ring (payload
*products* stay inside one shard, in child order).  Cyclic queries whose
indicator projections observe a partitioned relation would break the
multilinearity argument; :class:`ShardedFIVMEngine` builds plain
(unadorned) view trees, so the situation cannot arise.

Executors
---------

``executor="inline"`` (default) runs the ``S`` engines in-process — the
deterministic mode the differential tests drive, and the mode in which all
shards share one :class:`~repro.core.plan_exec.ProgramLibrary`, so trigger
code is generated once and only re-bound per shard.  ``executor="process"``
forks one worker per shard (requires the ``fork`` start method; silently
falls back to inline elsewhere): deltas are routed in the coordinator,
shipped as plain ``(name, schema, {key: payload})`` triples, and the
per-shard root deltas come back the same way — true parallel maintenance
on multi-core hosts, measured by ``benchmarks/test_fig_shard_scaling.py``.
"""

from __future__ import annotations

import multiprocessing
import traceback
import zlib
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.engine import (
    FIVMEngine,
    check_delta,
    check_factorized,
    resolve_backend,
    resolve_storage,
)
from repro.core.factorized_update import FactorizedUpdate, decompose
from repro.core.materialization import materialization_flags
from repro.core.plan_exec import ProgramLibrary
from repro.core.query import Query
from repro.core.variable_order import VariableOrder
from repro.core.view_tree import ViewNode, build_view_tree
from repro.data.database import Database
from repro.data.relation import Relation

__all__ = ["ShardedFIVMEngine", "stable_hash"]


def stable_hash(value) -> int:
    """A deterministic, process-independent hash for shard routing.

    Python's ``hash`` is salted per process for strings; routing must be
    replayable across runs (differential tests) and identical between a
    coordinator and its forked workers, so fragments are assigned by
    CRC-32 of the value's ``repr`` instead.

    The hasher must agree wherever dict-key equality does — tuple keys
    treat ``True``, ``1``, and ``1.0`` as the same key, so those are
    normalized to one representative before hashing (a bool/int/float
    split across shards would silently drop join matches).  Custom key
    types with equality wider than ``repr`` need a custom ``hasher=``.
    """
    if isinstance(value, bool):
        value = int(value)
    elif isinstance(value, float) and value.is_integer():
        value = int(value)
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


# ----------------------------------------------------------------------
# Wire format (process executor): relations as plain picklable triples
# ----------------------------------------------------------------------


def _plain_data(data) -> dict:
    """Materialize a relation's primary map as a plain dict (columnar
    relations expose a facade; the wire format and cross-shard merges
    want real dicts)."""
    return data if isinstance(data, dict) else dict(data)


def _pack_relation(relation: Relation) -> tuple:
    return (relation.name, relation.schema, _plain_data(relation._data))


def _unpack_relation(packed: tuple, ring) -> Relation:
    name, schema, data = packed
    out = Relation(name, schema, ring)
    out._data = data if isinstance(data, dict) else dict(data)
    return out


def _pack_factorized(update: FactorizedUpdate) -> tuple:
    return (
        update.relation,
        [[_pack_relation(factor) for factor in term] for term in update.terms],
    )


def _unpack_factorized(packed: tuple, ring) -> FactorizedUpdate:
    relation, terms = packed
    return FactorizedUpdate(
        relation,
        [[_unpack_relation(factor, ring) for factor in term] for term in terms],
        ring=ring,
    )


def _pack_request(request: tuple) -> tuple:
    kind = request[0]
    if kind == "update":
        return ("update", _pack_relation(request[1]))
    if kind == "factorized":
        return ("factorized", _pack_factorized(request[1]))
    if kind == "batch":
        packed: List[tuple] = []
        for item in request[1]:
            if isinstance(item, FactorizedUpdate):
                packed.append(("factorized", _pack_factorized(item)))
            else:
                packed.append(("update", _pack_relation(item)))
        return ("batch", packed)
    if kind == "init":
        return ("init", [_pack_relation(rel) for rel in request[1]])
    return request  # "view", "views", "sizes", "scalars", "stop"


def _unpack_request(msg: tuple, ring) -> tuple:
    """Wire message → live-object request (inverse of :func:`_pack_request`)."""
    kind = msg[0]
    if kind == "update":
        return ("update", _unpack_relation(msg[1], ring))
    if kind == "factorized":
        return ("factorized", _unpack_factorized(msg[1], ring))
    if kind == "batch":
        items: List[object] = []
        for tag, payload in msg[1]:
            if tag == "factorized":
                items.append(_unpack_factorized(payload, ring))
            else:
                items.append(_unpack_relation(payload, ring))
        return ("batch", items)
    if kind == "init":
        return ("init", [_unpack_relation(p, ring) for p in msg[1]])
    return msg  # "view", "views", "sizes", "scalars", "stop"


def _dispatch(engine: FIVMEngine, request: tuple):
    """Serve one live-object request against a shard engine.

    The single dispatcher behind both executors — the in-process one calls
    it directly, the worker loop after unwiring — so every operation routed
    here is the narrow, state-isolated engine surface (the shard facade)
    and the two executors cannot drift apart.  Replies are plain data
    (delta dicts, size maps) ready for either in-process merging or the
    pipe.
    """
    kind = request[0]
    if kind == "update":
        return engine.apply_update(request[1])._data
    if kind == "factorized":
        return engine.apply_factorized_update(request[1])._data
    if kind == "batch":
        return engine.apply_batch(request[1])._data
    if kind == "init":
        engine.initialize(Database(rel for rel in request[1]))
        return None
    if kind == "view":
        return _plain_data(engine.views[request[1]]._data)
    if kind == "views":
        return {
            name: _plain_data(view._data)
            for name, view in engine.views.items()
        }
    if kind == "sizes":
        return engine.view_sizes()
    if kind == "scalars":
        from repro.bench.memory import strategy_scalars

        return strategy_scalars(engine)
    if kind == "stop":
        return None
    raise ValueError(f"unknown shard request {kind!r}")


def _shard_worker(conn, factory: Callable[[], FIVMEngine]) -> None:
    """Worker loop: build the shard engine, then serve until ``stop``/EOF."""
    engine = factory()
    ring = engine.query.ring
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        try:
            reply = _dispatch(engine, _unpack_request(msg, ring))
        except BaseException as exc:  # report, keep serving
            conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
            continue
        conn.send(("ok", reply))
        if msg[0] == "stop":
            break
    conn.close()


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


class _InlineShards:
    """All shard engines in-process; requests are served synchronously.

    The deterministic executor the differential tests drive; engines share
    one :class:`ProgramLibrary`, so trigger code generation is paid once.
    """

    kind = "inline"

    def __init__(self, factories: Sequence[Callable[[], FIVMEngine]]):
        self.engines = [factory() for factory in factories]

    def run(self, requests: Dict[int, tuple]) -> Dict[int, object]:
        return {
            shard: _dispatch(self.engines[shard], request)
            for shard, request in requests.items()
        }

    def close(self) -> None:
        pass


class _ProcessShards:
    """One forked worker per shard, driven over pipes.

    Requests for an operation are sent to every involved worker first and
    the replies collected afterwards, so the workers compute in parallel
    while the coordinator blocks only on the slowest one.
    """

    kind = "process"

    def __init__(self, factories: Sequence[Callable[[], FIVMEngine]]):
        ctx = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for factory in factories:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker, args=(child_conn, factory), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def run(self, requests: Dict[int, tuple]) -> Dict[int, object]:
        for shard, request in requests.items():
            try:
                self._conns[shard].send(_pack_request(request))
            except (BrokenPipeError, OSError) as exc:
                raise RuntimeError(
                    f"shard worker {shard} is gone ({exc!r}); the sharded "
                    "engine cannot continue"
                ) from exc
        replies: Dict[int, object] = {}
        for shard in requests:
            try:
                tag, payload = self._conns[shard].recv()
            except EOFError as exc:
                raise RuntimeError(
                    f"shard worker {shard} died mid-request"
                ) from exc
            if tag == "error":
                raise RuntimeError(f"shard {shard} failed:\n{payload}")
            replies[shard] = payload
        return replies

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - hung worker guard
                proc.terminate()
                proc.join(timeout=1.0)
        self._conns = []
        self._procs = []


# ----------------------------------------------------------------------
# The sharded engine
# ----------------------------------------------------------------------


class ShardedFIVMEngine:
    """Maintains a join-aggregate query over ``S`` hash-partitioned shards.

    Drives ``S`` independent :class:`FIVMEngine` instances through the
    shard-safe facade (``apply_update`` / ``apply_batch`` /
    ``apply_factorized_update`` / ``initialize`` / ``views``), routing each
    delta to the shards its tuples hash into and ring-merging the per-shard
    root deltas and view fragments into the single-engine result (see the
    module docstring for the soundness argument).

    Parameters mirror :class:`FIVMEngine`, plus:

    shards:
        Number of partitions ``S`` (1 degenerates to a routed single
        engine, useful as the bench baseline).
    shard_key:
        The variable to hash-partition on.  Default: the root of the
        variable order — every leaf whose schema joins with the root
        variable is partitioned on that attribute; relations without it
        are replicated.  At least one relation must contain the key.
    executor:
        ``"inline"`` (in-process, deterministic, shared program library)
        or ``"process"`` (one forked worker per shard; falls back to
        inline on platforms without the ``fork`` start method).
    backend:
        Trigger backend inherited unchanged by every shard engine
        (``"interpreter"``, ``"source"``, or ``"kernels"``; overrides the
        legacy ``compiled`` flag — see :class:`FIVMEngine`).
    storage:
        View storage engine inherited by every shard engine (``"dict"``
        or ``"columnar"`` — see :class:`FIVMEngine`).  Partitioned
        deltas cross the wire as plain dicts either way.
    hasher:
        Value-level hash used for routing; must be deterministic across
        processes (default :func:`stable_hash`).
    """

    def __init__(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        shards: int = 4,
        shard_key: Optional[str] = None,
        updatable: Optional[Iterable[str]] = None,
        db: Optional[Database] = None,
        executor: str = "inline",
        collapse_chains: bool = True,
        materialize: str = "auto",
        group_aware: bool = True,
        compiled: bool = True,
        backend: Optional[str] = None,
        storage: Optional[str] = None,
        hasher: Callable[[object], int] = stable_hash,
    ):
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        self.query = query
        self.order = order or VariableOrder.auto(query)
        self.shards = int(shards)
        self.updatable = (
            frozenset(updatable) if updatable is not None
            else frozenset(query.relations)
        )
        root_var = self.order.roots[0].var
        self.shard_key = shard_key if shard_key is not None else root_var
        if self.shard_key not in set(query.variables):
            raise ValueError(
                f"shard key {self.shard_key!r} is not a query variable"
            )
        self.partitioned = frozenset(
            rel for rel, schema in query.relations.items()
            if self.shard_key in schema
        )
        if not self.partitioned:
            raise ValueError(
                f"no relation contains shard key {self.shard_key!r}; "
                "sharding would replicate everything"
            )
        self.replicated = frozenset(query.relations) - self.partitioned
        self._hasher = hasher

        # Stateless reference tree: the coordinator needs the tree *shape*
        # (leaf schemas for routing, per-node relation sets for the merge
        # rule) but holds no views — state lives in the shards.
        self.tree = build_view_tree(
            query, self.order, collapse_chains=collapse_chains
        )
        if materialize == "all":
            self.flags = {node.name: True for node in self.tree.nodes}
        elif materialize == "auto":
            self.flags = materialization_flags(self.tree, self.updatable)
        else:
            raise ValueError("materialize must be 'auto' or 'all'")
        self._nodes: Dict[str, ViewNode] = {
            node.name: node for node in self.tree.nodes
        }
        #: Views whose subtree touches a partitioned relation: global
        #: contents are the ⊎ of the per-shard fragments.  The rest sit
        #: over purely replicated subtrees, are identical in every shard,
        #: and are read from shard 0 alone.
        self._summed = frozenset(
            node.name
            for node in self.tree.nodes
            if self.flags[node.name] and (node.relations & self.partitioned)
        )

        if executor == "process" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            executor = "inline"
        if executor not in ("inline", "process"):
            raise ValueError("executor must be 'inline' or 'process'")
        library = ProgramLibrary() if executor == "inline" else None

        def factory() -> FIVMEngine:
            return FIVMEngine(
                query,
                order=self.order,
                updatable=self.updatable,
                collapse_chains=collapse_chains,
                materialize=materialize,
                group_aware=group_aware,
                compiled=compiled,
                backend=backend,
                storage=storage,
                program_library=library,
            )

        #: The per-shard engines inherit the trigger backend unchanged —
        #: the backend policy is node-local, so it composes with sharding.
        #: Resolved (and validated) here, before any worker forks, through
        #: the same helper the shard engines themselves use.
        self.backend = resolve_backend(backend, compiled)
        #: Per-shard view storage ("dict" or "columnar"), validated up
        #: front like the backend; the coordinator itself holds no views.
        self.storage = resolve_storage(storage)

        factories = [factory] * self.shards
        if executor == "inline":
            self._exec = _InlineShards(factories)
        else:
            self._exec = _ProcessShards(factories)
        self.executor = self._exec.kind
        if db is not None:
            self.initialize(db)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _split_listing(self, delta: Relation) -> Dict[int, Relation]:
        """Per-shard fragments of a listing delta (empty fragments elided);
        replicated relations broadcast the whole delta."""
        if delta.name in self.replicated:
            return {shard: delta for shard in range(self.shards)}
        fragments = delta.partition(self.shard_key, self.shards, self._hasher)
        return {
            shard: fragment
            for shard, fragment in enumerate(fragments)
            if not fragment.is_empty
        }

    def _split_factorized(
        self, update: FactorizedUpdate
    ) -> Dict[int, FactorizedUpdate]:
        """Route a factorized delta: within each rank-1 term, the factor
        carrying the shard key is hash-partitioned and the other factors
        ride along unchanged, so terms stay in product form per shard."""
        rel = update.relation
        if rel in self.replicated:
            return {shard: update for shard in range(self.shards)}
        per_shard: List[List[List[Relation]]] = [[] for _ in range(self.shards)]
        for term in update.terms:
            pivot = next(
                i for i, factor in enumerate(term)
                if self.shard_key in factor.schema
            )
            fragments = term[pivot].partition(
                self.shard_key, self.shards, self._hasher
            )
            for shard, fragment in enumerate(fragments):
                if fragment.is_empty:
                    continue
                routed = list(term)
                routed[pivot] = fragment
                per_shard[shard].append(routed)
        return {
            shard: FactorizedUpdate(rel, terms, ring=self.query.ring)
            for shard, terms in enumerate(per_shard)
            if terms
        }

    def _zero_root(self) -> Relation:
        root = self.tree.root
        return Relation(root.name, root.keys, self.query.ring)

    def _merge_data(self, total: Relation, data: dict) -> None:
        fragment = Relation(total.name, total.schema, self.query.ring)
        fragment._data = data
        total.absorb_bulk(fragment)

    # ------------------------------------------------------------------
    # Update triggers (the same surface as FIVMEngine)
    # ------------------------------------------------------------------

    def apply_update(self, delta: Relation) -> Relation:
        """Route ``δR`` to its shards; returns the ring-merged root delta
        (equal, key for key, to the single-engine root delta)."""
        check_delta(self.tree, self.updatable, delta)
        total = self._zero_root()
        if delta.is_empty:
            return total
        requests = {
            shard: ("update", fragment)
            for shard, fragment in self._split_listing(delta).items()
        }
        for data in self._exec.run(requests).values():
            self._merge_data(total, data)
        return total

    def apply_factorized_update(self, update: FactorizedUpdate) -> Relation:
        """Route a factorized delta in product form (see
        :meth:`_split_factorized`); returns the merged root delta."""
        if not self.query.ring.is_commutative:
            raise ValueError(
                "factorized updates require a commutative payload ring"
            )
        check_factorized(self.tree, self.updatable, update)
        total = self._zero_root()
        if not update.terms:
            return total
        requests = {
            shard: ("factorized", routed)
            for shard, routed in self._split_factorized(update).items()
        }
        for data in self._exec.run(requests).values():
            self._merge_data(total, data)
        return total

    def apply_batch(self, deltas: Iterable) -> Relation:
        """The batched multi-relation trigger, sharded: every item is
        routed, each shard coalesces and path-schedules its own sub-batch
        (the engines share the planner hook), and the per-shard totals are
        ring-merged.  Items are validated up front so a malformed item
        cannot leave the shards partially updated."""
        items = list(deltas)
        for item in items:
            if isinstance(item, FactorizedUpdate):
                if not self.query.ring.is_commutative:
                    raise ValueError(
                        "factorized updates require a commutative payload "
                        "ring"
                    )
                check_factorized(self.tree, self.updatable, item)
            else:
                check_delta(self.tree, self.updatable, item)
        per_shard: Dict[int, List[object]] = {}
        for item in items:
            if isinstance(item, FactorizedUpdate):
                routed = self._split_factorized(item)
            else:
                if item.is_empty:
                    continue
                routed = self._split_listing(item)
            for shard, part in routed.items():
                per_shard.setdefault(shard, []).append(part)
        total = self._zero_root()
        requests = {
            shard: ("batch", parts) for shard, parts in per_shard.items()
        }
        for data in self._exec.run(requests).values():
            self._merge_data(total, data)
        return total

    def apply_decomposed_update(self, delta: Relation) -> Relation:
        """Decompose a listing delta into factors, then route factored
        (mirrors :meth:`FIVMEngine.apply_decomposed_update`)."""
        if not self.query.ring.is_commutative or delta.is_empty:
            return self.apply_update(delta)
        update = decompose(delta)
        if len(update.terms[0]) <= 1:
            return self.apply_update(delta)
        return self.apply_factorized_update(update)

    def initialize(self, db: Database) -> None:
        """Partition a database snapshot and (re)load every shard."""
        shard_attrs = {
            rel: (self.shard_key if rel in self.partitioned else None)
            for rel in self.query.relations
        }
        shard_dbs = db.partition(shard_attrs, self.shards, self._hasher)
        self._exec.run({
            shard: ("init", list(shard_dbs[shard]))
            for shard in range(self.shards)
        })

    # ------------------------------------------------------------------
    # Merged state access
    # ------------------------------------------------------------------

    def result(self) -> Relation:
        """The maintained query result, ring-merged across shards."""
        return self.contents(self.tree.root.name)

    def contents(self, view_name: str) -> Relation:
        """Global contents of a materialized view.

        Partition-touching views merge their per-shard fragments with
        ``⊎``; purely replicated views are read from shard 0 (every shard
        holds an identical copy).
        """
        node = self._nodes.get(view_name)
        if node is None or not self.flags[view_name]:
            raise KeyError(f"no materialized view {view_name!r}")
        out = Relation(view_name, node.keys, self.query.ring)
        if view_name in self._summed:
            requests = {
                shard: ("view", view_name) for shard in range(self.shards)
            }
        else:
            requests = {0: ("view", view_name)}
        for data in self._exec.run(requests).values():
            self._merge_data(out, data)
        return out

    def merged_views(self) -> Dict[str, Relation]:
        """All materialized views, merged (one round-trip per shard)."""
        replies = self._exec.run({
            shard: ("views",) for shard in range(self.shards)
        })
        out: Dict[str, Relation] = {}
        for name in self.materialized_names():
            node = self._nodes[name]
            merged = Relation(name, node.keys, self.query.ring)
            sources = (
                range(self.shards) if name in self._summed else (0,)
            )
            for shard in sources:
                self._merge_data(merged, replies[shard][name])
            out[name] = merged
        return out

    def materialized_names(self) -> Tuple[str, ...]:
        return tuple(sorted(
            name for name, flagged in self.flags.items() if flagged
        ))

    def view_sizes(self) -> Dict[str, int]:
        """Physical keys per view, summed across shards (replicated views
        count once per shard — that is what each shard actually stores)."""
        replies = self._exec.run({
            shard: ("sizes",) for shard in range(self.shards)
        })
        sizes: Dict[str, int] = {}
        for reply in replies.values():
            for name, count in reply.items():
                sizes[name] = sizes.get(name, 0) + count
        return sizes

    def total_keys(self) -> int:
        return sum(self.view_sizes().values())

    def logical_scalars(self) -> int:
        """Resident logical scalars across all shards (the sharded hook
        for :func:`repro.bench.memory.strategy_scalars`)."""
        replies = self._exec.run({
            shard: ("scalars",) for shard in range(self.shards)
        })
        return sum(replies.values())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down worker processes (no-op for the inline executor)."""
        self._exec.close()

    def __enter__(self) -> "ShardedFIVMEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
