"""Hash-partitioned parallel F-IVM: sharded engines, ring-merged roots.

The view trees of F-IVM are *ring-homomorphic*: every view is a
join-aggregate whose value is multilinear in the base relations, so
partitioning the domain of one join variable splits the query into
independent summands — ``Q(D) = ⊎_s Q(D_s)`` — that per-shard engines can
maintain in isolation and the coordinator can recombine with plain payload
addition (``Ring.add``, the same decomposability that conditioning work on
probabilistic databases exploits).  Concretely:

* a **shard variable** ``X`` is fixed (default: the root of the variable
  order — the paper keeps join variables on top, so the root is shared by
  the heaviest relations);
* every relation whose schema contains ``X`` is **hash-partitioned** on it
  (fragment ``s`` holds the tuples with ``hash(x) % S == s``); relations
  without ``X`` are **replicated** to all shards (the broadcast side of a
  distributed hash join);
* each shard runs a full, unmodified :class:`~repro.core.engine.FIVMEngine`
  over its fragment database.  Every full-join assignment binds ``X`` to
  one value and therefore contributes to exactly one shard, so for every
  view whose subtree touches a partitioned relation the global contents are
  the ``⊎`` of the per-shard fragments, and the global root delta of any
  update is the ``⊎`` of the per-shard root deltas.  Views over purely
  replicated subtrees are identical in every shard and are read once.

Soundness needs only ``Ring.add`` commutativity — a ring axiom — so every
payload ring works, including the non-commutative matrix ring (payload
*products* stay inside one shard, in child order).  Cyclic queries whose
indicator projections observe a partitioned relation would break the
multilinearity argument; :class:`ShardedFIVMEngine` builds plain
(unadorned) view trees, so the situation cannot arise.

Executors
---------

``executor="inline"`` (default) runs the ``S`` engines in-process — the
deterministic mode the differential tests drive, and the mode in which all
shards share one :class:`~repro.core.plan_exec.ProgramLibrary`, so trigger
code is generated once and only re-bound per shard.  ``executor="process"``
forks one worker per shard (requires the ``fork`` start method; silently
falls back to inline elsewhere): deltas are routed in the coordinator,
shipped as plain ``(name, schema, {key: payload})`` triples, and the
per-shard root deltas come back the same way — true parallel maintenance
on multi-core hosts, measured by ``benchmarks/test_fig_shard_scaling.py``.

Fault tolerance (process executor)
----------------------------------

Forked workers die and hang; the coordinator survives both.  Every
request crosses the pipe under a coordinator-assigned **sequence
number**, every state-mutating request is journaled (packed, in the
:mod:`repro.core.checkpoint` wire format) before it is sent, and workers
ack the sequence number they applied.  Replies are awaited under a
deadline (``recv_timeout`` / ``FIVM_SHARD_TIMEOUT``); a missed deadline,
a dead pipe, or an injected fault hands the shard to the **supervisor**,
which forks a fresh worker and rebuilds its state as shard snapshot +
journal-tail replay — the same cheap incremental path the paper uses for
maintenance, here used for recovery.  The restarted worker's state is a
fresh lineage (snapshot + replay), and a live worker deduplicates
retried sequence numbers, so each update group lands exactly once even
when the crash hit the applied-but-not-acked window.  Periodic
checkpoints (``checkpoint_every``) snapshot each worker and truncate its
journal, bounding both coordinator memory and replay length.
Deterministic failures are planted with :class:`repro.core.faults.
FaultPlan` via the ``faults=`` knob; ``tests/core/test_crash_recovery.py``
drives this as a differential oracle against a fault-free engine.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
import zlib
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.checkpoint import (
    UpdateJournal,
    pack_item,
    pack_relation,
    plain_data as _plain_data,
    restore_snapshot,
    take_snapshot,
    unpack_item,
    unpack_relation as _unpack_relation,
)
from repro.core.engine import (
    FIVMEngine,
    check_delta,
    check_factorized,
    resolve_backend,
    resolve_storage,
)
from repro.core.factorized_update import FactorizedUpdate, decompose
from repro.core.faults import InjectedFault
from repro.core.materialization import materialization_flags
from repro.core.plan_exec import ProgramLibrary
from repro.core.query import Query
from repro.core.variable_order import VariableOrder
from repro.core.view_tree import ViewNode, build_view_tree
from repro.data.database import Database
from repro.data.relation import Relation

__all__ = ["ShardedFIVMEngine", "stable_hash"]


def stable_hash(value) -> int:
    """A deterministic, process-independent hash for shard routing.

    Python's ``hash`` is salted per process for strings; routing must be
    replayable across runs (differential tests) and identical between a
    coordinator and its forked workers, so fragments are assigned by
    CRC-32 of the value's ``repr`` instead.

    The hasher must agree wherever dict-key equality does — tuple keys
    treat ``True``, ``1``, and ``1.0`` as the same key, so those are
    normalized to one representative before hashing (a bool/int/float
    split across shards would silently drop join matches).  Custom key
    types with equality wider than ``repr`` need a custom ``hasher=``.
    """
    if isinstance(value, bool):
        value = int(value)
    elif isinstance(value, float) and value.is_integer():
        value = int(value)
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


# ----------------------------------------------------------------------
# Wire format (process executor): relations as plain picklable triples,
# shared with the journal/snapshot format of repro.core.checkpoint
# ----------------------------------------------------------------------

#: Request kinds the coordinator journals for recovery replay (the
#: state-mutating shard-facade surface).  ``restore`` also mutates worker
#: state but is itself the recovery mechanism and is never journaled.
_MUTATING = frozenset({"update", "factorized", "batch", "init"})


def _pack_request(request: tuple, copy: bool = False) -> tuple:
    """Live-object request → picklable wire message.  ``copy=True``
    detaches the payload dicts (journaled requests outlive the deltas
    they recorded)."""
    kind = request[0]
    if kind in ("update", "factorized"):
        return pack_item(request[1], copy=copy)
    if kind == "batch":
        return ("batch", [pack_item(item, copy=copy) for item in request[1]])
    if kind == "init":
        return ("init", [pack_relation(rel, copy=copy) for rel in request[1]])
    return request  # "view", "views", "sizes", "scalars", "snapshot", "stop"


def _unpack_request(msg: tuple, ring) -> tuple:
    """Wire message → live-object request (inverse of :func:`_pack_request`)."""
    kind = msg[0]
    if kind in ("update", "factorized"):
        return (kind, unpack_item(msg, ring))
    if kind == "batch":
        return ("batch", [unpack_item(p, ring) for p in msg[1]])
    if kind == "init":
        return ("init", [_unpack_relation(p, ring) for p in msg[1]])
    return msg  # "view", "views", "sizes", "scalars", "snapshot", "restore", "stop"


def _dispatch(engine: FIVMEngine, request: tuple):
    """Serve one live-object request against a shard engine.

    The single dispatcher behind both executors — the in-process one calls
    it directly, the worker loop after unwiring — so every operation routed
    here is the narrow, state-isolated engine surface (the shard facade)
    and the two executors cannot drift apart.  Replies are plain data
    (delta dicts, size maps) ready for either in-process merging or the
    pipe.
    """
    kind = request[0]
    if kind == "update":
        return engine.apply_update(request[1])._data
    if kind == "factorized":
        return engine.apply_factorized_update(request[1])._data
    if kind == "batch":
        return engine.apply_batch(request[1])._data
    if kind == "init":
        engine.initialize(Database(rel for rel in request[1]))
        return None
    if kind == "view":
        return _plain_data(engine.views[request[1]]._data)
    if kind == "views":
        return {
            name: _plain_data(view._data)
            for name, view in engine.views.items()
        }
    if kind == "sizes":
        return engine.view_sizes()
    if kind == "scalars":
        from repro.bench.memory import strategy_scalars

        return strategy_scalars(engine)
    if kind == "snapshot":
        return take_snapshot(engine)
    if kind == "restore":
        restore_snapshot(engine, request[1])
        return None
    if kind == "stop":
        return None
    raise ValueError(f"unknown shard request {kind!r}")


def _shard_worker(conn, factory: Callable[[], FIVMEngine], faults=None) -> None:
    """Worker loop: build the shard engine, then serve until ``stop``/EOF.

    Messages arrive as ``(seq, request)`` and are answered with
    ``(tag, seq, payload)`` where ``tag`` is ``"ok"``, ``"error"`` (an
    application error; the worker keeps serving), or ``"fault"`` (an
    injected environmental error; the worker dies so the supervisor
    recovers it like the transient failure it models).  The worker acks
    the last *applied* sequence number implicitly: a retried mutating
    request with ``seq <= last_applied`` is acked from the reply cache
    without re-applying — the exactly-once half of at-least-once
    delivery.

    ``faults`` is an optional :class:`repro.core.faults.FaultPlan` (or a
    zero-argument factory of one); its ``crash`` action is forced to
    ``os._exit`` here, because a worker crash *is* a process death.
    """
    plan = faults() if callable(faults) else faults
    if plan is not None:
        plan.crash_action = "exit"
    engine = factory()
    ring = engine.query.ring
    last_applied = 0
    cached_reply = (0, None)  # (seq, payload) of the last applied group
    while True:
        try:
            seq, msg = conn.recv()
        except EOFError:
            break
        kind = msg[0]
        mutating = kind in _MUTATING or kind == "restore"
        try:
            if plan is not None:
                plan.fire("worker.recv")
            if mutating and seq <= last_applied:
                payload = cached_reply[1] if cached_reply[0] == seq else None
                reply = ("ok", seq, payload)
            else:
                if plan is not None and mutating:
                    plan.fire("worker.pre_apply")
                result = _dispatch(engine, _unpack_request(msg, ring))
                if plan is not None and mutating:
                    plan.fire("worker.post_apply")
                if mutating:
                    last_applied = seq
                    cached_reply = (seq, result)
                reply = ("ok", seq, result)
            if plan is not None:
                plan.fire("worker.send")
        except InjectedFault as exc:
            # A planted transient error: report it and die, so the
            # supervisor heals this shard exactly as for a crash.
            try:
                conn.send(("fault", seq, repr(exc)))
            finally:
                conn.close()
            return
        except BaseException as exc:  # application error: report, keep serving
            conn.send(("error", seq, f"{exc!r}\n{traceback.format_exc()}"))
            continue
        conn.send(reply)
        if kind == "stop":
            break
    conn.close()


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


class _InlineShards:
    """All shard engines in-process; requests are served synchronously.

    The deterministic executor the differential tests drive; engines share
    one :class:`ProgramLibrary`, so trigger code generation is paid once.
    """

    kind = "inline"

    def __init__(self, factories: Sequence[Callable[[], FIVMEngine]]):
        self.engines = [factory() for factory in factories]

    def run(self, requests: Dict[int, tuple]) -> Dict[int, object]:
        """Dispatch each request to its shard engine, in-process."""
        return {
            shard: _dispatch(self.engines[shard], request)
            for shard, request in requests.items()
        }

    def close(self) -> None:
        """Nothing to release for in-process shard engines."""
        pass


#: Default reply deadline (seconds) for process-shard workers; override
#: per engine with ``recv_timeout=`` or globally with the
#: ``FIVM_SHARD_TIMEOUT`` environment variable.  ``<= 0`` disables the
#: deadline (wait forever — the pre-supervision behaviour).
DEFAULT_SHARD_TIMEOUT = 30.0


def _shard_timeout() -> Optional[float]:
    raw = os.environ.get("FIVM_SHARD_TIMEOUT", "").strip()
    timeout = float(raw) if raw else DEFAULT_SHARD_TIMEOUT
    return timeout if timeout > 0 else None


class _ProcessShards:
    """One forked worker per shard, driven over pipes, supervised.

    Requests for an operation are sent to every involved worker first and
    the replies collected afterwards, so the workers compute in parallel
    while the coordinator blocks only on the slowest one.

    The coordinator keeps, per shard, everything recovery needs: a
    :class:`UpdateJournal` of the packed mutating requests since the last
    checkpoint, the latest checkpoint snapshot (taken in the worker,
    shipped back, truncating the journal), and the last applied sequence
    number.  When a worker dies (EOF/broken pipe), hangs past
    ``recv_timeout``, or reports an injected fault, :meth:`_recover`
    terminates it, forks a fresh worker *without* the fault plan (the
    environmental event already happened; recovery must not re-plant
    it), restores the shard snapshot, replays the journal tail, and
    returns the in-flight request's reply — callers never see the
    failure.  With ``supervise=False`` the same detection paths raise an
    error naming the failed shard instead.
    """

    kind = "process"

    def __init__(
        self,
        factories: Sequence[Callable[[], FIVMEngine]],
        recv_timeout: Optional[float] = None,
        supervise: bool = True,
        checkpoint_every: Optional[int] = 64,
        max_restarts: int = 3,
        faults=None,
    ):
        if recv_timeout is None:
            recv_timeout = _shard_timeout()
        elif recv_timeout <= 0:
            recv_timeout = None
        self.recv_timeout = recv_timeout
        self.supervise = supervise
        self.checkpoint_every = checkpoint_every
        self.max_restarts = max_restarts
        self._faults = faults
        self._factories = list(factories)
        self._ctx = multiprocessing.get_context("fork")
        count = len(self._factories)
        self._conns: List[object] = [None] * count
        self._procs: List[object] = [None] * count
        self._seq = 0
        self._journals = [UpdateJournal() for _ in range(count)]
        self._snapshots: List[Optional[Tuple[int, dict]]] = [None] * count
        self._applied = [0] * count
        #: Per-shard supervisor restart counts (the liveness telemetry
        #: tests and operators read).
        self.restarts = [0] * count
        for shard in range(count):
            self._spawn(shard, self._fault_arg(shard))

    # -- lifecycle of one worker ----------------------------------------

    def _fault_arg(self, shard: int):
        if isinstance(self._faults, dict):
            return self._faults.get(shard)
        return self._faults

    def _spawn(self, shard: int, faults) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(child_conn, self._factories[shard], faults),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[shard] = parent_conn
        self._procs[shard] = proc

    def _reap(self, shard: int) -> None:
        """Tear down a failed worker (best effort; it may already be dead)."""
        try:
            self._conns[shard].close()
        except OSError:  # pragma: no cover - already closed
            pass
        proc = self._procs[shard]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=2.0)

    # -- the request protocol -------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def run(self, requests: Dict[int, tuple]) -> Dict[int, object]:
        """Send each request to its worker and gather replies, restarting
        and replaying crashed workers under the supervision policy."""
        pending: Dict[int, Tuple[int, tuple]] = {}
        replies: Dict[int, object] = {}
        for shard, request in requests.items():
            packed = _pack_request(request, copy=True)
            seq = self._next_seq()
            if packed[0] == "init":
                # the journal describes updates since an initialize,
                # never across one
                self._journals[shard].clear()
                self._snapshots[shard] = None
            if packed[0] in _MUTATING:
                self._journals[shard].append(seq, packed)
            try:
                self._conns[shard].send((seq, packed))
                pending[shard] = (seq, packed)
            except (BrokenPipeError, OSError) as exc:
                replies[shard] = self._recover(
                    shard, seq, packed, reason=f"send failed ({exc!r})"
                )
        for shard, (seq, packed) in pending.items():
            replies[shard] = self._await_reply(shard, seq, packed)
        for shard in requests:
            self._maybe_checkpoint(shard)
        return replies

    def _await_reply(self, shard: int, seq: int, packed: tuple):
        conn = self._conns[shard]
        timeout = self.recv_timeout
        if timeout is not None and not conn.poll(timeout):
            return self._recover(
                shard, seq, packed,
                reason=(
                    f"no reply within {timeout}s — dead or hung worker; "
                    "raise FIVM_SHARD_TIMEOUT if it is merely slow"
                ),
            )
        try:
            tag, rseq, payload = conn.recv()
        except (EOFError, OSError) as exc:
            return self._recover(
                shard, seq, packed, reason=f"worker died mid-request ({exc!r})"
            )
        if tag == "fault":
            return self._recover(
                shard, seq, packed, reason=f"injected fault: {payload}"
            )
        if tag == "error":
            raise RuntimeError(f"shard {shard} failed:\n{payload}")
        if packed[0] in _MUTATING:
            self._applied[shard] = max(self._applied[shard], seq)
        return payload

    # -- supervision ----------------------------------------------------

    def _recover(self, shard: int, seq: int, packed: tuple, reason: str):
        """Heal ``shard`` after a failure and answer its in-flight request.

        Fresh worker, restored snapshot, journal-tail replay; the
        in-flight request is either part of the tail (mutating — its
        replay reply is the answer) or re-sent afterwards (read-only).
        """
        if not self.supervise:
            raise RuntimeError(
                f"shard worker {shard} failed ({reason}); supervision is "
                "disabled, so the sharded engine cannot continue"
            )
        self.restarts[shard] += 1
        if self.restarts[shard] > self.max_restarts:
            raise RuntimeError(
                f"shard worker {shard} failed ({reason}) after exhausting "
                f"its restart budget ({self.max_restarts})"
            )
        self._reap(shard)
        # The restarted worker runs fault-free: the environmental event
        # happened; deterministic replay must not re-plant it.
        self._spawn(shard, None)
        base_seq = 0
        if self._snapshots[shard] is not None:
            base_seq, snap = self._snapshots[shard]
            tag, payload = self._replay_exchange(
                shard, base_seq, ("restore", snap)
            )
            if tag != "ok":
                raise RuntimeError(
                    f"shard worker {shard} failed to restore its "
                    f"snapshot:\n{payload}"
                )
        result = None
        answered = False
        for jseq, jpacked in self._journals[shard].tail(base_seq):
            tag, payload = self._replay_exchange(shard, jseq, jpacked)
            if tag == "error":
                if jseq == seq:
                    # the in-flight group itself fails; surface it exactly
                    # as the original send would have
                    raise RuntimeError(f"shard {shard} failed:\n{payload}")
                # this group failed identically when first applied — the
                # state evolution matches; keep replaying
                continue
            self._applied[shard] = max(self._applied[shard], jseq)
            if jseq == seq:
                answered = True
                result = payload
        if not answered:
            # the in-flight request was read-only (view/sizes/snapshot/…)
            tag, payload = self._replay_exchange(shard, seq, packed)
            if tag == "error":
                raise RuntimeError(f"shard {shard} failed:\n{payload}")
            result = payload
        return result

    def _replay_exchange(self, shard: int, seq: int, packed: tuple):
        """One request to a freshly restarted worker.  Failures here mean
        recovery itself failed and are fatal (the worker is fault-free,
        so they indicate a real bug or a dead host)."""
        conn = self._conns[shard]
        try:
            conn.send((seq, packed))
        except (BrokenPipeError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {shard} died again during recovery ({exc!r})"
            ) from exc
        timeout = self.recv_timeout
        if timeout is not None and not conn.poll(timeout):
            raise RuntimeError(
                f"shard worker {shard} hung during recovery replay "
                f"(no reply within {timeout}s)"
            )
        try:
            tag, _rseq, payload = conn.recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {shard} died again during recovery"
            ) from exc
        return tag, payload

    # -- checkpointing --------------------------------------------------

    def _maybe_checkpoint(self, shard: int) -> None:
        """Snapshot ``shard``'s worker once its journal is long enough,
        and truncate the journal through the snapshot's sequence number."""
        if self.checkpoint_every is None:
            return
        if len(self._journals[shard]) < self.checkpoint_every:
            return
        seq = self._next_seq()
        packed = ("snapshot",)
        try:
            self._conns[shard].send((seq, packed))
            snap = self._await_reply(shard, seq, packed)
        except (BrokenPipeError, OSError) as exc:
            snap = self._recover(
                shard, seq, packed, reason=f"send failed ({exc!r})"
            )
        # The worker is quiescent between requests, so the snapshot
        # reflects exactly the groups applied so far.
        self._snapshots[shard] = (self._applied[shard], snap)
        self._journals[shard].truncate_through(self._applied[shard])

    def close(self) -> None:
        """Stop every worker process and join it."""
        for conn in self._conns:
            try:
                conn.send((0, ("stop",)))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - hung worker guard
                proc.terminate()
                proc.join(timeout=1.0)
        self._conns = []
        self._procs = []


# ----------------------------------------------------------------------
# The sharded engine
# ----------------------------------------------------------------------


class ShardedFIVMEngine:
    """Maintains a join-aggregate query over ``S`` hash-partitioned shards.

    Drives ``S`` independent :class:`FIVMEngine` instances through the
    shard-safe facade (``apply_update`` / ``apply_batch`` /
    ``apply_factorized_update`` / ``initialize`` / ``views``), routing each
    delta to the shards its tuples hash into and ring-merging the per-shard
    root deltas and view fragments into the single-engine result (see the
    module docstring for the soundness argument).

    Parameters mirror :class:`FIVMEngine`, plus:

    shards:
        Number of partitions ``S`` (1 degenerates to a routed single
        engine, useful as the bench baseline).
    shard_key:
        The variable to hash-partition on.  Default: the root of the
        variable order — every leaf whose schema joins with the root
        variable is partitioned on that attribute; relations without it
        are replicated.  At least one relation must contain the key.
    executor:
        ``"inline"`` (in-process, deterministic, shared program library)
        or ``"process"`` (one forked worker per shard; falls back to
        inline on platforms without the ``fork`` start method).
    recv_timeout:
        Process executor only: seconds to wait for a worker's reply
        before declaring it hung (default: ``FIVM_SHARD_TIMEOUT`` env
        var, else 30; ``<= 0`` waits forever).
    supervise:
        Process executor only: heal dead/hung workers by restarting
        them from their shard snapshot + journal tail (default).  With
        ``False``, a worker failure raises an error naming the shard.
    checkpoint_every:
        Process executor only: snapshot a worker and truncate its
        journal once that many mutating requests have accumulated
        (``None`` disables checkpoints; recovery then replays the whole
        journal).
    max_restarts:
        Process executor only: per-shard restart budget before the
        supervisor gives up.
    faults:
        Process executor only, test-surface: a
        :class:`repro.core.faults.FaultPlan` (or zero-argument factory,
        or ``{shard: plan}`` dict) handed to the forked workers —
        deterministic crash/hang/error injection for the crash-recovery
        oracle.  Restarted workers never inherit it.
    backend:
        Trigger backend inherited unchanged by every shard engine
        (``"interpreter"``, ``"source"``, or ``"kernels"``; overrides the
        legacy ``compiled`` flag — see :class:`FIVMEngine`).
    storage:
        View storage engine inherited by every shard engine (``"dict"``
        or ``"columnar"`` — see :class:`FIVMEngine`).  Partitioned
        deltas cross the wire as plain dicts either way.
    hasher:
        Value-level hash used for routing; must be deterministic across
        processes (default :func:`stable_hash`).
    """

    def __init__(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        shards: int = 4,
        shard_key: Optional[str] = None,
        updatable: Optional[Iterable[str]] = None,
        db: Optional[Database] = None,
        executor: str = "inline",
        collapse_chains: bool = True,
        materialize: str = "auto",
        group_aware: bool = True,
        compiled: bool = True,
        backend: Optional[str] = None,
        storage: Optional[str] = None,
        hasher: Callable[[object], int] = stable_hash,
        recv_timeout: Optional[float] = None,
        supervise: bool = True,
        checkpoint_every: Optional[int] = 64,
        max_restarts: int = 3,
        faults=None,
    ):
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        self.query = query
        self.order = order or VariableOrder.auto(query)
        self.shards = int(shards)
        self.updatable = (
            frozenset(updatable) if updatable is not None
            else frozenset(query.relations)
        )
        root_var = self.order.roots[0].var
        self.shard_key = shard_key if shard_key is not None else root_var
        if self.shard_key not in set(query.variables):
            raise ValueError(
                f"shard key {self.shard_key!r} is not a query variable"
            )
        self.partitioned = frozenset(
            rel for rel, schema in query.relations.items()
            if self.shard_key in schema
        )
        if not self.partitioned:
            raise ValueError(
                f"no relation contains shard key {self.shard_key!r}; "
                "sharding would replicate everything"
            )
        self.replicated = frozenset(query.relations) - self.partitioned
        self._hasher = hasher

        # Stateless reference tree: the coordinator needs the tree *shape*
        # (leaf schemas for routing, per-node relation sets for the merge
        # rule) but holds no views — state lives in the shards.
        self.tree = build_view_tree(
            query, self.order, collapse_chains=collapse_chains
        )
        if materialize == "all":
            self.flags = {node.name: True for node in self.tree.nodes}
        elif materialize == "auto":
            self.flags = materialization_flags(self.tree, self.updatable)
        else:
            raise ValueError("materialize must be 'auto' or 'all'")
        self._nodes: Dict[str, ViewNode] = {
            node.name: node for node in self.tree.nodes
        }
        #: Views whose subtree touches a partitioned relation: global
        #: contents are the ⊎ of the per-shard fragments.  The rest sit
        #: over purely replicated subtrees, are identical in every shard,
        #: and are read from shard 0 alone.
        self._summed = frozenset(
            node.name
            for node in self.tree.nodes
            if self.flags[node.name] and (node.relations & self.partitioned)
        )

        if executor == "process" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            executor = "inline"
        if executor not in ("inline", "process"):
            raise ValueError("executor must be 'inline' or 'process'")
        library = ProgramLibrary() if executor == "inline" else None

        def factory() -> FIVMEngine:
            """One shard-local engine of the shared configuration."""
            return FIVMEngine(
                query,
                order=self.order,
                updatable=self.updatable,
                collapse_chains=collapse_chains,
                materialize=materialize,
                group_aware=group_aware,
                compiled=compiled,
                backend=backend,
                storage=storage,
                program_library=library,
            )

        #: The per-shard engines inherit the trigger backend unchanged —
        #: the backend policy is node-local, so it composes with sharding.
        #: Resolved (and validated) here, before any worker forks, through
        #: the same helper the shard engines themselves use.
        self.backend = resolve_backend(backend, compiled)
        #: Per-shard view storage ("dict" or "columnar"), validated up
        #: front like the backend; the coordinator itself holds no views.
        self.storage = resolve_storage(storage)

        factories = [factory] * self.shards
        if executor == "inline":
            self._exec = _InlineShards(factories)
        else:
            self._exec = _ProcessShards(
                factories,
                recv_timeout=recv_timeout,
                supervise=supervise,
                checkpoint_every=checkpoint_every,
                max_restarts=max_restarts,
                faults=faults,
            )
        self.executor = self._exec.kind
        if db is not None:
            self.initialize(db)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _split_listing(self, delta: Relation) -> Dict[int, Relation]:
        """Per-shard fragments of a listing delta (empty fragments elided);
        replicated relations broadcast the whole delta."""
        if delta.name in self.replicated:
            return {shard: delta for shard in range(self.shards)}
        fragments = delta.partition(self.shard_key, self.shards, self._hasher)
        return {
            shard: fragment
            for shard, fragment in enumerate(fragments)
            if not fragment.is_empty
        }

    def _split_factorized(
        self, update: FactorizedUpdate
    ) -> Dict[int, FactorizedUpdate]:
        """Route a factorized delta: within each rank-1 term, the factor
        carrying the shard key is hash-partitioned and the other factors
        ride along unchanged, so terms stay in product form per shard."""
        rel = update.relation
        if rel in self.replicated:
            return {shard: update for shard in range(self.shards)}
        per_shard: List[List[List[Relation]]] = [[] for _ in range(self.shards)]
        for term in update.terms:
            pivot = next(
                i for i, factor in enumerate(term)
                if self.shard_key in factor.schema
            )
            fragments = term[pivot].partition(
                self.shard_key, self.shards, self._hasher
            )
            for shard, fragment in enumerate(fragments):
                if fragment.is_empty:
                    continue
                routed = list(term)
                routed[pivot] = fragment
                per_shard[shard].append(routed)
        return {
            shard: FactorizedUpdate(rel, terms, ring=self.query.ring)
            for shard, terms in enumerate(per_shard)
            if terms
        }

    def _zero_root(self) -> Relation:
        root = self.tree.root
        return Relation(root.name, root.keys, self.query.ring)

    def _merge_data(self, total: Relation, data: dict) -> None:
        fragment = Relation(total.name, total.schema, self.query.ring)
        fragment._data = data
        total.absorb_bulk(fragment)

    # ------------------------------------------------------------------
    # Update triggers (the same surface as FIVMEngine)
    # ------------------------------------------------------------------

    def apply_update(self, delta: Relation) -> Relation:
        """Route ``δR`` to its shards; returns the ring-merged root delta
        (equal, key for key, to the single-engine root delta)."""
        check_delta(self.tree, self.updatable, delta)
        total = self._zero_root()
        if delta.is_empty:
            return total
        requests = {
            shard: ("update", fragment)
            for shard, fragment in self._split_listing(delta).items()
        }
        for data in self._exec.run(requests).values():
            self._merge_data(total, data)
        return total

    def apply_factorized_update(self, update: FactorizedUpdate) -> Relation:
        """Route a factorized delta in product form (see
        :meth:`_split_factorized`); returns the merged root delta."""
        if not self.query.ring.is_commutative:
            raise ValueError(
                "factorized updates require a commutative payload ring"
            )
        check_factorized(self.tree, self.updatable, update)
        total = self._zero_root()
        if not update.terms:
            return total
        requests = {
            shard: ("factorized", routed)
            for shard, routed in self._split_factorized(update).items()
        }
        for data in self._exec.run(requests).values():
            self._merge_data(total, data)
        return total

    def apply_batch(self, deltas: Iterable) -> Relation:
        """The batched multi-relation trigger, sharded: every item is
        routed, each shard coalesces and path-schedules its own sub-batch
        (the engines share the planner hook), and the per-shard totals are
        ring-merged.  Items are validated up front so a malformed item
        cannot leave the shards partially updated."""
        items = list(deltas)
        for item in items:
            if isinstance(item, FactorizedUpdate):
                if not self.query.ring.is_commutative:
                    raise ValueError(
                        "factorized updates require a commutative payload "
                        "ring"
                    )
                check_factorized(self.tree, self.updatable, item)
            else:
                check_delta(self.tree, self.updatable, item)
        per_shard: Dict[int, List[object]] = {}
        for item in items:
            if isinstance(item, FactorizedUpdate):
                routed = self._split_factorized(item)
            else:
                if item.is_empty:
                    continue
                routed = self._split_listing(item)
            for shard, part in routed.items():
                per_shard.setdefault(shard, []).append(part)
        total = self._zero_root()
        requests = {
            shard: ("batch", parts) for shard, parts in per_shard.items()
        }
        for data in self._exec.run(requests).values():
            self._merge_data(total, data)
        return total

    def apply_decomposed_update(self, delta: Relation) -> Relation:
        """Decompose a listing delta into factors, then route factored
        (mirrors :meth:`FIVMEngine.apply_decomposed_update`)."""
        if not self.query.ring.is_commutative or delta.is_empty:
            return self.apply_update(delta)
        update = decompose(delta)
        if len(update.terms[0]) <= 1:
            return self.apply_update(delta)
        return self.apply_factorized_update(update)

    def initialize(self, db: Database) -> None:
        """Partition a database snapshot and (re)load every shard."""
        shard_attrs = {
            rel: (self.shard_key if rel in self.partitioned else None)
            for rel in self.query.relations
        }
        shard_dbs = db.partition(shard_attrs, self.shards, self._hasher)
        self._exec.run({
            shard: ("init", list(shard_dbs[shard]))
            for shard in range(self.shards)
        })

    # ------------------------------------------------------------------
    # Merged state access
    # ------------------------------------------------------------------

    def result(self) -> Relation:
        """The maintained query result, ring-merged across shards."""
        return self.contents(self.tree.root.name)

    def contents(self, view_name: str) -> Relation:
        """Global contents of a materialized view.

        Partition-touching views merge their per-shard fragments with
        ``⊎``; purely replicated views are read from shard 0 (every shard
        holds an identical copy).
        """
        node = self._nodes.get(view_name)
        if node is None or not self.flags[view_name]:
            raise KeyError(f"no materialized view {view_name!r}")
        out = Relation(view_name, node.keys, self.query.ring)
        if view_name in self._summed:
            requests = {
                shard: ("view", view_name) for shard in range(self.shards)
            }
        else:
            requests = {0: ("view", view_name)}
        for data in self._exec.run(requests).values():
            self._merge_data(out, data)
        return out

    def merged_views(self) -> Dict[str, Relation]:
        """All materialized views, merged (one round-trip per shard)."""
        replies = self._exec.run({
            shard: ("views",) for shard in range(self.shards)
        })
        out: Dict[str, Relation] = {}
        for name in self.materialized_names():
            node = self._nodes[name]
            merged = Relation(name, node.keys, self.query.ring)
            sources = (
                range(self.shards) if name in self._summed else (0,)
            )
            for shard in sources:
                self._merge_data(merged, replies[shard][name])
            out[name] = merged
        return out

    def materialized_names(self) -> Tuple[str, ...]:
        """Sorted names of the views every shard materializes."""
        return tuple(sorted(
            name for name, flagged in self.flags.items() if flagged
        ))

    def view_sizes(self) -> Dict[str, int]:
        """Physical keys per view, summed across shards (replicated views
        count once per shard — that is what each shard actually stores)."""
        replies = self._exec.run({
            shard: ("sizes",) for shard in range(self.shards)
        })
        sizes: Dict[str, int] = {}
        for reply in replies.values():
            for name, count in reply.items():
                sizes[name] = sizes.get(name, 0) + count
        return sizes

    def total_keys(self) -> int:
        """Total physical keys stored across all shards and views."""
        return sum(self.view_sizes().values())

    @property
    def shard_restarts(self) -> List[int]:
        """Per-shard supervisor restart counts (all zeros for the inline
        executor, which cannot lose a worker)."""
        return list(getattr(self._exec, "restarts", [0] * self.shards))

    def logical_scalars(self) -> int:
        """Resident logical scalars across all shards (the sharded hook
        for :func:`repro.bench.memory.strategy_scalars`)."""
        replies = self._exec.run({
            shard: ("scalars",) for shard in range(self.shards)
        })
        return sum(replies.values())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down worker processes (no-op for the inline executor)."""
        self._exec.close()

    def __enter__(self) -> "ShardedFIVMEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
