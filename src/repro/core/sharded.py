"""Hash-partitioned parallel F-IVM: sharded engines, ring-merged roots.

The view trees of F-IVM are *ring-homomorphic*: every view is a
join-aggregate whose value is multilinear in the base relations, so
partitioning the domain of one join variable splits the query into
independent summands — ``Q(D) = ⊎_s Q(D_s)`` — that per-shard engines can
maintain in isolation and the coordinator can recombine with plain payload
addition (``Ring.add``, the same decomposability that conditioning work on
probabilistic databases exploits).  Concretely:

* a **shard variable** ``X`` is fixed (default: the root of the variable
  order — the paper keeps join variables on top, so the root is shared by
  the heaviest relations);
* every relation whose schema contains ``X`` is **hash-partitioned** on it
  (fragment ``s`` holds the tuples with ``hash(x) % S == s``); relations
  without ``X`` are **replicated** to all shards (the broadcast side of a
  distributed hash join);
* each shard runs a full, unmodified :class:`~repro.core.engine.FIVMEngine`
  over its fragment database.  Every full-join assignment binds ``X`` to
  one value and therefore contributes to exactly one shard, so for every
  view whose subtree touches a partitioned relation the global contents are
  the ``⊎`` of the per-shard fragments, and the global root delta of any
  update is the ``⊎`` of the per-shard root deltas.  Views over purely
  replicated subtrees are identical in every shard and are read once.

Soundness needs only ``Ring.add`` commutativity — a ring axiom — so every
payload ring works, including the non-commutative matrix ring (payload
*products* stay inside one shard, in child order).  Cyclic queries whose
indicator projections observe a partitioned relation would break the
multilinearity argument; :class:`ShardedFIVMEngine` builds plain
(unadorned) view trees, so the situation cannot arise.

Executors
---------

``executor="inline"`` (default) runs the ``S`` engines in-process — the
deterministic mode the differential tests drive, and the mode in which all
shards share one :class:`~repro.core.plan_exec.ProgramLibrary`, so trigger
code is generated once and only re-bound per shard.  ``executor="process"``
forks one worker per shard (requires the ``fork`` start method; silently
falls back to inline elsewhere): deltas are routed in the coordinator,
shipped as plain ``(name, schema, {key: payload})`` triples, and the
per-shard root deltas come back the same way — true parallel maintenance
on multi-core hosts, measured by ``benchmarks/test_fig_shard_scaling.py``.
``executor="socket"`` speaks the identical request protocol over TCP
(length-prefixed pickle frames, :class:`FrameConn`): by default it forks
loopback shard hosts, and with ``shard_addresses=`` it connects to
:class:`~repro.serve.ShardHost` processes on other machines — the same
coordinator, off one box.

Pipelining
----------

A synchronous executor round-trips the transport on *every* update call,
so per-update latency — scheduler wake-ups on a pipe, RTT on a socket —
caps throughput regardless of how fast the shards compute.  With
``pipeline_depth=N`` (env ``FIVM_SHARD_PIPELINE``) the coordinator keeps
a send-ahead window of up to ``N`` unacknowledged mutating requests per
shard: ``apply_update`` / ``apply_batch`` journal, send, and return a
**lazily resolved** root delta (:class:`~repro.core.engine.
DeferredRelation`) whose payloads materialize on first read.  Acks drain
opportunistically on every submit; a full window blocks for the oldest
ack only; reads, snapshots, and :meth:`ShardedFIVMEngine.flush` are
barriers that collect every straggler.  Because journal-before-send is
preserved verbatim, a worker lost mid-window is recovered exactly as in
the synchronous path — snapshot restore plus journal-tail replay — and
the replay replies answer every request that was still in flight.

Fault tolerance (process and socket executors)
----------------------------------------------

Forked workers die and hang; the coordinator survives both.  Every
request crosses the pipe under a coordinator-assigned **sequence
number**, every state-mutating request is journaled (packed, in the
:mod:`repro.core.checkpoint` wire format) before it is sent, and workers
ack the sequence number they applied.  Replies are awaited under a
deadline (``recv_timeout`` / ``FIVM_SHARD_TIMEOUT``); a missed deadline,
a dead pipe, or an injected fault hands the shard to the **supervisor**,
which forks a fresh worker and rebuilds its state as shard snapshot +
journal-tail replay — the same cheap incremental path the paper uses for
maintenance, here used for recovery.  The restarted worker's state is a
fresh lineage (snapshot + replay), and a live worker deduplicates
retried sequence numbers, so each update group lands exactly once even
when the crash hit the applied-but-not-acked window.  Periodic
checkpoints (``checkpoint_every``) snapshot each worker and truncate its
journal, bounding both coordinator memory and replay length.
Deterministic failures are planted with :class:`repro.core.faults.
FaultPlan` via the ``faults=`` knob; ``tests/core/test_crash_recovery.py``
drives this as a differential oracle against a fault-free engine.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import select
import socket
import struct
import time
import traceback
import zlib
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.checkpoint import (
    UpdateJournal,
    pack_item,
    pack_relation,
    plain_data as _plain_data,
    restore_snapshot,
    tail_handoff,
    take_snapshot,
    unpack_item,
    unpack_relation as _unpack_relation,
)
from repro.core.engine import (
    DeferredRelation,
    FIVMEngine,
    check_delta,
    check_factorized,
    resolve_backend,
    resolve_storage,
)
from repro.core.factorized_update import FactorizedUpdate, decompose
from repro.core.faults import InjectedFault
from repro.core.materialization import materialization_flags
from repro.core.plan_exec import ProgramLibrary
from repro.core.query import Query
from repro.core.variable_order import VariableOrder
from repro.core.view_tree import ViewNode, build_view_tree
from repro.data.database import Database
from repro.data.relation import Relation

__all__ = ["FrameConn", "ShardedFIVMEngine", "stable_hash"]


def _hash_normalize(value):
    """One representative per dict-key equality class (recurses into
    tuples, so compound routing keys normalize component-wise)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, tuple):
        return tuple(_hash_normalize(part) for part in value)
    return value


def stable_hash(value) -> int:
    """A deterministic, process-independent hash for shard routing.

    Python's ``hash`` is salted per process for strings; routing must be
    replayable across runs (differential tests) and identical between a
    coordinator and its forked workers, so fragments are assigned by
    CRC-32 of the value's ``repr`` instead.

    The hasher must agree wherever dict-key equality does — tuple keys
    treat ``True``, ``1``, and ``1.0`` as the same key, so those are
    normalized to one representative before hashing (a bool/int/float
    split across shards would silently drop join matches); compound
    shard keys route on a *tuple* of component values, normalized
    component-wise.  Custom key types with equality wider than ``repr``
    need a custom ``hasher=``.
    """
    value = _hash_normalize(value)
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


# ----------------------------------------------------------------------
# Wire format (process executor): relations as plain picklable triples,
# shared with the journal/snapshot format of repro.core.checkpoint
# ----------------------------------------------------------------------

#: Request kinds the coordinator journals for recovery replay (the
#: state-mutating shard-facade surface).  ``restore`` also mutates worker
#: state but is itself the recovery mechanism and is never journaled.
_MUTATING = frozenset({"update", "factorized", "batch", "init"})

#: Mutating kinds whose replies carry a root delta.  Workers ship these
#: payloads as *opaque pickled bytes* (see :func:`_thaw`): a deferred
#: root delta the caller never reads is then never deserialized — the
#: coordinator pays for numpy-payload reconstruction only on a resolve.
_DELTA_KINDS = frozenset({"update", "factorized", "batch"})


def _thaw(payload):
    """Deserialize an opaque root-delta payload (passthrough otherwise).

    The inline executor hands back live dicts and out-of-process workers
    hand back pickled bytes; delta payloads are always dicts, so the type
    disambiguates.
    """
    if isinstance(payload, bytes):
        return pickle.loads(payload)
    return payload


def _pack_request(request: tuple, copy: bool = False) -> tuple:
    """Live-object request → picklable wire message.  ``copy=True``
    detaches the payload dicts (journaled requests outlive the deltas
    they recorded)."""
    kind = request[0]
    if kind in ("update", "factorized"):
        return pack_item(request[1], copy=copy)
    if kind == "batch":
        return ("batch", [pack_item(item, copy=copy) for item in request[1]])
    if kind == "init":
        return ("init", [pack_relation(rel, copy=copy) for rel in request[1]])
    return request  # "view", "views", "sizes", "scalars", "snapshot", "stop"


def _unpack_request(msg: tuple, ring) -> tuple:
    """Wire message → live-object request (inverse of :func:`_pack_request`)."""
    kind = msg[0]
    if kind in ("update", "factorized"):
        return (kind, unpack_item(msg, ring))
    if kind == "batch":
        return ("batch", [unpack_item(p, ring) for p in msg[1]])
    if kind == "init":
        return ("init", [_unpack_relation(p, ring) for p in msg[1]])
    return msg  # "view", "views", "sizes", "scalars", "snapshot", "restore", "stop"


def _dispatch(engine: FIVMEngine, request: tuple):
    """Serve one live-object request against a shard engine.

    The single dispatcher behind both executors — the in-process one calls
    it directly, the worker loop after unwiring — so every operation routed
    here is the narrow, state-isolated engine surface (the shard facade)
    and the two executors cannot drift apart.  Replies are plain data
    (delta dicts, size maps) ready for either in-process merging or the
    pipe.
    """
    kind = request[0]
    if kind == "update":
        return engine.apply_update(request[1])._data
    if kind == "factorized":
        return engine.apply_factorized_update(request[1])._data
    if kind == "batch":
        return engine.apply_batch(request[1])._data
    if kind == "init":
        engine.initialize(Database(rel for rel in request[1]))
        return None
    if kind == "view":
        return _plain_data(engine.views[request[1]]._data)
    if kind == "views":
        return {
            name: _plain_data(view._data)
            for name, view in engine.views.items()
        }
    if kind == "sizes":
        return engine.view_sizes()
    if kind == "scalars":
        from repro.bench.memory import strategy_scalars

        return strategy_scalars(engine)
    if kind == "snapshot":
        return take_snapshot(engine)
    if kind == "restore":
        restore_snapshot(engine, request[1])
        return None
    if kind == "stop":
        return None
    raise ValueError(f"unknown shard request {kind!r}")


def _shard_worker(conn, factory: Callable[[], FIVMEngine], faults=None) -> None:
    """Worker loop: build the shard engine, then serve until ``stop``/EOF.

    Messages arrive as ``(seq, request)`` and are answered with
    ``(tag, seq, payload)`` where ``tag`` is ``"ok"``, ``"error"`` (an
    application error; the worker keeps serving), or ``"fault"`` (an
    injected environmental error; the worker dies so the supervisor
    recovers it like the transient failure it models).  The worker acks
    the last *applied* sequence number implicitly: a retried mutating
    request with ``seq <= last_applied`` is acked from the reply cache
    without re-applying — the exactly-once half of at-least-once
    delivery.

    ``faults`` is an optional :class:`repro.core.faults.FaultPlan` (or a
    zero-argument factory of one); its ``crash`` action is forced to
    ``os._exit`` here, because a worker crash *is* a process death.
    """
    plan = faults() if callable(faults) else faults
    if plan is not None:
        plan.crash_action = "exit"
    engine = factory()
    ring = engine.query.ring
    last_applied = 0
    cached_reply = (0, None)  # (seq, payload) of the last applied group
    while True:
        try:
            seq, msg = conn.recv()
        except EOFError:
            break
        kind = msg[0]
        mutating = kind in _MUTATING or kind == "restore"
        try:
            if plan is not None:
                plan.fire("worker.recv")
            if mutating and seq <= last_applied:
                payload = cached_reply[1] if cached_reply[0] == seq else None
                reply = ("ok", seq, payload)
            else:
                if plan is not None and mutating:
                    plan.fire("worker.pre_apply")
                result = _dispatch(engine, _unpack_request(msg, ring))
                if kind in _DELTA_KINDS:
                    # Opaque root delta: the coordinator unpickles it only
                    # if the deferred handle is actually read (_thaw).
                    result = pickle.dumps(
                        result, protocol=pickle.HIGHEST_PROTOCOL
                    )
                if plan is not None and mutating:
                    plan.fire("worker.post_apply")
                if mutating:
                    last_applied = seq
                    cached_reply = (seq, result)
                reply = ("ok", seq, result)
            if plan is not None:
                plan.fire("worker.send")
        except InjectedFault as exc:
            # A planted transient error: report it and die, so the
            # supervisor heals this shard exactly as for a crash.
            try:
                conn.send(("fault", seq, repr(exc)))
            finally:
                conn.close()
            return
        except BaseException as exc:  # application error: report, keep serving
            conn.send(("error", seq, f"{exc!r}\n{traceback.format_exc()}"))
            continue
        conn.send(reply)
        if kind == "stop":
            break
    conn.close()


# ----------------------------------------------------------------------
# Socket transport: length-prefixed pickle frames with batched writes
# ----------------------------------------------------------------------


class FrameConn:
    """Length-prefixed pickle frames over a stream socket.

    The Connection-shaped transport behind ``executor="socket"`` and
    :class:`~repro.serve.ShardHost`: the same ``send`` / ``poll`` /
    ``recv`` / ``close`` surface as a :mod:`multiprocessing` pipe, so the
    worker loop and the supervisor drive both transports through one code
    path.  Each frame is a 4-byte big-endian length followed by the
    pickled object.

    Writes are **buffered**: ``send`` appends a frame to an output buffer
    and :meth:`flush` ships the whole buffer in one ``sendall`` — the
    coordinator's send-ahead window thus crosses the network as a handful
    of large writes instead of one small packet per request.  Any wait
    for input (``poll`` / ``recv``) flushes first, so a request the
    caller is about to await can never be stuck in the buffer — but a
    ``poll`` that can be answered from already-received bytes does *not*
    flush, so both sides batch: the worker draining a burst of windowed
    requests accumulates its acks and ships them in one write when its
    input runs dry.  ``autoflush=True`` opts out of buffering entirely
    (every ``send`` ships immediately) for callers outside the
    supervised seq/ack loop.
    """

    _HEADER = struct.Struct(">I")

    def __init__(self, sock: socket.socket, autoflush: bool = False):
        sock.setblocking(True)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP socket (e.g. AF_UNIX)
            pass
        self._sock = sock
        self._out = bytearray()
        self._in = bytearray()
        self._autoflush = autoflush

    def send(self, obj) -> None:
        """Buffer one frame (ships immediately under ``autoflush``)."""
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._out += self._HEADER.pack(len(payload))
        self._out += payload
        if self._autoflush:
            self.flush()

    def flush(self) -> None:
        """Ship every buffered frame in one write."""
        if self._out:
            data = bytes(self._out)
            self._out.clear()
            self._sock.sendall(data)

    def _frame_size(self) -> Optional[int]:
        if len(self._in) < self._HEADER.size:
            return None
        (size,) = self._HEADER.unpack_from(self._in)
        if len(self._in) < self._HEADER.size + size:
            return None
        return size

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a complete frame is available within ``timeout``."""
        if self._frame_size() is not None:
            # A frame is already buffered: answer without flushing, so a
            # worker draining a burst of pipelined requests batches its
            # replies instead of one write syscall per ack.
            return True
        self.flush()
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._frame_size() is None:
            wait = None
            if deadline is not None:
                wait = max(0.0, deadline - time.monotonic())
            ready, _, _ = select.select([self._sock], [], [], wait)
            if not ready:
                return False
            try:
                chunk = self._sock.recv(1 << 16)
            except OSError:
                raise EOFError("shard connection closed") from None
            if not chunk:
                raise EOFError("shard connection closed")
            self._in += chunk
        return True

    def recv(self):
        """Block for the next frame; ``EOFError`` once the peer is gone
        (mirroring pipe semantics, so supervision code needs no cases)."""
        if not self.poll(None):  # pragma: no cover - poll(None) blocks
            raise EOFError("shard connection closed")
        size = self._frame_size()
        start = self._HEADER.size
        payload = bytes(self._in[start:start + size])
        del self._in[:start + size]
        return pickle.loads(payload)

    def close(self) -> None:
        """Flush best-effort and close the socket."""
        try:
            self.flush()
        except OSError:
            pass
        self._sock.close()


def _host_loop(listener: socket.socket, factory, faults=None, sessions=None):
    """Accept-and-serve loop of a shard host: one coordinator session at
    a time, each served by :func:`_shard_worker` over a fresh engine.

    A session ends on ``stop`` or EOF; the next accepted connection gets
    a newly built engine, which the coordinator re-seeds with snapshot +
    journal-tail replay — socket failover is therefore *reconnect* where
    the process executor's is *respawn*, over the same handoff.  The
    fault plan arms the first session only: a reconnected session models
    the healed worker, which must run fault-free exactly like a respawned
    process.  ``sessions`` bounds how many sessions to serve (``None``
    means serve until the listener closes).
    """
    served = 0
    while sessions is None or served < sessions:
        try:
            sock, _addr = listener.accept()
        except OSError:
            return
        _shard_worker(FrameConn(sock), factory, faults)
        faults = None
        served += 1


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


class _PendingGroup:
    """The deferred replies of one submitted mutating operation.

    One payload per involved shard; :meth:`resolve` drains whatever is
    still in flight (through the owning executor) and returns the full
    ``{shard: payload}`` map.  A group whose ``waiting`` set is empty is
    already resolved — the inline executor and ``pipeline_depth=0`` hand
    these back, so callers never branch on executor kind.
    """

    __slots__ = ("_executor", "waiting", "payloads")

    def __init__(self, executor, shards: Iterable[int]):
        self._executor = executor
        self.waiting = set(shards)
        self.payloads: Dict[int, object] = {}

    def resolve(self) -> Dict[int, object]:
        """Block until every shard's reply has landed; return them all."""
        if self.waiting:
            self._executor._drain_group(self)
        return self.payloads


class _Inflight:
    """One unacknowledged request in a shard's send-ahead window."""

    __slots__ = ("seq", "group")

    def __init__(self, seq: int, group: _PendingGroup):
        self.seq = seq
        self.group = group


class _InlineShards:
    """All shard engines in-process; requests are served synchronously.

    The deterministic executor the differential tests drive; engines share
    one :class:`ProgramLibrary`, so trigger code generation is paid once.
    """

    kind = "inline"
    pipeline_depth = 0

    def __init__(self, factories: Sequence[Callable[[], FIVMEngine]]):
        self.engines = [factory() for factory in factories]

    def run(self, requests: Dict[int, tuple]) -> Dict[int, object]:
        """Dispatch each request to its shard engine, in-process."""
        return {
            shard: _dispatch(self.engines[shard], request)
            for shard, request in requests.items()
        }

    def submit(self, requests: Dict[int, tuple]) -> _PendingGroup:
        """Serve immediately; the returned group is already resolved."""
        group = _PendingGroup(self, requests)
        group.payloads = self.run(requests)
        group.waiting.clear()
        return group

    def flush(self) -> None:
        """Nothing in flight, ever."""
        pass

    def close(self) -> None:
        """Nothing to release for in-process shard engines."""
        pass


#: Default reply deadline (seconds) for process-shard workers; override
#: per engine with ``recv_timeout=`` or globally with the
#: ``FIVM_SHARD_TIMEOUT`` environment variable.  ``<= 0`` disables the
#: deadline (wait forever — the pre-supervision behaviour).
DEFAULT_SHARD_TIMEOUT = 30.0


def _shard_timeout() -> Optional[float]:
    raw = os.environ.get("FIVM_SHARD_TIMEOUT", "").strip()
    timeout = float(raw) if raw else DEFAULT_SHARD_TIMEOUT
    return timeout if timeout > 0 else None


def _pipeline_env() -> int:
    """Default send-ahead window depth (``FIVM_SHARD_PIPELINE``, else 0:
    the synchronous one-round-trip-per-update protocol)."""
    raw = os.environ.get("FIVM_SHARD_PIPELINE", "").strip()
    return int(raw) if raw else 0


class _SupervisedShards:
    """Out-of-process shard executors: seq/ack protocol + supervision.

    The transport-agnostic half of the process and socket executors.
    Requests for an operation are sent to every involved worker first and
    the replies collected afterwards, so the workers compute in parallel
    while the coordinator blocks only on the slowest one; with
    ``pipeline_depth > 0``, mutating operations go through
    :meth:`submit` instead — a per-shard send-ahead window of up to that
    many unacknowledged requests, drained opportunistically and forced by
    :meth:`flush` (reads and snapshots always flush first).

    The coordinator keeps, per shard, everything recovery needs: a
    :class:`UpdateJournal` of the packed mutating requests since the last
    checkpoint, the latest checkpoint snapshot (taken in the worker,
    shipped back, truncating the journal), and the last applied sequence
    number.  When a worker dies (EOF/broken pipe), hangs past
    ``recv_timeout``, or reports an injected fault, the supervisor reaps
    it, spawns a replacement *without* the fault plan (the environmental
    event already happened; recovery must not re-plant it), and replays
    the :func:`~repro.core.checkpoint.tail_handoff` bundle — snapshot
    restore plus journal tail.  Because every windowed request was
    journaled before it was sent, the replay replies also answer
    everything that was still in flight, so callers never see the
    failure.  With ``supervise=False`` the same detection paths raise an
    error naming the failed shard instead.

    Subclasses provide the transport: :meth:`_spawn` (start a worker and
    install its connection) and :meth:`_reap` (tear one down).
    """

    kind = "supervised"

    def __init__(
        self,
        factories: Sequence[Callable[[], FIVMEngine]],
        recv_timeout: Optional[float] = None,
        supervise: bool = True,
        checkpoint_every: Optional[int] = 64,
        max_restarts: int = 3,
        faults=None,
        pipeline_depth: Optional[int] = None,
    ):
        if recv_timeout is None:
            recv_timeout = _shard_timeout()
        elif recv_timeout <= 0:
            recv_timeout = None
        self.recv_timeout = recv_timeout
        self.supervise = supervise
        self.checkpoint_every = checkpoint_every
        self.max_restarts = max_restarts
        self._faults = faults
        self._factories = list(factories)
        if pipeline_depth is None:
            pipeline_depth = _pipeline_env()
        self.pipeline_depth = max(0, int(pipeline_depth))
        count = len(self._factories)
        self._conns: List[object] = [None] * count
        self._procs: List[object] = [None] * count
        self._seq = 0
        self._journals = [UpdateJournal() for _ in range(count)]
        self._snapshots: List[Optional[Tuple[int, dict]]] = [None] * count
        self._applied = [0] * count
        #: Per-shard send-ahead windows of :class:`_Inflight` entries,
        #: oldest first (always empty when ``pipeline_depth == 0``).
        self._windows: List[deque] = [deque() for _ in range(count)]
        #: Per-shard supervisor restart counts (the liveness telemetry
        #: tests and operators read).
        self.restarts = [0] * count
        for shard in range(count):
            self._spawn(shard, self._fault_arg(shard))

    # -- lifecycle of one worker ----------------------------------------

    def _fault_arg(self, shard: int):
        if isinstance(self._faults, dict):
            return self._faults.get(shard)
        return self._faults

    def _spawn(self, shard: int, faults) -> None:
        """Start the worker for ``shard`` and install its connection."""
        raise NotImplementedError

    def _reap(self, shard: int) -> None:
        """Tear down a failed worker (best effort; it may already be dead)."""
        raise NotImplementedError

    # -- the pipelined window -------------------------------------------

    def submit(self, requests: Dict[int, tuple]) -> _PendingGroup:
        """Enqueue one mutating operation into the send-ahead window.

        Journal-before-send is preserved verbatim: each per-shard request
        is packed, journaled, *then* shipped, and only then recorded as
        in flight — so a worker lost at any point of the window is
        rebuilt from state the coordinator already holds.  A full window
        blocks for its oldest ack; otherwise this returns immediately
        with a :class:`_PendingGroup` that resolves lazily.  With
        ``pipeline_depth == 0`` it degenerates to the synchronous
        :meth:`run` protocol (already-resolved group).
        """
        if self.pipeline_depth <= 0:
            group = _PendingGroup(self, requests)
            group.payloads = self.run(requests)
            group.waiting.clear()
            return group
        group = _PendingGroup(self, requests)
        for shard, request in requests.items():
            packed = _pack_request(request, copy=True)
            if packed[0] not in _MUTATING:  # pragma: no cover - facade bug
                raise ValueError(
                    f"only mutating requests may be pipelined, got "
                    f"{packed[0]!r}"
                )
            window = self._windows[shard]
            if len(window) >= self.pipeline_depth:
                # Window full: block for the oldest ack, then harvest the
                # burst of acks the worker batched behind it — one
                # blocking wait (and one write-buffer flush) per window
                # of requests rather than per request.
                while len(window) >= self.pipeline_depth:
                    self._drain_one(shard)
                self._drain_ready_shard(shard)
            seq = self._next_seq()
            self._journals[shard].append(seq, packed)
            window.append(_Inflight(seq, group))
            try:
                self._conns[shard].send((seq, packed))
            except (BrokenPipeError, OSError) as exc:
                self._recover_window(shard, reason=f"send failed ({exc!r})")
        # No opportunistic poll here: polling after every enqueue would
        # cost a syscall per shard per update and force-flush the framed
        # transport's write buffer, defeating its batching.  Acks are
        # collected when a window fills (above) — the window bound, not
        # the poll cadence, is what keeps memory finite.
        if self.checkpoint_every is not None:
            for shard in requests:
                if len(self._journals[shard]) >= self.checkpoint_every:
                    self._drain_shard(shard)
                    self._maybe_checkpoint(shard)
        return group

    def _deliver(self, shard: int, entry: _Inflight, payload) -> None:
        entry.group.payloads[shard] = payload
        entry.group.waiting.discard(shard)

    def _drain_one(self, shard: int) -> None:
        """Consume the oldest outstanding ack of ``shard`` (blocking)."""
        window = self._windows[shard]
        if not window:
            return
        conn = self._conns[shard]
        timeout = self.recv_timeout
        try:
            if timeout is not None and not conn.poll(timeout):
                self._recover_window(
                    shard,
                    reason=(
                        f"no ack within {timeout}s — dead or hung worker; "
                        "raise FIVM_SHARD_TIMEOUT if it is merely slow"
                    ),
                )
                return
            tag, rseq, payload = conn.recv()
        except (EOFError, OSError) as exc:
            self._recover_window(
                shard, reason=f"worker died mid-window ({exc!r})"
            )
            return
        if tag == "fault":
            # the faulted request is still in the window; recovery
            # answers it along with everything behind it
            self._recover_window(shard, reason=f"injected fault: {payload}")
            return
        entry = window.popleft()
        if tag == "error":
            self._deliver(shard, entry, None)
            raise RuntimeError(f"shard {shard} failed:\n{payload}")
        if rseq != entry.seq:  # pragma: no cover - protocol invariant
            raise RuntimeError(
                f"shard {shard} acked seq {rseq}, expected {entry.seq}"
            )
        self._applied[shard] = max(self._applied[shard], entry.seq)
        self._deliver(shard, entry, payload)

    def _drain_ready(self) -> None:
        """Opportunistically consume every ack already waiting (also
        flushes any batched socket writes, via ``poll``)."""
        for shard in range(len(self._windows)):
            self._drain_ready_shard(shard)

    def _drain_ready_shard(self, shard: int) -> None:
        """Consume every ack of ``shard`` that is already waiting."""
        window = self._windows[shard]
        while window:
            try:
                ready = self._conns[shard].poll(0)
            except (EOFError, OSError) as exc:
                self._recover_window(
                    shard, reason=f"worker died mid-window ({exc!r})"
                )
                break
            if not ready:
                break
            self._drain_one(shard)

    def _drain_shard(self, shard: int) -> None:
        while self._windows[shard]:
            self._drain_one(shard)

    def _drain_group(self, group: _PendingGroup) -> None:
        """Drain windows until every shard of ``group`` has answered."""
        while group.waiting:
            shard = next(iter(group.waiting))
            if not self._windows[shard]:  # pragma: no cover - invariant
                group.waiting.discard(shard)
                continue
            self._drain_one(shard)

    def flush(self) -> None:
        """Barrier: collect every outstanding pipelined ack."""
        for shard in range(len(self._conns)):
            self._drain_shard(shard)

    def _recover_window(self, shard: int, reason: str) -> None:
        """Heal ``shard`` after a mid-window failure and answer every
        request that was still in flight.

        The window is a suffix of the journal (journal-before-send), so
        the snapshot + journal-tail replay that rebuilds the worker also
        re-produces the reply of every unacknowledged request — recovery
        and pipelining compose with no extra bookkeeping.
        """
        window = self._windows[shard]
        entries = {entry.seq: entry for entry in window}
        window.clear()
        self._restart(shard, reason)
        handoff = tail_handoff(self._snapshots[shard], self._journals[shard])
        self._restore(shard, handoff)
        for jseq, jpacked in handoff["tail"]:
            tag, payload = self._replay_exchange(shard, jseq, jpacked)
            if tag == "error":
                if jseq in entries:
                    # the in-flight group itself fails; surface it exactly
                    # as the original synchronous send would have
                    self._deliver(shard, entries.pop(jseq), None)
                    raise RuntimeError(f"shard {shard} failed:\n{payload}")
                continue
            self._applied[shard] = max(self._applied[shard], jseq)
            entry = entries.pop(jseq, None)
            if entry is not None:
                self._deliver(shard, entry, payload)
        if entries:  # pragma: no cover - journal invariant violated
            raise RuntimeError(
                f"shard {shard} window entries {sorted(entries)} missing "
                "from the journal tail"
            )

    # -- the request protocol -------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def run(self, requests: Dict[int, tuple]) -> Dict[int, object]:
        """Send each request to its worker and gather replies, restarting
        and replaying crashed workers under the supervision policy.
        A barrier: every in-flight windowed request is collected first,
        so reads and snapshots observe all previously submitted updates."""
        self.flush()
        pending: Dict[int, Tuple[int, tuple]] = {}
        replies: Dict[int, object] = {}
        for shard, request in requests.items():
            packed = _pack_request(request, copy=True)
            seq = self._next_seq()
            if packed[0] == "init":
                # the journal describes updates since an initialize,
                # never across one
                self._journals[shard].clear()
                self._snapshots[shard] = None
            if packed[0] in _MUTATING:
                self._journals[shard].append(seq, packed)
            try:
                self._conns[shard].send((seq, packed))
                pending[shard] = (seq, packed)
            except (BrokenPipeError, OSError) as exc:
                replies[shard] = self._recover(
                    shard, seq, packed, reason=f"send failed ({exc!r})"
                )
        # Ship every buffered request before awaiting any reply: awaiting
        # shard 0 with shard 1's request still in its write buffer would
        # serialize workers that should run in parallel.
        for shard in list(pending):
            try:
                self._conns[shard].flush()
            except (BrokenPipeError, OSError) as exc:
                seq, packed = pending.pop(shard)
                replies[shard] = self._recover(
                    shard, seq, packed, reason=f"send failed ({exc!r})"
                )
        for shard, (seq, packed) in pending.items():
            replies[shard] = self._await_reply(shard, seq, packed)
        for shard in requests:
            self._maybe_checkpoint(shard)
        return replies

    def _await_reply(self, shard: int, seq: int, packed: tuple):
        conn = self._conns[shard]
        timeout = self.recv_timeout
        try:
            if timeout is not None and not conn.poll(timeout):
                return self._recover(
                    shard, seq, packed,
                    reason=(
                        f"no reply within {timeout}s — dead or hung worker; "
                        "raise FIVM_SHARD_TIMEOUT if it is merely slow"
                    ),
                )
            tag, rseq, payload = conn.recv()
        except (EOFError, OSError) as exc:
            return self._recover(
                shard, seq, packed, reason=f"worker died mid-request ({exc!r})"
            )
        if tag == "fault":
            return self._recover(
                shard, seq, packed, reason=f"injected fault: {payload}"
            )
        if tag == "error":
            raise RuntimeError(f"shard {shard} failed:\n{payload}")
        if packed[0] in _MUTATING:
            self._applied[shard] = max(self._applied[shard], seq)
        return payload

    # -- supervision ----------------------------------------------------

    def _restart(self, shard: int, reason: str) -> None:
        """Budget-check, reap, and respawn ``shard``'s worker fault-free."""
        if not self.supervise:
            raise RuntimeError(
                f"shard worker {shard} failed ({reason}); supervision is "
                "disabled, so the sharded engine cannot continue"
            )
        self.restarts[shard] += 1
        if self.restarts[shard] > self.max_restarts:
            raise RuntimeError(
                f"shard worker {shard} failed ({reason}) after exhausting "
                f"its restart budget ({self.max_restarts})"
            )
        self._reap(shard)
        # The restarted worker runs fault-free: the environmental event
        # happened; deterministic replay must not re-plant it.
        self._spawn(shard, None)

    def _restore(self, shard: int, handoff: dict) -> None:
        """Restore a freshly spawned worker from the handoff's snapshot."""
        if handoff["snapshot"] is None:
            return
        tag, payload = self._replay_exchange(
            shard, handoff["base_seq"], ("restore", handoff["snapshot"])
        )
        if tag != "ok":
            raise RuntimeError(
                f"shard worker {shard} failed to restore its "
                f"snapshot:\n{payload}"
            )

    def _recover(self, shard: int, seq: int, packed: tuple, reason: str):
        """Heal ``shard`` after a failure and answer its in-flight request.

        Fresh worker, restored snapshot, journal-tail replay; the
        in-flight request is either part of the tail (mutating — its
        replay reply is the answer) or re-sent afterwards (read-only).
        """
        self._restart(shard, reason)
        handoff = tail_handoff(self._snapshots[shard], self._journals[shard])
        self._restore(shard, handoff)
        result = None
        answered = False
        for jseq, jpacked in handoff["tail"]:
            tag, payload = self._replay_exchange(shard, jseq, jpacked)
            if tag == "error":
                if jseq == seq:
                    # the in-flight group itself fails; surface it exactly
                    # as the original send would have
                    raise RuntimeError(f"shard {shard} failed:\n{payload}")
                # this group failed identically when first applied — the
                # state evolution matches; keep replaying
                continue
            self._applied[shard] = max(self._applied[shard], jseq)
            if jseq == seq:
                answered = True
                result = payload
        if not answered:
            # the in-flight request was read-only (view/sizes/snapshot/…)
            tag, payload = self._replay_exchange(shard, seq, packed)
            if tag == "error":
                raise RuntimeError(f"shard {shard} failed:\n{payload}")
            result = payload
        return result

    def _replay_exchange(self, shard: int, seq: int, packed: tuple):
        """One request to a freshly restarted worker.  Failures here mean
        recovery itself failed and are fatal (the worker is fault-free,
        so they indicate a real bug or a dead host)."""
        conn = self._conns[shard]
        try:
            conn.send((seq, packed))
        except (BrokenPipeError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {shard} died again during recovery ({exc!r})"
            ) from exc
        timeout = self.recv_timeout
        try:
            if timeout is not None and not conn.poll(timeout):
                raise RuntimeError(
                    f"shard worker {shard} hung during recovery replay "
                    f"(no reply within {timeout}s)"
                )
            tag, _rseq, payload = conn.recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {shard} died again during recovery"
            ) from exc
        return tag, payload

    # -- checkpointing --------------------------------------------------

    def _maybe_checkpoint(self, shard: int) -> None:
        """Snapshot ``shard``'s worker once its journal is long enough,
        and truncate the journal through the snapshot's sequence number."""
        if self.checkpoint_every is None:
            return
        if len(self._journals[shard]) < self.checkpoint_every:
            return
        seq = self._next_seq()
        packed = ("snapshot",)
        try:
            self._conns[shard].send((seq, packed))
            snap = self._await_reply(shard, seq, packed)
        except (BrokenPipeError, OSError) as exc:
            snap = self._recover(
                shard, seq, packed, reason=f"send failed ({exc!r})"
            )
        # The worker is quiescent between requests, so the snapshot
        # reflects exactly the groups applied so far.
        self._snapshots[shard] = (self._applied[shard], snap)
        self._journals[shard].truncate_through(self._applied[shard])

    def close(self) -> None:
        """Collect stragglers best-effort, then stop and join every worker."""
        try:
            self.flush()
        except Exception:  # pragma: no cover - shutdown is best-effort
            pass
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send((0, ("stop",)))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            if conn is None:
                continue
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - hung worker guard
                proc.terminate()
                proc.join(timeout=1.0)
        self._conns = []
        self._procs = []
        self._windows = []


def _process_worker(parent_sock, sock, factory, faults=None) -> None:
    """Forked-worker entry: drop the coordinator's socket end, then serve."""
    parent_sock.close()
    _shard_worker(FrameConn(sock), factory, faults)


class _ProcessShards(_SupervisedShards):
    """One forked worker per shard over a local socketpair (the
    supervised seq/ack protocol of :class:`_SupervisedShards`).

    The duplex channel is the same :class:`FrameConn` framing the socket
    executor uses — which is also what a :mod:`multiprocessing` pipe is
    underneath — so the send-ahead window gets buffered batched writes on
    this executor too, and both out-of-process transports exercise one
    wire protocol.
    """

    kind = "process"

    def __init__(self, factories: Sequence[Callable[[], FIVMEngine]], **kw):
        self._ctx = multiprocessing.get_context("fork")
        super().__init__(factories, **kw)

    def _spawn(self, shard: int, faults) -> None:
        parent_sock, child_sock = socket.socketpair()
        proc = self._ctx.Process(
            target=_process_worker,
            args=(parent_sock, child_sock, self._factories[shard], faults),
            daemon=True,
        )
        proc.start()
        child_sock.close()
        self._conns[shard] = FrameConn(parent_sock)
        self._procs[shard] = proc

    def _reap(self, shard: int) -> None:
        try:
            self._conns[shard].close()
        except OSError:  # pragma: no cover - already closed
            pass
        proc = self._procs[shard]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=2.0)


class _SocketShards(_SupervisedShards):
    """The seq/ack protocol over TCP: each shard behind a :class:`FrameConn`.

    Two deployment shapes share this executor:

    * **loopback self-hosting** (default) — the coordinator binds one
      listener per shard, forks a host process serving it
      (:func:`_host_loop`), and connects.  The listener stays open in
      the coordinator, so supervision heals crashes *and* hangs by
      terminating the host and forking a replacement on the same port —
      functionally the process executor, but every byte crosses the
      socket framing that remote deployment uses.
    * **remote hosts** (``shard_addresses=``) — the coordinator connects
      to already-running :class:`~repro.serve.ShardHost` processes on
      other machines.  A lost connection heals by *reconnecting*: the
      host serves the fresh session with a fresh engine, which the
      coordinator re-seeds with the same snapshot + journal-tail
      handoff.  A hung remote worker cannot be terminated from here —
      give remote hosts their own process supervision.
    """

    kind = "socket"

    def __init__(
        self,
        factories: Sequence[Callable[[], FIVMEngine]],
        shard_addresses: Optional[Sequence[Tuple[str, int]]] = None,
        connect_timeout: float = 5.0,
        faults=None,
        **kw,
    ):
        count = len(factories)
        if shard_addresses is not None:
            shard_addresses = [tuple(addr) for addr in shard_addresses]
            if len(shard_addresses) != count:
                raise ValueError(
                    f"shard_addresses names {len(shard_addresses)} hosts "
                    f"for {count} shards"
                )
            if faults is not None:
                raise ValueError(
                    "fault plans cannot be shipped to remote shard hosts; "
                    "arm them on the ShardHost side instead"
                )
        self._addresses = shard_addresses
        self.connect_timeout = connect_timeout
        self._listeners: List[Optional[socket.socket]] = [None] * count
        self._ctx = (
            multiprocessing.get_context("fork")
            if shard_addresses is None else None
        )
        super().__init__(factories, faults=faults, **kw)

    def _spawn(self, shard: int, faults) -> None:
        if self._addresses is not None:
            address = self._addresses[shard]
            proc = None
        else:
            listener = self._listeners[shard]
            if listener is None:
                listener = socket.create_server(("127.0.0.1", 0))
                self._listeners[shard] = listener
            proc = self._ctx.Process(
                target=_host_loop,
                args=(listener, self._factories[shard], faults),
                daemon=True,
            )
            proc.start()
            address = listener.getsockname()
        self._conns[shard] = FrameConn(self._connect(shard, address))
        self._procs[shard] = proc

    def _connect(self, shard: int, address) -> socket.socket:
        deadline = time.monotonic() + self.connect_timeout
        while True:
            try:
                return socket.create_connection(
                    address, timeout=self.connect_timeout
                )
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise RuntimeError(
                        f"cannot reach shard host {shard} at {address!r} "
                        f"({exc!r})"
                    ) from exc
                time.sleep(0.05)

    def _reap(self, shard: int) -> None:
        conn = self._conns[shard]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        proc = self._procs[shard]
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=2.0)

    def close(self) -> None:
        """Stop worker sessions, terminate loopback hosts, release ports.

        Unlike the process executor, a self-hosted shard does not exit on
        ``stop`` — its host loops back to ``accept`` for the next
        coordinator session — so hosts are terminated rather than joined.
        Remote hosts (no local process) are simply disconnected and keep
        serving.
        """
        try:
            self.flush()
        except Exception:  # pragma: no cover - shutdown is best-effort
            pass
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send((0, ("stop",)))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            if conn is None:
                continue
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self._procs:
            if proc is None:
                continue
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=2.0)
        for listener in self._listeners:
            if listener is not None:
                listener.close()
        self._conns = []
        self._procs = []
        self._windows = []
        self._listeners = []


# ----------------------------------------------------------------------
# The sharded engine
# ----------------------------------------------------------------------


class ShardedFIVMEngine:
    """Maintains a join-aggregate query over ``S`` hash-partitioned shards.

    Drives ``S`` independent :class:`FIVMEngine` instances through the
    shard-safe facade (``apply_update`` / ``apply_batch`` /
    ``apply_factorized_update`` / ``initialize`` / ``views``), routing each
    delta to the shards its tuples hash into and ring-merging the per-shard
    root deltas and view fragments into the single-engine result (see the
    module docstring for the soundness argument).

    Parameters mirror :class:`FIVMEngine`, plus:

    shards:
        Number of partitions ``S`` (1 degenerates to a routed single
        engine, useful as the bench baseline).
    shard_key:
        The variable — or tuple of variables, a **compound key** — to
        hash-partition on.  Default: the root of the variable order.
        Relations whose schema contains every key component are
        partitioned (compound keys route on the :func:`stable_hash` of
        the component tuple); relations missing any component are
        replicated.  At least one relation must contain the full key.
    executor:
        ``"inline"`` (in-process, deterministic, shared program
        library), ``"process"`` (one forked worker per shard), or
        ``"socket"`` (the same protocol over TCP frames — forked
        loopback hosts by default, remote :class:`~repro.serve.
        ShardHost` processes via ``shard_addresses``).  ``"process"``
        and self-hosted ``"socket"`` fall back to inline on platforms
        without the ``fork`` start method.
    pipeline_depth:
        Process/socket executors: send-ahead window size per shard.  ``0``
        (default; env fallback ``FIVM_SHARD_PIPELINE``) keeps the
        synchronous one-round-trip-per-update protocol; ``N > 0`` lets
        ``apply_update`` / ``apply_batch`` return after enqueuing, with
        a lazily resolved root delta — see :meth:`flush`.
    shard_addresses:
        Socket executor only: one ``(host, port)`` per shard naming an
        already-running :class:`~repro.serve.ShardHost`.  Omitted, the
        engine self-hosts loopback shards.
    recv_timeout:
        Process/socket executors: seconds to wait for a worker's reply
        before declaring it hung (default: ``FIVM_SHARD_TIMEOUT`` env
        var, else 30; ``<= 0`` waits forever).
    supervise:
        Process/socket executors: heal dead/hung workers by restarting
        them from their shard snapshot + journal tail (default).  With
        ``False``, a worker failure raises an error naming the shard.
    checkpoint_every:
        Process/socket executors: snapshot a worker and truncate its
        journal once that many mutating requests have accumulated
        (``None`` disables checkpoints; recovery then replays the whole
        journal).
    max_restarts:
        Process/socket executors: per-shard restart budget before the
        supervisor gives up.
    faults:
        Process/socket executors, test-surface: a
        :class:`repro.core.faults.FaultPlan` (or zero-argument factory,
        or ``{shard: plan}`` dict) handed to the forked workers —
        deterministic crash/hang/error injection for the crash-recovery
        oracle.  Restarted workers never inherit it.  Rejected with
        ``shard_addresses`` (arm remote hosts on their side).
    backend:
        Trigger backend inherited unchanged by every shard engine
        (``"interpreter"``, ``"source"``, or ``"kernels"``; overrides the
        legacy ``compiled`` flag — see :class:`FIVMEngine`).
    storage:
        View storage engine inherited by every shard engine (``"dict"``
        or ``"columnar"`` — see :class:`FIVMEngine`).  Partitioned
        deltas cross the wire as plain dicts either way.
    hasher:
        Value-level hash used for routing; must be deterministic across
        processes (default :func:`stable_hash`).
    """

    def __init__(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        shards: int = 4,
        shard_key=None,
        updatable: Optional[Iterable[str]] = None,
        db: Optional[Database] = None,
        executor: str = "inline",
        collapse_chains: bool = True,
        materialize: str = "auto",
        group_aware: bool = True,
        compiled: bool = True,
        backend: Optional[str] = None,
        storage: Optional[str] = None,
        hasher: Callable[[object], int] = stable_hash,
        recv_timeout: Optional[float] = None,
        supervise: bool = True,
        checkpoint_every: Optional[int] = 64,
        max_restarts: int = 3,
        faults=None,
        pipeline_depth: Optional[int] = None,
        shard_addresses: Optional[Sequence[Tuple[str, int]]] = None,
    ):
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        self.query = query
        self.order = order or VariableOrder.auto(query)
        self.shards = int(shards)
        self.updatable = (
            frozenset(updatable) if updatable is not None
            else frozenset(query.relations)
        )
        root_var = self.order.roots[0].var
        if shard_key is None:
            shard_key = root_var
        if isinstance(shard_key, str):
            key_attrs: Tuple[str, ...] = (shard_key,)
        else:
            key_attrs = tuple(shard_key)
            if not key_attrs:
                raise ValueError("a compound shard key must not be empty")
            if len(key_attrs) == 1:
                shard_key = key_attrs[0]
        self.shard_key = shard_key
        variables = set(query.variables)
        for attr in key_attrs:
            if attr not in variables:
                raise ValueError(
                    f"shard key {attr!r} is not a query variable"
                )
        #: The shard key's components; a single-attribute key keeps the
        #: one-element tuple here and the bare attribute in `shard_key`.
        self._key_attrs = key_attrs
        #: What Relation.partition / Database.partition route on: the
        #: bare attribute for single keys (compat with custom hashers),
        #: the component tuple for compound keys.
        self._partition_attr = key_attrs[0] if len(key_attrs) == 1 else key_attrs
        self.partitioned = frozenset(
            rel for rel, schema in query.relations.items()
            if all(attr in schema for attr in key_attrs)
        )
        if not self.partitioned:
            raise ValueError(
                f"no relation contains shard key {self.shard_key!r}; "
                "sharding would replicate everything"
            )
        self.replicated = frozenset(query.relations) - self.partitioned
        self._hasher = hasher

        # Stateless reference tree: the coordinator needs the tree *shape*
        # (leaf schemas for routing, per-node relation sets for the merge
        # rule) but holds no views — state lives in the shards.
        self.tree = build_view_tree(
            query, self.order, collapse_chains=collapse_chains
        )
        if materialize == "all":
            self.flags = {node.name: True for node in self.tree.nodes}
        elif materialize == "auto":
            self.flags = materialization_flags(self.tree, self.updatable)
        else:
            raise ValueError("materialize must be 'auto' or 'all'")
        self._nodes: Dict[str, ViewNode] = {
            node.name: node for node in self.tree.nodes
        }
        #: Views whose subtree touches a partitioned relation: global
        #: contents are the ⊎ of the per-shard fragments.  The rest sit
        #: over purely replicated subtrees, are identical in every shard,
        #: and are read from shard 0 alone.
        self._summed = frozenset(
            node.name
            for node in self.tree.nodes
            if self.flags[node.name] and (node.relations & self.partitioned)
        )

        forkless = "fork" not in multiprocessing.get_all_start_methods()
        if executor == "process" and forkless:
            executor = "inline"
        if executor == "socket" and shard_addresses is None and forkless:
            executor = "inline"  # self-hosting forks its loopback hosts
        if executor not in ("inline", "process", "socket"):
            raise ValueError(
                "executor must be 'inline', 'process', or 'socket'"
            )
        if shard_addresses is not None and executor != "socket":
            raise ValueError(
                "shard_addresses requires executor='socket'"
            )
        library = ProgramLibrary() if executor == "inline" else None

        def factory() -> FIVMEngine:
            """One shard-local engine of the shared configuration."""
            return FIVMEngine(
                query,
                order=self.order,
                updatable=self.updatable,
                collapse_chains=collapse_chains,
                materialize=materialize,
                group_aware=group_aware,
                compiled=compiled,
                backend=backend,
                storage=storage,
                program_library=library,
            )

        #: The per-shard engines inherit the trigger backend unchanged —
        #: the backend policy is node-local, so it composes with sharding.
        #: Resolved (and validated) here, before any worker forks, through
        #: the same helper the shard engines themselves use.
        self.backend = resolve_backend(backend, compiled)
        #: Per-shard view storage ("dict" or "columnar"), validated up
        #: front like the backend; the coordinator itself holds no views.
        self.storage = resolve_storage(storage)

        factories = [factory] * self.shards
        if executor == "inline":
            self._exec = _InlineShards(factories)
        elif executor == "process":
            self._exec = _ProcessShards(
                factories,
                recv_timeout=recv_timeout,
                supervise=supervise,
                checkpoint_every=checkpoint_every,
                max_restarts=max_restarts,
                faults=faults,
                pipeline_depth=pipeline_depth,
            )
        else:
            self._exec = _SocketShards(
                factories,
                shard_addresses=shard_addresses,
                recv_timeout=recv_timeout,
                supervise=supervise,
                checkpoint_every=checkpoint_every,
                max_restarts=max_restarts,
                faults=faults,
                pipeline_depth=pipeline_depth,
            )
        self.executor = self._exec.kind
        #: Effective send-ahead window depth (0 = synchronous protocol).
        self.pipeline_depth = self._exec.pipeline_depth
        if db is not None:
            self.initialize(db)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _split_listing(self, delta: Relation) -> Dict[int, Relation]:
        """Per-shard fragments of a listing delta (empty fragments elided);
        replicated relations broadcast the whole delta."""
        if delta.name in self.replicated:
            return {shard: delta for shard in range(self.shards)}
        fragments = delta.partition(
            self._partition_attr, self.shards, self._hasher
        )
        return {
            shard: fragment
            for shard, fragment in enumerate(fragments)
            if not fragment.is_empty
        }

    def _split_factorized(
        self, update: FactorizedUpdate
    ) -> Dict[int, FactorizedUpdate]:
        """Route a factorized delta: within each rank-1 term, the factor
        carrying the shard key is hash-partitioned and the other factors
        ride along unchanged, so terms stay in product form per shard.
        A compound key whose components span *different* factors has no
        such pivot; that term is flattened to a single full-schema factor
        (sound by multilinearity — the flat relation is the term) and the
        flat relation is partitioned instead."""
        rel = update.relation
        if rel in self.replicated:
            return {shard: update for shard in range(self.shards)}
        key_attrs = self._key_attrs
        schema = self.query.relations[rel]
        per_shard: List[List[List[Relation]]] = [[] for _ in range(self.shards)]
        for term in update.terms:
            pivot = next(
                (
                    i for i, factor in enumerate(term)
                    if all(attr in factor.schema for attr in key_attrs)
                ),
                None,
            )
            if pivot is None:
                flat = FactorizedUpdate(
                    rel, [term], ring=self.query.ring
                ).flatten(schema, name=rel)
                fragments = flat.partition(
                    self._partition_attr, self.shards, self._hasher
                )
                for shard, fragment in enumerate(fragments):
                    if not fragment.is_empty:
                        per_shard[shard].append([fragment])
                continue
            fragments = term[pivot].partition(
                self._partition_attr, self.shards, self._hasher
            )
            for shard, fragment in enumerate(fragments):
                if fragment.is_empty:
                    continue
                routed = list(term)
                routed[pivot] = fragment
                per_shard[shard].append(routed)
        return {
            shard: FactorizedUpdate(rel, terms, ring=self.query.ring)
            for shard, terms in enumerate(per_shard)
            if terms
        }

    def _zero_root(self) -> Relation:
        root = self.tree.root
        return Relation(root.name, root.keys, self.query.ring)

    def _merge_data(self, total: Relation, data: dict) -> None:
        fragment = Relation(total.name, total.schema, self.query.ring)
        fragment._data = data
        total.absorb_bulk(fragment)

    def _submit_merged(self, requests: Dict[int, tuple]) -> Relation:
        """Submit one mutating operation and hand back its root delta.

        Synchronous executors (and ``pipeline_depth=0``) return a plain,
        already-merged :class:`Relation`.  Pipelined executors return a
        :class:`~repro.core.engine.DeferredRelation`: the acks are still
        in flight, and the merge runs on first read (or at the
        :meth:`flush` barrier) — the caller decides whether the root
        delta is worth a round trip.
        """
        handle = self._exec.submit(requests)
        if not handle.waiting:
            total = self._zero_root()
            for data in handle.payloads.values():
                self._merge_data(total, _thaw(data))
            return total
        root = self.tree.root

        def resolve() -> dict:
            """Collect the per-shard root deltas and ring-merge them."""
            total = self._zero_root()
            for data in handle.resolve().values():
                self._merge_data(total, _thaw(data))
            return total._data

        return DeferredRelation(root.name, root.keys, self.query.ring, resolve)

    # ------------------------------------------------------------------
    # Update triggers (the same surface as FIVMEngine)
    # ------------------------------------------------------------------

    def apply_update(self, delta: Relation) -> Relation:
        """Route ``δR`` to its shards; returns the ring-merged root delta
        (equal, key for key, to the single-engine root delta).  Under a
        pipelined executor the delta is deferred — see :meth:`flush`."""
        check_delta(self.tree, self.updatable, delta)
        if delta.is_empty:
            return self._zero_root()
        requests = {
            shard: ("update", fragment)
            for shard, fragment in self._split_listing(delta).items()
        }
        return self._submit_merged(requests)

    def apply_factorized_update(self, update: FactorizedUpdate) -> Relation:
        """Route a factorized delta in product form (see
        :meth:`_split_factorized`); returns the merged root delta."""
        if not self.query.ring.is_commutative:
            raise ValueError(
                "factorized updates require a commutative payload ring"
            )
        check_factorized(self.tree, self.updatable, update)
        if not update.terms:
            return self._zero_root()
        requests = {
            shard: ("factorized", routed)
            for shard, routed in self._split_factorized(update).items()
        }
        return self._submit_merged(requests)

    def apply_batch(self, deltas: Iterable) -> Relation:
        """The batched multi-relation trigger, sharded: every item is
        routed, each shard coalesces and path-schedules its own sub-batch
        (the engines share the planner hook), and the per-shard totals are
        ring-merged.  Items are validated up front so a malformed item
        cannot leave the shards partially updated."""
        items = list(deltas)
        for item in items:
            if isinstance(item, FactorizedUpdate):
                if not self.query.ring.is_commutative:
                    raise ValueError(
                        "factorized updates require a commutative payload "
                        "ring"
                    )
                check_factorized(self.tree, self.updatable, item)
            else:
                check_delta(self.tree, self.updatable, item)
        per_shard: Dict[int, List[object]] = {}
        for item in items:
            if isinstance(item, FactorizedUpdate):
                routed = self._split_factorized(item)
            else:
                if item.is_empty:
                    continue
                routed = self._split_listing(item)
            for shard, part in routed.items():
                per_shard.setdefault(shard, []).append(part)
        requests = {
            shard: ("batch", parts) for shard, parts in per_shard.items()
        }
        if not requests:
            return self._zero_root()
        return self._submit_merged(requests)

    def apply_decomposed_update(self, delta: Relation) -> Relation:
        """Decompose a listing delta into factors, then route factored
        (mirrors :meth:`FIVMEngine.apply_decomposed_update`)."""
        if not self.query.ring.is_commutative or delta.is_empty:
            return self.apply_update(delta)
        update = decompose(delta)
        if len(update.terms[0]) <= 1:
            return self.apply_update(delta)
        return self.apply_factorized_update(update)

    def flush(self) -> None:
        """Barrier: collect every outstanding pipelined root-delta ack.

        A no-op for synchronous executors.  Reads (:meth:`result`,
        :meth:`contents`, :meth:`view_sizes`, …) and :meth:`initialize`
        flush implicitly, so they always observe every update submitted
        before them; call this explicitly to bound the in-flight window
        at stream checkpoints or before measuring.
        """
        self._exec.flush()

    def initialize(self, db: Database) -> None:
        """Partition a database snapshot and (re)load every shard."""
        shard_attrs = {
            rel: (self._partition_attr if rel in self.partitioned else None)
            for rel in self.query.relations
        }
        shard_dbs = db.partition(shard_attrs, self.shards, self._hasher)
        self._exec.run({
            shard: ("init", list(shard_dbs[shard]))
            for shard in range(self.shards)
        })

    # ------------------------------------------------------------------
    # Merged state access
    # ------------------------------------------------------------------

    def result(self) -> Relation:
        """The maintained query result, ring-merged across shards."""
        return self.contents(self.tree.root.name)

    def contents(self, view_name: str) -> Relation:
        """Global contents of a materialized view.

        Partition-touching views merge their per-shard fragments with
        ``⊎``; purely replicated views are read from shard 0 (every shard
        holds an identical copy).
        """
        node = self._nodes.get(view_name)
        if node is None or not self.flags[view_name]:
            raise KeyError(f"no materialized view {view_name!r}")
        out = Relation(view_name, node.keys, self.query.ring)
        if view_name in self._summed:
            requests = {
                shard: ("view", view_name) for shard in range(self.shards)
            }
        else:
            requests = {0: ("view", view_name)}
        for data in self._exec.run(requests).values():
            self._merge_data(out, data)
        return out

    def merged_views(self) -> Dict[str, Relation]:
        """All materialized views, merged (one round-trip per shard)."""
        replies = self._exec.run({
            shard: ("views",) for shard in range(self.shards)
        })
        out: Dict[str, Relation] = {}
        for name in self.materialized_names():
            node = self._nodes[name]
            merged = Relation(name, node.keys, self.query.ring)
            sources = (
                range(self.shards) if name in self._summed else (0,)
            )
            for shard in sources:
                self._merge_data(merged, replies[shard][name])
            out[name] = merged
        return out

    def materialized_names(self) -> Tuple[str, ...]:
        """Sorted names of the views every shard materializes."""
        return tuple(sorted(
            name for name, flagged in self.flags.items() if flagged
        ))

    def view_sizes(self) -> Dict[str, int]:
        """Physical keys per view, summed across shards (replicated views
        count once per shard — that is what each shard actually stores)."""
        replies = self._exec.run({
            shard: ("sizes",) for shard in range(self.shards)
        })
        sizes: Dict[str, int] = {}
        for reply in replies.values():
            for name, count in reply.items():
                sizes[name] = sizes.get(name, 0) + count
        return sizes

    def total_keys(self) -> int:
        """Total physical keys stored across all shards and views."""
        return sum(self.view_sizes().values())

    @property
    def shard_restarts(self) -> List[int]:
        """Per-shard supervisor restart counts (all zeros for the inline
        executor, which cannot lose a worker)."""
        return list(getattr(self._exec, "restarts", [0] * self.shards))

    def logical_scalars(self) -> int:
        """Resident logical scalars across all shards (the sharded hook
        for :func:`repro.bench.memory.strategy_scalars`)."""
        replies = self._exec.run({
            shard: ("scalars",) for shard in range(self.shards)
        })
        return sum(replies.values())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down worker processes (no-op for the inline executor)."""
        self._exec.close()

    def __enter__(self) -> "ShardedFIVMEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
