"""A typed delta-program IR: one lowering, many trigger backends.

The engine's planner (:meth:`FIVMEngine._compile_plans`) fixes, per
``(node, source)`` delta entry point, a greedy probe order over the node's
stored siblings and indicators.  Historically that plan was *realized*
three separate times — a dict-binding interpreter, a flat slot-program
generator, and a factor-program generator — so every new capability had to
be wired into each path by hand.  This module is the seam that unifies
them: the plan is lowered **once** into a small typed IR, and every
executor is a *backend* over the same program:

* :class:`InterpreterDeltaProgram` / :class:`InterpreterFactorProgram`
  (this module) walk the IR directly — the executable reference semantics
  (``FIVMEngine(backend="interpreter")``, the old ``compiled=False``);
* :mod:`repro.core.plan_exec` generates specialized Python source from the
  IR (``backend="source"``, the default) — DBToaster-style triggers with
  the generate/bind split that lets sharded engines share code objects;
* :mod:`repro.core.kernels` executes the IR with vectorized NumPy kernels
  for rings that expose array hooks (``backend="kernels"``) — keys packed
  into arrays, payload products and ``Ring.sum`` folds replaced by stacked
  array arithmetic and grouped reductions.

Flat programs (listing deltas)
------------------------------

A :class:`DeltaProgram` evaluates one node's delta view for a delta
entering at one source.  Every attribute that is probed, lifted, or part
of the output key gets an explicit **register** (dead attributes get
none); ops reference registers by index:

* :class:`Probe` — read a target through its primary map: a full-key
  lookup, a whole-relation scan (no shared attributes), or — when
  ``aggregated`` — a whole-relation ring-sum collapse (loop-invariant,
  hoisted by every backend);
* :class:`IndexProbe` — read a target through a secondary index on a
  proper subset of its schema: iterate the matching bucket (binding the
  ``extend`` registers) or, when ``aggregated``, read the per-bucket ring
  sum (the group-aware join);
* :class:`Accumulate` — the innermost op: multiply the payload factors in
  the interpreter's exact order (children by child position, aggregated
  indicator counts, the indicator sign, then the folded lifting product),
  and accumulate onto the output key built from registers.

Factor programs (factorized deltas)
-----------------------------------

A :class:`FactorProgramIR` propagates one rank-1 term (a list of factor
dicts over pairwise-disjoint schemas) through a node, mirroring
marginalization-past-joins (Section 5 of the paper):

* :class:`AppendSibling` — a stored sibling sharing no attributes with the
  term joins the factor list by aliasing its primary map (read-only);
* :class:`SiblingMerge` — a sibling sharing attributes is merged with the
  sharing factors through one fused loop nest; variables whose coverage
  completes inside the merge are dropped on the fly (the fused
  ``join_project``).  The probe against the sibling takes one of five
  modes (see :attr:`SiblingMerge.mode`);
* :class:`Marginalize` — leftover marginalizations, fused per factor; a
  pristine (whole-sibling) collapse is memoized per view state;
* :class:`Flatten` — at materialized nodes, the factors are multiplied out
  into a delta dict in the node's key order.

**IR-level probe memos.**  Sibling reads that collapse state to one value
are memoized in the engine's probe cache (``cache[view][site][subkey]``),
and because the memo is decided here — at lowering time, as the op's
``mode`` — every backend shares it:

* ``"cached"`` — an aggregated probe whose summed-out attributes are
  lifted: the folded bucket sum is memoized per subkey;
* ``"memo"`` — a **partial-match probe**: the bucket is iterated and some
  extends survive downstream, so the memo stores the bucket *reduced* to
  the surviving extends — dropped lifted extends folded into the payload,
  rows pre-aggregated per surviving key — and later terms (and later
  relations of a batch) iterate the reduced rows instead of the raw
  bucket.  This is the bucket-iteration probe sharing the flat modes
  could not cache before;
* pristine :class:`Marginalize` collapses are memoized per view state
  under key ``0``.

All memos key under the *view name*, so the engine's per-write
invalidation (:meth:`FIVMEngine._invalidate`) keeps every backend sound.
Factorized updates require a commutative ring, which is what makes the
lift folding and pre-aggregation inside the memos legal.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.relation import Relation

__all__ = [
    "Probe",
    "IndexProbe",
    "Accumulate",
    "DeltaProgram",
    "AppendSibling",
    "SiblingMerge",
    "Marginalize",
    "Flatten",
    "FactorSlot",
    "FactorProgramIR",
    "lower_delta_plan",
    "lower_factor_plan",
    "InterpreterDeltaProgram",
    "InterpreterFactorProgram",
    "cache_site",
]


# ----------------------------------------------------------------------
# Flat delta programs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Probe:
    """Probe a target through its primary map.

    ``probe_attrs`` is either the target's full schema (a point lookup) or
    empty (no shared attributes: iterate the whole map, or — when
    ``aggregated`` — collapse it to one ring sum, hoisted out of the delta
    loop by every backend).  ``extend`` lists ``(key position, register)``
    pairs for the attributes the probe binds that are live downstream.
    """

    target: int
    kind: str  # "child" | "ind"
    child_slot: int  # child position in the payload product; -1 for "ind"
    probe_attrs: Tuple[str, ...]
    probe_regs: Tuple[int, ...]
    extend: Tuple[Tuple[int, int], ...]
    aggregated: bool


@dataclass(frozen=True)
class IndexProbe:
    """Probe a target through a secondary index on a proper attribute
    subset: iterate the matching bucket, or — when ``aggregated`` — read
    the per-bucket ring sum (the group-aware join; bucket sums may hold
    cancelled zeros, so backends test them)."""

    target: int
    kind: str
    child_slot: int
    probe_attrs: Tuple[str, ...]
    probe_regs: Tuple[int, ...]
    extend: Tuple[Tuple[int, int], ...]
    aggregated: bool


@dataclass(frozen=True)
class Accumulate:
    """The innermost op of a flat program: the payload product (in the
    reference order — fixed here so every backend multiplies identically,
    which is what keeps non-commutative rings safe) followed by the folded
    lifting product, accumulated onto the output key."""

    #: Ordered factor references: ``("source", 0)`` is the delta payload,
    #: ``("op", i)`` the payload bound by op ``i``.
    factors: Tuple[Tuple[str, int], ...]
    #: ``(variable, register)`` pairs, in marginalization order.
    lifts: Tuple[Tuple[str, int], ...]
    out_regs: Tuple[int, ...]


@dataclass(frozen=True)
class DeltaProgram:
    """A lowered flat delta trigger for one ``(node, source)`` plan."""

    node_name: str
    source: Tuple[str, int]
    source_attrs: Tuple[str, ...]
    out_schema: Tuple[str, ...]
    #: ``(delta key position, register)`` loads executed per delta tuple.
    loads: Tuple[Tuple[int, int], ...]
    ops: Tuple[object, ...]
    accumulate: Accumulate
    target_schemas: Tuple[Tuple[str, ...], ...]
    n_registers: int


def lower_delta_plan(node, source, plan, target_schemas, query) -> DeltaProgram:
    """Lower one delta-join plan (the engine's ``_PlanStep`` list) to IR.

    Reads only schemas and plan structure — never live relation state — so
    the result is valid for any engine holding an isomorphic view tree
    (the property the generate/bind split and the sharding layer rely on).
    """
    kind, idx = source
    if kind == "child":
        source_attrs = node.children[idx].keys
    else:
        source_attrs = node.indicators[idx].attrs
    lift_entries = [(var, query.lifting.get(var)) for var in node.marginalized]
    out_attrs = node.keys

    # Attribute liveness: needed_after[i] = attrs read after step i's probe
    # (later probes, output keys, lifted variables).  Extends outside this
    # set never get a register.
    live = {var for var, lift in lift_entries if lift is not None}
    live |= set(out_attrs)
    needed_after: List[set] = [set()] * len(plan)
    for i in range(len(plan) - 1, -1, -1):
        needed_after[i] = set(live)
        live |= set(plan[i].probe_attrs)
    source_needed = live

    registers: Dict[str, int] = {}

    def reg(attr: str) -> int:
        """Stable register index for ``attr`` (allocated on first use)."""
        index = registers.get(attr)
        if index is None:
            index = len(registers)
            registers[attr] = index
        return index

    loads = tuple(
        (position, reg(attr))
        for position, attr in enumerate(source_attrs)
        if attr in source_needed
    )

    ops: List[object] = []
    for i, step in enumerate(plan):
        schema = target_schemas[i]
        probe = step.probe_attrs
        probe_regs = tuple(registers[a] for a in probe)
        if step.aggregated:
            extend: Tuple[Tuple[int, int], ...] = ()
        else:
            extend = tuple(
                (schema.index(attr), reg(attr))
                for attr in step.extend_attrs
                if attr in needed_after[i]
            )
        cls = Probe if (probe == schema or not probe) else IndexProbe
        ops.append(cls(
            target=i,
            kind=step.kind,
            child_slot=step.index if step.kind == "child" else -1,
            probe_attrs=probe,
            probe_regs=probe_regs,
            extend=extend,
            aggregated=step.aggregated,
        ))

    # Payload product order (the reference order): children by child
    # position — the source child's payload sits at its own position —
    # then aggregated indicator counts in op order, then the indicator
    # sign (central), then the folded lifting product.
    pay_by_child: Dict[int, Tuple[str, int]] = {}
    ind_sums: List[Tuple[str, int]] = []
    if kind == "child":
        pay_by_child[idx] = ("source", 0)
    for i, op in enumerate(ops):
        if op.kind == "child":
            pay_by_child[op.child_slot] = ("op", i)
        elif op.aggregated:
            ind_sums.append(("op", i))
        # Non-aggregated indicator probes are pure filters (payload 1).
    factors = [pay_by_child[c] for c in sorted(pay_by_child)] + ind_sums
    if kind == "ind":
        factors.append(("source", 0))
    lifts = tuple(
        (var, registers[var]) for var, lift in lift_entries if lift is not None
    )
    missing = [a for a in out_attrs if a not in registers]
    if missing:  # pragma: no cover - the planner always binds output keys
        raise RuntimeError(
            f"delta program for {node.name}: output keys {missing} unbound"
        )
    return DeltaProgram(
        node_name=node.name,
        source=source,
        source_attrs=tuple(source_attrs),
        out_schema=tuple(out_attrs),
        loads=loads,
        ops=tuple(ops),
        accumulate=Accumulate(
            factors=tuple(factors),
            lifts=lifts,
            out_regs=tuple(registers[a] for a in out_attrs),
        ),
        target_schemas=tuple(tuple(s) for s in target_schemas),
        n_registers=len(registers),
    )


# ----------------------------------------------------------------------
# Factor programs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FactorSlot:
    """One live factor of a rank-1 term flowing through a node.

    ``pristine`` names the stored sibling view a slot aliases (read-only);
    collapses of pristine slots depend only on the view state and are
    memoized per view in the probe cache.
    """

    id: int
    schema: Tuple[str, ...]
    pristine: Optional[str] = None


@dataclass(frozen=True)
class AppendSibling:
    """Alias a disjoint stored sibling's primary map as a new factor."""

    target: int
    name: str
    slot: FactorSlot


@dataclass(frozen=True)
class SiblingMerge:
    """Merge a stored sibling into the factors it shares attributes with.

    The sharing factors (``inputs``) are iterated — they are tiny delta
    vectors — and the sibling is probed per combination.  ``mode`` selects
    the probe specialization, decided once here for every backend:

    * ``"full"`` — the probe covers the sibling's whole schema: one
      primary-map lookup;
    * ``"sum"`` — all extends are summed out, none lifted: read the
      secondary index's per-bucket ring sum;
    * ``"cached"`` — all extends summed out, some lifted: fold the bucket
      once (lifts applied) and memoize the sum per subkey in the probe
      cache;
    * ``"memo"`` — some extends survive downstream (the partial-match
      probe): reduce the bucket to the surviving extends — dropped lifted
      extends folded in, rows pre-aggregated per surviving key — memoize
      the reduced rows per subkey, and iterate those;
    * ``"iterate"`` — plain bucket iteration (``group_aware=False``).
    """

    target: int
    target_name: str
    target_schema: Tuple[str, ...]
    inputs: Tuple[FactorSlot, ...]
    probe_attrs: Tuple[str, ...]
    extends: Tuple[str, ...]
    #: Extends surviving into ``out.schema`` (the ``"memo"`` reduction key),
    #: in target-schema order.
    kept_extends: Tuple[str, ...]
    drop: Tuple[str, ...]
    #: Dropped lifted extends as ``(target key position, variable)`` —
    #: folded into the probe result ("cached"/"memo") or applied per row
    #: ("iterate").
    ext_lifts: Tuple[Tuple[int, str], ...]
    #: Dropped lifted variables bound by the iterated factors, applied per
    #: row (in drop order).
    row_lifts: Tuple[str, ...]
    out: FactorSlot
    mode: str


@dataclass(frozen=True)
class Marginalize:
    """Sum the given variables out of one factor (lifts applied); pristine
    inputs collapse once per view state (memoized under key ``0``)."""

    input: FactorSlot
    vars: Tuple[str, ...]
    #: ``(key position, variable)`` for the lifted subset of ``vars``.
    lifted: Tuple[Tuple[int, str], ...]
    out: FactorSlot


@dataclass(frozen=True)
class Flatten:
    """Materialize the factor product in the node's key order."""

    inputs: Tuple[FactorSlot, ...]
    out_keys: Tuple[str, ...]


@dataclass(frozen=True)
class FactorProgramIR:
    """A lowered factorized trigger for one node, source, and partition."""

    node_name: str
    source: Tuple[str, int]
    partition: Tuple[Tuple[str, ...], ...]
    #: The incoming factors' slots, aligned with ``partition``.
    initial_slots: Tuple[FactorSlot, ...]
    #: :class:`AppendSibling` / :class:`SiblingMerge`, in target order.
    ops: Tuple[object, ...]
    margs: Tuple[Marginalize, ...]
    flatten: Optional[Flatten]
    #: The factors handed to the parent, in slot order; the parent's
    #: program is compiled for ``out_partition``.
    out_slots: Tuple[FactorSlot, ...]
    out_partition: Tuple[Tuple[str, ...], ...]
    materialized: bool
    group_aware: bool


def lower_factor_plan(
    node,
    source,
    partition: Sequence[Tuple[str, ...]],
    target_names: Sequence[str],
    target_schemas: Sequence[Tuple[str, ...]],
    materialized: bool,
    query,
    group_aware: bool = True,
) -> FactorProgramIR:
    """Lower the factorized trigger for one node, source, and partition.

    ``partition`` is the tuple of factor schemas of the incoming rank-1
    term (pairwise disjoint); ``target_names``/``target_schemas`` describe
    the stored siblings in merge order (children in child order, the
    entering child skipped, then hosted indicator projections).  Like
    :func:`lower_delta_plan`, reads no live relation state.
    """
    kind, idx = source
    if kind != "child":
        raise ValueError("factorized deltas always enter through a child")
    if not partition:
        raise ValueError("a factor program needs at least one factor")
    lift_table = query.lifting.table()
    droppable = set(node.marginalized) - set(node.keys)

    next_id = [0]

    def new_slot(schema, pristine=None) -> FactorSlot:
        """Allocate the next factor slot over ``schema``."""
        slot = FactorSlot(next_id[0], tuple(schema), pristine)
        next_id[0] += 1
        return slot

    initial = tuple(new_slot(schema) for schema in partition)
    slots: List[FactorSlot] = list(initial)
    fused_away: set = set()
    ops: List[object] = []

    for ti in range(len(target_schemas)):
        ts = tuple(target_schemas[ti])
        ts_set = set(ts)
        sharing = [i for i, slot in enumerate(slots) if ts_set & set(slot.schema)]
        if not sharing:
            slot = new_slot(ts, pristine=target_names[ti])
            ops.append(AppendSibling(target=ti, name=target_names[ti], slot=slot))
            slots.append(slot)
            continue
        pending: set = set()
        for later in target_schemas[ti + 1:]:
            pending |= set(later)
        rest = [i for i in range(len(slots)) if i not in set(sharing)]
        rest_attrs = {a for i in rest for a in slots[i].schema}
        shared_attrs = {a for i in sharing for a in slots[i].schema}
        merged_schema: List[str] = list(ts)
        for i in sharing:
            merged_schema += [a for a in slots[i].schema if a not in merged_schema]
        droppable_now = droppable - pending
        drop = tuple(
            v for v in merged_schema
            if v in droppable_now and v not in rest_attrs
        )
        out_schema = tuple(a for a in merged_schema if a not in drop)
        fused_away.update(drop)

        probe = tuple(a for a in ts if a in shared_attrs)
        extends = tuple(a for a in ts if a not in shared_attrs)
        dropped_extends = tuple(a for a in extends if a in drop)
        kept_extends = tuple(a for a in extends if a not in drop)
        aggregated = bool(
            group_aware and extends and len(dropped_extends) == len(extends)
        )
        ext_lifts = tuple(
            (ts.index(a), a) for a in dropped_extends
            if lift_table.get(a) is not None
        )
        if not extends:
            mode = "full"
        elif aggregated:
            mode = "cached" if ext_lifts else "sum"
        elif group_aware:
            mode = "memo"
        else:
            mode = "iterate"
        if mode == "iterate":
            row_lift_pool = shared_attrs | set(extends)
        else:
            row_lift_pool = shared_attrs
        row_lifts = tuple(
            v for v in drop
            if lift_table.get(v) is not None and v in row_lift_pool
        )
        if mode == "iterate":
            # Per-row lifts cover the dropped extends too; nothing to fold.
            ext_lifts = ()
        out = new_slot(out_schema)
        ops.append(SiblingMerge(
            target=ti,
            target_name=target_names[ti],
            target_schema=ts,
            inputs=tuple(slots[i] for i in sharing),
            probe_attrs=probe,
            extends=extends,
            kept_extends=kept_extends,
            drop=drop,
            ext_lifts=ext_lifts,
            row_lifts=row_lifts,
            out=out,
            mode=mode,
        ))
        slots = [slots[i] for i in rest] + [out]

    # Leftover marginalizations, fused per factor.
    marg_vars: Dict[int, List[str]] = {}
    for var in node.marginalized:
        if var in fused_away:
            continue
        for i, slot in enumerate(slots):
            if var in slot.schema:
                marg_vars.setdefault(i, []).append(var)
                break
        else:
            raise RuntimeError(f"variable {var} not found in any delta factor")
    margs: List[Marginalize] = []
    for i, vars_i in marg_vars.items():
        slot = slots[i]
        var_set = set(vars_i)
        out_schema = tuple(a for a in slot.schema if a not in var_set)
        lifted = tuple(
            (slot.schema.index(v), v) for v in vars_i
            if lift_table.get(v) is not None
        )
        out = new_slot(out_schema)
        margs.append(Marginalize(
            input=slot, vars=tuple(vars_i), lifted=lifted, out=out
        ))
        slots[i] = out

    flatten: Optional[Flatten] = None
    if materialized:
        covered: set = set()
        for slot in slots:
            covered |= set(slot.schema)
        if covered != set(node.keys):
            raise RuntimeError(
                f"flattened delta schema {sorted(covered)} != view keys "
                f"{node.keys} at {node.name}"
            )
        flatten = Flatten(inputs=tuple(slots), out_keys=tuple(node.keys))

    return FactorProgramIR(
        node_name=node.name,
        source=source,
        partition=tuple(tuple(s) for s in partition),
        initial_slots=initial,
        ops=tuple(ops),
        margs=tuple(margs),
        flatten=flatten,
        out_slots=tuple(slots),
        out_partition=tuple(slot.schema for slot in slots),
        materialized=materialized,
        group_aware=group_aware,
    )


# ----------------------------------------------------------------------
# Probe-cache plumbing shared by every backend
# ----------------------------------------------------------------------


def cache_site(cache, view, site):
    """The per-``(view, site)`` memo dict inside a probe cache.

    ``cache`` maps view names to per-view dicts (the engine invalidates a
    whole view's entries by popping its name); each op instance owns a
    unique ``site`` sentinel keying its own sub-dict, so two ops probing
    the same view never collide — across backends too.
    """
    per_view = cache.get(view)
    if per_view is None:
        per_view = cache[view] = {}
    per_site = per_view.get(site)
    if per_site is None:
        per_site = per_view[site] = {}
    return per_site


def reduce_bucket(bucket, op: SiblingMerge, ring, lift_fns):
    """The ``"memo"`` reduction of a bucket: rows projected onto the
    surviving extends, dropped lifted extends folded into the payload,
    payloads pre-aggregated per surviving key.  Shared by the interpreter
    and kernel backends (the source backend emits its specialized copy).
    """
    schema = op.target_schema
    kept_positions = [schema.index(a) for a in op.kept_extends]
    mul = ring.mul
    acc: Dict[tuple, list] = {}
    for tkey, tpay in bucket.items():
        value = tpay
        for position, var in op.ext_lifts:
            value = mul(value, lift_fns[var](tkey[position]))
        ekey = tuple(tkey[p] for p in kept_positions)
        current = acc.get(ekey)
        if current is None:
            acc[ekey] = [value]
        else:
            current.append(value)
    rsum = ring.sum
    is_zero = ring.is_zero
    rows = []
    for ekey, values in acc.items():
        total = values[0] if len(values) == 1 else rsum(values)
        if not is_zero(total):
            rows.append((ekey, total))
    return tuple(rows)


# ----------------------------------------------------------------------
# The interpreter backend: walk the IR directly
# ----------------------------------------------------------------------


class InterpreterDeltaProgram:
    """Reference executor for a flat :class:`DeltaProgram`.

    Walks the ops per delta tuple with an explicit register file and a
    work stack — the executable semantics the generated backends are held
    to by the differential suites.
    """

    backend = "interpreter"

    __slots__ = ("ir", "ring", "_targets", "_lift_fns")

    def __init__(self, ir: DeltaProgram, targets, query):
        self.ir = ir
        self.ring = query.ring
        self._targets = list(targets)
        lift_table = query.lifting.table()
        self._lift_fns = [(reg, lift_table[var]) for var, reg in ir.accumulate.lifts]
        for op in ir.ops:
            if isinstance(op, IndexProbe):
                self._targets[op.target].register_index(op.probe_attrs)

    def run(self, delta: Relation) -> Relation:
        """Interpret the trigger IR over ``delta``; returns the root delta."""
        ir = self.ir
        ring = self.ring
        mul = ring.mul
        out = Relation(ir.node_name, ir.out_schema, ring)
        add = out.add
        ops = ir.ops
        n_ops = len(ops)

        # Hoist loop-invariant whole-target collapses.
        hoisted: Dict[int, object] = {}
        for i, op in enumerate(ops):
            if op.aggregated and not op.probe_attrs:
                total = ring.sum(self._targets[op.target]._data.values())
                if ring.is_zero(total):
                    return out
                hoisted[i] = total

        factors = ir.accumulate.factors
        lifts = self._lift_fns
        out_regs = ir.accumulate.out_regs
        for key, psrc in delta._data.items():
            regs: List[object] = [None] * ir.n_registers
            for position, r in ir.loads:
                regs[r] = key[position]
            stack = [(0, regs, [None] * n_ops)]
            while stack:
                depth, rg, vals = stack.pop()
                if depth == n_ops:
                    value = None
                    for where, i in factors:
                        factor = psrc if where == "source" else vals[i]
                        value = factor if value is None else mul(value, factor)
                    lv = None
                    for r, lift in lifts:
                        term = lift(rg[r])
                        lv = term if lv is None else mul(lv, term)
                    if value is None:
                        value = ring.one if lv is None else lv
                    elif lv is not None:
                        value = mul(value, lv)
                    add(tuple(rg[r] for r in out_regs), value)
                    continue
                op = ops[depth]
                target = self._targets[op.target]
                subkey = tuple(rg[r] for r in op.probe_regs)
                if op.aggregated:
                    if not op.probe_attrs:
                        total = hoisted[depth]
                    elif isinstance(op, Probe):
                        # Full-key probe: the stored payload is the bucket
                        # sum (primary-map entries are never zero).
                        total = target._data.get(subkey)
                        if total is None:
                            continue
                    else:
                        total = target._indexes[op.probe_attrs][2].get(subkey)
                        if total is None or ring.is_zero(total):
                            continue
                    new_vals = list(vals)
                    new_vals[depth] = total
                    stack.append((depth + 1, rg, new_vals))
                    continue
                if isinstance(op, Probe):
                    if op.probe_attrs:
                        payload = target._data.get(subkey)
                        rows = ((subkey, payload),) if payload is not None else ()
                    else:
                        rows = target._data.items()
                else:
                    bucket = target._indexes[op.probe_attrs][1].get(subkey)
                    rows = bucket.items() if bucket else ()
                for tkey, tpayload in rows:
                    if op.extend:
                        new_rg = list(rg)
                        for position, r in op.extend:
                            new_rg[r] = tkey[position]
                    else:
                        new_rg = rg
                    if op.kind == "child":
                        new_vals = list(vals)
                        new_vals[depth] = tpayload
                    else:
                        new_vals = vals  # indicator rows filter (payload 1)
                    stack.append((depth + 1, new_rg, new_vals))
        return out


class InterpreterFactorProgram:
    """Reference executor for a :class:`FactorProgramIR`.

    Same run contract as the generated factor programs:
    ``run(fdatas, cache) -> (out_dicts, flat_or_None)`` with
    ``(None, None)`` when a factor cancelled to empty.
    """

    backend = "interpreter"

    __slots__ = (
        "ir", "ring", "out_partition", "_targets", "_lift_table", "_sites",
    )

    def __init__(self, ir: FactorProgramIR, targets, query):
        self.ir = ir
        self.ring = query.ring
        self.out_partition = ir.out_partition
        self._targets = list(targets)
        self._lift_table = query.lifting.table()
        #: Per-op cache-site sentinels (fresh per binding, like the source
        #: backend's ``("sentinel",)`` environment requests).
        self._sites: Dict[int, object] = {}
        for op in ir.ops:
            if isinstance(op, SiblingMerge):
                if op.probe_attrs != op.target_schema:
                    self._targets[op.target].register_index(op.probe_attrs)
                if op.mode in ("cached", "memo"):
                    self._sites[id(op)] = object()
        for op in ir.margs:
            if op.input.pristine is not None:
                self._sites[id(op)] = object()

    # -- op executors ---------------------------------------------------

    def _finalize(self, acc: dict) -> dict:
        rsum = self.ring.sum
        is_zero = self.ring.is_zero
        dead = []
        for key, values in acc.items():
            total = values[0] if len(values) == 1 else rsum(values)
            if is_zero(total):
                dead.append(key)
            else:
                acc[key] = total
        for key in dead:
            del acc[key]
        return acc

    def _merge(self, op: SiblingMerge, slot_data, cache):
        ring = self.ring
        mul = ring.mul
        target = self._targets[op.target]
        lift_table = self._lift_table
        schema = op.target_schema
        mode = op.mode
        if mode in ("sum", "cached", "memo", "iterate") and (
            op.probe_attrs != schema
        ):
            index = target._indexes[op.probe_attrs]
        else:
            index = None
        site = None
        if mode in ("cached", "memo"):
            site = cache_site(cache, op.target_name, self._sites[id(op)])
        row_lift_fns = [(v, lift_table[v]) for v in op.row_lifts]
        acc: Dict[tuple, list] = {}

        input_schemas = [slot.schema for slot in op.inputs]
        input_dicts = [slot_data[slot.id] for slot in op.inputs]
        for combo in itertools.product(*(d.items() for d in input_dicts)):
            binding: Dict[str, object] = {}
            base = None
            for (fkey, fpay), fschema in zip(combo, input_schemas):
                for attr, value in zip(fschema, fkey):
                    binding[attr] = value
                base = fpay if base is None else mul(base, fpay)
            subkey = tuple(binding[a] for a in op.probe_attrs)

            if mode == "full":
                payload = target._data.get(subkey)
                rows = (((), payload),) if payload is not None else ()
            elif mode == "sum":
                total = index[2].get(subkey)
                if total is None or ring.is_zero(total):
                    rows = ()
                else:
                    rows = (((), total),)
            elif mode == "cached":
                total = site.get(subkey)
                if total is None:
                    bucket = index[1].get(subkey)
                    if bucket is None:
                        total = ring.zero
                    else:
                        values = []
                        for tkey, tpay in bucket.items():
                            value = tpay
                            for position, var in op.ext_lifts:
                                value = mul(
                                    value, lift_table[var](tkey[position])
                                )
                            values.append(value)
                        total = ring.sum(values)
                    site[subkey] = total
                rows = () if ring.is_zero(total) else (((), total),)
            elif mode == "memo":
                rows = site.get(subkey)
                if rows is None:
                    bucket = index[1].get(subkey)
                    rows = (
                        reduce_bucket(bucket, op, ring, lift_table)
                        if bucket else ()
                    )
                    site[subkey] = rows
            else:  # "iterate"
                bucket = index[1].get(subkey)
                rows = ()
                if bucket:
                    ext_positions = [
                        (schema.index(a), a) for a in op.extends
                    ]
                    rows = tuple(
                        (
                            tuple(tkey[p] for p, _ in ext_positions),
                            tpay,
                        )
                        for tkey, tpay in bucket.items()
                    )

            ext_attrs = op.extends if mode == "iterate" else op.kept_extends
            for ekey, spayload in rows:
                row_binding = binding
                if ext_attrs:
                    row_binding = dict(binding)
                    for attr, value in zip(ext_attrs, ekey):
                        row_binding[attr] = value
                value = mul(base, spayload) if base is not None else spayload
                for var, lift in row_lift_fns:
                    value = mul(value, lift(row_binding[var]))
                out_key = tuple(row_binding[a] for a in op.out.schema)
                current = acc.get(out_key)
                if current is None:
                    acc[out_key] = [value]
                else:
                    current.append(value)
        return self._finalize(acc)

    def _marginalize(self, op: Marginalize, data, cache):
        ring = self.ring
        mul = ring.mul
        site = None
        if op.input.pristine is not None:
            site = cache_site(cache, op.input.pristine, self._sites[id(op)])
            memo = site.get(0)
            if memo is not None:
                return memo
        schema = op.input.schema
        keep_positions = [
            i for i, a in enumerate(schema) if a not in set(op.vars)
        ]
        lifted = [(position, self._lift_table[var]) for position, var in op.lifted]
        acc: Dict[tuple, list] = {}
        for key, payload in data.items():
            value = payload
            for position, lift in lifted:
                value = mul(value, lift(key[position]))
            out_key = tuple(key[p] for p in keep_positions)
            current = acc.get(out_key)
            if current is None:
                acc[out_key] = [value]
            else:
                current.append(value)
        result = self._finalize(acc)
        if site is not None:
            site[0] = result
        return result

    def _flatten(self, op: Flatten, slot_data):
        ring = self.ring
        mul = ring.mul
        is_zero = ring.is_zero

        input_schemas = [slot.schema for slot in op.inputs]
        input_dicts = [slot_data[slot.id] for slot in op.inputs]
        if len(op.inputs) == 1 and input_schemas[0] == op.out_keys:
            return dict(input_dicts[0])
        flat: Dict[tuple, object] = {}
        for combo in itertools.product(*(d.items() for d in input_dicts)):
            binding: Dict[str, object] = {}
            value = None
            for (fkey, fpay), fschema in zip(combo, input_schemas):
                for attr, v in zip(fschema, fkey):
                    binding[attr] = v
                value = fpay if value is None else mul(value, fpay)
            # Factor schemas are disjoint, so each combination lands on a
            # distinct key — but products of non-zeros can cancel.
            if not is_zero(value):
                flat[tuple(binding[a] for a in op.out_keys)] = value
        return flat

    # -- the run contract -------------------------------------------------

    def run(self, fdatas, cache):
        """Interpret the factorized IR over the update's factor dicts."""
        ir = self.ir
        slot_data: Dict[int, dict] = {
            slot.id: fdatas[i] for i, slot in enumerate(ir.initial_slots)
        }
        for op in ir.ops:
            if isinstance(op, AppendSibling):
                slot_data[op.slot.id] = self._targets[op.target]._data
                continue
            merged = self._merge(op, slot_data, cache)
            if not merged:
                return (None, None)
            slot_data[op.out.id] = merged
        for op in ir.margs:
            reduced = self._marginalize(op, slot_data[op.input.id], cache)
            if not reduced:
                return (None, None)
            slot_data[op.out.id] = reduced
        flat = self._flatten(ir.flatten, slot_data) if ir.flatten else None
        outs = tuple(slot_data[slot.id] for slot in ir.out_slots)
        return outs, flat
