"""Extending view trees with indicator projections (Figure 10, Appendix B).

For cyclic queries, a view defined over a strict subset of the relations can
be asymptotically larger than the query result (Example B.1: the view over
S ⊗ T in the triangle query has O(N²) keys).  Joining in an *indicator
projection* ``∃_pk R`` of an absent relation closes the cycle and bounds the
view at O(N) without changing the query result, since indicator payloads
are 1.

``add_indicator_projections`` traverses the tree bottom-up; at each view it
collects candidate indicators — relations not used by the view that share
attributes with its children — and attaches exactly those that the GYO
reduction places in a cyclic core together with the children.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.hypergraph import gyo_residual
from repro.core.view_tree import ViewNode, ViewTree

__all__ = ["IndicatorSpec", "add_indicator_projections"]


class IndicatorSpec:
    """A planned indicator projection attached to a view node."""

    __slots__ = ("base_name", "attrs", "name")

    def __init__(self, base_name: str, attrs: Tuple[str, ...], name: str = ""):
        self.base_name = base_name
        self.attrs = tuple(attrs)
        self.name = name or f"exists_{''.join(self.attrs)}_{base_name}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"∃_{{{', '.join(self.attrs)}}} {self.base_name}"


def add_indicator_projections(tree: ViewTree) -> ViewTree:
    """Adorn ``tree`` with indicator projections per the I(τ) algorithm.

    Mutates the nodes' ``indicators`` lists in place and returns the tree.
    Must be applied before an engine is built over the tree (materialization
    decisions depend on the indicators).
    """
    query = tree.query
    all_relations = set(query.relations)

    def visit(node: ViewNode) -> None:
        """Attach indicator projections bottom-up below ``node``."""
        for child in node.children:
            visit(child)
        if node.is_leaf or len(node.children) < 2:
            return
        joint = set()
        for child in node.children:
            joint |= set(child.keys)
        child_edges = [(f"child:{c.name}", tuple(c.keys)) for c in node.children]
        candidates: List[Tuple[str, Tuple[str, ...]]] = []
        for rel in sorted(all_relations - set(node.relations)):
            pk = tuple(a for a in query.schema_of(rel) if a in joint)
            if pk:
                candidates.append((f"ind:{rel}", pk))
        if not candidates:
            return
        residual = {
            label for label, _ in gyo_residual(child_edges + candidates)
        }
        for label, pk in candidates:
            if label in residual:
                rel = label.split(":", 1)[1]
                node.indicators.append(IndicatorSpec(rel, pk))

    visit(tree.root)
    return tree
