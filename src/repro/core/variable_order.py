"""Variable orders (Definition 3.1): the plans of factorized computation.

A variable order for a join query is a rooted forest with one node per query
variable such that, for each relation, all of its variables lie along a
single root-to-leaf path.  ``dep(X)`` — the ancestors of ``X`` on which the
subtree rooted at ``X`` depends — determines the keys of the view created at
``X`` (Figure 3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.query import Query
from repro.data.schema import SchemaError

__all__ = ["VONode", "VariableOrder"]

#: Nested specification format: a variable name, or a (name, [children]) pair.
Spec = Union[str, Tuple[str, Sequence["Spec"]]]


class VONode:
    """A node of a variable order: a variable and its child subtrees."""

    __slots__ = ("var", "children")

    def __init__(self, var: str, children: Optional[List["VONode"]] = None):
        self.var = var
        self.children: List[VONode] = children or []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.children:
            return self.var
        return f"{self.var}({', '.join(map(repr, self.children))})"


def _parse_spec(spec: Spec) -> VONode:
    if isinstance(spec, str):
        return VONode(spec)
    var, children = spec
    return VONode(var, [_parse_spec(child) for child in children])


class VariableOrder:
    """A rooted forest over query variables with derived structure caches."""

    def __init__(self, roots: Sequence[VONode]):
        self.roots: Tuple[VONode, ...] = tuple(roots)
        self._parent: Dict[str, Optional[str]] = {}
        self._nodes: Dict[str, VONode] = {}
        self._order: List[str] = []  # depth-first, pre-order
        for root in self.roots:
            self._index(root, None)

    def _index(self, node: VONode, parent: Optional[str]) -> None:
        if node.var in self._nodes:
            raise SchemaError(f"variable {node.var!r} occurs twice in order")
        self._nodes[node.var] = node
        self._parent[node.var] = parent
        self._order.append(node.var)
        for child in node.children:
            self._index(child, node.var)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, *specs: Spec) -> "VariableOrder":
        """Build from nested tuples, e.g. ``("A", ["B", ("C", ["D", "E"])])``."""
        return cls([_parse_spec(s) for s in specs])

    @classmethod
    def chain(cls, variables: Sequence[str]) -> "VariableOrder":
        """A single-path order; trivially valid for every query."""
        node: Optional[VONode] = None
        for var in reversed(variables):
            node = VONode(var, [node] if node else [])
        if node is None:
            raise SchemaError("cannot build an empty variable order")
        return cls([node])

    @classmethod
    def auto(cls, query: Query) -> "VariableOrder":
        """Heuristic construction that is valid for any (even cyclic) query.

        Recursively picks a root variable for each connected component —
        preferring free variables (the paper keeps free variables on top),
        then variables shared by the most relations — and partitions the
        residual hypergraph into components handled as child subtrees.
        Every relation's variables stay on one path because the relation's
        remaining variables always share a component (they are connected
        through the relation itself).
        """
        free = set(query.free)
        edges = [set(schema) for schema in query.relations.values()]

        def components(varset: Set[str]) -> List[Set[str]]:
            """Connected components of ``varset`` under the join edges."""
            remaining = set(varset)
            result: List[Set[str]] = []
            while remaining:
                seed = next(iter(remaining))
                group = {seed}
                frontier = {seed}
                while frontier:
                    nxt: Set[str] = set()
                    for edge in edges:
                        touched = edge & frontier
                        if touched:
                            nxt |= (edge & remaining) - group
                    group |= nxt
                    frontier = nxt
                result.append(group)
                remaining -= group
            return result

        def occurrence(var: str) -> int:
            """How many relations mention ``var``."""
            return sum(1 for edge in edges if var in edge)

        def build(varset: Set[str]) -> VONode:
            """Build the subtree for one connected component."""
            # Prefer free variables on top, then high-occurrence variables;
            # name-based tie-break keeps construction deterministic.
            root = min(
                varset,
                key=lambda v: (v not in free, -occurrence(v), v),
            )
            rest = varset - {root}
            children = [build(group) for group in components(rest)]
            return VONode(root, children)

        forest = [build(group) for group in components(set(query.variables))]
        return cls(forest)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def variables(self) -> Tuple[str, ...]:
        """All variables in depth-first pre-order (a canonical global order)."""
        return tuple(self._order)

    def node(self, var: str) -> VONode:
        """The order node of ``var``; raises :class:`KeyError` if absent."""
        try:
            return self._nodes[var]
        except KeyError:
            raise KeyError(f"variable {var!r} not in order") from None

    def parent(self, var: str) -> Optional[str]:
        """Parent variable of ``var`` (``None`` at a root)."""
        return self._parent[var]

    def ancestors(self, var: str) -> Tuple[str, ...]:
        """Ancestors of ``var``, root first."""
        chain: List[str] = []
        current = self._parent[var]
        while current is not None:
            chain.append(current)
            current = self._parent[current]
        return tuple(reversed(chain))

    def subtree_vars(self, var: str) -> Set[str]:
        """Variables in the subtree rooted at ``var`` (inclusive)."""
        result: Set[str] = set()
        stack = [self.node(var)]
        while stack:
            node = stack.pop()
            result.add(node.var)
            stack.extend(node.children)
        return result

    def canonical_sort(self, attrs: Iterable[str]) -> Tuple[str, ...]:
        """Sort attributes by their depth-first position (stable key order)."""
        position = {v: i for i, v in enumerate(self._order)}
        return tuple(sorted(attrs, key=lambda a: position[a]))

    # ------------------------------------------------------------------
    # Query-specific structure
    # ------------------------------------------------------------------

    def validate(self, query: Query) -> None:
        """Check Definition 3.1 for ``query`` (raising on violations)."""
        order_vars = set(self._order)
        query_vars = set(query.variables)
        if order_vars != query_vars:
            raise SchemaError(
                f"order covers {sorted(order_vars)} but query has "
                f"{sorted(query_vars)}"
            )
        for rel, schema in query.relations.items():
            if not schema:
                continue
            anchor = self.anchor(schema)
            on_path = set(self.ancestors(anchor)) | {anchor}
            stray = set(schema) - on_path
            if stray:
                raise SchemaError(
                    f"relation {rel}{list(schema)} is not on one root-to-leaf "
                    f"path: {sorted(stray)} not above {anchor}"
                )

    def anchor(self, schema: Sequence[str]) -> str:
        """The lowest (deepest) variable of ``schema`` in the order.

        This is where the relation's leaf is attached when extending the
        order into a view tree.  Raises if the schema is not totally ordered
        by the ancestor relation (i.e. not on one path).
        """
        depth = {v: len(self.ancestors(v)) for v in schema}
        anchor = max(schema, key=lambda v: depth[v])
        above = set(self.ancestors(anchor)) | {anchor}
        if not set(schema) <= above:
            raise SchemaError(
                f"schema {list(schema)} does not lie on one path"
            )
        return anchor

    def dep(self, query: Query, var: str) -> Set[str]:
        """``dep(X)``: ancestors of ``X`` relevant to the subtree at ``X``.

        Computed as ancestors(X) ∩ vars(relations having a variable in the
        subtree of X), matching the examples of Figure 2a.
        """
        subtree = self.subtree_vars(var)
        touched: Set[str] = set()
        for schema in query.relations.values():
            if subtree & set(schema):
                touched |= set(schema)
        return set(self.ancestors(var)) & touched

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VariableOrder({', '.join(map(repr, self.roots))})"
