"""Partial materialization and the point-lookup serving layer.

Full materialization maintains every key of every view on every update —
but real read traffic is point lookups over a skewed key distribution,
and most maintained entries are never read.  This module implements the
Noria-style alternative (*Partial IVM for request-serving*, see
SNIPPETS.md): a view in **partial** mode only holds entries for keys in
its *active set* — the keys someone has actually looked up — and the
engine drops root deltas for every other key before doing the root's
probe work.

The three moving parts:

* :class:`ActiveSet` — per partial view: the LRU-ordered registered keys
  with their logical-scalar costs (the memory accounting of
  :mod:`repro.bench.memory`), the *drop records* for deltas discarded on
  unregistered keys, and the serving statistics.  The engine's write
  choke point (:meth:`FIVMEngine._write_view`) filters every absorb into
  a partial view through it, and the clock-style LRU evictor trims the
  set back under its scalar budget after every admit;
* :func:`upquery` — the cold-key read path: a single-key probe cascade
  down the factorized view tree.  The binding (the looked-up key) is
  pushed into each child as an index probe on the shared attributes
  (:meth:`Relation.lookup` — the same secondary-index machinery the
  delta-join plans use), unmaterialized children recurse to *their*
  children, and the surviving slices are joined and marginalized exactly
  like a view delta (:func:`compute_view`).  Because every view below a
  partial view is maintained fully (the engine forces the upquery
  support set at construction), the recomputed value is correct no
  matter which deltas were previously dropped — which is what makes
  drop-then-reregister sound;
* :class:`ViewClient` — the request-shaped front door:
  ``lookup(view_name, key)`` / ``lookup_many``.  Hot keys are answered
  from the maintained partial view (and LRU-touched); cold keys trigger
  an upquery, register the key (clearing its drop record), and are
  incrementally maintained from then on.  Against a full-materialization
  engine the client degrades to plain view reads, so callers can switch
  modes without changing their read path.

The asyncio request loop (many readers, one writer, epoch handoff) sits
one level up in :mod:`repro.serve`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.memory import payload_scalars
from repro.core.view_tree import ViewNode, compute_view
from repro.data.relation import Relation

__all__ = ["ActiveSet", "ViewClient", "upquery", "view_slice"]

Key = Tuple[object, ...]


class ActiveSet:
    """The served-key registry of one partial view.

    Tracks, in LRU order, every key registered for maintenance together
    with its logical-scalar cost (``key width + payload scalars``, the
    unit of :mod:`repro.bench.memory`), the drop records for deltas
    discarded on unregistered keys, and the serving counters.  The
    engine owns the stored payloads; this class only decides *which*
    keys are resident and which must go when ``budget`` is exceeded.
    """

    __slots__ = ("name", "width", "budget", "entries", "total_cost",
                 "dropped", "stats")

    def __init__(self, name: str, keys: Sequence[str],
                 budget: Optional[int] = None):
        self.name = name
        self.width = max(1, len(tuple(keys)))
        #: Logical-scalar budget for the active entries (``None``:
        #: unbounded).  Measured exactly like
        #: :func:`repro.bench.memory.relation_scalars` measures views.
        self.budget = budget
        self.entries: "OrderedDict[Key, int]" = OrderedDict()
        self.total_cost = 0
        #: Keys whose deltas were dropped while unregistered — the
        #: invalidation records.  Registration must clear the record (the
        #: upquery recomputes from fully maintained children, so the
        #: dropped deltas are already reflected in the recomputed value).
        #: A set, not a counter: the hot write path records whole delta
        #: key-sets with one C-speed union.
        self.dropped: set = set()
        self.stats = {
            "hits": 0, "misses": 0, "upqueries": 0, "evictions": 0,
            "dropped_deltas": 0, "reactivations": 0,
        }

    def __contains__(self, key: Key) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def touch(self, key: Key) -> None:
        """Mark ``key`` most-recently-used."""
        self.entries.move_to_end(key)

    def admit(self, key: Key, payload_cost: int = 0) -> None:
        """Register ``key`` as actively maintained (most-recently-used)."""
        if key in self.entries:
            self.touch(key)
            return
        cost = self.width + payload_cost
        self.entries[key] = cost
        self.total_cost += cost
        if key in self.dropped:
            self.dropped.discard(key)
            self.stats["reactivations"] += 1

    def update_cost(self, key: Key, payload_cost: int) -> None:
        """Re-account an active key after its stored payload changed."""
        old = self.entries.get(key)
        if old is None:
            return
        cost = self.width + payload_cost
        self.entries[key] = cost
        self.total_cost += cost - old

    def record_drop(self, key: Key) -> None:
        """Note a delta dropped for inactive ``key`` (re-serve must upquery)."""
        self.dropped.add(key)
        self.stats["dropped_deltas"] += 1

    def record_drops(self, keys) -> None:
        """Bulk :meth:`record_drop` (one set union — the write hot path)."""
        n = len(keys)
        if n:
            self.dropped.update(keys)
            self.stats["dropped_deltas"] += n

    def over_budget(self) -> bool:
        """Whether stored cost exceeds the configured budget."""
        return self.budget is not None and self.total_cost > self.budget

    def pop_lru(self) -> Key:
        """Evict the least-recently-used key from the registry."""
        key, cost = self.entries.popitem(last=False)
        self.total_cost -= cost
        self.stats["evictions"] += 1
        return key


# ----------------------------------------------------------------------
# Upqueries: the single-key probe cascade
# ----------------------------------------------------------------------


def _restrict(relation: Relation, binding: Dict[str, object]) -> Relation:
    """The slice of ``relation`` matching ``binding`` on shared attrs.

    Probes through a secondary index on the shared attributes (registered
    on demand — idempotent, then maintained by the normal write path),
    through the primary map when the binding covers the whole schema, or
    returns the relation untouched when nothing is shared (the upquery
    then joins it wholesale, exactly as a delta plan would scan it).
    """
    shared = tuple(a for a in relation.schema if a in binding)
    if not shared:
        return relation
    subkey = tuple(binding[a] for a in shared)
    if shared != relation.schema:
        relation.register_index(shared)
    out = Relation(relation.name, relation.schema, relation.ring)
    out._data = dict(relation.lookup(shared, subkey))
    return out


def view_slice(engine, node: ViewNode, binding: Dict[str, object]) -> Relation:
    """Contents of ``node`` restricted to ``binding``, probing stored
    state where it exists and recursing where it does not.

    * a fully materialized view (or stored base) answers with one index
      probe on the bound attributes;
    * a partial view never answers from its own (incomplete) storage —
      it recomputes from its children, like an unmaterialized view;
    * an unmaterialized inner view joins its children's slices and
      marginalizes, via the same :func:`compute_view` the initializer
      uses — restriction commutes with join/marginalize because the
      bound attributes are key attributes and pass through unchanged.
    """
    stored = engine.views.get(node.name)
    if stored is not None and node.name not in engine.partial:
        return _restrict(stored, binding)
    if node.is_leaf:
        raise RuntimeError(
            f"upquery reached unmaterialized base {node.leaf_of!r}; "
            "partial engines must force the upquery support set"
        )
    child_slices = [
        view_slice(engine, child, binding) for child in node.children
    ]
    ind_slices = [
        _restrict(iv.relation, binding) for iv in engine._indicators_at(node)
    ]
    return compute_view(node, child_slices, engine.query, ind_slices)


def upquery(engine, view_name: str, key: Key):
    """Recompute one key's payload through the view tree (cold read).

    The factorized structure makes this a probe cascade: the key binds
    the view's key attributes, each child contributes its matching slice
    (an index probe on stored children, a recursive cascade on
    unmaterialized or partial ones), and the slices are joined and
    marginalized like a single-view evaluation.  Returns the ring
    payload (ring zero when the key has no support).
    """
    node = _node_by_name(engine, view_name)
    key = tuple(key)
    if len(key) != len(node.keys):
        raise KeyError(
            f"key {key} does not match {view_name} keys {node.keys}"
        )
    binding = dict(zip(node.keys, key))
    if node.is_leaf:
        raise KeyError(f"{view_name} is a base relation, not a served view")
    result = view_slice(
        engine, node, binding
    ) if node.name in engine.partial or node.name not in engine.views else (
        _restrict(engine.views[node.name], binding)
    )
    if node.name in engine.partial:
        active = engine.partial[node.name]
        active.stats["upqueries"] += 1
    return result.payload(key)


def _node_by_name(engine, view_name: str) -> ViewNode:
    for node in engine.tree.nodes:
        if node.name == view_name:
            return node
    raise KeyError(f"no view named {view_name!r}")


# ----------------------------------------------------------------------
# The request-shaped read path
# ----------------------------------------------------------------------


class ViewClient:
    """Point lookups on maintained views — the serving front door.

    ``lookup(view_name, key)`` answers from the maintained view when the
    key is hot (registered in the view's active set, LRU-touched on every
    hit), and runs an :func:`upquery` when it is cold — registering the
    key afterwards so it is incrementally maintained until evicted.
    Against a full-materialization engine every key is "hot" and the
    client is a thin wrapper over ``view.payload``; the read path is the
    same either way, which is what the differential oracle leans on.
    """

    def __init__(self, engine):
        self.engine = engine

    # -- reads ----------------------------------------------------------

    def lookup(self, view_name: str, key: Iterable):
        """The payload of ``key`` in ``view_name`` (ring zero when absent)."""
        engine = self.engine
        key = tuple(key)
        active = engine.partial.get(view_name)
        if active is None:
            view = engine.views.get(view_name)
            if view is None:
                raise KeyError(f"view {view_name!r} is not materialized")
            return view.payload(key)
        if key in active:
            active.stats["hits"] += 1
            active.touch(key)
            return engine.views[view_name].payload(key)
        active.stats["misses"] += 1
        return self._activate(view_name, active, key)

    def lookup_many(self, view_name: str, keys: Iterable[Iterable]) -> List:
        """Batched :meth:`lookup` (one list in, payloads out, same order)."""
        return [self.lookup(view_name, key) for key in keys]

    # -- cold-key registration -----------------------------------------

    def _activate(self, view_name: str, active: ActiveSet, key: Key):
        """Upquery a cold key, register it, and store its value.

        Order matters: the key is admitted to the active set *before*
        the recomputed payload is written, so the engine's choke point
        accepts the write (and accounts its cost / evicts over budget)
        instead of dropping it as unregistered.
        """
        engine = self.engine
        value = upquery(engine, view_name, key)
        active.admit(key)
        if not engine.query.ring.is_zero(value):
            registered = Relation(
                view_name, engine.views[view_name].schema, engine.query.ring
            )
            registered._data = {key: value}
            engine._write_view(view_name, registered)
        else:
            engine._evict_over_budget(active)
        return value

    # -- introspection --------------------------------------------------

    def stats(self, view_name: str) -> Dict[str, int]:
        """A copy of the serving counters for one partial view."""
        active = self.engine.partial.get(view_name)
        if active is None:
            return {}
        out = dict(active.stats)
        out["active_keys"] = len(active)
        out["active_scalars"] = active.total_cost
        return out


def active_payload_cost(ring, payload) -> int:
    """Logical scalars a stored payload costs (bench/memory accounting)."""
    if ring.is_zero(payload):
        return 0
    return payload_scalars(payload)
