"""Slot-compiled delta programs: update triggers as generated code.

The engine's interpreter (:meth:`FIVMEngine._delta_at_node_interpreted`)
carries Python ``dict`` bindings from probe to probe, allocating a fresh
dict per delta tuple and copying it on every match.  This module compiles
each ``(node, source)`` delta-join plan **once**, at engine-construction
time, into a *slot program* — a specialized Python trigger in the style of
DBToaster's generated code:

* every attribute reachable in the plan gets a fixed slot, realized as a
  local register ``r<i>`` of the generated function (dead attributes — never
  probed, never lifted, never in the output keys — get no register at all);
* each probe becomes a direct dictionary ``get`` against the target
  relation's primary map or the bucket/sum dicts of its registered
  secondary index (no method dispatch, no projector call: the probe subkey
  is built from registers with a tuple display);
* group-aware (pre-aggregated) probes read the index's per-bucket ring sum;
  a bucket-sum probe with *no* shared attributes is loop-invariant and is
  hoisted out of the delta loop entirely;
* payload multiplication is unrolled in child order — followed by indicator
  counts, the indicator sign, and the lifting functions in marginalization
  order — exactly matching the interpreter, so non-commutative rings
  (matrix payloads) see the same product order;
* the output accumulates into a plain dict with the ring's ``add`` bound to
  a global of the generated function; zero payloads are dropped in one
  sweep at the end instead of being tested per accumulation.

Binding the index dictionaries at compile time is sound because the engine
creates all view/indicator relations before compiling and ``Relation``
mutates its primary map and index dicts strictly in place (``clear`` empties
them, it never replaces them).

The interpreter remains available via ``FIVMEngine(compiled=False)`` as the
executable reference semantics; the differential tests in
``tests/core/test_slot_programs.py`` hold the two (and full recomputation)
key-for-key equal across rings.

Factor slot programs
--------------------

The factorized-update path (Section 5) gets the same treatment.  A rank-1
term enters a node as a list of factor dicts over pairwise-disjoint
schemas; :func:`compile_factor_program` compiles, per ``(node, source,
partition)`` — the partition being the tuple of factor schemas — a trigger
that mirrors :meth:`FIVMEngine._propagate_factored` step for step:

* each sibling view sharing attributes with the term is merged through one
  fused loop nest: the sharing factors are iterated (they are tiny delta
  vectors), the sibling is probed through its primary map or a registered
  secondary index, and variables whose coverage completes inside the merge
  are marginalized on the fly (the compiled ``join_project``);
* a sibling sharing *nothing* is appended as a factor by aliasing its
  primary map — read-only, never copied;
* leftover marginalizations are fused per factor into one grouped pass;
* at materialized nodes the factors are flattened into a fresh delta dict
  in the node's key order (zero products dropped — truncating rings can
  cancel inside a product).

**Shared probe results.**  Sibling reads that collapse a whole bucket (or a
whole appended sibling) to one ring value are memoized in a caller-supplied
*probe cache*: ``cache[view_name][site][subkey] → value``, where ``site``
is a unique-per-compiled-op sentinel.  The engine passes one cache across
all terms of an update and across all relations of one ``apply_batch``
pass, and invalidates a view's entries whenever that view absorbs a delta
— so rank-r terms and multi-relation batches share sibling aggregation
work (the "truly simultaneous multi-path trigger").

Factorized updates require a commutative ring, so the generated code is
free to reorder and pre-aggregate payload products; accumulation still goes
through per-key contribution lists folded by ``ring.sum`` (vectorized for
the cofactor, degree, and product rings).

Generation vs binding (shard-local triggers)
--------------------------------------------

Compilation is split in two stages so that sharded engines can share the
expensive half:

* **generation** walks the plan and emits the trigger *source text* plus a
  list of :class:`environment requests <_Generated>` — symbolic
  descriptions ("the primary map of target 2", "the bucket dict of target
  0's index on (A, B)", "a fresh cache-site sentinel") of every
  target-derived global the code needs.  Generation reads only target
  *schemas and names*, never live relation state, so its output is valid
  for any engine holding an isomorphic view tree;
* **binding** realizes the requests against one engine's actual stored
  relations (registering any secondary index a probe needs) and execs
  the pre-compiled code object with those globals — per-shard dictionaries
  stay bound directly in the trigger's globals, so the run-time fast path
  is unchanged.

A :class:`ProgramLibrary` memoizes generated programs by a canonicalized
key — ``(node name, source, target schemas)`` plus, for factor programs,
the canonically sorted factor partition — so ``S`` hash-partitioned shard
engines built over the same query pay for code generation once and each
bind their own copy.  A library must only be shared by identically
configured engines (same query, order, and planner flags).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.data.relation import Relation

__all__ = [
    "SlotProgram",
    "compile_slot_program",
    "FactorProgram",
    "compile_factor_program",
    "ProgramLibrary",
    "canonical_partition",
]


def canonical_partition(partition: Sequence[Tuple[str, ...]]) -> tuple:
    """Sort factor schemas into the canonical (lexicographic) order.

    Returns ``(sorted_partition, permutation)`` where ``permutation[i]`` is
    the index in the *original* partition of the i-th canonical factor.
    Factor programs are cached per partition; canonicalizing first means
    permuted factor orders of the same decomposition — which are semantically
    identical on the (required) commutative ring — hit one compiled program
    instead of compiling duplicates.
    """
    order = sorted(range(len(partition)), key=lambda i: partition[i])
    return tuple(partition[i] for i in order), tuple(order)


class _Generated:
    """The shareable half of a compiled trigger: code + environment requests.

    ``requests`` is a list of ``(global_name, spec)`` pairs where ``spec``
    describes how to realize the binding against live targets:

    * ``("data", i)`` — the primary map of target ``i``;
    * ``("buckets", i, attrs)`` / ``("sums", i, attrs)`` — the bucket/sum
      dicts of target ``i``'s secondary index on ``attrs`` (registered at
      bind time when missing);
    * ``("lift", var)`` — the query's lifting function for ``var``;
    * ``("sentinel",)`` — a fresh per-binding cache-site identity.

    ``meta`` carries the program-class payload (the output schema for slot
    programs, the outgoing factor partition for factor programs).
    """

    __slots__ = ("code", "requests", "source_text", "meta")

    def __init__(self, code, requests, source_text, meta):
        self.code = code
        self.requests = requests
        self.source_text = source_text
        self.meta = meta


class ProgramLibrary:
    """A cross-engine cache of generated trigger code.

    Owned by :class:`repro.core.sharded.ShardedFIVMEngine` and handed to
    every shard's :class:`~repro.core.engine.FIVMEngine`: shard 0 generates
    and compiles each trigger's source once, shards 1..S-1 only re-bind the
    cached code object against their own view fragments.
    """

    def __init__(self):
        self._generated: Dict[tuple, _Generated] = {}

    def __len__(self) -> int:
        return len(self._generated)

    def lookup(self, key: tuple) -> Optional[_Generated]:
        return self._generated.get(key)

    def store(self, key: tuple, generated: _Generated) -> None:
        self._generated[key] = generated


def _bind_env(generated: _Generated, targets: Sequence[Relation], query) -> dict:
    """Realize a generated program's environment against live targets.

    Registers any secondary index the requests name (idempotent), then
    execs the code object so the trigger's globals point straight at this
    engine's dictionaries.
    """
    ring = query.ring
    env = {
        "_mul": ring.mul,
        "_add": ring.add,
        "_one": ring.one,
        "_iszero": ring.is_zero,
        "_rsum": ring.sum,
        "_zero": ring.zero,
        "_NONE": (None, None),
        "_finalize": _make_finalize(ring.sum, ring.is_zero),
        "_site": _cache_site,
    }
    lift_table = query.lifting.table()
    for name, spec in generated.requests:
        kind = spec[0]
        if kind == "data":
            env[name] = targets[spec[1]]._data
        elif kind == "buckets":
            target = targets[spec[1]]
            target.register_index(spec[2])
            env[name] = target._indexes[spec[2]][1]
        elif kind == "sums":
            target = targets[spec[1]]
            target.register_index(spec[2])
            env[name] = target._indexes[spec[2]][2]
        elif kind == "lift":
            env[name] = lift_table[spec[1]]
        elif kind == "sentinel":
            env[name] = object()
        else:  # pragma: no cover - generator/binder contract guard
            raise ValueError(f"unknown environment request {spec!r}")
    exec(generated.code, env)
    return env


class SlotProgram:
    """A compiled delta trigger for one ``(node, source)`` plan."""

    __slots__ = ("node_name", "out_schema", "ring", "_fn", "source_text")

    def __init__(self, node_name, out_schema, ring, fn, source_text):
        self.node_name = node_name
        self.out_schema = out_schema
        self.ring = ring
        self._fn = fn
        #: The generated Python source (for debugging and the test suite).
        self.source_text = source_text

    def run(self, delta: Relation) -> Relation:
        """Evaluate the node's delta view for ``delta`` entering at the
        compiled source; returns a fresh relation over the node's keys.

        The trigger collects per-key contribution lists; they are summed
        here in one ``ring.sum`` per key and zero totals dropped in a final
        sweep (the interpreter's eager per-``add`` zero test, deferred).
        """
        out = Relation(self.node_name, self.out_schema, self.ring)
        data = out._data
        self._fn(delta._data.items(), data)
        if data:
            ring = self.ring
            rsum = ring.sum
            is_zero = ring.is_zero
            dead = []
            for key, values in data.items():
                total = values[0] if len(values) == 1 else rsum(values)
                if is_zero(total):
                    dead.append(key)
                else:
                    data[key] = total
            for key in dead:
                del data[key]
        return out


def _tuple_display(registers: Sequence[str]) -> str:
    """Source text for a tuple built from registers (incl. 0/1-ary forms)."""
    if not registers:
        return "()"
    if len(registers) == 1:
        return f"({registers[0]},)"
    return "(" + ", ".join(registers) + ")"


def compile_slot_program(
    node, source, plan, targets, query, library: Optional[ProgramLibrary] = None
) -> SlotProgram:
    """Compile one delta-join plan into a :class:`SlotProgram`.

    ``plan`` is the engine's list of ``_PlanStep``; ``targets`` the stored
    relation each step probes, aligned with ``plan``.  Any secondary index a
    probe needs is registered at bind time (idempotent — the engine already
    registers them while planning).  With a ``library``, generated code is
    shared across engines holding isomorphic trees (sharding): only the
    environment binding is per-engine.
    """
    target_schemas = tuple(target.schema for target in targets)
    key = ("slot", node.name, source, target_schemas)
    generated = library.lookup(key) if library is not None else None
    if generated is None:
        generated = _generate_slot(node, source, plan, target_schemas, query)
        if library is not None:
            library.store(key, generated)
    env = _bind_env(generated, targets, query)
    return SlotProgram(
        node.name, generated.meta, query.ring, env["_trigger"],
        generated.source_text,
    )


def _generate_slot(node, source, plan, target_schemas, query) -> _Generated:
    """Generate the slot-program source and environment requests (no live
    relation state is read — see the module docstring)."""
    kind, idx = source
    if kind == "child":
        source_attrs = node.children[idx].keys
    else:
        source_attrs = node.indicators[idx].attrs
    lift_entries = [
        (var, query.lifting.get(var)) for var in node.marginalized
    ]
    out_attrs = node.keys

    # Attribute liveness: needed_after[i] = attrs read after step i's probe
    # (later probes, output keys, lifted variables).  Extends outside this
    # set never get a register — the compiled analogue of the interpreter
    # simply not copying dead binding entries.
    live = {var for var, lift in lift_entries if lift is not None}
    live |= set(out_attrs)
    needed_after: List[set] = [set()] * len(plan)
    for i in range(len(plan) - 1, -1, -1):
        needed_after[i] = set(live)
        live |= set(plan[i].probe_attrs)
    source_needed = live  # probes of all steps + output keys + lifts

    registers: Dict[str, str] = {}

    def reg(attr: str) -> str:
        name = registers.get(attr)
        if name is None:
            name = f"r{len(registers)}"
            registers[attr] = name
        return name

    requests: List[tuple] = []
    lines: List[str] = ["def _trigger(_items, _out):"]

    def emit(depth: int, text: str) -> None:
        lines.append("    " * depth + text)

    # Hoist loop-invariant group-aware probes (no shared attributes): the
    # whole sibling collapses to one ring sum, computed once per trigger.
    for i, step in enumerate(plan):
        requests.append((f"_data{i}", ("data", i)))
        if step.aggregated and not step.probe_attrs:
            emit(1, f"_t{i} = _rsum(_data{i}.values())")
            emit(1, f"if _iszero(_t{i}):")
            emit(2, "return")

    emit(1, "for _key, _psrc in _items:")
    depth = 2
    for position, attr in enumerate(source_attrs):
        if attr in source_needed:
            emit(depth, f"{reg(attr)} = _key[{position}]")

    pay_var_by_child: Dict[int, str] = {}
    ind_sum_vars: List[str] = []
    if kind == "child":
        pay_var_by_child[idx] = "_psrc"

    for i, step in enumerate(plan):
        schema = target_schemas[i]
        probe = step.probe_attrs
        if probe and probe != schema:
            requests.append((f"_bkt{i}", ("buckets", i, probe)))
            requests.append((f"_sum{i}", ("sums", i, probe)))
        probe_key = _tuple_display([registers[a] for a in probe])
        if step.aggregated:
            if not probe:
                pay = f"_t{i}"  # hoisted above the delta loop
            elif probe == schema:
                # Full-key probe: the stored payload *is* the bucket sum
                # (primary-map entries are never zero).
                emit(depth, f"_t{i} = _data{i}.get({probe_key})")
                emit(depth, f"if _t{i} is not None:")
                depth += 1
                pay = f"_t{i}"
            else:
                # Bucket sums may hold cancelled zeros; test them.
                emit(depth, f"_t{i} = _sum{i}.get({probe_key})")
                emit(depth, f"if _t{i} is not None and not _iszero(_t{i}):")
                depth += 1
                pay = f"_t{i}"
            if step.kind == "child":
                pay_var_by_child[step.index] = pay
            else:
                ind_sum_vars.append(pay)
        else:
            if probe == schema:
                emit(depth, f"_p{i} = _data{i}.get({probe_key})")
                emit(depth, f"if _p{i} is not None:")
                depth += 1
            elif not probe:
                emit(depth, f"for _k{i}, _p{i} in _data{i}.items():")
                depth += 1
            else:
                emit(depth, f"_b{i} = _bkt{i}.get({probe_key})")
                emit(depth, f"if _b{i}:")
                depth += 1
                emit(depth, f"for _k{i}, _p{i} in _b{i}.items():")
                depth += 1
            for attr in step.extend_attrs:
                if attr in needed_after[i]:
                    emit(depth, f"{reg(attr)} = _k{i}[{schema.index(attr)}]")
            if step.kind == "child":
                pay_var_by_child[step.index] = f"_p{i}"
            # Indicator listing probes are pure filters: payload 1 each.

    # Innermost body: the payload product in the interpreter's exact order —
    # children by child index, then aggregated indicator counts, then the
    # indicator sign (central), then lifts in marginalization order.  The
    # lift factors are folded together *first* and multiplied onto the
    # payload once: by associativity ``(v·l₁)·l₂ = v·(l₁·l₂)`` (order
    # preserved, so non-commutative rings are safe), and the intermediate
    # lift products stay small while the accumulated payload is the big one.
    factors = [pay_var_by_child[c] for c in sorted(pay_var_by_child)]
    factors += ind_sum_vars
    if kind == "ind":
        factors.append("_psrc")
    lift_terms = []
    for j, (var, lift) in enumerate(lift_entries):
        if lift is None:
            continue
        requests.append((f"_lift{j}", ("lift", var)))
        lift_terms.append(f"_lift{j}({registers[var]})")
    if lift_terms:
        emit(depth, f"_lv = {lift_terms[0]}")
        for term in lift_terms[1:]:
            emit(depth, f"_lv = _mul(_lv, {term})")
        factors.append("_lv")
    if not factors:
        emit(depth, "_v = _one")
    else:
        emit(depth, f"_v = {factors[0]}")
        for factor in factors[1:]:
            emit(depth, f"_v = _mul(_v, {factor})")
    missing = [a for a in out_attrs if a not in registers]
    if missing:  # pragma: no cover - the planner always binds output keys
        raise RuntimeError(
            f"slot program for {node.name}: output keys {missing} unbound"
        )
    # Accumulation is deferred: contributions are collected per output key
    # and summed once in :meth:`SlotProgram.run` via ``ring.sum`` — rings
    # with a vectorized sum (the cofactor ring stacks blocks) fold a whole
    # batch in a few array operations instead of pairwise allocations.
    # (Ring addition is commutative by the ring axioms, so the regrouping
    # is sound on every ring, including non-commutative-multiplication ones.)
    emit(depth, f"_ok = {_tuple_display([registers[a] for a in out_attrs])}")
    emit(depth, "_cur = _out.get(_ok)")
    emit(depth, "if _cur is None:")
    emit(depth + 1, "_out[_ok] = [_v]")
    emit(depth, "else:")
    emit(depth + 1, "_cur.append(_v)")

    source_text = "\n".join(lines) + "\n"
    code = compile(
        source_text, f"<slot-program {node.name}:{kind}{idx}>", "exec"
    )
    return _Generated(code, requests, source_text, out_attrs)


# ----------------------------------------------------------------------
# Factor slot programs (the compiled factorized-update path)
# ----------------------------------------------------------------------


def _cache_site(cache, view, site):
    """The per-``(view, site)`` memo dict inside a probe cache.

    ``cache`` maps view names to per-view dicts (the engine invalidates a
    whole view's entries by popping its name); each compiled op owns a
    unique ``site`` sentinel keying its own sub-dict, so two ops probing
    the same view never collide.
    """
    per_view = cache.get(view)
    if per_view is None:
        per_view = cache[view] = {}
    per_site = per_view.get(site)
    if per_site is None:
        per_site = per_view[site] = {}
    return per_site


def _make_finalize(rsum, iszero):
    """Fold per-key contribution lists with ``ring.sum``, dropping zeros."""

    def _finalize(data):
        dead = []
        for key, values in data.items():
            total = values[0] if len(values) == 1 else rsum(values)
            if iszero(total):
                dead.append(key)
            else:
                data[key] = total
        for key in dead:
            del data[key]
        return data

    return _finalize


class FactorProgram:
    """A compiled factorized-delta trigger for one ``(node, source)`` entry
    point and one factor-schema partition."""

    __slots__ = ("node_name", "out_partition", "ring", "_fn", "source_text")

    def __init__(self, node_name, out_partition, ring, fn, source_text):
        self.node_name = node_name
        #: Schemas of the factors the program hands to the parent node, in
        #: slot order — the parent's program is compiled for this partition.
        self.out_partition = out_partition
        self.ring = ring
        self._fn = fn
        #: The generated Python source (for debugging and the test suite).
        self.source_text = source_text

    def run(self, fdatas, cache):
        """Propagate one rank-1 term through the node.

        ``fdatas`` are the term's factor dicts aligned with the compiled
        partition; ``cache`` is the engine's probe cache.  Returns
        ``(out_dicts, flat_dict_or_None)`` — the outgoing factors (aligned
        with :attr:`out_partition`) and, at materialized nodes, the
        flattened delta in the node's key order — or ``(None, None)`` when
        a factor cancelled to empty (the delta is the ring zero from here
        on up).
        """
        return self._fn(fdatas, cache)


def compile_factor_program(
    node,
    source,
    partition: Sequence[Tuple[str, ...]],
    targets: Sequence[Relation],
    materialized: bool,
    query,
    group_aware: bool = True,
    library: Optional[ProgramLibrary] = None,
) -> FactorProgram:
    """Compile the factorized trigger for one node, source, and partition.

    ``partition`` is the tuple of factor schemas of the incoming rank-1
    term (pairwise disjoint, covering the source child's keys);
    ``targets`` the stored sibling relations in the interpreter's merge
    order (children in child order, the entering child skipped, then
    hosted indicator projections).  Mirrors
    :meth:`FIVMEngine._propagate_factored` op for op; secondary indexes
    the probes need are registered at bind time.  With a ``library``,
    generated code is shared across isomorphic engines (sharding); the
    engine canonicalizes ``partition`` before calling, so permuted factor
    orders of one decomposition share one cache entry too.
    """
    target_names = tuple(target.name for target in targets)
    target_schemas = tuple(target.schema for target in targets)
    key = (
        "factor", node.name, source, tuple(tuple(s) for s in partition),
        target_schemas, materialized, group_aware,
    )
    generated = library.lookup(key) if library is not None else None
    if generated is None:
        generated = _generate_factor(
            node, source, partition, target_names, target_schemas,
            materialized, query, group_aware,
        )
        if library is not None:
            library.store(key, generated)
    env = _bind_env(generated, targets, query)
    return FactorProgram(
        node.name, generated.meta, query.ring, env["_factor"],
        generated.source_text,
    )


def _generate_factor(
    node,
    source,
    partition: Sequence[Tuple[str, ...]],
    target_names: Sequence[str],
    target_schemas: Sequence[Tuple[str, ...]],
    materialized: bool,
    query,
    group_aware: bool,
) -> _Generated:
    """Generate the factor-program source and environment requests; reads
    target names and schemas only (see the module docstring)."""
    kind, idx = source
    if kind != "child":
        raise ValueError("factorized deltas always enter through a child")
    if not partition:
        raise ValueError("a factor program needs at least one factor")
    lift_table = query.lifting.table()
    droppable = set(node.marginalized) - set(node.keys)

    requests: List[tuple] = []
    lines: List[str] = ["def _factor(_fs, _cache):"]

    def emit(depth: int, text: str) -> None:
        lines.append("    " * depth + text)

    lift_names: Dict[str, str] = {}

    def lift_ref(var: str) -> str:
        name = lift_names.get(var)
        if name is None:
            name = f"_lift{len(lift_names)}"
            lift_names[var] = name
            requests.append((name, ("lift", var)))
        return name

    #: One entry per live factor: [schema, runtime expression, pristine
    #: sibling *name* or None].  A "pristine" slot aliases a stored
    #: sibling's primary map untouched — its collapses are cacheable.
    slots: List[list] = [
        [tuple(schema), f"_fs[{i}]", None] for i, schema in enumerate(partition)
    ]
    fused_away: Set[str] = set()
    op = 0

    # ---- sibling merges (the fused join_project loop nests) ----
    for ti in range(len(target_schemas)):
        ts = target_schemas[ti]
        ts_set = set(ts)
        sharing = [i for i, slot in enumerate(slots) if ts_set & set(slot[0])]
        if not sharing:
            requests.append((f"_sd{ti}", ("data", ti)))
            slots.append([ts, f"_sd{ti}", target_names[ti]])
            continue
        n = op
        op += 1
        pending: Set[str] = set()
        for later in target_schemas[ti + 1:]:
            pending |= set(later)
        rest = [i for i in range(len(slots)) if i not in set(sharing)]
        rest_attrs = {a for i in rest for a in slots[i][0]}
        shared_attrs = {a for i in sharing for a in slots[i][0]}
        merged_schema: List[str] = list(ts)
        for i in sharing:
            merged_schema += [a for a in slots[i][0] if a not in merged_schema]
        droppable_now = droppable - pending
        drop = tuple(
            v for v in merged_schema
            if v in droppable_now and v not in rest_attrs
        )
        out_schema = tuple(a for a in merged_schema if a not in drop)
        fused_away.update(drop)

        probe = tuple(a for a in ts if a in shared_attrs)
        extends = tuple(a for a in ts if a not in shared_attrs)
        dropped_extends = tuple(a for a in extends if a in drop)
        aggregated = bool(
            group_aware and extends and len(dropped_extends) == len(extends)
        )
        ext_lifts = [
            (ts.index(a), a) for a in dropped_extends
            if lift_table.get(a) is not None
        ]
        cached = aggregated and bool(ext_lifts)

        if probe != ts:
            requests.append((f"_bk{n}", ("buckets", ti, probe)))
            if aggregated and not cached:
                requests.append((f"_ss{n}", ("sums", ti, probe)))
        if probe == ts:
            requests.append((f"_sd{n}x", ("data", ti)))
        if cached:
            requests.append((f"_sid{n}", ("sentinel",)))
            emit(1, f"_cs{n} = _site(_cache, {target_names[ti]!r}, _sid{n})")

        registers: Dict[str, str] = {}

        def reg(attr: str, registers=registers, n=n) -> str:
            name = registers.get(attr)
            if name is None:
                name = f"r{n}_{len(registers)}"
                registers[attr] = name
            return name

        needed = set(probe) | set(out_schema) | {
            v for v in drop if lift_table.get(v) is not None
        }

        emit(1, f"_m{n} = {{}}")
        depth = 1
        for j, si in enumerate(sharing):
            schema_i, expr_i, _ = slots[si]
            kv = f"_k{n}_{j}"
            emit(depth, f"for {kv}, _p{n}_{j} in {expr_i}.items():")
            depth += 1
            for pos, attr in enumerate(schema_i):
                if attr in needed:
                    emit(depth, f"{reg(attr)} = {kv}[{pos}]")
        subkey = _tuple_display([registers[a] for a in probe])

        if not extends:
            # Full-key probe: the stored payload is the whole match.
            emit(depth, f"_t{n} = _sd{n}x.get({subkey})")
            emit(depth, f"if _t{n} is not None:")
            depth += 1
            sib_pay = f"_t{n}"
        elif aggregated and not cached:
            # Group-aware probe: the index bucket sum is the contribution
            # (no lifts on the summed-out attributes).  Sums may hold
            # cancelled zeros; test them.
            emit(depth, f"_t{n} = _ss{n}.get({subkey})")
            emit(depth, f"if _t{n} is not None and not _iszero(_t{n}):")
            depth += 1
            sib_pay = f"_t{n}"
        elif cached:
            # Lifted bucket collapse, memoized in the shared probe cache:
            # later terms (and later relations in a batch) probing the
            # same subkey reuse the folded sum.
            emit(depth, f"_sk{n} = {subkey}")
            emit(depth, f"_t{n} = _cs{n}.get(_sk{n})")
            emit(depth, f"if _t{n} is None:")
            emit(depth + 1, f"_b{n} = _bk{n}.get(_sk{n})")
            emit(depth + 1, f"if _b{n} is None:")
            emit(depth + 2, f"_t{n} = _zero")
            emit(depth + 1, "else:")
            emit(depth + 2, f"_acc{n} = []")
            emit(depth + 2, f"for _tk{n}, _tp{n} in _b{n}.items():")
            first = True
            for pos, var in ext_lifts:
                term = f"{lift_ref(var)}(_tk{n}[{pos}])"
                if first:
                    emit(depth + 3, f"_lv{n} = {term}")
                    first = False
                else:
                    emit(depth + 3, f"_lv{n} = _mul(_lv{n}, {term})")
            emit(depth + 3, f"_acc{n}.append(_mul(_tp{n}, _lv{n}))")
            emit(depth + 2, f"_t{n} = _rsum(_acc{n})")
            emit(depth + 1, f"_cs{n}[_sk{n}] = _t{n}")
            emit(depth, f"if not _iszero(_t{n}):")
            depth += 1
            sib_pay = f"_t{n}"
        else:
            emit(depth, f"_b{n} = _bk{n}.get({subkey})")
            emit(depth, f"if _b{n}:")
            depth += 1
            emit(depth, f"for _tk{n}, _tp{n} in _b{n}.items():")
            depth += 1
            ext_set = set(extends)
            for pos, attr in enumerate(ts):
                if attr in ext_set and attr in needed:
                    emit(depth, f"{reg(attr)} = _tk{n}[{pos}]")
            sib_pay = f"_tp{n}"

        pays = [f"_p{n}_{j}" for j in range(len(sharing))] + [sib_pay]
        emit(depth, f"_v{n} = {pays[0]}")
        for pay in pays[1:]:
            emit(depth, f"_v{n} = _mul(_v{n}, {pay})")
        for var in drop:
            if lift_table.get(var) is None or var not in registers:
                continue  # aggregated extends fold their lifts into _t
            emit(depth, f"_v{n} = _mul(_v{n}, {lift_ref(var)}({registers[var]}))")
        emit(depth, f"_ok{n} = {_tuple_display([registers[a] for a in out_schema])}")
        emit(depth, f"_cur{n} = _m{n}.get(_ok{n})")
        emit(depth, f"if _cur{n} is None:")
        emit(depth + 1, f"_m{n}[_ok{n}] = [_v{n}]")
        emit(depth, "else:")
        emit(depth + 1, f"_cur{n}.append(_v{n})")
        emit(1, f"_m{n} = _finalize(_m{n})")
        emit(1, f"if not _m{n}: return _NONE")
        slots = [slots[i] for i in rest] + [[out_schema, f"_m{n}", None]]

    # ---- leftover marginalizations, fused per factor ----
    marg_vars: Dict[int, List[str]] = {}
    for var in node.marginalized:
        if var in fused_away:
            continue
        for i, slot in enumerate(slots):
            if var in slot[0]:
                marg_vars.setdefault(i, []).append(var)
                break
        else:
            raise RuntimeError(
                f"variable {var} not found in any delta factor"
            )
    for i, vars_i in marg_vars.items():
        n = op
        op += 1
        schema_i, expr_i, pristine = slots[i]
        var_set = set(vars_i)
        out_schema = tuple(a for a in schema_i if a not in var_set)
        lifted = [
            (schema_i.index(v), v) for v in vars_i
            if lift_table.get(v) is not None
        ]
        base = 1
        if pristine is not None:
            # A whole-sibling collapse: the result depends only on the
            # stored view, so it is memoized per view state.
            requests.append((f"_sid{n}", ("sentinel",)))
            emit(1, f"_cs{n} = _site(_cache, {pristine!r}, _sid{n})")
            emit(1, f"_g{n} = _cs{n}.get(0)")
            emit(1, f"if _g{n} is None:")
            base = 2
        emit(base, f"_g{n} = {{}}")
        emit(base, f"for _k{n}, _p{n} in {expr_i}.items():")
        emit(base + 1, f"_v{n} = _p{n}")
        for pos, var in lifted:
            emit(base + 1, f"_v{n} = _mul(_v{n}, {lift_ref(var)}(_k{n}[{pos}]))")
        key = _tuple_display(
            [f"_k{n}[{schema_i.index(a)}]" for a in out_schema]
        )
        emit(base + 1, f"_ok{n} = {key}")
        emit(base + 1, f"_cur{n} = _g{n}.get(_ok{n})")
        emit(base + 1, f"if _cur{n} is None:")
        emit(base + 2, f"_g{n}[_ok{n}] = [_v{n}]")
        emit(base + 1, "else:")
        emit(base + 2, f"_cur{n}.append(_v{n})")
        emit(base, f"_g{n} = _finalize(_g{n})")
        if pristine is not None:
            emit(base, f"_cs{n}[0] = _g{n}")
        emit(1, f"if not _g{n}: return _NONE")
        slots[i] = [out_schema, f"_g{n}", None]

    # ---- flatten at materialized nodes ----
    flat_expr = "None"
    if materialized:
        covered: Set[str] = set()
        for slot in slots:
            covered |= set(slot[0])
        if covered != set(node.keys):
            raise RuntimeError(
                f"flattened delta schema {sorted(covered)} != view keys "
                f"{node.keys} at {node.name}"
            )
        n = op
        op += 1
        if len(slots) == 1 and tuple(slots[0][0]) == tuple(node.keys):
            emit(1, f"_fl{n} = dict({slots[0][1]})")
        else:
            key_src: Dict[str, str] = {}
            emit(1, f"_fl{n} = {{}}")
            depth = 1
            for j, slot in enumerate(slots):
                kv = f"_fk{n}_{j}"
                emit(depth, f"for {kv}, _fp{n}_{j} in {slot[1]}.items():")
                depth += 1
                for pos, attr in enumerate(slot[0]):
                    key_src[attr] = f"{kv}[{pos}]"
            pays = [f"_fp{n}_{j}" for j in range(len(slots))]
            emit(depth, f"_fv{n} = {pays[0]}")
            for pay in pays[1:]:
                emit(depth, f"_fv{n} = _mul(_fv{n}, {pay})")
            # Factor schemas are disjoint, so each combination lands on a
            # distinct key — but a product of non-zeros can still cancel
            # (truncating rings), hence the per-entry test.
            emit(depth, f"if not _iszero(_fv{n}):")
            out_key = _tuple_display([key_src[a] for a in node.keys])
            emit(depth + 1, f"_fl{n}[{out_key}] = _fv{n}")
        flat_expr = f"_fl{n}"

    outs = ", ".join(slot[1] for slot in slots)
    if len(slots) == 1:
        outs += ","
    emit(1, f"return (({outs}), {flat_expr})")

    source_text = "\n".join(lines) + "\n"
    code = compile(
        source_text, f"<factor-program {node.name}:{kind}{idx}>", "exec"
    )
    return _Generated(
        code, requests, source_text, tuple(tuple(slot[0]) for slot in slots)
    )
