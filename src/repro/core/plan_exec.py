"""Slot-compiled delta programs: update triggers as generated code.

The engine's interpreter (:meth:`FIVMEngine._delta_at_node_interpreted`)
carries Python ``dict`` bindings from probe to probe, allocating a fresh
dict per delta tuple and copying it on every match.  This module compiles
each ``(node, source)`` delta-join plan **once**, at engine-construction
time, into a *slot program* — a specialized Python trigger in the style of
DBToaster's generated code:

* every attribute reachable in the plan gets a fixed slot, realized as a
  local register ``r<i>`` of the generated function (dead attributes — never
  probed, never lifted, never in the output keys — get no register at all);
* each probe becomes a direct dictionary ``get`` against the target
  relation's primary map or the bucket/sum dicts of its registered
  secondary index (no method dispatch, no projector call: the probe subkey
  is built from registers with a tuple display);
* group-aware (pre-aggregated) probes read the index's per-bucket ring sum;
  a bucket-sum probe with *no* shared attributes is loop-invariant and is
  hoisted out of the delta loop entirely;
* payload multiplication is unrolled in child order — followed by indicator
  counts, the indicator sign, and the lifting functions in marginalization
  order — exactly matching the interpreter, so non-commutative rings
  (matrix payloads) see the same product order;
* the output accumulates into a plain dict with the ring's ``add`` bound to
  a global of the generated function; zero payloads are dropped in one
  sweep at the end instead of being tested per accumulation.

Binding the index dictionaries at compile time is sound because the engine
creates all view/indicator relations before compiling and ``Relation``
mutates its primary map and index dicts strictly in place (``clear`` empties
them, it never replaces them).

The interpreter remains available via ``FIVMEngine(compiled=False)`` as the
executable reference semantics; the differential tests in
``tests/core/test_slot_programs.py`` hold the two (and full recomputation)
key-for-key equal across rings.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.data.relation import Relation

__all__ = ["SlotProgram", "compile_slot_program"]


class SlotProgram:
    """A compiled delta trigger for one ``(node, source)`` plan."""

    __slots__ = ("node_name", "out_schema", "ring", "_fn", "source_text")

    def __init__(self, node_name, out_schema, ring, fn, source_text):
        self.node_name = node_name
        self.out_schema = out_schema
        self.ring = ring
        self._fn = fn
        #: The generated Python source (for debugging and the test suite).
        self.source_text = source_text

    def run(self, delta: Relation) -> Relation:
        """Evaluate the node's delta view for ``delta`` entering at the
        compiled source; returns a fresh relation over the node's keys.

        The trigger collects per-key contribution lists; they are summed
        here in one ``ring.sum`` per key and zero totals dropped in a final
        sweep (the interpreter's eager per-``add`` zero test, deferred).
        """
        out = Relation(self.node_name, self.out_schema, self.ring)
        data = out._data
        self._fn(delta._data.items(), data)
        if data:
            ring = self.ring
            rsum = ring.sum
            is_zero = ring.is_zero
            dead = []
            for key, values in data.items():
                total = values[0] if len(values) == 1 else rsum(values)
                if is_zero(total):
                    dead.append(key)
                else:
                    data[key] = total
            for key in dead:
                del data[key]
        return out


def _tuple_display(registers: Sequence[str]) -> str:
    """Source text for a tuple built from registers (incl. 0/1-ary forms)."""
    if not registers:
        return "()"
    if len(registers) == 1:
        return f"({registers[0]},)"
    return "(" + ", ".join(registers) + ")"


def compile_slot_program(node, source, plan, targets, query) -> SlotProgram:
    """Compile one delta-join plan into a :class:`SlotProgram`.

    ``plan`` is the engine's list of ``_PlanStep``; ``targets`` the stored
    relation each step probes, aligned with ``plan``.  Secondary indexes the
    steps need must already be registered (the engine registers them while
    planning, before compiling).
    """
    kind, idx = source
    if kind == "child":
        source_attrs = node.children[idx].keys
    else:
        source_attrs = node.indicators[idx].attrs
    ring = query.ring
    lift_entries = [
        (var, query.lifting.get(var)) for var in node.marginalized
    ]
    out_attrs = node.keys

    # Attribute liveness: needed_after[i] = attrs read after step i's probe
    # (later probes, output keys, lifted variables).  Extends outside this
    # set never get a register — the compiled analogue of the interpreter
    # simply not copying dead binding entries.
    live = {var for var, lift in lift_entries if lift is not None}
    live |= set(out_attrs)
    needed_after: List[set] = [set()] * len(plan)
    for i in range(len(plan) - 1, -1, -1):
        needed_after[i] = set(live)
        live |= set(plan[i].probe_attrs)
    source_needed = live  # probes of all steps + output keys + lifts

    registers: Dict[str, str] = {}

    def reg(attr: str) -> str:
        name = registers.get(attr)
        if name is None:
            name = f"r{len(registers)}"
            registers[attr] = name
        return name

    env = {
        "_mul": ring.mul,
        "_add": ring.add,
        "_one": ring.one,
        "_iszero": ring.is_zero,
        "_rsum": ring.sum,
    }
    lines: List[str] = ["def _trigger(_items, _out):"]

    def emit(depth: int, text: str) -> None:
        lines.append("    " * depth + text)

    # Hoist loop-invariant group-aware probes (no shared attributes): the
    # whole sibling collapses to one ring sum, computed once per trigger.
    for i, step in enumerate(plan):
        env[f"_data{i}"] = targets[i]._data
        if step.aggregated and not step.probe_attrs:
            emit(1, f"_t{i} = _rsum(_data{i}.values())")
            emit(1, f"if _iszero(_t{i}):")
            emit(2, "return")

    emit(1, "for _key, _psrc in _items:")
    depth = 2
    for position, attr in enumerate(source_attrs):
        if attr in source_needed:
            emit(depth, f"{reg(attr)} = _key[{position}]")

    pay_var_by_child: Dict[int, str] = {}
    ind_sum_vars: List[str] = []
    if kind == "child":
        pay_var_by_child[idx] = "_psrc"

    for i, step in enumerate(plan):
        target = targets[i]
        schema = target.schema
        probe = step.probe_attrs
        if probe and probe != schema:
            projector, buckets, sums = target._indexes[probe]
            env[f"_bkt{i}"] = buckets
            env[f"_sum{i}"] = sums
        probe_key = _tuple_display([registers[a] for a in probe])
        if step.aggregated:
            if not probe:
                pay = f"_t{i}"  # hoisted above the delta loop
            elif probe == schema:
                # Full-key probe: the stored payload *is* the bucket sum
                # (primary-map entries are never zero).
                emit(depth, f"_t{i} = _data{i}.get({probe_key})")
                emit(depth, f"if _t{i} is not None:")
                depth += 1
                pay = f"_t{i}"
            else:
                # Bucket sums may hold cancelled zeros; test them.
                emit(depth, f"_t{i} = _sum{i}.get({probe_key})")
                emit(depth, f"if _t{i} is not None and not _iszero(_t{i}):")
                depth += 1
                pay = f"_t{i}"
            if step.kind == "child":
                pay_var_by_child[step.index] = pay
            else:
                ind_sum_vars.append(pay)
        else:
            if probe == schema:
                emit(depth, f"_p{i} = _data{i}.get({probe_key})")
                emit(depth, f"if _p{i} is not None:")
                depth += 1
            elif not probe:
                emit(depth, f"for _k{i}, _p{i} in _data{i}.items():")
                depth += 1
            else:
                emit(depth, f"_b{i} = _bkt{i}.get({probe_key})")
                emit(depth, f"if _b{i}:")
                depth += 1
                emit(depth, f"for _k{i}, _p{i} in _b{i}.items():")
                depth += 1
            for attr in step.extend_attrs:
                if attr in needed_after[i]:
                    emit(depth, f"{reg(attr)} = _k{i}[{schema.index(attr)}]")
            if step.kind == "child":
                pay_var_by_child[step.index] = f"_p{i}"
            # Indicator listing probes are pure filters: payload 1 each.

    # Innermost body: the payload product in the interpreter's exact order —
    # children by child index, then aggregated indicator counts, then the
    # indicator sign (central), then lifts in marginalization order.  The
    # lift factors are folded together *first* and multiplied onto the
    # payload once: by associativity ``(v·l₁)·l₂ = v·(l₁·l₂)`` (order
    # preserved, so non-commutative rings are safe), and the intermediate
    # lift products stay small while the accumulated payload is the big one.
    factors = [pay_var_by_child[c] for c in sorted(pay_var_by_child)]
    factors += ind_sum_vars
    if kind == "ind":
        factors.append("_psrc")
    lift_terms = []
    for j, (var, lift) in enumerate(lift_entries):
        if lift is None:
            continue
        env[f"_lift{j}"] = lift
        lift_terms.append(f"_lift{j}({registers[var]})")
    if lift_terms:
        emit(depth, f"_lv = {lift_terms[0]}")
        for term in lift_terms[1:]:
            emit(depth, f"_lv = _mul(_lv, {term})")
        factors.append("_lv")
    if not factors:
        emit(depth, "_v = _one")
    else:
        emit(depth, f"_v = {factors[0]}")
        for factor in factors[1:]:
            emit(depth, f"_v = _mul(_v, {factor})")
    missing = [a for a in out_attrs if a not in registers]
    if missing:  # pragma: no cover - the planner always binds output keys
        raise RuntimeError(
            f"slot program for {node.name}: output keys {missing} unbound"
        )
    # Accumulation is deferred: contributions are collected per output key
    # and summed once in :meth:`SlotProgram.run` via ``ring.sum`` — rings
    # with a vectorized sum (the cofactor ring stacks blocks) fold a whole
    # batch in a few array operations instead of pairwise allocations.
    # (Ring addition is commutative by the ring axioms, so the regrouping
    # is sound on every ring, including non-commutative-multiplication ones.)
    emit(depth, f"_ok = {_tuple_display([registers[a] for a in out_attrs])}")
    emit(depth, "_cur = _out.get(_ok)")
    emit(depth, "if _cur is None:")
    emit(depth + 1, "_out[_ok] = [_v]")
    emit(depth, "else:")
    emit(depth + 1, "_cur.append(_v)")

    source_text = "\n".join(lines) + "\n"
    code = compile(
        source_text, f"<slot-program {node.name}:{kind}{idx}>", "exec"
    )
    exec(code, env)
    return SlotProgram(node.name, out_attrs, ring, env["_trigger"], source_text)
