"""The source-codegen backend: IR delta programs as generated Python.

The engine lowers every delta plan to the typed IR of
:mod:`repro.core.ir`; this module is the backend that turns an IR program
into a specialized Python trigger in the style of DBToaster's generated
code (the default, ``FIVMEngine(backend="source")``):

* every IR register becomes a local ``r<i>`` of the generated function
  (the lowering already withheld registers from dead attributes);
* each :class:`~repro.core.ir.Probe` / :class:`~repro.core.ir.IndexProbe`
  becomes a direct dictionary ``get`` against the target relation's
  primary map or the bucket/sum dicts of its registered secondary index
  (no method dispatch, no projector call: the probe subkey is built from
  registers with a tuple display);
* aggregated probes read the index's per-bucket ring sum; a whole-target
  collapse (no shared attributes) is loop-invariant and hoisted out of
  the delta loop entirely;
* the :class:`~repro.core.ir.Accumulate` payload product is unrolled in
  the IR's reference factor order, so non-commutative rings (matrix
  payloads) see the same product as the interpreter backend;
* the output accumulates into a plain dict with the ring's ``add`` bound
  to a global of the generated function; zero payloads are dropped in one
  sweep at the end instead of being tested per accumulation.

Binding the index dictionaries at compile time is sound because the engine
creates all view/indicator relations before compiling and ``Relation``
mutates its primary map and index dicts strictly in place (``clear``
empties them, it never replaces them).

The IR interpreter remains available via ``FIVMEngine(compiled=False)`` /
``backend="interpreter"`` as the executable reference semantics; the
differential tests hold the backends (and full recomputation) key-for-key
equal across rings.

Factor programs
---------------

:func:`compile_factor_program` generates the factorized trigger from a
:class:`~repro.core.ir.FactorProgramIR`, op for op:

* each :class:`~repro.core.ir.SiblingMerge` becomes one fused loop nest —
  the sharing factors are iterated (they are tiny delta vectors), the
  sibling is probed through its primary map or a registered secondary
  index, and variables whose coverage completes inside the merge are
  marginalized on the fly (the compiled ``join_project``);
* a :class:`~repro.core.ir.AppendSibling` aliases the stored sibling's
  primary map — read-only, never copied;
* leftover :class:`~repro.core.ir.Marginalize` ops are fused per factor
  into one grouped pass;
* a :class:`~repro.core.ir.Flatten` materializes the factor product into
  a fresh delta dict in the node's key order (zero products dropped —
  truncating rings can cancel inside a product).

**Shared probe results.**  The probe memos are decided at lowering time
(the op ``mode``, see :mod:`repro.core.ir`), so the generated code shares
them with every other backend: ``"cached"`` collapses memoize the folded
bucket sum, ``"memo"`` partial-match probes memoize the bucket reduced to
its surviving extends, and pristine marginalizations memoize the whole
collapse — all in the caller-supplied probe cache
(``cache[view_name][site][subkey]``), which the engine shares across the
terms of an update, the relations of one ``apply_batch`` pass, and
consecutive updates, and invalidates per view write.

Factorized updates require a commutative ring, so the generated code is
free to reorder and pre-aggregate payload products; accumulation still
goes through per-key contribution lists folded by ``ring.sum``
(vectorized for the cofactor, degree, and product rings).

Generation vs binding (shard-local triggers)
--------------------------------------------

Compilation is split in two stages so that sharded engines can share the
expensive half:

* **generation** walks the IR and emits the trigger *source text* plus a
  list of :class:`environment requests <_Generated>` — symbolic
  descriptions ("the primary map of target 2", "the bucket dict of target
  0's index on (A, B)", "a fresh cache-site sentinel") of every
  target-derived global the code needs.  The IR itself reads only target
  *schemas and names*, never live relation state, so generated code is
  valid for any engine holding an isomorphic view tree;
* **binding** realizes the requests against one engine's actual stored
  relations (registering any secondary index a probe needs) and execs
  the pre-compiled code object with those globals — per-shard dictionaries
  stay bound directly in the trigger's globals, so the run-time fast path
  is unchanged.

A :class:`ProgramLibrary` memoizes generated programs keyed by the IR
program itself (IR is hashable plain data), so ``S`` hash-partitioned
shard engines built over the same query pay for code generation once and
each bind their own copy.  A library must only be shared by identically
configured engines (same query, order, and planner flags).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ir import (
    DeltaProgram,
    FactorProgramIR,
    IndexProbe,
    Probe,
    SiblingMerge,
    cache_site,
)
from repro.data.relation import Relation

__all__ = [
    "SlotProgram",
    "compile_slot_program",
    "FactorProgram",
    "compile_factor_program",
    "ProgramLibrary",
    "canonical_partition",
]


def canonical_partition(partition: Sequence[Tuple[str, ...]]) -> tuple:
    """Sort factor schemas into the canonical (lexicographic) order.

    Returns ``(sorted_partition, permutation)`` where ``permutation[i]`` is
    the index in the *original* partition of the i-th canonical factor.
    Factor programs are cached per partition; canonicalizing first means
    permuted factor orders of the same decomposition — which are semantically
    identical on the (required) commutative ring — hit one compiled program
    instead of compiling duplicates.
    """
    order = sorted(range(len(partition)), key=lambda i: partition[i])
    return tuple(partition[i] for i in order), tuple(order)


class _Generated:
    """The shareable half of a compiled trigger: code + environment requests.

    ``requests`` is a list of ``(global_name, spec)`` pairs where ``spec``
    describes how to realize the binding against live targets:

    * ``("data", i)`` — the primary map of target ``i``;
    * ``("buckets", i, attrs)`` / ``("sums", i, attrs)`` — the bucket/sum
      dicts of target ``i``'s secondary index on ``attrs`` (registered at
      bind time when missing);
    * ``("lift", var)`` — the query's lifting function for ``var``;
    * ``("sentinel",)`` — a fresh per-binding cache-site identity;
    * columnar-target requests (kernel gathers over
      :class:`repro.data.columnar.ColumnarRelation` targets, which probe
      row ids instead of payloads): ``("rows", i)`` — the key → row-id
      map; ``("gids", i, attrs)`` / ``("members", i, attrs)`` /
      ``("idxstate", i, attrs)`` — the subkey → group-id map, the subkey
      → ``{key: row}`` buckets, and the index state object (for its
      maintained ``szero`` zero-mask) of target ``i``'s index on
      ``attrs``; ``("total", i)`` — the target's memoized vectorized
      ``total`` bound method.

    ``meta`` carries the program-class payload (the output schema for slot
    programs, the outgoing factor partition for factor programs).
    """

    __slots__ = ("code", "requests", "source_text", "meta")

    def __init__(self, code, requests, source_text, meta):
        self.code = code
        self.requests = requests
        self.source_text = source_text
        self.meta = meta


class ProgramLibrary:
    """A cross-engine cache of generated trigger code.

    Owned by :class:`repro.core.sharded.ShardedFIVMEngine` and handed to
    every shard's :class:`~repro.core.engine.FIVMEngine`: shard 0 generates
    and compiles each trigger's source once, shards 1..S-1 only re-bind the
    cached code object against their own view fragments.
    """

    def __init__(self):
        self._generated: Dict[tuple, _Generated] = {}

    def __len__(self) -> int:
        return len(self._generated)

    def lookup(self, key: tuple) -> Optional[_Generated]:
        """The cached generated program for ``key``, if any."""
        return self._generated.get(key)

    def store(self, key: tuple, generated: _Generated) -> None:
        """Cache a generated program under ``key``."""
        self._generated[key] = generated


def _bind_env(generated: _Generated, targets, query) -> dict:
    """Realize a generated program's environment against live targets.

    Registers any secondary index the requests name (idempotent), then
    execs the code object so the trigger's globals point straight at this
    engine's dictionaries.
    """
    ring = query.ring
    env = {
        "_mul": ring.mul,
        "_add": ring.add,
        "_one": ring.one,
        "_iszero": ring.is_zero,
        "_rsum": ring.sum,
        "_zero": ring.zero,
        "_NONE": (None, None),
        "_finalize": _make_finalize(ring.sum, ring.is_zero),
        "_site": cache_site,
    }
    lift_table = query.lifting.table()
    for name, spec in generated.requests:
        kind = spec[0]
        if kind == "data":
            env[name] = targets[spec[1]]._data
        elif kind == "buckets":
            target = targets[spec[1]]
            target.register_index(spec[2])
            env[name] = target._indexes[spec[2]][1]
        elif kind == "sums":
            target = targets[spec[1]]
            target.register_index(spec[2])
            env[name] = target._indexes[spec[2]][2]
        elif kind == "lift":
            env[name] = lift_table[spec[1]]
        elif kind == "sentinel":
            env[name] = object()
        elif kind == "rows":
            env[name] = targets[spec[1]]._rows
        elif kind == "total":
            env[name] = targets[spec[1]].total
        elif kind in ("gids", "members", "idxstate"):
            target = targets[spec[1]]
            target.register_index(spec[2])
            state = target._states[spec[2]]
            env[name] = (
                state.gids if kind == "gids"
                else state.members if kind == "members"
                else state
            )
        else:  # pragma: no cover - generator/binder contract guard
            raise ValueError(f"unknown environment request {spec!r}")
    exec(generated.code, env)
    return env


class SlotProgram:
    """A compiled delta trigger for one ``(node, source)`` IR program."""

    backend = "source"

    __slots__ = ("node_name", "out_schema", "ring", "_fn", "source_text")

    def __init__(self, node_name, out_schema, ring, fn, source_text):
        self.node_name = node_name
        self.out_schema = out_schema
        self.ring = ring
        self._fn = fn
        #: The generated Python source (for debugging and the test suite).
        self.source_text = source_text

    def run(self, delta: Relation) -> Relation:
        """Evaluate the node's delta view for ``delta`` entering at the
        compiled source; returns a fresh relation over the node's keys.

        The trigger collects per-key contribution lists; they are summed
        here in one ``ring.sum`` per key and zero totals dropped in a final
        sweep (the interpreter's eager per-``add`` zero test, deferred).
        """
        out = Relation(self.node_name, self.out_schema, self.ring)
        data = out._data
        self._fn(delta._data.items(), data)
        if data:
            ring = self.ring
            rsum = ring.sum
            is_zero = ring.is_zero
            dead = []
            for key, values in data.items():
                total = values[0] if len(values) == 1 else rsum(values)
                if is_zero(total):
                    dead.append(key)
                else:
                    data[key] = total
            for key in dead:
                del data[key]
        return out


def _tuple_display(registers: Sequence[str]) -> str:
    """Source text for a tuple built from registers (incl. 0/1-ary forms)."""
    if not registers:
        return "()"
    if len(registers) == 1:
        return f"({registers[0]},)"
    return "(" + ", ".join(registers) + ")"


def compile_slot_program(
    ir: DeltaProgram, targets, query, library: Optional[ProgramLibrary] = None
) -> SlotProgram:
    """Compile one IR delta program into a :class:`SlotProgram`.

    ``targets`` are the stored relations the IR's probes read, aligned with
    the ops' ``target`` indices.  Any secondary index a probe needs is
    registered at bind time (idempotent — the engine already registers them
    while planning).  With a ``library``, generated code is shared across
    engines holding isomorphic trees (sharding): only the environment
    binding is per-engine.
    """
    key = ("slot", ir)
    generated = library.lookup(key) if library is not None else None
    if generated is None:
        generated = _generate_slot(ir)
        if library is not None:
            library.store(key, generated)
    env = _bind_env(generated, targets, query)
    return SlotProgram(
        ir.node_name, generated.meta, query.ring, env["_trigger"],
        generated.source_text,
    )


def _generate_slot(ir: DeltaProgram) -> _Generated:
    """Generate the slot-program source and environment requests from IR
    (no live relation state is read — see the module docstring)."""
    kind, idx = ir.source
    ops = ir.ops

    def rname(register: int) -> str:
        """Source name of a key register."""
        return f"r{register}"

    requests: List[tuple] = []
    lines: List[str] = ["def _trigger(_items, _out):"]

    def emit(depth: int, text: str) -> None:
        """Append one generated source line at ``depth``."""
        lines.append("    " * depth + text)

    # Hoist loop-invariant group-aware probes (no shared attributes): the
    # whole sibling collapses to one ring sum, computed once per trigger.
    for i, op in enumerate(ops):
        requests.append((f"_data{i}", ("data", op.target)))
        if op.aggregated and not op.probe_attrs:
            emit(1, f"_t{i} = _rsum(_data{i}.values())")
            emit(1, f"if _iszero(_t{i}):")
            emit(2, "return")

    emit(1, "for _key, _psrc in _items:")
    depth = 2
    for position, register in ir.loads:
        emit(depth, f"{rname(register)} = _key[{position}]")

    op_pay: Dict[int, str] = {}
    for i, op in enumerate(ops):
        probe = op.probe_attrs
        if isinstance(op, IndexProbe):
            requests.append((f"_bkt{i}", ("buckets", op.target, probe)))
            requests.append((f"_sum{i}", ("sums", op.target, probe)))
        probe_key = _tuple_display([rname(r) for r in op.probe_regs])
        if op.aggregated:
            if not probe:
                pass  # hoisted above the delta loop; payload is _t{i}
            elif isinstance(op, Probe):
                # Full-key probe: the stored payload *is* the bucket sum
                # (primary-map entries are never zero).
                emit(depth, f"_t{i} = _data{i}.get({probe_key})")
                emit(depth, f"if _t{i} is not None:")
                depth += 1
            else:
                # Bucket sums may hold cancelled zeros; test them.
                emit(depth, f"_t{i} = _sum{i}.get({probe_key})")
                emit(depth, f"if _t{i} is not None and not _iszero(_t{i}):")
                depth += 1
            op_pay[i] = f"_t{i}"
        else:
            if isinstance(op, Probe) and probe:
                emit(depth, f"_p{i} = _data{i}.get({probe_key})")
                emit(depth, f"if _p{i} is not None:")
                depth += 1
            elif isinstance(op, Probe):
                emit(depth, f"for _k{i}, _p{i} in _data{i}.items():")
                depth += 1
            else:
                emit(depth, f"_b{i} = _bkt{i}.get({probe_key})")
                emit(depth, f"if _b{i}:")
                depth += 1
                emit(depth, f"for _k{i}, _p{i} in _b{i}.items():")
                depth += 1
            for position, register in op.extend:
                emit(depth, f"{rname(register)} = _k{i}[{position}]")
            op_pay[i] = f"_p{i}"
        # For non-aggregated Probe-with-full-key the key var is the subkey
        # itself; extends there are impossible (nothing new to bind) except
        # through the scan form, which binds _k{i}.

    # Innermost body: the payload product in the IR's reference order.  The
    # lift factors are folded together *first* and multiplied onto the
    # payload once: by associativity ``(v·l₁)·l₂ = v·(l₁·l₂)`` (order
    # preserved, so non-commutative rings are safe), and the intermediate
    # lift products stay small while the accumulated payload is the big one.
    factors = [
        "_psrc" if where == "source" else op_pay[i]
        for where, i in ir.accumulate.factors
    ]
    lift_terms = []
    for j, (var, register) in enumerate(ir.accumulate.lifts):
        requests.append((f"_lift{j}", ("lift", var)))
        lift_terms.append(f"_lift{j}({rname(register)})")
    if lift_terms:
        emit(depth, f"_lv = {lift_terms[0]}")
        for term in lift_terms[1:]:
            emit(depth, f"_lv = _mul(_lv, {term})")
        factors.append("_lv")
    if not factors:
        emit(depth, "_v = _one")
    else:
        emit(depth, f"_v = {factors[0]}")
        for factor in factors[1:]:
            emit(depth, f"_v = _mul(_v, {factor})")
    # Accumulation is deferred: contributions are collected per output key
    # and summed once in :meth:`SlotProgram.run` via ``ring.sum`` — rings
    # with a vectorized sum (the cofactor ring stacks blocks) fold a whole
    # batch in a few array operations instead of pairwise allocations.
    # (Ring addition is commutative by the ring axioms, so the regrouping
    # is sound on every ring, including non-commutative-multiplication ones.)
    emit(depth, f"_ok = {_tuple_display([rname(r) for r in ir.accumulate.out_regs])}")
    emit(depth, "_cur = _out.get(_ok)")
    emit(depth, "if _cur is None:")
    emit(depth + 1, "_out[_ok] = [_v]")
    emit(depth, "else:")
    emit(depth + 1, "_cur.append(_v)")

    source_text = "\n".join(lines) + "\n"
    code = compile(
        source_text, f"<slot-program {ir.node_name}:{kind}{idx}>", "exec"
    )
    return _Generated(code, requests, source_text, ir.out_schema)


# ----------------------------------------------------------------------
# Factor slot programs (the compiled factorized-update path)
# ----------------------------------------------------------------------


def _make_finalize(rsum, iszero):
    """Fold per-key contribution lists with ``ring.sum``, dropping zeros."""

    def _finalize(data):
        dead = []
        for key, values in data.items():
            total = values[0] if len(values) == 1 else rsum(values)
            if iszero(total):
                dead.append(key)
            else:
                data[key] = total
        for key in dead:
            del data[key]
        return data

    return _finalize


class FactorProgram:
    """A compiled factorized-delta trigger for one ``(node, source)`` entry
    point and one factor-schema partition."""

    backend = "source"

    __slots__ = ("node_name", "out_partition", "ring", "_fn", "source_text")

    def __init__(self, node_name, out_partition, ring, fn, source_text):
        self.node_name = node_name
        #: Schemas of the factors the program hands to the parent node, in
        #: slot order — the parent's program is compiled for this partition.
        self.out_partition = out_partition
        self.ring = ring
        self._fn = fn
        #: The generated Python source (for debugging and the test suite).
        self.source_text = source_text

    def run(self, fdatas, cache):
        """Propagate one rank-1 term through the node.

        ``fdatas`` are the term's factor dicts aligned with the compiled
        partition; ``cache`` is the engine's probe cache.  Returns
        ``(out_dicts, flat_dict_or_None)`` — the outgoing factors (aligned
        with :attr:`out_partition`) and, at materialized nodes, the
        flattened delta in the node's key order — or ``(None, None)`` when
        a factor cancelled to empty (the delta is the ring zero from here
        on up).
        """
        return self._fn(fdatas, cache)


def compile_factor_program(
    ir: FactorProgramIR, targets, query, library: Optional[ProgramLibrary] = None
) -> FactorProgram:
    """Compile a factor IR program into a :class:`FactorProgram`.

    ``targets`` are the stored sibling relations in the IR's merge order.
    Secondary indexes the probes need are registered at bind time.  With a
    ``library``, generated code is shared across isomorphic engines
    (sharding); the engine canonicalizes the partition before lowering, so
    permuted factor orders of one decomposition share one cache entry too.
    """
    key = ("factor", ir)
    generated = library.lookup(key) if library is not None else None
    if generated is None:
        generated = _generate_factor(ir)
        if library is not None:
            library.store(key, generated)
    env = _bind_env(generated, targets, query)
    return FactorProgram(
        ir.node_name, generated.meta, query.ring, env["_factor"],
        generated.source_text,
    )


def _generate_factor(ir: FactorProgramIR) -> _Generated:
    """Generate the factor-program source and environment requests from IR
    (target names and schemas only — see the module docstring)."""
    kind, idx = ir.source
    requests: List[tuple] = []
    lines: List[str] = ["def _factor(_fs, _cache):"]

    def emit(depth: int, text: str) -> None:
        """Append one generated source line at ``depth``."""
        lines.append("    " * depth + text)

    lift_names: Dict[str, str] = {}

    def lift_ref(var: str) -> str:
        """Bound name of ``var``'s lift, requested on first use."""
        name = lift_names.get(var)
        if name is None:
            name = f"_lift{len(lift_names)}"
            lift_names[var] = name
            requests.append((name, ("lift", var)))
        return name

    #: Runtime expression per slot id.
    exprs: Dict[int, str] = {
        slot.id: f"_fs[{i}]" for i, slot in enumerate(ir.initial_slots)
    }
    op_no = 0

    # ---- sibling merges (the fused join_project loop nests) ----
    for op in ir.ops:
        if not isinstance(op, SiblingMerge):
            # AppendSibling: alias the stored sibling's primary map.
            requests.append((f"_sd{op.target}", ("data", op.target)))
            exprs[op.slot.id] = f"_sd{op.target}"
            continue
        n = op_no
        op_no += 1
        ts = op.target_schema
        probe = op.probe_attrs
        mode = op.mode

        if probe != ts:
            requests.append((f"_bk{n}", ("buckets", op.target, probe)))
            if mode == "sum":
                requests.append((f"_ss{n}", ("sums", op.target, probe)))
        if mode == "full":
            requests.append((f"_sd{n}x", ("data", op.target)))
        if mode in ("cached", "memo"):
            requests.append((f"_sid{n}", ("sentinel",)))
            emit(1, f"_cs{n} = _site(_cache, {op.target_name!r}, _sid{n})")

        registers: Dict[str, str] = {}

        def reg(attr: str, registers=registers, n=n) -> str:
            """Stable register name for ``attr`` within this op."""
            name = registers.get(attr)
            if name is None:
                name = f"r{n}_{len(registers)}"
                registers[attr] = name
            return name

        needed = set(probe) | set(op.out.schema) | set(op.row_lifts)

        emit(1, f"_m{n} = {{}}")
        depth = 1
        for j, slot in enumerate(op.inputs):
            kv = f"_k{n}_{j}"
            emit(depth, f"for {kv}, _p{n}_{j} in {exprs[slot.id]}.items():")
            depth += 1
            for pos, attr in enumerate(slot.schema):
                if attr in needed:
                    emit(depth, f"{reg(attr)} = {kv}[{pos}]")
        subkey = _tuple_display([registers[a] for a in probe])

        if mode == "full":
            # Full-key probe: the stored payload is the whole match.
            emit(depth, f"_t{n} = _sd{n}x.get({subkey})")
            emit(depth, f"if _t{n} is not None:")
            depth += 1
            sib_pay = f"_t{n}"
        elif mode == "sum":
            # Group-aware probe: the index bucket sum is the contribution
            # (no lifts on the summed-out attributes).  Sums may hold
            # cancelled zeros; test them.
            emit(depth, f"_t{n} = _ss{n}.get({subkey})")
            emit(depth, f"if _t{n} is not None and not _iszero(_t{n}):")
            depth += 1
            sib_pay = f"_t{n}"
        elif mode == "cached":
            # Lifted bucket collapse, memoized in the shared probe cache:
            # later terms (and later relations in a batch) probing the
            # same subkey reuse the folded sum.
            emit(depth, f"_sk{n} = {subkey}")
            emit(depth, f"_t{n} = _cs{n}.get(_sk{n})")
            emit(depth, f"if _t{n} is None:")
            emit(depth + 1, f"_b{n} = _bk{n}.get(_sk{n})")
            emit(depth + 1, f"if _b{n} is None:")
            emit(depth + 2, f"_t{n} = _zero")
            emit(depth + 1, "else:")
            emit(depth + 2, f"_acc{n} = []")
            emit(depth + 2, f"for _tk{n}, _tp{n} in _b{n}.items():")
            first = True
            for pos, var in op.ext_lifts:
                term = f"{lift_ref(var)}(_tk{n}[{pos}])"
                if first:
                    emit(depth + 3, f"_lv{n} = {term}")
                    first = False
                else:
                    emit(depth + 3, f"_lv{n} = _mul(_lv{n}, {term})")
            emit(depth + 3, f"_acc{n}.append(_mul(_tp{n}, _lv{n}))")
            emit(depth + 2, f"_t{n} = _rsum(_acc{n})")
            emit(depth + 1, f"_cs{n}[_sk{n}] = _t{n}")
            emit(depth, f"if not _iszero(_t{n}):")
            depth += 1
            sib_pay = f"_t{n}"
        elif mode == "memo":
            # Partial-match probe sharing: the bucket reduced to the
            # surviving extends (dropped lifted extends folded in, rows
            # pre-aggregated per surviving key), memoized per subkey.
            emit(depth, f"_sk{n} = {subkey}")
            emit(depth, f"_rw{n} = _cs{n}.get(_sk{n})")
            emit(depth, f"if _rw{n} is None:")
            emit(depth + 1, f"_b{n} = _bk{n}.get(_sk{n})")
            emit(depth + 1, f"if _b{n} is None:")
            emit(depth + 2, f"_rw{n} = ()")
            emit(depth + 1, "else:")
            emit(depth + 2, f"_ra{n} = {{}}")
            emit(depth + 2, f"for _tk{n}, _tp{n} in _b{n}.items():")
            fold = f"_tp{n}"
            for pos, var in op.ext_lifts:
                emit(
                    depth + 3,
                    f"_tp{n} = _mul({fold}, {lift_ref(var)}(_tk{n}[{pos}]))",
                )
            kept_key = _tuple_display([
                f"_tk{n}[{ts.index(a)}]" for a in op.kept_extends
            ])
            emit(depth + 3, f"_ek{n} = {kept_key}")
            emit(depth + 3, f"_rc{n} = _ra{n}.get(_ek{n})")
            emit(depth + 3, f"if _rc{n} is None:")
            emit(depth + 4, f"_ra{n}[_ek{n}] = [_tp{n}]")
            emit(depth + 3, "else:")
            emit(depth + 4, f"_rc{n}.append(_tp{n})")
            emit(depth + 2, f"_rw{n} = tuple(_finalize(_ra{n}).items())")
            emit(depth + 1, f"_cs{n}[_sk{n}] = _rw{n}")
            emit(depth, f"for _ek{n}, _tp{n} in _rw{n}:")
            depth += 1
            for j, attr in enumerate(op.kept_extends):
                if attr in needed:
                    emit(depth, f"{reg(attr)} = _ek{n}[{j}]")
            sib_pay = f"_tp{n}"
        else:  # "iterate"
            emit(depth, f"_b{n} = _bk{n}.get({subkey})")
            emit(depth, f"if _b{n}:")
            depth += 1
            emit(depth, f"for _tk{n}, _tp{n} in _b{n}.items():")
            depth += 1
            for pos, attr in enumerate(ts):
                if attr in set(op.extends) and attr in needed:
                    emit(depth, f"{reg(attr)} = _tk{n}[{pos}]")
            sib_pay = f"_tp{n}"

        pays = [f"_p{n}_{j}" for j in range(len(op.inputs))] + [sib_pay]
        emit(depth, f"_v{n} = {pays[0]}")
        for pay in pays[1:]:
            emit(depth, f"_v{n} = _mul(_v{n}, {pay})")
        for var in op.row_lifts:
            emit(depth, f"_v{n} = _mul(_v{n}, {lift_ref(var)}({registers[var]}))")
        emit(depth, f"_ok{n} = {_tuple_display([registers[a] for a in op.out.schema])}")
        emit(depth, f"_cur{n} = _m{n}.get(_ok{n})")
        emit(depth, f"if _cur{n} is None:")
        emit(depth + 1, f"_m{n}[_ok{n}] = [_v{n}]")
        emit(depth, "else:")
        emit(depth + 1, f"_cur{n}.append(_v{n})")
        emit(1, f"_m{n} = _finalize(_m{n})")
        emit(1, f"if not _m{n}: return _NONE")
        exprs[op.out.id] = f"_m{n}"

    # ---- leftover marginalizations, fused per factor ----
    for op in ir.margs:
        n = op_no
        op_no += 1
        schema_i = op.input.schema
        expr_i = exprs[op.input.id]
        base = 1
        if op.input.pristine is not None:
            # A whole-sibling collapse: the result depends only on the
            # stored view, so it is memoized per view state.
            requests.append((f"_sid{n}", ("sentinel",)))
            emit(1, f"_cs{n} = _site(_cache, {op.input.pristine!r}, _sid{n})")
            emit(1, f"_g{n} = _cs{n}.get(0)")
            emit(1, f"if _g{n} is None:")
            base = 2
        emit(base, f"_g{n} = {{}}")
        emit(base, f"for _k{n}, _p{n} in {expr_i}.items():")
        emit(base + 1, f"_v{n} = _p{n}")
        for pos, var in op.lifted:
            emit(base + 1, f"_v{n} = _mul(_v{n}, {lift_ref(var)}(_k{n}[{pos}]))")
        key = _tuple_display(
            [f"_k{n}[{schema_i.index(a)}]" for a in op.out.schema]
        )
        emit(base + 1, f"_ok{n} = {key}")
        emit(base + 1, f"_cur{n} = _g{n}.get(_ok{n})")
        emit(base + 1, f"if _cur{n} is None:")
        emit(base + 2, f"_g{n}[_ok{n}] = [_v{n}]")
        emit(base + 1, "else:")
        emit(base + 2, f"_cur{n}.append(_v{n})")
        emit(base, f"_g{n} = _finalize(_g{n})")
        if op.input.pristine is not None:
            emit(base, f"_cs{n}[0] = _g{n}")
        emit(1, f"if not _g{n}: return _NONE")
        exprs[op.out.id] = f"_g{n}"

    # ---- flatten at materialized nodes ----
    flat_expr = "None"
    if ir.flatten is not None:
        flatten = ir.flatten
        n = op_no
        op_no += 1
        if (
            len(flatten.inputs) == 1
            and flatten.inputs[0].schema == flatten.out_keys
        ):
            emit(1, f"_fl{n} = dict({exprs[flatten.inputs[0].id]})")
        else:
            key_src: Dict[str, str] = {}
            emit(1, f"_fl{n} = {{}}")
            depth = 1
            for j, slot in enumerate(flatten.inputs):
                kv = f"_fk{n}_{j}"
                emit(depth, f"for {kv}, _fp{n}_{j} in {exprs[slot.id]}.items():")
                depth += 1
                for pos, attr in enumerate(slot.schema):
                    key_src[attr] = f"{kv}[{pos}]"
            pays = [f"_fp{n}_{j}" for j in range(len(flatten.inputs))]
            emit(depth, f"_fv{n} = {pays[0]}")
            for pay in pays[1:]:
                emit(depth, f"_fv{n} = _mul(_fv{n}, {pay})")
            # Factor schemas are disjoint, so each combination lands on a
            # distinct key — but a product of non-zeros can still cancel
            # (truncating rings), hence the per-entry test.
            emit(depth, f"if not _iszero(_fv{n}):")
            out_key = _tuple_display([key_src[a] for a in flatten.out_keys])
            emit(depth + 1, f"_fl{n}[{out_key}] = _fv{n}")
        flat_expr = f"_fl{n}"

    outs = ", ".join(exprs[slot.id] for slot in ir.out_slots)
    if len(ir.out_slots) == 1:
        outs += ","
    emit(1, f"return (({outs}), {flat_expr})")

    source_text = "\n".join(lines) + "\n"
    code = compile(
        source_text, f"<factor-program {ir.node_name}:{kind}{idx}>", "exec"
    )
    return _Generated(code, requests, source_text, ir.out_partition)
