"""Deterministic fault injection for the fault-tolerance test surface.

Production failure modes — a shard worker segfaulting mid-request, a
pipe stalling, a writer task dying with queued clients — are
environmental, so they never show up in deterministic unit tests unless
something *plants* them.  A :class:`FaultPlan` is that something: a
schedule of ``(site, hit, action)`` triples, where a **site** is a named
choke point the runtime code announces by calling :meth:`FaultPlan.fire`
(see :data:`SITES`), **hit** is the 1-based count of that site's firings
within one process, and **action** is what happens when the counter
matches:

* ``"crash"`` — the process dies (``os._exit``) when
  :attr:`FaultPlan.crash_action` is ``"exit"`` (installed by shard
  workers), or an :class:`InjectedCrash` propagates when it is
  ``"raise"`` (the in-process analog: an asyncio writer task dying);
* ``"hang"`` — the call sleeps :attr:`FaultPlan.hang_seconds`, long
  enough to trip any recv deadline watching it (a stuck worker);
* ``"error"`` — an :class:`InjectedFault` is raised at the site (a
  transient environmental error).

Plans are plain data: deterministic (no wall clock, no global state),
picklable (they ride into forked shard workers), and seedable —
:meth:`FaultPlan.seeded` draws a reproducible schedule from a seed, which
is how the crash-recovery differential oracle generates thousands of
distinct failure interleavings from one integer
(``tests/core/test_crash_recovery.py``, scaled by ``FIVM_FAULTS``).

Hit counters live on the plan instance, so a plan object is *per
process*: the supervisor hands each forked worker its own plan, and a
worker restarted after a fault runs fault-free (the environmental event
happened; deterministic replay of the recovery path must not re-plant
it).
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = [
    "ACTIONS",
    "SITES",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "plans_from_env",
]

#: The named fault sites the runtime announces.  Worker sites fire inside
#: forked shard workers (:mod:`repro.core.sharded`); the writer site fires
#: in the :class:`repro.serve.ViewServer` writer task; the engine site
#: fires in :meth:`repro.core.engine.FIVMEngine._write_view`.
SITES = (
    "worker.recv",        # after a request leaves the pipe, before dispatch
    "worker.pre_apply",   # before a state-mutating request is applied
    "worker.post_apply",  # applied but not yet acked — the dangerous window
    "worker.send",        # before the reply enters the pipe
    "writer.loop",        # the ViewServer writer task, per drained group
    "engine.write_view",  # the engine's single view-write choke point
)

#: Actions a scheduled fault can take (see the module docstring).
ACTIONS = ("crash", "hang", "error")

#: Worker-process sites, the pool :meth:`FaultPlan.seeded` draws from by
#: default (the crash-recovery oracle targets shard workers).
WORKER_SITES = tuple(s for s in SITES if s.startswith("worker."))


class InjectedFault(RuntimeError):
    """A planted transient error (the ``"error"`` action)."""


class InjectedCrash(RuntimeError):
    """A planted process death, surfaced as an exception because the
    context cannot ``os._exit`` (e.g. an asyncio writer task)."""


class FaultPlan:
    """A deterministic schedule of faults over named sites.

    ``rules`` maps a site name to ``{hit: action}`` — the action fires
    when the site's per-plan hit counter reaches ``hit`` (1-based).  The
    plan is inert for every other call: :meth:`fire` costs one dict
    lookup, so announcing a site in production code is free when no plan
    is installed.
    """

    __slots__ = ("rules", "hang_seconds", "crash_action", "exit_code",
                 "_hits", "fired")

    def __init__(
        self,
        rules: Dict[str, Dict[int, str]],
        hang_seconds: float = 60.0,
        crash_action: str = "raise",
        exit_code: int = 70,
    ):
        checked: Dict[str, Dict[int, str]] = {}
        for site, schedule in rules.items():
            if site not in SITES:
                raise ValueError(f"unknown fault site {site!r}; see SITES")
            for hit, action in schedule.items():
                if action not in ACTIONS:
                    raise ValueError(
                        f"unknown fault action {action!r}; see ACTIONS"
                    )
                if int(hit) < 1:
                    raise ValueError("fault hits are 1-based")
            checked[site] = {int(h): a for h, a in schedule.items()}
        self.rules = checked
        #: How long a ``"hang"`` blocks the site — pick it longer than the
        #: recv deadline watching the site, so the hang reads as a stuck
        #: worker rather than a slow one.
        self.hang_seconds = float(hang_seconds)
        #: ``"exit"`` (process dies, installed by shard workers) or
        #: ``"raise"`` (an :class:`InjectedCrash` propagates).
        self.crash_action = crash_action
        self.exit_code = int(exit_code)
        self._hits: Dict[str, int] = {}
        #: ``(site, hit, action)`` triples that have fired in this
        #: process — the observability hook tests assert on.
        self.fired: list = []

    def fire(self, site: str) -> None:
        """Announce one pass through ``site``; act if one is scheduled."""
        hit = self._hits.get(site, 0) + 1
        self._hits[site] = hit
        action = self.rules.get(site, {}).get(hit)
        if action is None:
            return
        self.fired.append((site, hit, action))
        if action == "hang":
            time.sleep(self.hang_seconds)
            return
        if action == "crash":
            if self.crash_action == "exit":
                os._exit(self.exit_code)
            raise InjectedCrash(f"injected crash at {site} (hit {hit})")
        raise InjectedFault(f"injected error at {site} (hit {hit})")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def seeded(
        cls,
        seed: int,
        sites: Sequence[str] = WORKER_SITES,
        events: int = 2,
        horizon: int = 12,
        actions: Sequence[str] = ACTIONS,
        hang_seconds: float = 60.0,
    ) -> "FaultPlan":
        """A reproducible random schedule: ``events`` faults drawn over
        ``sites`` at hits in ``[1, horizon]``.  Same seed, same plan —
        the replayability the differential oracle needs."""
        rng = random.Random(seed)
        rules: Dict[str, Dict[int, str]] = {}
        for _ in range(events):
            site = rng.choice(list(sites))
            hit = rng.randint(1, horizon)
            rules.setdefault(site, {})[hit] = rng.choice(list(actions))
        return cls(rules, hang_seconds=hang_seconds)

    @classmethod
    def parse(cls, spec: str, hang_seconds: float = 60.0) -> "FaultPlan":
        """Parse an explicit plan spec: ``site@hit=action[;...]``.

        The hand-written form for pinning one fault in a repro, e.g.
        ``worker.post_apply@2=crash;worker.recv@5=hang``.
        """
        rules: Dict[str, Dict[int, str]] = {}
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            left, _, action = clause.partition("=")
            site, _, hit = left.partition("@")
            if not action or not hit:
                raise ValueError(
                    f"bad fault clause {clause!r}; expected site@hit=action"
                )
            rules.setdefault(site.strip(), {})[int(hit)] = action.strip()
        return cls(rules, hang_seconds=hang_seconds)


def plans_from_env(
    default_count: int = 2,
    env: str = "FIVM_FAULTS",
    base_seed: int = 0xFA17,
    **seeded_kwargs,
):
    """The seeded plans the CI fault-injection step runs.

    ``FIVM_FAULTS`` is either an integer — *n* seeded plans per caller
    (the tier-1 step runs a few, the nightly sweep many; seeds are
    ``base_seed + i``, so a larger count covers a superset) — or an
    explicit ``site@hit=action`` spec for pinning one failure.  Returns
    ``[(label, plan_factory)]``: factories, not plans, because hit
    counters are per process and each run needs a fresh instance.
    """
    raw = os.environ.get(env, "").strip()
    if raw and not raw.isdigit():
        return [("spec", lambda: FaultPlan.parse(raw, **seeded_kwargs))]
    count = int(raw) if raw else default_count

    def make_factory(seed: int):
        """A zero-arg factory for one seeded plan (late-binds ``seed``)."""
        return lambda: FaultPlan.seeded(seed, **seeded_kwargs)

    return [
        (f"seed{base_seed + i}", make_factory(base_seed + i))
        for i in range(count)
    ]
