"""Durability and recovery: engine snapshots + the sequence-numbered
update journal.

The paper's asymmetry — incremental maintenance is orders of magnitude
cheaper than recomputation — is exactly the asymmetry a recovery story
should exploit.  Before this module the only way to bring an engine back
after a process death was ``initialize(db)``: a full from-scratch join of
the base data.  Now recovery is **snapshot + idempotent tail replay**:

* :func:`take_snapshot` captures an engine's *portable* state — every
  materialized view as a plain ``{key: payload}`` dict (both the dict
  and columnar storages flatten to the same wire form), indicator-view
  support counts, and partial-mode active sets — tagged with the journal
  sequence number it reflects;
* :class:`UpdateJournal` records every applied update group under a
  monotonically increasing sequence number, in the same packed
  ``(name, schema, dict)`` wire format the sharded executor ships over
  pipes (the pack/unpack helpers live here and are shared);
* :func:`restore_snapshot` loads a snapshot back into a *compatible*
  fresh engine (same view names and schemas) without touching the
  planner: views absorb their saved contents, registered secondary
  indexes rebuild through the normal absorb path, and the probe cache is
  dropped;
* :class:`JournaledFIVMEngine` ties the three together for a single
  engine: updates are journaled then applied, :meth:`~JournaledFIVMEngine.
  checkpoint` snapshots and truncates, and :meth:`~JournaledFIVMEngine.
  recover_into` rebuilds a dead engine as snapshot + ``apply_batch`` of
  the journal tail.  Replay is idempotent by sequence number: entries at
  or below the snapshot's ``seq`` are excluded by
  :meth:`UpdateJournal.tail`, so a group is applied exactly once no
  matter how recovery is retried.

``benchmarks/test_recovery.py`` measures the payoff (snapshot + tail
replay vs. ``initialize``), and :mod:`repro.core.sharded` runs the same
machinery per shard: the supervisor checkpoints workers, journals routed
requests, and restarts a dead or hung worker from its shard snapshot +
journal tail.
"""

from __future__ import annotations

import pickle
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.factorized_update import FactorizedUpdate
from repro.data.relation import Relation

__all__ = [
    "SNAPSHOT_VERSION",
    "JournaledFIVMEngine",
    "UpdateJournal",
    "pack_item",
    "pack_relation",
    "plain_data",
    "restore_snapshot",
    "tail_handoff",
    "take_snapshot",
    "unpack_item",
    "unpack_relation",
]

SNAPSHOT_VERSION = 1


# ----------------------------------------------------------------------
# The packed wire/journal format: relations as plain picklable triples
# ----------------------------------------------------------------------


def plain_data(data) -> dict:
    """Materialize a relation's primary map as a plain dict (columnar
    relations expose a facade; snapshots, journals, and the shard wire
    format all want real dicts)."""
    return data if isinstance(data, dict) else dict(data)


def pack_relation(relation: Relation, copy: bool = False) -> tuple:
    """``(name, schema, {key: payload})`` — the packed form journals and
    the shard pipes carry.  ``copy=True`` detaches the dict from the live
    relation (journals outlive the delta they recorded)."""
    data = plain_data(relation._data)
    if copy and data is relation._data:
        data = dict(data)
    return (relation.name, relation.schema, data)


def unpack_relation(packed: tuple, ring) -> Relation:
    """Rebuild a :class:`Relation` from its packed tuple under ``ring``."""
    name, schema, data = packed
    out = Relation(name, schema, ring)
    out._data = data if isinstance(data, dict) else dict(data)
    return out


def pack_item(item, copy: bool = False) -> tuple:
    """Pack one update item (a listing delta or a
    :class:`FactorizedUpdate`) as tagged plain data."""
    if isinstance(item, FactorizedUpdate):
        return (
            "factorized",
            (
                item.relation,
                [
                    [pack_relation(f, copy=copy) for f in term]
                    for term in item.terms
                ],
            ),
        )
    return ("update", pack_relation(item, copy=copy))


def unpack_item(packed: tuple, ring):
    """Rebuild an update item (delta or factorized) from its tagged pack."""
    tag, payload = packed
    if tag == "factorized":
        relation, terms = payload
        return FactorizedUpdate(
            relation,
            [[unpack_relation(f, ring) for f in term] for term in terms],
            ring=ring,
        )
    return unpack_relation(payload, ring)


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------


def take_snapshot(engine, seq: Optional[int] = None) -> dict:
    """A portable snapshot of ``engine``'s maintained state.

    Captures every materialized view (bases and interior views alike) as
    plain dicts, indicator-view support counts and contents, and — in
    partial mode — the active sets with their LRU order, costs, drop
    records, and serving counters.  The planner, IR, and compiled
    programs are *not* captured: they are functions of the query and are
    rebuilt by constructing a fresh engine; only state that updates have
    accumulated needs to travel.
    """
    views = {
        name: {
            "schema": tuple(view.schema),
            "data": dict(plain_data(view._data)),
        }
        for name, view in engine.views.items()
    }
    indicators = {}
    for node_name, ivs in engine._indicator_views.items():
        indicators[node_name] = [
            {
                "name": iv.name,
                "counts": dict(iv._counts),
                "data": dict(plain_data(iv.relation._data)),
            }
            for iv in ivs
        ]
    partial = {}
    for name, active in engine.partial.items():
        partial[name] = {
            "entries": [[key, cost] for key, cost in active.entries.items()],
            "total_cost": active.total_cost,
            "dropped": list(active.dropped),
            "stats": dict(active.stats),
        }
    return {
        "version": SNAPSHOT_VERSION,
        "seq": seq,
        "root": engine.tree.root.name,
        "views": views,
        "indicators": indicators,
        "partial": partial,
    }


def restore_snapshot(engine, snapshot: dict) -> None:
    """Load a snapshot into a compatible engine (the inverse of
    :func:`take_snapshot`).

    The engine must maintain the same view set over the same schemas —
    i.e. be built from the same query, order, and flags; anything else is
    a caller bug and raises ``ValueError`` before any state is touched.
    View contents are written through the raw absorb path (registered
    secondary indexes rebuild in the same sweep); the partial-mode choke
    point is deliberately bypassed because active sets are restored
    verbatim alongside the payloads they admitted.
    """
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot version {snapshot.get('version')!r} != "
            f"{SNAPSHOT_VERSION}"
        )
    views = snapshot["views"]
    if set(views) != set(engine.views):
        raise ValueError(
            f"snapshot views {sorted(views)} != engine views "
            f"{sorted(engine.views)}"
        )
    for name, saved in views.items():
        if tuple(saved["schema"]) != tuple(engine.views[name].schema):
            raise ValueError(
                f"snapshot schema {saved['schema']} != "
                f"{engine.views[name].schema} of view {name!r}"
            )
    engine._probe_cache.clear()
    for name, saved in views.items():
        view = engine.views[name]
        view.clear()
        fragment = Relation(name, view.schema, engine.query.ring)
        fragment._data = dict(saved["data"])
        view.absorb_bulk(fragment)
    for node_name, ivs in engine._indicator_views.items():
        saved_list = snapshot["indicators"].get(node_name, [])
        if len(saved_list) != len(ivs):
            raise ValueError(
                f"snapshot indicators for {node_name!r} do not match"
            )
        for iv, saved in zip(ivs, saved_list):
            iv._counts = dict(saved["counts"])
            iv.relation.clear()
            fragment = Relation(iv.name, iv.attrs, engine.query.ring)
            fragment._data = dict(saved["data"])
            iv.relation.absorb_bulk(fragment)
    for name, active in engine.partial.items():
        saved = snapshot["partial"].get(name)
        if saved is None:
            raise ValueError(f"snapshot lacks active set for {name!r}")
        active.entries.clear()
        for key, cost in saved["entries"]:
            active.entries[tuple(key)] = cost
        active.total_cost = saved["total_cost"]
        active.dropped = {tuple(k) for k in saved["dropped"]}
        active.stats.update(saved["stats"])


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------


class UpdateJournal:
    """A sequence-numbered log of applied update groups.

    Entries are ``(seq, payload)`` with strictly increasing ``seq``;
    ``payload`` is whatever packed form the owner appends (the journaled
    engine stores packed item lists, the shard supervisor stores packed
    requests).  :meth:`truncate_through` drops everything a checkpoint
    has made redundant; :meth:`tail` yields the entries a recovery must
    replay — strictly after the snapshot's sequence number, which is
    what makes replay idempotent under retries.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[Tuple[int, object]] = []

    def append(self, seq: int, payload) -> None:
        """Record ``payload`` under ``seq`` (strictly increasing)."""
        if self._entries and seq <= self._entries[-1][0]:
            raise ValueError(
                f"journal sequence {seq} is not after {self._entries[-1][0]}"
            )
        self._entries.append((seq, payload))

    def tail(self, after_seq: int) -> List[Tuple[int, object]]:
        """Entries with ``seq > after_seq``, in order."""
        return [entry for entry in self._entries if entry[0] > after_seq]

    def truncate_through(self, seq: int) -> int:
        """Drop entries with ``seq <= seq``; returns how many were cut."""
        kept = [entry for entry in self._entries if entry[0] > seq]
        cut = len(self._entries) - len(kept)
        self._entries = kept
        return cut

    def clear(self) -> None:
        """Drop every journal entry."""
        self._entries = []

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest entry (0 when empty)."""
        return self._entries[-1][0] if self._entries else 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)


def tail_handoff(
    snapshot: Optional[Tuple[int, dict]], journal: UpdateJournal
) -> dict:
    """Bundle everything a restarted shard needs, as one plain object.

    ``snapshot`` is the supervisor's ``(base_seq, snapshot_data)`` pair
    (or ``None`` when no checkpoint has been taken); the handoff carries
    the snapshot plus the journal entries strictly after ``base_seq`` —
    the exact replay set that rebuilds the lost state.  Every recovery
    transport (pipe respawn, socket reconnect) consumes the same bundle,
    so the restart contract cannot drift between executors, and because
    the bundle is plain picklable data it can cross a wire to a remote
    :class:`~repro.serve.ShardHost` unchanged.
    """
    base_seq = snapshot[0] if snapshot is not None else 0
    return {
        "version": 1,
        "base_seq": base_seq,
        "snapshot": snapshot[1] if snapshot is not None else None,
        "tail": journal.tail(base_seq),
    }


# ----------------------------------------------------------------------
# The journaled engine: durability for a single FIVMEngine
# ----------------------------------------------------------------------


class JournaledFIVMEngine:
    """Write-ahead durability around one :class:`FIVMEngine`.

    Every update group is journaled (packed, detached from the caller's
    relations) *before* it is applied, under the next sequence number;
    :meth:`checkpoint` snapshots the engine and truncates the journal;
    :meth:`recover_into` rebuilds a fresh engine of the same
    configuration as snapshot + ``apply_batch`` replay of the tail.  The
    triggers mirror the engine facade, so callers (and the serving
    writer) can wrap an engine without changing their write path.

    ``checkpoint_every`` (optional) auto-checkpoints after that many
    journaled groups — the knob bounding both journal memory and
    recovery replay length.
    """

    def __init__(self, engine, checkpoint_every: Optional[int] = None):
        self.engine = engine
        self.journal = UpdateJournal()
        self.checkpoint_every = checkpoint_every
        #: Sequence number of the last applied group (acked state).
        self.applied_seq = 0
        self._next_seq = 0
        #: The latest checkpoint snapshot (``None`` until the first
        #: :meth:`checkpoint`; recovery then starts from an empty engine
        #: and replays the whole journal).
        self.snapshot: Optional[dict] = None

    # -- the write path -------------------------------------------------

    def apply_update(self, delta: Relation) -> Relation:
        """Journal and apply one delta (a one-item :meth:`apply_batch`)."""
        return self.apply_batch([delta])

    def apply_factorized_update(self, update: FactorizedUpdate) -> Relation:
        """Journal and apply one factorized update as its own group."""
        return self.apply_batch([update])

    def apply_batch(self, deltas: Iterable) -> Relation:
        """Journal the group write-ahead, then apply it to the engine."""
        items = list(deltas)
        self._next_seq += 1
        seq = self._next_seq
        self.journal.append(seq, [pack_item(i, copy=True) for i in items])
        result = self.engine.apply_batch(items)
        self.applied_seq = seq
        if (
            self.checkpoint_every is not None
            and len(self.journal) >= self.checkpoint_every
        ):
            self.checkpoint()
        return result

    def initialize(self, db) -> None:
        """(Re)load the engine and reset durability state to a fresh
        checkpoint of the loaded contents — the journal describes updates
        *since* an initialize, never across one."""
        self.engine.initialize(db)
        self.journal.clear()
        self.applied_seq = self._next_seq
        self.checkpoint()

    # -- checkpoint / recovery ------------------------------------------

    def checkpoint(self) -> dict:
        """Snapshot the engine at the last applied sequence number and
        truncate the journal through it."""
        self.snapshot = take_snapshot(self.engine, seq=self.applied_seq)
        self.journal.truncate_through(self.applied_seq)
        return self.snapshot

    def recover_into(self, engine) -> int:
        """Rebuild ``engine`` (a fresh, compatible instance) from the
        latest snapshot plus the journal tail; returns the number of
        replayed groups.  Safe to retry: replay covers exactly the
        entries after the snapshot's sequence number."""
        after = 0
        if self.snapshot is not None:
            restore_snapshot(engine, self.snapshot)
            after = self.snapshot["seq"] or 0
        replayed = 0
        ring = engine.query.ring
        for _seq, packed_items in self.journal.tail(after):
            engine.apply_batch(
                [unpack_item(p, ring) for p in packed_items]
            )
            replayed += 1
        return replayed

    # -- durability to disk ---------------------------------------------

    def save(self, path) -> None:
        """Persist snapshot + journal tail with :mod:`pickle` (payloads
        are ring values — ints, tuples, numpy arrays — all picklable)."""
        with open(path, "wb") as fh:
            pickle.dump(
                {
                    "snapshot": self.snapshot,
                    "journal": list(self.journal),
                    "applied_seq": self.applied_seq,
                },
                fh,
            )

    def load(self, path) -> None:
        """Load durability state saved by :meth:`save` (the engine itself
        is rebuilt separately via :meth:`recover_into`)."""
        with open(path, "rb") as fh:
            state = pickle.load(fh)
        self.snapshot = state["snapshot"]
        self.journal.clear()
        for seq, payload in state["journal"]:
            self.journal.append(seq, payload)
        self.applied_seq = state["applied_seq"]
        self._next_seq = max(self.applied_seq, self.journal.last_seq)

    # -- read-through ----------------------------------------------------

    def result(self) -> Relation:
        """The wrapped engine's maintained query result."""
        return self.engine.result()

    def contents(self, view_name: str) -> Relation:
        """Contents of one of the wrapped engine's materialized views."""
        return self.engine.contents(view_name)

    @property
    def views(self) -> Dict[str, Relation]:
        """The wrapped engine's materialized views, by name."""
        return self.engine.views
