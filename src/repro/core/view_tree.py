"""View trees (Figure 3): one view per variable, aggregates pushed past joins.

``build_view_tree`` implements the paper's τ(ω, F) construction:

* the variable order is extended with relation leaves placed under the
  lowest variable of each relation's schema;
* at a bound variable ``X`` the view joins its children and marginalizes
  ``X`` (applying the lifting function);
* at a free variable the view joins its children and keeps ``X`` in its keys;
* view keys are ``dep(X) ∪ (F ∩ ⋃ child keys)``.

Two practical refinements from the paper are applied:

* **chain collapsing** — long chains of bound variables local to one
  relation (wide schemas like Retailer's) are composed into a single view
  marginalizing several variables at once;
* **identical-view elision** — when a free variable's view would equal its
  only child (all keys free), no extra node is created ("we then only store
  the top view out of these identical views").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.query import Query
from repro.core.variable_order import VariableOrder, VONode
from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import SchemaError

__all__ = ["ViewNode", "ViewTree", "build_view_tree", "subtree_signature"]


class ViewNode:
    """A node in a view tree: either a relation leaf or a join-aggregate view."""

    __slots__ = (
        "name",
        "keys",
        "relations",
        "children",
        "marginalized",
        "at_vars",
        "leaf_of",
        "parent",
        "indicators",
    )

    def __init__(
        self,
        name: str,
        keys: Tuple[str, ...],
        relations: frozenset,
        children: List["ViewNode"],
        marginalized: Tuple[str, ...] = (),
        at_vars: Tuple[str, ...] = (),
        leaf_of: Optional[str] = None,
    ):
        self.name = name
        self.keys = keys
        self.relations = relations
        self.children = children
        self.marginalized = marginalized
        self.at_vars = at_vars
        self.leaf_of = leaf_of
        self.parent: Optional[ViewNode] = None
        #: Indicator projections attached by Appendix B's I(τ) algorithm;
        #: populated by :mod:`repro.core.indicator_trees`.
        self.indicators: list = []

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a relation leaf."""
        return self.leaf_of is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = f"leaf:{self.leaf_of}" if self.is_leaf else f"@{','.join(self.at_vars)}"
        return f"ViewNode({self.name} {kind} keys={list(self.keys)})"


class ViewTree:
    """A built view tree plus the query and variable order it came from."""

    def __init__(self, root: ViewNode, query: Query, order: VariableOrder):
        self.root = root
        self.query = query
        self.order = order
        self.nodes: List[ViewNode] = []
        self.leaves: Dict[str, ViewNode] = {}
        self._wire(root, None)

    def _wire(self, node: ViewNode, parent: Optional[ViewNode]) -> None:
        node.parent = parent
        self.nodes.append(node)
        if node.is_leaf:
            if node.leaf_of in self.leaves:
                raise SchemaError(
                    f"relation {node.leaf_of} occurs at two leaves; register "
                    "self-join occurrences under distinct names"
                )
            self.leaves[node.leaf_of] = node
        for child in node.children:
            self._wire(child, node)

    # ------------------------------------------------------------------

    def inner_views(self) -> List[ViewNode]:
        """Non-leaf views (what the paper counts as 'views')."""
        return [n for n in self.nodes if not n.is_leaf]

    def view_count(self) -> int:
        """Number of non-leaf views in the tree."""
        return len(self.inner_views())

    def path_to_root(self, relation: str) -> List[ViewNode]:
        """Nodes from the relation's leaf (exclusive) up to the root."""
        leaf = self.leaves[relation]
        path: List[ViewNode] = []
        node = leaf.parent
        while node is not None:
            path.append(node)
            node = node.parent
        return path

    def evaluate(
        self, db: Database, results: Optional[Dict[str, Relation]] = None
    ) -> Dict[str, Relation]:
        """Compute every view bottom-up over ``db``; returns name → contents.

        This is the static factorized-evaluation path (Section 3); IVM reuses
        the same node-level computation for deltas.
        """
        results = results if results is not None else {}
        self._evaluate(self.root, db, results)
        return results

    def _evaluate(
        self, node: ViewNode, db: Database, results: Dict[str, Relation]
    ) -> Relation:
        if node.is_leaf:
            contents = db.relation(node.leaf_of)
            results[node.name] = contents
            return contents
        child_results = [
            self._evaluate(child, db, results) for child in node.children
        ]
        contents = compute_view(node, child_results, self.query)
        results[node.name] = contents
        return contents

    def result_view(self) -> str:
        """Name of the view holding the query result."""
        return self.root.name

    def pretty(self) -> str:
        """Indented rendering of the tree (for docs and debugging)."""
        lines: List[str] = []

        def walk(node: ViewNode, depth: int) -> None:
            """Render ``node`` and its subtree at ``depth``."""
            pad = "  " * depth
            if node.is_leaf:
                lines.append(f"{pad}{node.leaf_of}[{', '.join(node.keys)}]")
            else:
                agg = (
                    f" marg({', '.join(node.marginalized)})"
                    if node.marginalized
                    else ""
                )
                lines.append(f"{pad}{node.name}[{', '.join(node.keys)}]{agg}")
                for ind in node.indicators:
                    lines.append(f"{pad}  ∃[{', '.join(ind.attrs)}]{ind.base_name}")
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


def compute_view(
    node: ViewNode,
    child_contents: Sequence[Relation],
    query: Query,
    indicator_contents: Sequence[Relation] = (),
) -> Relation:
    """Evaluate one inner view from its children's contents.

    Joins the children left-to-right (payload multiplication order follows
    child order, which matters for non-commutative rings), joins any
    indicator projections, marginalizes the node's bound variables
    (innermost first), and normalizes the schema to the node's key order.
    """
    if not child_contents:
        raise ValueError(f"view {node.name} has no children")
    current = child_contents[0]
    for other in child_contents[1:]:
        current = current.join(other)
    for indicator in indicator_contents:
        current = current.join(indicator)
    if node.marginalized:
        current = current.marginalize(
            node.marginalized, query.lifting.table(), name=node.name
        )
    if set(current.schema) != set(node.keys):
        raise SchemaError(
            f"view {node.name}: computed schema {current.schema} does not "
            f"match keys {node.keys}"
        )
    if current.schema != node.keys:
        current = current.reorder(node.keys, name=node.name)
    else:
        current = current.copy(name=node.name)
    return current


def build_view_tree(
    query: Query,
    order: Optional[VariableOrder] = None,
    collapse_chains: bool = True,
    elide_identical: bool = True,
) -> ViewTree:
    """Construct τ(ω, F) for ``query`` over ``order`` (Figure 3)."""
    order = order or VariableOrder.auto(query)
    order.validate(query)
    free = set(query.free)

    # Attach each relation to the lowest variable of its schema.  Relations
    # with empty schemas join at the (synthetic) top.
    anchored: Dict[str, List[str]] = {}
    top_level: List[str] = []
    for rel, schema in query.relations.items():
        if schema:
            anchored.setdefault(order.anchor(schema), []).append(rel)
        else:
            top_level.append(rel)

    used_names: Set[str] = set()

    def unique_name(base: str) -> str:
        """``base``, suffixed ``#n`` if already used."""
        name = base
        suffix = 1
        while name in used_names:
            suffix += 1
            name = f"{base}#{suffix}"
        used_names.add(name)
        return name

    def leaf(rel: str) -> ViewNode:
        """A leaf node for relation ``rel``."""
        return ViewNode(
            name=unique_name(rel),
            keys=query.schema_of(rel),
            relations=frozenset([rel]),
            children=[],
            leaf_of=rel,
        )

    def build(vo_node: VONode) -> ViewNode:
        """The view (sub)tree for one variable-order node."""
        children = [build(child) for child in vo_node.children]
        children += [leaf(rel) for rel in sorted(anchored.get(vo_node.var, ()))]
        if not children:
            raise SchemaError(
                f"variable {vo_node.var} has no relation below it"
            )
        relations = frozenset().union(*(c.relations for c in children))
        child_key_union: Set[str] = set()
        for child in children:
            child_key_union |= set(child.keys)
        keys = order.canonical_sort(
            order.dep(query, vo_node.var) | (free & child_key_union)
        )
        is_free = vo_node.var in free

        if is_free and elide_identical and len(children) == 1:
            child = children[0]
            if set(child.keys) == set(keys) and not child.is_leaf:
                # Identical view: keep only the child ("store the top view").
                child.at_vars = child.at_vars + (vo_node.var,)
                return child

        marginalized = () if is_free else (vo_node.var,)
        node = ViewNode(
            name="",
            keys=keys,
            relations=relations,
            children=children,
            marginalized=marginalized,
            at_vars=(vo_node.var,),
        )

        if collapse_chains and not is_free and len(children) == 1:
            child = children[0]
            if (
                not child.is_leaf
                and child.relations == relations
                and child.marginalized
            ):
                # Chain collapsing: compose consecutive bound marginalizations
                # local to the same relation set into one view.
                node.children = child.children
                node.marginalized = child.marginalized + node.marginalized
                node.at_vars = child.at_vars + node.at_vars
                used_names.discard(child.name)

        top_var = node.at_vars[-1]
        rel_tag = "".join(sorted(r[:1] for r in relations))
        node.name = unique_name(f"V@{top_var}_{rel_tag}")
        return node

    roots = [build(r) for r in order.roots]
    roots += [leaf(rel) for rel in top_level]

    if len(roots) == 1 and not roots[0].is_leaf:
        root = roots[0]
    else:
        # Disconnected query (or a single bare relation): synthesize a top
        # view joining the component results.
        relations = frozenset().union(*(r.relations for r in roots))
        child_key_union = set()
        for r in roots:
            child_key_union |= set(r.keys)
        keys = order.canonical_sort(free & child_key_union) if free else ()
        bound_left = tuple(
            a
            for r in roots
            for a in r.keys
            if a not in free
        )
        root = ViewNode(
            name=unique_name("V@top"),
            keys=tuple(k for k in keys),
            relations=relations,
            children=roots,
            marginalized=bound_left,
            at_vars=("top",),
        )
    return ViewTree(root, query, order)


def subtree_signature(query: Query, order: VariableOrder, var: str):
    """The canonical sharing key of the variable-order subtree at ``var``.

    The subtree at ``var`` determines a *sub-query*: the relations with a
    variable inside the subtree (a relation touching the subtree is anchored
    in it, because its variables lie on one root-to-leaf path), marginalizing
    exactly the subtree variables that are bound in ``query``.  Two
    registered queries whose subtrees produce the same signature compute the
    same sub-view — same relations and schemas, same output variables, same
    ring, and the same lifting function (by object identity) for every
    marginalized variable — so a multi-query engine can maintain that
    sub-view once and fan its deltas out to every subscriber
    (:mod:`repro.core.multiview`).

    The signature is *order-insensitive* below ``var``: it canonicalizes to
    sorted relation and variable tuples rather than encoding the subtree
    shape, because the shared sub-engine re-derives its own variable order
    from the sub-query (:meth:`VariableOrder.auto` is deterministic).  That
    is sound only for commutative rings — callers must not share across
    queries whose ring multiplication is order-sensitive.

    Returns ``(signature, relations, marginalized)``: the hashable key, the
    ``{name: schema}`` mapping of the sub-query's relations, and the set of
    variables it marginalizes.
    """
    subtree = order.subtree_vars(var)
    relations = {
        name: schema
        for name, schema in query.relations.items()
        if subtree & set(schema)
    }
    marginalized = subtree & set(query.bound)
    lift_ids = tuple(
        (v, None if query.lifting.get(v) is None else id(query.lifting.get(v)))
        for v in sorted(marginalized)
    )
    free = tuple(
        sorted(
            {a for schema in relations.values() for a in schema}
            - marginalized
        )
    )
    signature = (
        id(query.ring),
        tuple(sorted(relations.items())),
        free,
        lift_ids,
    )
    return signature, relations, marginalized
