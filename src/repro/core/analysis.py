"""Static analysis of queries and maintenance strategies.

The paper (Section 8) points out that the *q-hierarchical* queries of
Berkholz, Keppeler, and Schweikardt [8] are exactly the self-join-free
conjunctive queries admitting constant-time single-tuple updates — the
Housing star join is the running example.  This module implements the test
and a complexity sketch per updatable relation, used in documentation,
tests, and to explain benchmark shapes.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.query import Query
from repro.core.variable_order import VariableOrder
from repro.core.view_tree import ViewTree, build_view_tree

__all__ = ["is_hierarchical", "is_q_hierarchical", "update_cost_sketch"]


def _atoms(query: Query, variable: str) -> frozenset:
    return frozenset(query.relations_with(variable))


def is_hierarchical(query: Query) -> bool:
    """Whether for every pair of variables, atoms(X) and atoms(Y) are
    comparable or disjoint (the hierarchical property)."""
    variables = query.variables
    for i, x in enumerate(variables):
        ax = _atoms(query, x)
        for y in variables[i + 1:]:
            ay = _atoms(query, y)
            if ax & ay and not (ax <= ay or ay <= ax):
                return False
    return True


def is_q_hierarchical(query: Query) -> bool:
    """Whether the query is q-hierarchical [8]: hierarchical, and no free
    variable's atom set is strictly contained in a bound variable's.

    q-hierarchical self-join-free queries are exactly those maintainable
    with O(1) single-tuple updates (e.g. the Housing star join); for
    anything else some update takes time polynomial in the database.
    """
    if not is_hierarchical(query):
        return False
    free = set(query.free)
    for x in query.variables:
        if x not in free:
            continue
        ax = _atoms(query, x)
        for y in query.variables:
            if y in free:
                continue
            ay = _atoms(query, y)
            if ax < ay:
                return False
    return True


def update_cost_sketch(
    query: Query,
    order: Optional[VariableOrder] = None,
    tree: Optional[ViewTree] = None,
) -> Dict[str, str]:
    """Per-relation single-tuple update cost over a view tree.

    A single-tuple update to R binds all of R's variables.  Walking R's
    leaf-to-root path, the delta at each view ranges over the view's key
    variables not bound so far; if every view on the path is fully bound
    the update is O(1), otherwise it is O(|D|^k) with k the maximum number
    of unbound key variables (a coarse but honest bound, matching the
    paper's O(1)-for-S / linear-for-R-and-T analysis of Example 1.1).
    """
    tree = tree or build_view_tree(query, order)
    sketch: Dict[str, str] = {}
    for rel, schema in query.relations.items():
        bound: Set[str] = set(schema)
        worst = 0
        for node in tree.path_to_root(rel):
            unbound = set(node.keys) - bound
            worst = max(worst, len(unbound))
        sketch[rel] = "O(1)" if worst == 0 else f"O(N^{worst})"
    return sketch
