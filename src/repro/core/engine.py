"""The F-IVM engine: factorized higher-order incremental view maintenance.

Ties the pieces together (Sections 3–5 of the paper):

* builds the view tree τ(ω, F) for the query (Figure 3),
* decides which views µ(τ, U) materializes (Figure 5),
* compiles, for every possible delta entry point, a *delta-join plan* that
  probes materialized sibling views through secondary indexes — the
  operational form of the delta trees of Figure 4 — so a single-tuple update
  costs time proportional to the matched keys, not to view sizes,
* executes update triggers: list-form deltas via :meth:`apply_update`,
  batched multi-relation deltas via :meth:`apply_batch`, factorizable
  (rank-1/rank-r) deltas via :meth:`apply_factorized_update`
  with marginalization pushed past joins (the ``Optimize`` step, Section 5),
* maintains indicator projections for cyclic queries (Appendix B), with
  changes propagated along their own leaf-to-root paths in sequence.

Plan compilation pipeline
-------------------------

Delta propagation runs in three stages, all fixed at construction time:

1. **plan** — :meth:`_compile_plans` builds, per ``(node, source)`` entry
   point, a greedy left-deep probe order over the node's stored siblings
   and indicators (a list of :class:`_PlanStep`), marks group-aware steps,
   and registers the secondary indexes the probes need;
2. **IR** — each plan is lowered once to the typed delta-program IR of
   :mod:`repro.core.ir` (:func:`~repro.core.ir.lower_delta_plan`): every
   live attribute gets an explicit register, every probe an explicit op;
3. **backend** — the IR is realized by the engine's *backend* (the
   ``backend=`` parameter):

   * ``"source"`` (default; ``compiled=True``) — generated Python
     triggers (:mod:`repro.core.plan_exec`), zero dict allocation per
     delta tuple, shard-shareable through a
     :class:`~repro.core.plan_exec.ProgramLibrary`;
   * ``"interpreter"`` (``compiled=False``) — the IR walked directly
     (:mod:`repro.core.ir`), the executable reference semantics the
     differential tests hold the other backends to;
   * ``"kernels"`` — vectorized NumPy execution
     (:mod:`repro.core.kernels`) for rings exposing array hooks
     (``Ring.kernel_ops``); nodes over other rings fall back to
     ``"source"`` per the backend policy.

The factorized path is compiled the same way: each rank-1 term of a
:class:`FactorizedUpdate` runs through one *factor program* per node,
lowered lazily per ``(node, source, factor partition)`` since partitions
depend on the update stream, and realized by the same backend (the
kernels backend reuses the generated-source factor programs).  Sibling
collapses — including partial-match bucket probes, reduced to their
surviving extends — are memoized in a per-view **probe cache** shared
across the terms of one update, the relations of one :meth:`apply_batch`
pass, and consecutive updates; every view write invalidates that view's
entries (:meth:`_invalidate`), which is what makes the sharing sound.

Batched-trigger contract
------------------------

:meth:`apply_batch` takes any iterable of per-relation deltas (in arrival
order), coalesces them into **one merged delta per relation**, absorbs each
stored base once, and propagates one merged delta per leaf-to-root path.
Because single-relation propagation is linear in the delta and the final
view state is a function of the final database only, the maintained views
and the returned total root delta equal those of applying the deltas one by
one — while paths and indexes are touched once per relation instead of once
per delta (the paper's Figure 12 batching effect).  Items may also be
:class:`FactorizedUpdate` instances, whose terms coalesce per relation and
propagate in product form through the same pass.

Partial materialization (serving mode)
--------------------------------------

``materialization="partial"`` puts the root view — the served surface —
in Noria-style partial mode (:mod:`repro.core.serving`): it only holds
entries for keys in its **active set** (keys registered by
:class:`~repro.core.serving.ViewClient` lookups), deltas for every other
key are dropped at the root *before* the root's sibling probes run (with
an explicit drop record so later registration is observable), and a
cold-key lookup recomputes its value with a single-key upquery cascade
over the interior views, which stay fully maintained.  Construction
forces the **upquery support set**: every view (or, failing that, base
leaf) the cascade can reach is materialized even when µ alone would skip
it.  An LRU evictor bounds the active set under ``partial_budget``
logical scalars (the accounting of :mod:`repro.bench.memory`).  In this
mode root deltas returned by the triggers are restricted to the active
set, and :meth:`result` only covers served keys — reads go through the
client, not :meth:`contents`.

Every write into a materialized view — delta absorbs on both propagate
paths, factorized flattens, stored-base absorbs, and
:meth:`initialize`'s loads — flows through the single
:meth:`_write_view` choke point, which applies the partial filter and
the probe-cache invalidation together so no write path can bypass
either.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.factorized_update import FactorizedUpdate
from repro.core.ir import (
    InterpreterDeltaProgram,
    InterpreterFactorProgram,
    lower_delta_plan,
    lower_factor_plan,
)
from repro.core.materialization import delta_sources, materialization_flags
from repro.core.plan_exec import (
    ProgramLibrary,
    canonical_partition,
    compile_factor_program,
    compile_slot_program,
)
from repro.core.query import Query
from repro.core.variable_order import VariableOrder
from repro.core.view_tree import ViewNode, ViewTree, build_view_tree, compute_view
from repro.data.columnar import ColumnarRelation
from repro.data.database import Database
from repro.data.indicator import IndicatorView
from repro.data.relation import Relation

__all__ = [
    "DeferredRelation",
    "FIVMEngine",
    "check_delta",
    "check_factorized",
    "BACKENDS",
    "STORAGES",
    "MATERIALIZATIONS",
    "resolve_backend",
    "resolve_storage",
    "resolve_materialization",
]

#: The trigger backends a :class:`FIVMEngine` can execute its delta
#: programs with (see the module docstring).
BACKENDS = ("interpreter", "source", "kernels")

#: How materialized views store their payloads: ``"dict"`` keeps the
#: classic ``{key: payload}`` maps, ``"columnar"`` stores packed ring
#: blocks behind a dict-compatible facade
#: (:class:`repro.data.columnar.ColumnarRelation`) — absorbs, index
#: maintenance, and (under the kernels backend) the trigger programs
#: themselves then run over arrays end-to-end.
STORAGES = ("dict", "columnar")

#: How much of the view tree is maintained: ``"full"`` keeps every
#: materialized view complete (the classic mode), ``"partial"`` keeps the
#: root view only for actively served keys (see the module docstring and
#: :mod:`repro.core.serving`).
MATERIALIZATIONS = ("full", "partial")


def resolve_backend(backend: Optional[str], compiled: bool) -> str:
    """The one place the ``backend=`` / legacy ``compiled`` parameters are
    reconciled and validated: ``backend`` wins; ``compiled`` maps ``True``
    → ``"source"`` and ``False`` → ``"interpreter"``.  Shared by
    :class:`FIVMEngine` and the sharding facade so the two can never
    disagree about what a parameter combination means."""
    if backend is None:
        backend = "source" if compiled else "interpreter"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def resolve_storage(storage: Optional[str]) -> str:
    """Validate the ``storage=`` parameter (shared with the sharding
    facade); ``None`` means the classic dict storage."""
    if storage is None:
        return "dict"
    if storage not in STORAGES:
        raise ValueError(
            f"unknown storage {storage!r}; expected one of {STORAGES}"
        )
    return storage


def resolve_materialization(materialization: Optional[str]) -> str:
    """Validate the ``materialization=`` parameter; ``None`` means the
    classic full materialization."""
    if materialization is None:
        return "full"
    if materialization not in MATERIALIZATIONS:
        raise ValueError(
            f"unknown materialization {materialization!r}; "
            f"expected one of {MATERIALIZATIONS}"
        )
    return materialization

#: The slot descriptor behind ``Relation._data``, captured before
#: :class:`DeferredRelation` shadows it with a resolving property.
_DATA_SLOT = Relation.__dict__["_data"]


class DeferredRelation(Relation):
    """A relation whose contents materialize lazily, on first access.

    The deferred-delta facade of the pipelined shard executor: a
    pipelined ``apply_update`` returns one of these immediately — name,
    schema, and ring are known up front; the payload map is produced by
    ``resolver()`` (typically: drain the in-flight acks and ring-merge
    the per-shard root deltas) the first time anything touches ``_data``.
    Callers that ignore the return value (streaming benchmarks, fire-and
    -forget writers) therefore never pay the round trip; callers that
    read it get the exact eager semantics, just later.

    Implementation: the parent class stores payloads in a ``_data``
    slot; this subclass shadows that slot descriptor with a property
    whose getter runs the resolver once and writes the result through
    the captured slot, so every inherited method (``payload``, ``join``,
    ``same_as``, iteration, …) transparently forces resolution.
    """

    __slots__ = ("_resolver",)

    def __init__(self, name: str, schema, ring, resolver):
        self._resolver = None  # __init__'s _data write must not resolve
        super().__init__(name, schema, ring)
        self._resolver = resolver

    @property
    def _data(self):
        """The payload map, resolving on first access."""
        resolver = self._resolver
        if resolver is not None:
            self._resolver = None
            _DATA_SLOT.__set__(self, resolver())
        return _DATA_SLOT.__get__(self)

    @_data.setter
    def _data(self, value):
        self._resolver = None
        _DATA_SLOT.__set__(self, value)

    @property
    def resolved(self) -> bool:
        """True once the payload map has materialized (reads force it)."""
        return self._resolver is None


#: A delta source at a node: ("child", i) for the i-th child subtree,
#: ("ind", i) for the i-th hosted indicator projection.
Source = Tuple[str, int]


def check_delta(tree: ViewTree, updatable: frozenset, delta: Relation) -> ViewNode:
    """Validate a listing delta against the updatable set and leaf schema.

    Part of the shard-safe engine facade: the single-engine triggers and
    the sharding router (:mod:`repro.core.sharded`, which holds a stateless
    reference tree rather than a full engine) apply the same admission
    checks through this one helper.  Returns the relation's leaf node.
    """
    rel = delta.name
    if rel not in updatable:
        raise KeyError(f"relation {rel!r} is not updatable")
    leaf = tree.leaves[rel]
    if delta.schema != leaf.keys:
        raise ValueError(
            f"delta schema {delta.schema} != {leaf.keys} of {rel}"
        )
    return leaf


def check_factorized(
    tree: ViewTree, updatable: frozenset, update: FactorizedUpdate
) -> ViewNode:
    """Validate a factorized delta's relation and attribute cover (the
    factorized twin of :func:`check_delta`)."""
    rel = update.relation
    if rel not in updatable:
        raise KeyError(f"relation {rel!r} is not updatable")
    leaf = tree.leaves[rel]
    if update.terms and update.attributes != frozenset(leaf.keys):
        raise ValueError(
            f"factorized delta covers {sorted(update.attributes)} "
            f"!= {leaf.keys} of {rel}"
        )
    return leaf


class _PlanStep:
    """One probe in a delta-join plan: extend bindings from a target."""

    __slots__ = ("kind", "index", "probe_attrs", "extend_attrs", "aggregated")

    def __init__(
        self,
        kind: str,
        index: int,
        probe_attrs: Tuple[str, ...],
        extend_attrs: Tuple[str, ...],
    ):
        self.kind = kind  # "child" or "ind"
        self.index = index
        self.probe_attrs = probe_attrs  # shared attrs, in target schema order
        self.extend_attrs = extend_attrs  # new attrs contributed by target
        #: When the extended attributes are never used downstream (not in
        #: the output keys, not lifted, not probed by later steps), the step
        #: reads the bucket's payload *sum* instead of iterating matches —
        #: a group-aware join (pre-aggregated sibling lookup).
        self.aggregated = False


class FIVMEngine:
    """Maintains a join-aggregate query result under updates.

    Parameters
    ----------
    query:
        The join-aggregate query (ring + lifting functions included).
    order:
        Variable order; derived heuristically when omitted.
    updatable:
        Relations that may receive updates (default: all).  Fewer updatable
        relations mean fewer materialized views (the paper's ONE scenarios).
    tree:
        A pre-built (possibly indicator-adorned) view tree; overrides
        ``order``.
    db:
        Initial database contents; omitted means starting from empty
        relations (the streaming scenario).
    """

    def __init__(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        updatable: Optional[Iterable[str]] = None,
        tree: Optional[ViewTree] = None,
        db: Optional[Database] = None,
        collapse_chains: bool = True,
        materialize: str = "auto",
        group_aware: bool = True,
        compiled: bool = True,
        backend: Optional[str] = None,
        storage: Optional[str] = None,
        materialization: Optional[str] = None,
        partial_budget: Optional[int] = None,
        program_library: Optional[ProgramLibrary] = None,
        faults=None,
    ):
        self.query = query
        #: Optional :class:`repro.core.faults.FaultPlan`; when set, the
        #: engine announces the ``engine.write_view`` site on every
        #: materialized-view write (the fault-injection hook the
        #: robustness tests use — ``None`` costs one attribute check).
        self._faults = faults
        #: Optional cross-engine cache of generated trigger code.  The
        #: sharding layer hands one library to all of its in-process shard
        #: engines so isomorphic triggers are generated once and only
        #: re-bound per shard; libraries must not be shared between
        #: differently configured engines (see :mod:`repro.core.plan_exec`).
        self._library = program_library
        #: The trigger backend realizing the delta-program IR (see the
        #: module docstring and :func:`resolve_backend`).
        self.backend = resolve_backend(backend, compiled)
        #: Legacy view of the backend choice (kept for callers of the old
        #: two-way API): every backend except the IR interpreter compiles.
        self.compiled = backend != "interpreter"
        #: Whether probes may read per-bucket payload sums (group-aware
        #: joins).  On by default; exposed for ablation benchmarks.
        self.group_aware = group_aware
        self.tree = tree or build_view_tree(
            query, order, collapse_chains=collapse_chains
        )
        self.updatable = (
            frozenset(updatable) if updatable is not None
            else frozenset(query.relations)
        )
        if materialize == "all":
            # Factorized result representations live in *all* views
            # (Section 6.3): the hierarchy of payloads is the result.
            self.flags = {node.name: True for node in self.tree.nodes}
        elif materialize == "auto":
            self.flags = materialization_flags(self.tree, self.updatable)
        else:
            raise ValueError("materialize must be 'auto' or 'all'")
        self._sources = delta_sources(self.tree, self.updatable)
        #: Payload storage for materialized views (see :data:`STORAGES`).
        self.storage = resolve_storage(storage)
        #: Full vs partial maintenance (see :data:`MATERIALIZATIONS`).
        self.materialization = resolve_materialization(materialization)
        #: Active sets per partial view (empty in full mode); consulted by
        #: the :meth:`_write_view` choke point and the serving client.
        self.partial: Dict[str, "ActiveSet"] = {}
        if self.materialization == "partial" and not self.tree.root.is_leaf:
            # The root is the served surface; everything below it that an
            # upquery can reach must stay fully maintained, even views µ
            # alone would skip (imported lazily: serving pulls in the
            # bench memory accounting, which full-mode engines never need).
            from repro.core.serving import ActiveSet

            root = self.tree.root
            for child in root.children:
                self._force_upquery_support(child)
            self.partial[root.name] = ActiveSet(
                root.name, root.keys, partial_budget
            )
        view_cls = ColumnarRelation if self.storage == "columnar" else Relation
        self.views: Dict[str, Relation] = {}
        for node in self.tree.nodes:
            if self.flags[node.name]:
                self.views[node.name] = view_cls(
                    node.name, node.keys, query.ring
                )
        # Indicator views (stateful count-based maintenance), per node.
        self._indicator_views: Dict[str, List[IndicatorView]] = {}
        for node in self.tree.nodes:
            if node.indicators:
                self._indicator_views[node.name] = [
                    IndicatorView(
                        spec.base_name,
                        query.schema_of(spec.base_name),
                        spec.attrs,
                        query.ring,
                        spec.name,
                    )
                    for spec in node.indicators
                ]
        # Indicator hosts per observed base relation, precomputed so the
        # update trigger does not rescan the tree on every delta.
        self._indicator_hosts: Dict[str, List[Tuple[ViewNode, int, IndicatorView]]] = {}
        for node in self.tree.nodes:
            for i, iv in enumerate(self._indicators_at(node)):
                self._indicator_hosts.setdefault(iv.base_name, []).append(
                    (node, i, iv)
                )
        self._child_pos: Dict[str, Dict[str, int]] = {
            node.name: {c.name: i for i, c in enumerate(node.children)}
            for node in self.tree.nodes
            if not node.is_leaf
        }
        self._plans: Dict[Tuple[str, Source], List[_PlanStep]] = {}
        #: Lowered IR per (node, source) — the single program every
        #: backend realizes (:mod:`repro.core.ir`).
        self._ir: Dict[Tuple[str, Source], object] = {}
        #: Executable delta programs per (node, source), built by the
        #: selected backend; every program answers ``run(delta)``.
        self._programs: Dict[Tuple[str, Source], object] = {}
        #: Factor programs, lowered+built lazily per (node, source, factor
        #: partition) the first time a rank-1 term with that shape passes
        #: through — partitions depend on the updates, not the tree.
        self._factor_programs: Dict[tuple, object] = {}
        #: Shared probe cache: view name → per-site memoized sibling
        #: collapses (see :mod:`repro.core.plan_exec`).  Entries stay valid
        #: until the view absorbs a delta; every write path below calls
        #: :meth:`_invalidate`, which is what makes sharing probe results
        #: across rank-1 terms, across the relations of one
        #: :meth:`apply_batch` pass, and across consecutive updates sound.
        self._probe_cache: Dict[str, dict] = {}
        self._compile_plans()
        if db is not None:
            self.initialize(db)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _indicators_at(self, node: ViewNode) -> List[IndicatorView]:
        return self._indicator_views.get(node.name, [])

    def _compile_plans(self) -> None:
        """Build one delta-join plan per (node, delta entry point) and
        register the secondary indexes the probes need."""
        for node in self.tree.nodes:
            if node.is_leaf:
                continue
            live_children = [
                i
                for i, child in enumerate(node.children)
                if self._sources[child.name]
            ]
            live_inds = [
                i
                for i, spec in enumerate(node.indicators)
                if spec.base_name in self.updatable
            ]
            for i in live_children:
                self._plans[(node.name, ("child", i))] = self._plan(
                    node, ("child", i)
                )
            for i in live_inds:
                self._plans[(node.name, ("ind", i))] = self._plan(
                    node, ("ind", i)
                )
        # Second pass, after every plan has registered its indexes: lower
        # each plan to IR once, then hand it to the backend
        # (plan → IR → backend program).
        by_name = {node.name: node for node in self.tree.nodes}
        for (node_name, source), plan in self._plans.items():
            node = by_name[node_name]
            targets = [self._plan_target_relation(node, step) for step in plan]
            ir = lower_delta_plan(
                node, source, plan, tuple(t.schema for t in targets),
                self.query,
            )
            self._ir[(node_name, source)] = ir
            self._programs[(node_name, source)] = self._build_delta_program(
                ir, targets
            )

    def _build_delta_program(self, ir, targets):
        """Realize one flat IR program with the selected backend.

        The backend *policy*: the interpreter and source backends apply to
        every node; the kernels backend applies per node where the payload
        ring exposes array hooks (``Ring.kernel_ops``) and falls back to
        the generated-source program elsewhere, so mixed trees stay fully
        functional.
        """
        if self.backend == "interpreter":
            return InterpreterDeltaProgram(ir, targets, self.query)
        if self.backend == "kernels":
            from repro.core.kernels import kernel_delta_program

            program = kernel_delta_program(
                ir, targets, self.query, library=self._library
            )
            if program is not None:
                return program
        return compile_slot_program(
            ir, targets, self.query, library=self._library
        )

    def _build_factor_program(self, ir, targets):
        """Realize one factor IR program with the selected backend (the
        kernels backend reuses the generated-source factor programs —
        rank-1 terms are tiny, so the flat path is where arrays pay)."""
        if self.backend == "interpreter":
            return InterpreterFactorProgram(ir, targets, self.query)
        return compile_factor_program(
            ir, targets, self.query, library=self._library
        )

    def _plan(self, node: ViewNode, source: Source) -> List[_PlanStep]:
        kind, idx = source
        if kind == "child":
            accumulated = set(node.children[idx].keys)
        else:
            accumulated = set(node.indicators[idx].attrs)
        pending: List[Tuple[str, int, Tuple[str, ...]]] = []
        for i, child in enumerate(node.children):
            if not (kind == "child" and i == idx):
                pending.append(("child", i, child.keys))
        for i, spec in enumerate(node.indicators):
            if not (kind == "ind" and i == idx):
                pending.append(("ind", i, spec.attrs))

        steps: List[_PlanStep] = []
        while pending:
            # Prefer the target sharing the most attributes with what we
            # already have (greedy left-deep plan); deterministic tie-break.
            def overlap(entry: Tuple[str, int, Tuple[str, ...]]) -> int:
                """Attributes the candidate shares with the accumulated set."""
                return len(accumulated & set(entry[2]))

            best = max(
                range(len(pending)),
                key=lambda i: (overlap(pending[i]), -i),
            )
            t_kind, t_idx, t_schema = pending.pop(best)
            probe_attrs = tuple(a for a in t_schema if a in accumulated)
            extend_attrs = tuple(a for a in t_schema if a not in accumulated)
            steps.append(_PlanStep(t_kind, t_idx, probe_attrs, extend_attrs))
            accumulated |= set(t_schema)

        # Mark group-aware steps: a target whose extended attributes are not
        # in the node's keys, not lifted during marginalization, and not
        # probed by a later step can be read as one pre-aggregated sum.
        lifted = {
            var for var in node.marginalized
            if self.query.lifting.get(var) is not None
        }
        for i, step in enumerate(steps):
            if not self.group_aware:
                break
            needed = set(node.keys) | lifted
            for later in steps[i + 1:]:
                needed |= set(later.probe_attrs)
            step.aggregated = not (set(step.extend_attrs) & needed)

        # Register the indexes the probes will use on the stored targets.
        for step in steps:
            target = self._plan_target_relation(node, step)
            if step.probe_attrs and step.probe_attrs != target.schema:
                target.register_index(step.probe_attrs)
        return steps

    def _plan_target_relation(self, node: ViewNode, step: _PlanStep) -> Relation:
        if step.kind == "ind":
            return self._indicators_at(node)[step.index].relation
        child = node.children[step.index]
        stored = self.views.get(child.name)
        if stored is None:
            raise RuntimeError(
                f"delta propagation through {node.name} needs sibling "
                f"{child.name} materialized; µ should have flagged it"
            )
        return stored

    def _force_upquery_support(self, node: ViewNode) -> None:
        """Ensure ``node``'s slice is computable by a cold-key upquery.

        A materialized view answers the cascade with one index probe; an
        unmaterialized one must recurse, so its children (transitively,
        down to base leaves) are forced into µ's materialized set.  Runs
        before view storage is allocated, so forcing is just flag flips.
        """
        if self.flags[node.name]:
            return
        if node.is_leaf:
            self.flags[node.name] = True
            return
        for child in node.children:
            self._force_upquery_support(child)

    # ------------------------------------------------------------------
    # The write/invalidation choke point
    # ------------------------------------------------------------------

    def _invalidate(self, view_name: str) -> None:
        """Drop the probe cache's entries for a view that just changed."""
        if self._probe_cache:
            self._probe_cache.pop(view_name, None)

    def _write_view(self, view_name: str, delta: Relation) -> Relation:
        """Absorb ``delta`` into a materialized view — the single choke
        point every write path shares.

        Applies, in order: the partial-materialization filter (entries
        for unregistered keys are dropped and recorded, see the module
        docstring), the absorb itself, the probe-cache invalidation that
        keeps memoized sibling collapses sound, and — for partial views —
        the cost re-accounting plus LRU eviction back under budget.
        Returns the delta that was actually absorbed (``delta`` itself
        unless the partial filter trimmed it), so propagation loops can
        keep threading the surviving entries upward.
        """
        if self._faults is not None:
            self._faults.fire("engine.write_view")
        active = self.partial.get(view_name)
        if active is not None:
            delta = self._partial_filter(active, delta)
            if delta.is_empty:
                return delta
        view = self.views[view_name]
        view.absorb(delta)
        self._invalidate(view_name)
        if active is not None:
            from repro.core.serving import active_payload_cost

            ring = self.query.ring
            for key in delta.keys():
                active.update_cost(
                    key, active_payload_cost(ring, view.payload(key))
                )
            self._evict_over_budget(active)
        return delta

    def _partial_filter(self, active, delta: Relation) -> Relation:
        """Split a delta for a partial view into the absorbed (active)
        part, recording a drop per discarded key."""
        entries = active.entries
        data = delta._data
        kept = Relation(delta.name, delta.schema, delta.ring)
        kept._data = {k: v for k, v in data.items() if k in entries}
        if len(kept._data) != len(data):
            active.record_drops(set(data) - entries.keys())
        return kept

    def _partial_prefilter(
        self, active, node: ViewNode, delta: Relation
    ) -> Relation:
        """Drop cold-key rows of a delta *entering* a partial node before
        its probe program runs.

        Only applies when every key attribute of the node appears in the
        incoming delta's schema — then each delta row contributes to
        exactly the root key it projects to (the lowering binds output
        registers straight from the delta row), so rows projecting to
        unregistered keys can be discarded without probing siblings at
        all: the Noria saving that makes cold writes cheap.  Otherwise
        the delta passes through and :meth:`_write_view` post-filters.
        """
        schema = delta.schema
        keys = node.keys
        data = delta._data
        entries = active.entries
        kept = Relation(delta.name, schema, delta.ring)
        if tuple(keys) == tuple(schema):
            # The usual shape — the delta entering the root is the child's
            # marginalized output, keyed exactly by the root's group-by —
            # filters at C speed: one dict comprehension, one set diff.
            kept._data = {k: v for k, v in data.items() if k in entries}
            if len(kept._data) != len(data):
                active.record_drops(set(data) - entries.keys())
            return kept
        if any(attr not in schema for attr in keys):
            return delta
        positions = [schema.index(attr) for attr in keys]
        out = kept._data
        dropped = set()
        for key, payload in data.items():
            out_key = tuple(key[p] for p in positions)
            if out_key in entries:
                out[key] = payload
            else:
                dropped.add(out_key)
        active.record_drops(dropped)
        return kept

    def _evict_over_budget(self, active) -> None:
        """LRU-evict active keys until the set fits its scalar budget.

        Evicted keys lose their stored payload too (that is the memory
        being reclaimed); a later lookup re-registers them through the
        upquery path.  The stored entry is cancelled with a raw absorb —
        the key is leaving the active set, so the partial filter must not
        see this write.
        """
        if active.budget is None or not active.over_budget():
            return
        view = self.views[active.name]
        ring = self.query.ring
        while active.over_budget() and len(active.entries) > 0:
            key = active.pop_lru()
            payload = view.payload(key)
            if not ring.is_zero(payload):
                cancel = Relation(view.name, view.schema, ring)
                cancel._data = {key: ring.neg(payload)}
                view.absorb(cancel)
                self._invalidate(active.name)

    # ------------------------------------------------------------------
    # Initialization / recomputation
    # ------------------------------------------------------------------

    def initialize(self, db: Database) -> None:
        """(Re)load all materialized views from a database snapshot.

        Every view load flows through :meth:`_write_view`, so the loads
        invalidate the probe cache (and respect partial-mode active sets)
        exactly like delta writes do — lookups or updates interleaved
        before an initialize can never leave stale memoized collapses
        behind.
        """
        self._probe_cache.clear()
        for view in self.views.values():
            view.clear()
        for active in self.partial.values():
            # Stored payloads are gone; re-account every active key at its
            # key-only cost (the reload below restores the active values),
            # and forget drop records — they described the previous state.
            for key in active.entries:
                active.entries[key] = active.width
            active.total_cost = active.width * len(active.entries)
            active.dropped.clear()

        def evaluate(node: ViewNode) -> Relation:
            """Bottom-up (re)computation of one node from ``db``."""
            if node.is_leaf:
                contents = db.relation(node.leaf_of)
                if self.flags[node.name]:
                    self._write_view(node.name, contents)
                return contents
            child_contents = [evaluate(child) for child in node.children]
            ind_contents = []
            for iv in self._indicators_at(node):
                iv.reset_from(db.relation(iv.base_name))
                ind_contents.append(iv.relation)
            contents = compute_view(node, child_contents, self.query, ind_contents)
            if self.flags[node.name]:
                self._write_view(node.name, contents)
            return contents

        evaluate(self.tree.root)

    # ------------------------------------------------------------------
    # Durability (see :mod:`repro.core.checkpoint`)
    # ------------------------------------------------------------------

    def snapshot(self, seq: Optional[int] = None) -> dict:
        """A portable snapshot of the maintained state (every view as a
        plain dict — both storages — plus indicator counts and partial
        active sets), tagged with journal sequence number ``seq``.
        Restore it into a fresh engine of the same configuration with
        :meth:`restore`; recovery is then snapshot + journal-tail replay
        through :meth:`apply_batch` instead of an :meth:`initialize`
        recompute."""
        from repro.core.checkpoint import take_snapshot

        return take_snapshot(self, seq=seq)

    def restore(self, snapshot: dict) -> None:
        """Load a :meth:`snapshot` back into this engine (must maintain
        the same views over the same schemas); secondary indexes rebuild
        through the normal absorb path and the probe cache is dropped."""
        from repro.core.checkpoint import restore_snapshot

        restore_snapshot(self, snapshot)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def result(self) -> Relation:
        """The maintained query result (the root view)."""
        return self.views[self.tree.root.name]

    def contents(self, view_name: str) -> Relation:
        """Contents of a materialized view by name."""
        return self.views[view_name]

    def materialized_names(self) -> Tuple[str, ...]:
        """Sorted names of the materialized views."""
        return tuple(sorted(self.views))

    def view_sizes(self) -> Dict[str, int]:
        """Number of keys per materialized view (logical memory)."""
        sizes = {name: len(view) for name, view in self.views.items()}
        for ivs in self._indicator_views.values():
            for iv in ivs:
                sizes[iv.name] = len(iv.relation)
        return sizes

    def total_keys(self) -> int:
        """Total stored keys across all materialized views."""
        return sum(self.view_sizes().values())

    def view_count(self) -> int:
        """Number of materialized non-leaf views (paper's view counts)."""
        leaf_names = {leaf.name for leaf in self.tree.leaves.values()}
        return sum(1 for name in self.views if name not in leaf_names)

    # ------------------------------------------------------------------
    # Update triggers
    # ------------------------------------------------------------------

    def apply_update(self, delta: Relation) -> Relation:
        """Apply ``R := R ⊎ δR`` and maintain all views; returns the root
        delta (total change of the query result)."""
        rel = delta.name
        leaf = check_delta(self.tree, self.updatable, delta)
        root = self.tree.root
        empty_root_delta = Relation(root.name, root.keys, self.query.ring)
        if delta.is_empty:
            return empty_root_delta

        # 1. Compute indicator deltas against the pre-update base state.
        ind_tasks: List[Tuple[ViewNode, int, IndicatorView, Relation]] = []
        for node, i, iv in self._indicator_hosts.get(rel, ()):
            base = self.views.get(self.tree.leaves[rel].name)
            if base is None:
                raise RuntimeError(
                    f"indicator over {rel} needs its base stored"
                )
            ind_tasks.append((node, i, iv, iv.compute_delta(delta, base)))

        # 2. Absorb the delta into the stored base copy (if stored).
        if leaf.name in self.views:
            self._write_view(leaf.name, delta)

        # 3. Propagate along the relation's leaf-to-root path.
        root_delta = self._propagate(leaf, delta)

        # 4. Propagate each indicator delta along its host-to-root path, in
        #    sequence, committing each before the next fires.
        for node, i, iv, ind_delta in ind_tasks:
            if not ind_delta.is_empty:
                contribution = self._propagate_from_indicator(node, i, ind_delta)
                root_delta = root_delta.union(contribution, name=root.name)
            iv.commit(ind_delta)
            if not ind_delta.is_empty:
                self._invalidate(iv.name)
        return root_delta

    def apply_batch(self, deltas: Iterable) -> Relation:
        """Apply a sequence of per-relation deltas as one batched trigger.

        Coalesces the deltas into one merged delta per relation (tuples that
        cancel across the batch vanish before propagation), absorbs each
        stored base once, and propagates one merged delta per leaf-to-root
        path — relations fire in :meth:`schedule_paths` order, which groups
        paths sharing subtrees so probe-cache entries computed for one
        relation survive into its neighbours' propagation.  Returns the
        total root delta; the maintained state and the returned total equal
        those of :meth:`apply_update` applied delta by delta (see the module
        docstring for why coalescing is sound).

        Items may also be :class:`FactorizedUpdate` instances: their terms
        are coalesced per relation too and propagated in product form after
        that relation's listing delta (⊎ commutes per relation, so the
        interleaving does not matter).  All paths of the pass share the
        probe cache, so sibling aggregations computed for one relation are
        reused by the others until an absorb invalidates them — the
        simultaneous multi-path form of the batched trigger.
        """
        merged: Dict[str, Relation] = {}
        factored: Dict[str, List[List[Relation]]] = {}
        order: List[str] = []
        for item in deltas:
            if isinstance(item, FactorizedUpdate):
                if not self.query.ring.is_commutative:
                    # The fire-time check of apply_factorized_update, made
                    # up front so a bad item cannot leave earlier relations
                    # of the batch absorbed and later ones not.
                    raise ValueError(
                        "factorized updates require a commutative payload "
                        "ring"
                    )
                rel = item.relation
                check_factorized(self.tree, self.updatable, item)
                if rel not in merged and rel not in factored:
                    order.append(rel)
                factored.setdefault(rel, []).extend(item.terms)
                continue
            delta = item
            rel = delta.name
            check_delta(self.tree, self.updatable, delta)
            accumulated = merged.get(rel)
            if accumulated is None:
                if rel not in factored:
                    order.append(rel)
                merged[rel] = delta.copy()
            else:
                accumulated.absorb_bulk(delta)
        root = self.tree.root
        total = Relation(root.name, root.keys, self.query.ring)
        for rel in self.schedule_paths(order):
            coalesced = merged.get(rel)
            if coalesced is not None and not coalesced.is_empty:
                total = total.union(
                    self.apply_update(coalesced), name=root.name
                )
            terms = factored.get(rel)
            if terms:
                update = FactorizedUpdate(rel, terms, ring=self.query.ring)
                total = total.union(
                    self.apply_factorized_update(update), name=root.name
                )
        return total

    def schedule_paths(self, relations: Sequence[str]) -> List[str]:
        """Order leaf-to-root paths for probe-cache residency (the planner
        hook shared by batching and shard routing).

        Relations whose paths climb through the same subtrees probe the
        same sibling views; scheduling them adjacently lets probe-cache
        entries computed for one path serve its neighbours before an
        unrelated relation's absorb invalidates them.  Paths sort by their
        root-first node-name sequence, so relations under one subtree are
        consecutive; the sort is stable, so ties keep first-appearance
        order.  Reordering is sound: the final state is a function of the
        final database only, and the total root delta telescopes over the
        per-relation deltas in any order.
        """
        leaves = self.tree.leaves

        def path_key(rel: str) -> Tuple[str, ...]:
            """Root-first view-name path above ``rel``'s leaf (sort key)."""
            names: List[str] = []
            node = leaves[rel].parent
            while node is not None:
                names.append(node.name)
                node = node.parent
            names.reverse()
            return tuple(names)

        return sorted(relations, key=path_key)

    def _propagate(self, start_child: ViewNode, delta: Relation) -> Relation:
        prev, node = start_child, start_child.parent
        cur = delta
        while node is not None:
            active = self.partial.get(node.name)
            if active is not None:
                # Cold-key rows die here, before the node's probe program
                # runs — the Noria write saving (see the module docstring).
                cur = self._partial_prefilter(active, node, cur)
                if cur.is_empty:
                    root = self.tree.root
                    return Relation(root.name, root.keys, self.query.ring)
            source: Source = ("child", self._child_pos[node.name][prev.name])
            cur = self._delta_at_node(node, source, cur)
            if self.flags[node.name] and not cur.is_empty:
                cur = self._write_view(node.name, cur)
            if cur.is_empty and node is not self.tree.root:
                root = self.tree.root
                return Relation(root.name, root.keys, self.query.ring)
            prev, node = node, node.parent
        return cur

    def _propagate_from_indicator(
        self, host: ViewNode, ind_index: int, ind_delta: Relation
    ) -> Relation:
        active = self.partial.get(host.name)
        if active is not None:
            ind_delta = self._partial_prefilter(active, host, ind_delta)
            if ind_delta.is_empty:
                root = self.tree.root
                return Relation(root.name, root.keys, self.query.ring)
        cur = self._delta_at_node(host, ("ind", ind_index), ind_delta)
        if self.flags[host.name] and not cur.is_empty:
            cur = self._write_view(host.name, cur)
        if cur.is_empty and host is not self.tree.root:
            root = self.tree.root
            return Relation(root.name, root.keys, self.query.ring)
        if host is self.tree.root:
            return cur
        return self._propagate(host, cur)

    def _delta_at_node(
        self, node: ViewNode, source: Source, delta: Relation
    ) -> Relation:
        """Evaluate the node's delta view for a delta entering at
        ``source`` through the backend's program for that entry point."""
        return self._programs[(node.name, source)].run(delta)

    def apply_decomposed_update(self, delta: Relation) -> Relation:
        """Decompose a listing delta into factors, then propagate factored.

        The product decomposition of Example 5.1: when the delta factorizes
        (e.g. a full row/column change), this routes it through the
        factorized path automatically; otherwise it degrades gracefully to
        the listing trigger.
        """
        from repro.core.factorized_update import decompose

        if not self.query.ring.is_commutative or delta.is_empty:
            return self.apply_update(delta)
        update = decompose(delta)
        if len(update.terms[0]) <= 1:
            return self.apply_update(delta)
        return self.apply_factorized_update(update)

    # ------------------------------------------------------------------
    # Factorizable updates (Section 5)
    # ------------------------------------------------------------------

    def apply_factorized_update(self, update: FactorizedUpdate) -> Relation:
        """Apply a factorizable delta, keeping it in product form.

        Marginalization is pushed into the factor holding each variable and
        sibling views are merged only into the factors they share attributes
        with; a Cartesian product is materialized only where a view must
        absorb the delta (typically just the root).  Requires a commutative
        ring (factor reordering).

        On a compiled engine each rank-1 term runs through a factor slot
        program per node (compiled lazily per factor-schema partition); the
        ``compiled=False`` interpreter path below stays as the reference
        semantics.  A rank-0 update returns the ring-zero root delta, like
        a no-op :meth:`apply_update`.
        """
        if not self.query.ring.is_commutative:
            raise ValueError(
                "factorized updates require a commutative payload ring"
            )
        rel = update.relation
        leaf = check_factorized(self.tree, self.updatable, update)
        root = self.tree.root
        if not update.terms:
            return Relation(root.name, root.keys, self.query.ring)
        observed = any(
            iv.base_name == rel
            for ivs in self._indicator_views.values()
            for iv in ivs
        )
        if observed:
            # Indicators need listing-form deltas to track support changes;
            # fall back to the general trigger.
            return self.apply_update(update.flatten(leaf.keys, name=rel))

        base_stored = leaf.name in self.views
        total = Relation(root.name, root.keys, self.query.ring)
        for term in update.terms:
            if base_stored:
                self._write_view(
                    leaf.name,
                    FactorizedUpdate.rank_one(rel, term).flatten(
                        leaf.keys, name=rel
                    ),
                )
            contribution = self._propagate_factored(leaf, list(term))
            total = total.union(contribution, name=root.name)
        return total

    def _factor_program(self, node: ViewNode, source: Source, partition: tuple):
        """The factor program for this entry point and partition, lowered
        to IR and built by the backend on first use (partitions depend on
        the update stream).  Callers pass the *canonicalized* partition
        (factor schemas sorted, see
        :func:`repro.core.plan_exec.canonical_partition`), so permuted
        factor orders of one decomposition share one program."""
        key = (node.name, source, partition)
        program = self._factor_programs.get(key)
        if program is None:
            idx = source[1]
            targets = [
                self.views[child.name]
                for i, child in enumerate(node.children)
                if i != idx
            ]
            targets += [iv.relation for iv in self._indicators_at(node)]
            ir = lower_factor_plan(
                node,
                source,
                partition,
                tuple(t.name for t in targets),
                tuple(t.schema for t in targets),
                self.flags[node.name],
                self.query,
                self.group_aware,
            )
            program = self._build_factor_program(ir, targets)
            self._factor_programs[key] = program
        return program

    def _propagate_factored(
        self, leaf: ViewNode, factors: List[Relation]
    ) -> Relation:
        """Propagate one rank-1 term leaf-to-root: one backend factor
        program per node, factor *dicts* flowing between them, sibling
        collapses shared through the probe cache."""
        ring = self.query.ring
        root = self.tree.root
        if not factors:
            return Relation(root.name, root.keys, ring)
        partition = tuple(f.schema for f in factors)
        fdatas = tuple(f._data for f in factors)
        cache = self._probe_cache
        flat_data: Optional[dict] = None
        prev, node = leaf, leaf.parent
        while node is not None:
            source: Source = ("child", self._child_pos[node.name][prev.name])
            if len(partition) > 1:
                # Canonicalize the factor order (legal: factorized updates
                # already require a commutative ring) so permuted partitions
                # of the same decomposition reuse one compiled program.
                partition, perm = canonical_partition(partition)
                if perm != tuple(range(len(perm))):
                    fdatas = tuple(fdatas[i] for i in perm)
            program = self._factor_program(node, source, partition)
            fdatas, node_flat = program.run(fdatas, cache)
            if fdatas is None:
                return Relation(root.name, root.keys, ring)
            partition = program.out_partition
            if node_flat is not None:
                if node_flat:
                    delta = Relation(node.name, node.keys, ring)
                    delta._data = node_flat
                    delta = self._write_view(node.name, delta)
                    node_flat = delta._data
                flat_data = node_flat
            if any(not d for d in fdatas) and node is not self.tree.root:
                return Relation(root.name, root.keys, ring)
            prev, node = node, node.parent
        out = Relation(root.name, root.keys, ring)
        out._data = flat_data if flat_data is not None else {}
        return out

