"""The NumPy kernel backend: IR delta programs over packed arrays.

The third realization of the delta-program IR (:mod:`repro.core.ir`),
selected with ``FIVMEngine(backend="kernels")``.  Where the source backend
multiplies and folds payloads tuple by tuple, this backend splits a
trigger into two phases:

1. **gather** — a generated probe loop (the same specialization the
   source backend emits, shared through the :class:`ProgramLibrary`) that
   walks the delta and the sibling probes but *defers all ring
   arithmetic*: instead of multiplying payloads it appends, per match
   row, the output key and each payload factor to per-column lists (plus
   the raw values feeding each lifting function);
2. **kernel** — the ring's array hooks (``Ring.kernel_ops``) pack each
   column into NumPy arrays, multiply whole columns at once (for the
   cofactor ring: the vectorized Definition 6.2 formula over stacked
   ``(n, k)``/``(n, k, k)`` blocks), and fold the rows onto their output
   keys with one grouped reduction (``np.bincount`` /
   ``np.add.reduceat``) instead of n-1 ring additions.

Zero-pack gathers over columnar storage
---------------------------------------

When a probed target is a :class:`~repro.data.columnar.ColumnarRelation`
(``FIVMEngine(storage="columnar")``), the payloads already live in packed
blocks, so re-packing them per delta would be pure tax.  The gather for a
columnar target is generated differently — probes walk the key → row-id
map (or the index's group-id map) and append *row ids* instead of payload
objects — and the kernel phase turns each row-id column into a packed
column with one array ``take`` from the target's (or the index sum
store's) block.  Likewise the program's *output* carries its reduced
packed block along (:class:`_KernelDelta`), so a columnar parent view
absorbs it and the next trigger in the propagation chain gathers from it
without ever packing: payloads cross the whole update path as arrays.
Programs are cached per (IR, per-target storage signature), so dict and
columnar engines can share one library.

The two phases compute exactly the scalar semantics: the product order
within a row is the IR's reference order, and regrouping the additions is
sound because ring addition is commutative by the ring axioms.  Rings
without array hooks never reach this module — the engine's backend policy
falls back to the source backend per node — and batches whose payload
columns cannot pack (mixed cofactor supports) fall back to the scalar
fold inside :meth:`KernelDeltaProgram.run`, so the backend is always
exact, never approximate.

Tiny deltas whose factor columns hold payload *objects* (dict-storage
gathers) skip the array path (:data:`MIN_VECTOR_ROWS`): below a handful
of rows the fixed cost of packing outweighs the vectorized arithmetic,
and the scalar fold is faster.  Columns gathered as row ids from packed
stores always vectorize — the scalar fold would have to unpack those
rows into objects first, inverting the trade.

The factorized path is not vectorized here: rank-1 term factors are tiny
delta vectors, so the engine reuses the generated-source factor programs
under this backend (see :meth:`FIVMEngine._build_factor_program`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.ir import DeltaProgram, IndexProbe, Probe
from repro.core.plan_exec import (
    ProgramLibrary,
    _bind_env,
    _Generated,
    _tuple_display,
)
from repro.data.columnar import ColumnarRelation
from repro.data.relation import Relation

__all__ = ["KernelDeltaProgram", "kernel_delta_program", "MIN_VECTOR_ROWS"]

#: Below this many gathered rows the scalar fold beats array packing —
#: for payload-object columns only: gathers resolved from packed stores
#: (columnar targets, passthrough deltas) vectorize at any size.
MIN_VECTOR_ROWS = 8

#: Backwards-compatible alias (pre-columnar name).
_MIN_VECTOR_ROWS = MIN_VECTOR_ROWS


class _KernelDelta(Relation):
    """A kernel program's output delta with its packed block attached.

    ``_kernel_packed`` is the reduced packed column aligned with the
    insertion order of ``_data`` — consumed by columnar absorbs and by the
    next kernel gather in the propagation chain (zero-pack passthrough).
    Any mutation invalidates the hint; deltas are normally read-only.
    """

    __slots__ = ("_kernel_packed",)

    def __init__(self, name, schema, ring):
        super().__init__(name, schema, ring)
        self._kernel_packed = None

    def add(self, key, payload):
        """Point write; invalidates the packed column cache."""
        self._kernel_packed = None
        super().add(key, payload)

    def absorb_bulk(self, delta):
        """Bulk absorb; invalidates the packed column cache."""
        self._kernel_packed = None
        super().absorb_bulk(delta)

    def clear(self):
        """Drop contents and the packed column cache."""
        self._kernel_packed = None
        super().clear()


def _storage_signature(targets) -> tuple:
    """Per-target flag: gather row ids (packed columnar) or payloads."""
    return tuple(
        isinstance(target, ColumnarRelation) and target._packed
        for target in targets
    )


def kernel_delta_program(
    ir: DeltaProgram, targets, query, library: Optional[ProgramLibrary] = None
) -> Optional["KernelDeltaProgram"]:
    """Build the kernel program for one IR program, or ``None`` when the
    payload ring exposes no array hooks (the engine then falls back to the
    source backend for this node)."""
    kops = query.ring.kernel_ops()
    if kops is None:
        return None
    columnar = _storage_signature(targets)
    key = ("kernel", ir, columnar)
    generated = library.lookup(key) if library is not None else None
    if generated is None:
        generated = _generate_gather(ir, columnar)
        if library is not None:
            library.store(key, generated)
    env = _bind_env(generated, targets, query)
    return KernelDeltaProgram(
        ir, query, kops, env["_gather"], generated, targets, columnar
    )


def _factor_specs(ir: DeltaProgram, columnar: tuple) -> list:
    """How each factor column is resolved into a packed column at run time:

    * ``("source",)`` — the delta's own payloads (packed, or taken from
      the incoming delta's passthrough block when present);
    * ``("payload",)`` — gathered payload objects, packed per delta;
    * ``("row", i)`` — gathered row ids into target ``i``'s payload block;
    * ``("gid", i, attrs)`` — gathered group ids into the sum block of
      target ``i``'s index on ``attrs``.
    """
    specs = []
    for where, i in ir.accumulate.factors:
        if where == "source":
            specs.append(("source",))
            continue
        op = ir.ops[i]
        if not columnar[op.target]:
            specs.append(("payload",))
        elif op.aggregated and not op.probe_attrs:
            specs.append(("payload",))  # hoisted total: one payload object
        elif op.aggregated and isinstance(op, IndexProbe):
            specs.append(("gid", op.target, op.probe_attrs))
        else:
            specs.append(("row", op.target))
    return specs


def _generate_gather(ir: DeltaProgram, columnar: tuple) -> _Generated:
    """Generate the gather loop: the source backend's probe walk with the
    innermost arithmetic replaced by column appends.

    The generated function takes the delta items plus one bound
    ``list.append`` per column — the output key column first, then one
    column per payload factor, then one per lifting input — so the hot
    loop carries no attribute lookups.  Probes against columnar targets
    walk the row-id maps and append row/group ids (see the module
    docstring); the kernel phase resolves them with array takes.
    """
    kind, idx = ir.source
    ops = ir.ops

    def rname(register: int) -> str:
        """Source name of a key register."""
        return f"r{register}"

    n_factors = len(ir.accumulate.factors)
    n_lifts = len(ir.accumulate.lifts)
    params = ["_items", "_ak"]
    params += [f"_af{j}" for j in range(n_factors)]
    params += [f"_al{j}" for j in range(n_lifts)]
    requests: List[tuple] = []
    lines: List[str] = [f"def _gather({', '.join(params)}):"]

    def emit(depth: int, text: str) -> None:
        """Append one generated source line at ``depth``."""
        lines.append("    " * depth + text)

    for i, op in enumerate(ops):
        if columnar[op.target]:
            requests.append((f"_rows{i}", ("rows", op.target)))
        else:
            requests.append((f"_data{i}", ("data", op.target)))
        if op.aggregated and not op.probe_attrs:
            if columnar[op.target]:
                requests.append((f"_tot{i}", ("total", op.target)))
                emit(1, f"_t{i} = _tot{i}()")
            else:
                emit(1, f"_t{i} = _rsum(_data{i}.values())")
            emit(1, f"if _iszero(_t{i}):")
            emit(2, "return")

    emit(1, "for _key, _psrc in _items:")
    depth = 2
    for position, register in ir.loads:
        emit(depth, f"{rname(register)} = _key[{position}]")

    op_pay = {}
    for i, op in enumerate(ops):
        probe = op.probe_attrs
        col = columnar[op.target]
        if isinstance(op, IndexProbe):
            if col:
                requests.append((f"_gid{i}", ("gids", op.target, probe)))
                requests.append((f"_mem{i}", ("members", op.target, probe)))
                requests.append((f"_ix{i}", ("idxstate", op.target, probe)))
            else:
                requests.append((f"_bkt{i}", ("buckets", op.target, probe)))
                requests.append((f"_sum{i}", ("sums", op.target, probe)))
        probe_key = _tuple_display([rname(r) for r in op.probe_regs])
        if op.aggregated:
            if not probe:
                pass  # hoisted; payload is _t{i}
            elif isinstance(op, Probe):
                source = f"_rows{i}" if col else f"_data{i}"
                emit(depth, f"_t{i} = {source}.get({probe_key})")
                emit(depth, f"if _t{i} is not None:")
                depth += 1
            elif col:
                emit(depth, f"_t{i} = _gid{i}.get({probe_key})")
                emit(
                    depth,
                    f"if _t{i} is not None and not _ix{i}.szero[_t{i}]:",
                )
                depth += 1
            else:
                emit(depth, f"_t{i} = _sum{i}.get({probe_key})")
                emit(depth, f"if _t{i} is not None and not _iszero(_t{i}):")
                depth += 1
            op_pay[i] = f"_t{i}"
        else:
            source = f"_rows{i}" if col else f"_data{i}"
            if isinstance(op, Probe) and probe:
                emit(depth, f"_p{i} = {source}.get({probe_key})")
                emit(depth, f"if _p{i} is not None:")
                depth += 1
            elif isinstance(op, Probe):
                emit(depth, f"for _k{i}, _p{i} in {source}.items():")
                depth += 1
            else:
                bucket_map = f"_mem{i}" if col else f"_bkt{i}"
                emit(depth, f"_b{i} = {bucket_map}.get({probe_key})")
                emit(depth, f"if _b{i}:")
                depth += 1
                emit(depth, f"for _k{i}, _p{i} in _b{i}.items():")
                depth += 1
            for position, register in op.extend:
                emit(depth, f"{rname(register)} = _k{i}[{position}]")
            op_pay[i] = f"_p{i}"

    out_key = _tuple_display([rname(r) for r in ir.accumulate.out_regs])
    emit(depth, f"_ak({out_key})")
    for j, (where, i) in enumerate(ir.accumulate.factors):
        emit(depth, f"_af{j}({'_psrc' if where == 'source' else op_pay[i]})")
    for j, (var, register) in enumerate(ir.accumulate.lifts):
        emit(depth, f"_al{j}({rname(register)})")

    source_text = "\n".join(lines) + "\n"
    code = compile(
        source_text, f"<kernel-gather {ir.node_name}:{kind}{idx}>", "exec"
    )
    return _Generated(code, requests, source_text, ir.out_schema)


class KernelDeltaProgram:
    """A flat delta trigger executed as gather + array kernel."""

    backend = "kernels"

    __slots__ = (
        "node_name", "out_schema", "ring", "_kops", "_gather", "_lift_fns",
        "_n_factors", "source_text", "_specs", "_stores", "_any_store",
    )

    def __init__(self, ir, query, kops, gather, generated, targets, columnar):
        self.node_name = ir.node_name
        self.out_schema = ir.out_schema
        self.ring = query.ring
        self._kops = kops
        self._gather = gather
        self._n_factors = len(ir.accumulate.factors)
        lift_table = query.lifting.table()
        self._lift_fns = [lift_table[var] for var, _ in ir.accumulate.lifts]
        #: The generated gather source (debugging and the test suite).
        self.source_text = generated.source_text
        self._specs = _factor_specs(ir, columnar)
        #: Per-factor payload store for row/gid columns (binding the store
        #: object is safe: stores are identity-stable across compaction).
        stores = []
        for spec in self._specs:
            if spec[0] == "row":
                stores.append(targets[spec[1]]._store)
            elif spec[0] == "gid":
                stores.append(targets[spec[1]]._states[spec[2]].sums)
            else:
                stores.append(None)
        self._stores = stores
        #: Whether any factor column resolves from a packed store.  The
        #: scalar fold would have to *unpack* those rows into payload
        #: objects first, so the :data:`MIN_VECTOR_ROWS` cutoff only pays
        #: on payload-object columns — packed gathers always vectorize.
        self._any_store = any(store is not None for store in stores)

    def _materialize(self, factor_cols, delta_packed):
        """Resolve row/gid columns to payload objects (scalar fallback)."""
        kops = self._kops
        out_cols = []
        for spec, store, col in zip(self._specs, self._stores, factor_cols):
            if store is not None:
                rows = np.array(col, dtype=np.intp)
                out_cols.append(kops.unpack(store.take(rows)))
            elif spec[0] == "source" and delta_packed is not None:
                rows = np.array(col, dtype=np.intp)
                out_cols.append(kops.unpack(kops.take(delta_packed, rows)))
            else:
                out_cols.append(col)
        return out_cols

    def _finish_scalar(self, keys, factor_cols, lift_cols, out):
        """The exact scalar fold (used under ``MIN_VECTOR_ROWS`` and when
        a column cannot pack): row-wise reference-order products, per-key
        contribution lists, one ``ring.sum`` per key, zeros dropped."""
        ring = self.ring
        mul = ring.mul
        acc = {}
        lifted_cols = list(zip(self._lift_fns, lift_cols))
        for row, key in enumerate(keys):
            value = None
            for col in factor_cols:
                factor = col[row]
                value = factor if value is None else mul(value, factor)
            lv = None
            for lift, col in lifted_cols:
                term = lift(col[row])
                lv = term if lv is None else mul(lv, term)
            if value is None:
                value = ring.one if lv is None else lv
            elif lv is not None:
                value = mul(value, lv)
            current = acc.get(key)
            if current is None:
                acc[key] = [value]
            else:
                current.append(value)
        rsum = ring.sum
        is_zero = ring.is_zero
        data = out._data
        for key, values in acc.items():
            total = values[0] if len(values) == 1 else rsum(values)
            if not is_zero(total):
                data[key] = total
        return out

    def run(self, delta: Relation) -> Relation:
        """Vectorized trigger execution over ``delta`` (NumPy kernels)."""
        ring = self.ring
        out = _KernelDelta(self.node_name, self.out_schema, ring)
        keys: List[tuple] = []
        factor_cols: List[list] = [[] for _ in range(self._n_factors)]
        lift_cols: List[list] = [[] for _ in range(len(self._lift_fns))]
        appends = [keys.append]
        appends += [col.append for col in factor_cols]
        appends += [col.append for col in lift_cols]
        delta_packed = getattr(delta, "_kernel_packed", None)
        if delta_packed is not None:
            # Zero-pack passthrough: feed row indices as the source
            # "payloads" and take them from the attached block below.
            items = zip(delta._data.keys(), range(len(delta._data)))
        else:
            items = delta._data.items()
        self._gather(items, *appends)
        n = len(keys)
        if n == 0:
            return out
        if (
            n < MIN_VECTOR_ROWS
            and not self._any_store
            and delta_packed is None
        ):
            return self._finish_scalar(
                keys,
                self._materialize(factor_cols, delta_packed),
                lift_cols,
                out,
            )
        kops = self._kops
        packed = None
        for spec, store, col in zip(self._specs, self._stores, factor_cols):
            if store is not None:
                p = store.take(np.array(col, dtype=np.intp))
            elif spec[0] == "source" and delta_packed is not None:
                p = kops.take(delta_packed, np.array(col, dtype=np.intp))
            else:
                p = kops.pack(col, n)
                if p is None:  # unpackable batch: exact scalar fallback
                    return self._finish_scalar(
                        keys,
                        self._materialize(factor_cols, delta_packed),
                        lift_cols,
                        out,
                    )
            packed = p if packed is None else kops.mul_packed(packed, p, n)
        pack_lift = getattr(kops, "pack_lift", None)
        for lift, col in zip(self._lift_fns, lift_cols):
            p = pack_lift(lift, col, n) if pack_lift is not None else None
            if p is None:
                p = kops.pack([lift(value) for value in col], n)
            if p is None:  # pragma: no cover - lifts share one layout
                return self._finish_scalar(
                    keys,
                    self._materialize(factor_cols, delta_packed),
                    lift_cols,
                    out,
                )
            packed = p if packed is None else kops.mul_packed(packed, p, n)
        if packed is None:
            packed = kops.identity(n)
        # Group rows by output key (ids assigned first-seen, so every id in
        # range(n_groups) occurs — the reduce hooks rely on that).
        group_of: dict = {}
        group_ids = np.empty(n, dtype=np.intp)
        unique_keys: List[tuple] = []
        for row, key in enumerate(keys):
            gid = group_of.get(key)
            if gid is None:
                gid = len(unique_keys)
                group_of[key] = gid
                unique_keys.append(key)
            group_ids[row] = gid
        reduced = kops.reduce(packed, group_ids, len(unique_keys))
        zero = kops.zero_mask(reduced)
        if zero.any():
            kept = np.flatnonzero(~zero)
            reduced = kops.take(reduced, kept)
            unique_keys = [unique_keys[i] for i in kept.tolist()]
        payloads = kops.unpack(reduced)
        data = out._data
        for key, payload in zip(unique_keys, payloads):
            data[key] = payload
        out._kernel_packed = reduced if unique_keys else None
        return out
