"""The NumPy kernel backend: IR delta programs over packed arrays.

The third realization of the delta-program IR (:mod:`repro.core.ir`),
selected with ``FIVMEngine(backend="kernels")``.  Where the source backend
multiplies and folds payloads tuple by tuple, this backend splits a
trigger into two phases:

1. **gather** — a generated probe loop (the same specialization the
   source backend emits, shared through the :class:`ProgramLibrary`) that
   walks the delta and the sibling probes but *defers all ring
   arithmetic*: instead of multiplying payloads it appends, per match
   row, the output key and each payload factor to per-column lists (plus
   the raw values feeding each lifting function);
2. **kernel** — the ring's array hooks (``Ring.kernel_ops``) pack each
   column into NumPy arrays, multiply whole columns at once (for the
   cofactor ring: the vectorized Definition 6.2 formula over stacked
   ``(n, k)``/``(n, k, k)`` blocks), and fold the rows onto their output
   keys with one grouped reduction (``np.bincount`` /
   ``np.add.reduceat``) instead of n-1 ring additions.

The two phases compute exactly the scalar semantics: the product order
within a row is the IR's reference order, and regrouping the additions is
sound because ring addition is commutative by the ring axioms.  Rings
without array hooks never reach this module — the engine's backend policy
falls back to the source backend per node — and batches whose payload
columns cannot pack (mixed cofactor supports) fall back to the scalar
fold inside :meth:`KernelDeltaProgram.run`, so the backend is always
exact, never approximate.

Tiny deltas skip the array path entirely (``_MIN_VECTOR_ROWS``): below a
handful of rows the fixed cost of packing outweighs the vectorized
arithmetic, and the scalar fold is faster.

The factorized path is not vectorized here: rank-1 term factors are tiny
delta vectors, so the engine reuses the generated-source factor programs
under this backend (see :meth:`FIVMEngine._build_factor_program`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.ir import DeltaProgram, IndexProbe, Probe
from repro.core.plan_exec import (
    ProgramLibrary,
    _bind_env,
    _Generated,
    _tuple_display,
)
from repro.data.relation import Relation

__all__ = ["KernelDeltaProgram", "kernel_delta_program"]

#: Below this many gathered rows the scalar fold beats array packing.
_MIN_VECTOR_ROWS = 8


def kernel_delta_program(
    ir: DeltaProgram, targets, query, library: Optional[ProgramLibrary] = None
) -> Optional["KernelDeltaProgram"]:
    """Build the kernel program for one IR program, or ``None`` when the
    payload ring exposes no array hooks (the engine then falls back to the
    source backend for this node)."""
    kops = query.ring.kernel_ops()
    if kops is None:
        return None
    key = ("kernel", ir)
    generated = library.lookup(key) if library is not None else None
    if generated is None:
        generated = _generate_gather(ir)
        if library is not None:
            library.store(key, generated)
    env = _bind_env(generated, targets, query)
    return KernelDeltaProgram(ir, query, kops, env["_gather"], generated)


def _generate_gather(ir: DeltaProgram) -> _Generated:
    """Generate the gather loop: the source backend's probe walk with the
    innermost arithmetic replaced by column appends.

    The generated function takes the delta items plus one bound
    ``list.append`` per column — the output key column first, then one
    column per payload factor, then one per lifting input — so the hot
    loop carries no attribute lookups.
    """
    kind, idx = ir.source
    ops = ir.ops

    def rname(register: int) -> str:
        return f"r{register}"

    n_factors = len(ir.accumulate.factors)
    n_lifts = len(ir.accumulate.lifts)
    params = ["_items", "_ak"]
    params += [f"_af{j}" for j in range(n_factors)]
    params += [f"_al{j}" for j in range(n_lifts)]
    requests: List[tuple] = []
    lines: List[str] = [f"def _gather({', '.join(params)}):"]

    def emit(depth: int, text: str) -> None:
        lines.append("    " * depth + text)

    for i, op in enumerate(ops):
        requests.append((f"_data{i}", ("data", op.target)))
        if op.aggregated and not op.probe_attrs:
            emit(1, f"_t{i} = _rsum(_data{i}.values())")
            emit(1, f"if _iszero(_t{i}):")
            emit(2, "return")

    emit(1, "for _key, _psrc in _items:")
    depth = 2
    for position, register in ir.loads:
        emit(depth, f"{rname(register)} = _key[{position}]")

    op_pay = {}
    for i, op in enumerate(ops):
        probe = op.probe_attrs
        if isinstance(op, IndexProbe):
            requests.append((f"_bkt{i}", ("buckets", op.target, probe)))
            requests.append((f"_sum{i}", ("sums", op.target, probe)))
        probe_key = _tuple_display([rname(r) for r in op.probe_regs])
        if op.aggregated:
            if not probe:
                pass  # hoisted; payload is _t{i}
            elif isinstance(op, Probe):
                emit(depth, f"_t{i} = _data{i}.get({probe_key})")
                emit(depth, f"if _t{i} is not None:")
                depth += 1
            else:
                emit(depth, f"_t{i} = _sum{i}.get({probe_key})")
                emit(depth, f"if _t{i} is not None and not _iszero(_t{i}):")
                depth += 1
            op_pay[i] = f"_t{i}"
        else:
            if isinstance(op, Probe) and probe:
                emit(depth, f"_p{i} = _data{i}.get({probe_key})")
                emit(depth, f"if _p{i} is not None:")
                depth += 1
            elif isinstance(op, Probe):
                emit(depth, f"for _k{i}, _p{i} in _data{i}.items():")
                depth += 1
            else:
                emit(depth, f"_b{i} = _bkt{i}.get({probe_key})")
                emit(depth, f"if _b{i}:")
                depth += 1
                emit(depth, f"for _k{i}, _p{i} in _b{i}.items():")
                depth += 1
            for position, register in op.extend:
                emit(depth, f"{rname(register)} = _k{i}[{position}]")
            op_pay[i] = f"_p{i}"

    out_key = _tuple_display([rname(r) for r in ir.accumulate.out_regs])
    emit(depth, f"_ak({out_key})")
    for j, (where, i) in enumerate(ir.accumulate.factors):
        emit(depth, f"_af{j}({'_psrc' if where == 'source' else op_pay[i]})")
    for j, (var, register) in enumerate(ir.accumulate.lifts):
        emit(depth, f"_al{j}({rname(register)})")

    source_text = "\n".join(lines) + "\n"
    code = compile(
        source_text, f"<kernel-gather {ir.node_name}:{kind}{idx}>", "exec"
    )
    return _Generated(code, requests, source_text, ir.out_schema)


class KernelDeltaProgram:
    """A flat delta trigger executed as gather + array kernel."""

    backend = "kernels"

    __slots__ = (
        "node_name", "out_schema", "ring", "_kops", "_gather", "_lift_fns",
        "_n_factors", "source_text",
    )

    def __init__(self, ir: DeltaProgram, query, kops, gather, generated):
        self.node_name = ir.node_name
        self.out_schema = ir.out_schema
        self.ring = query.ring
        self._kops = kops
        self._gather = gather
        self._n_factors = len(ir.accumulate.factors)
        lift_table = query.lifting.table()
        self._lift_fns = [lift_table[var] for var, _ in ir.accumulate.lifts]
        #: The generated gather source (debugging and the test suite).
        self.source_text = generated.source_text

    def _finish_scalar(self, keys, factor_cols, lift_cols, out):
        """The exact scalar fold (used under ``_MIN_VECTOR_ROWS`` and when
        a column cannot pack): row-wise reference-order products, per-key
        contribution lists, one ``ring.sum`` per key, zeros dropped."""
        ring = self.ring
        mul = ring.mul
        acc = {}
        lifted_cols = list(zip(self._lift_fns, lift_cols))
        for row, key in enumerate(keys):
            value = None
            for col in factor_cols:
                factor = col[row]
                value = factor if value is None else mul(value, factor)
            lv = None
            for lift, col in lifted_cols:
                term = lift(col[row])
                lv = term if lv is None else mul(lv, term)
            if value is None:
                value = ring.one if lv is None else lv
            elif lv is not None:
                value = mul(value, lv)
            current = acc.get(key)
            if current is None:
                acc[key] = [value]
            else:
                current.append(value)
        rsum = ring.sum
        is_zero = ring.is_zero
        data = out._data
        for key, values in acc.items():
            total = values[0] if len(values) == 1 else rsum(values)
            if not is_zero(total):
                data[key] = total
        return out

    def run(self, delta: Relation) -> Relation:
        ring = self.ring
        out = Relation(self.node_name, self.out_schema, ring)
        keys: List[tuple] = []
        factor_cols: List[list] = [[] for _ in range(self._n_factors)]
        lift_cols: List[list] = [[] for _ in range(len(self._lift_fns))]
        appends = [keys.append]
        appends += [col.append for col in factor_cols]
        appends += [col.append for col in lift_cols]
        self._gather(delta._data.items(), *appends)
        n = len(keys)
        if n == 0:
            return out
        if n < _MIN_VECTOR_ROWS:
            return self._finish_scalar(keys, factor_cols, lift_cols, out)
        kops = self._kops
        packed = kops.combine(
            n, factor_cols, list(zip(self._lift_fns, lift_cols))
        )
        if packed is None:  # unpackable batch: exact scalar fallback
            return self._finish_scalar(keys, factor_cols, lift_cols, out)
        # Group rows by output key (ids assigned first-seen, so every id in
        # range(n_groups) occurs — the reduce hooks rely on that).
        group_of: dict = {}
        group_ids = np.empty(n, dtype=np.intp)
        unique_keys: List[tuple] = []
        for row, key in enumerate(keys):
            gid = group_of.get(key)
            if gid is None:
                gid = len(unique_keys)
                group_of[key] = gid
                unique_keys.append(key)
            group_ids[row] = gid
        reduced = kops.reduce(packed, group_ids, len(unique_keys))
        payloads = kops.unpack(reduced)
        is_zero = ring.is_zero
        data = out._data
        for key, payload in zip(unique_keys, payloads):
            if not is_zero(payload):
                data[key] = payload
        return out
