"""Factorizable updates (Section 5): deltas as unions of products.

A delta relation can often be decomposed as a union of *product terms*,
each term a list of factor relations over pairwise-disjoint schemas whose
join (Cartesian product, since schemas are disjoint) reconstructs the term.
Rank-1 matrix updates ``δA = u vᵀ`` are the canonical example; a rank-r
update is a union of r rank-1 terms.

Propagating a factorized delta keeps the product form and pushes
marginalization into the factor holding the variable — the ``Optimize`` step
of Figure 4 — so a rank-1 update to the middle of a matrix chain costs
matrix-vector instead of matrix-matrix work (Example 6.1).

``decompose`` implements the product decomposition of Example 5.1: it
greedily splits off one variable at a time when the relation is expressible
as ``R_X[X] ⊗ R_rest[rest]``, in time O(variables × |R| log |R|), in the
spirit of the world-set decomposition algorithms the paper cites [35].
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.relation import Relation
from repro.data.schema import SchemaError, key_projector

__all__ = ["FactorizedUpdate", "decompose"]


class FactorizedUpdate:
    """A delta for one relation, represented as a union of product terms.

    An empty term list is the *rank-0* update — the additive identity.  It
    flattens to the empty (all-zero) relation over any requested schema and
    propagates as a no-op; pass ``ring`` explicitly when no factor is
    around to infer it from.
    """

    def __init__(
        self, relation: str, terms: Sequence[Sequence[Relation]], ring=None
    ):
        self.relation = relation
        self.terms: List[List[Relation]] = [list(term) for term in terms]
        #: The payload ring, inferred from the first factor when not given.
        self.ring = ring
        if self.ring is None:
            for term in self.terms:
                if term:
                    self.ring = term[0].ring
                    break
        if not self.terms:
            self.attributes: frozenset = frozenset()
            return
        reference = self._term_schema(self.terms[0])
        for term in self.terms[1:]:
            if self._term_schema(term) != reference:
                raise SchemaError(
                    "all terms must cover the same attribute set"
                )
        self.attributes = reference

    @staticmethod
    def _term_schema(term: Sequence[Relation]) -> frozenset:
        seen: set = set()
        for factor in term:
            overlap = seen & set(factor.schema)
            if overlap:
                raise SchemaError(
                    f"factors overlap on {sorted(overlap)}; factor schemas "
                    "must be disjoint"
                )
            seen |= set(factor.schema)
        return frozenset(seen)

    @classmethod
    def rank_one(
        cls, relation: str, factors: Sequence[Relation]
    ) -> "FactorizedUpdate":
        """A single product term (e.g. ``δA = u[X] ⊗ v[Y]``)."""
        return cls(relation, [list(factors)])

    @property
    def rank(self) -> int:
        """Number of product terms (the tensor rank of the update)."""
        return len(self.terms)

    def flatten(self, schema: Sequence[str], name: Optional[str] = None) -> Relation:
        """Materialize the full delta relation (for tests and fallbacks).

        A rank-0 update flattens to the ring-zero relation over ``schema``
        (matching the no-op ``apply_update``); an empty *term* contributes
        the multiplicative unit over the empty schema.
        """
        schema = tuple(schema)
        label = name or f"delta_{self.relation}"
        if not self.terms:
            if self.ring is None:
                raise ValueError(
                    "flattening a rank-0 update needs an explicit ring"
                )
            return Relation(label, schema, self.ring)
        if frozenset(schema) != self.attributes:
            raise SchemaError(
                f"target schema {schema} does not cover {sorted(self.attributes)}"
            )
        total: Optional[Relation] = None
        for term in self.terms:
            if term:
                product = term[0]
                for factor in term[1:]:
                    product = product.join(factor)
            else:
                if self.ring is None:
                    raise ValueError(
                        "flattening an empty term needs an explicit ring"
                    )
                product = Relation(
                    label, (), self.ring, {(): self.ring.one}
                )
            product = product.reorder(schema, name=label)
            total = product if total is None else total.union(product)
        assert total is not None
        total.name = label
        return total

    def cumulative_size(self) -> int:
        """Total number of stored keys across all factors (cf. Example 5.1)."""
        return sum(len(f) for term in self.terms for f in term)


def _try_split(
    relation: Relation, variable: str
) -> Optional[Tuple[Relation, Relation]]:
    """Attempt ``R = u[X] ⊗ rest`` for the given variable; None if impossible.

    Works for commutative numeric rings: groups keys by the X-value, checks
    that all groups have identical support over the remaining attributes and
    payloads proportional to one reference group, and returns the pair of
    factors when so.
    """
    ring = relation.ring
    rest_attrs = tuple(a for a in relation.schema if a != variable)
    if not rest_attrs or len(relation) == 0:
        return None
    proj_var = key_projector(relation.schema, (variable,))
    proj_rest = key_projector(relation.schema, rest_attrs)
    groups: Dict[tuple, Dict[tuple, object]] = {}
    for key, payload in relation.items():
        groups.setdefault(proj_var(key), {})[proj_rest(key)] = payload
    if len(groups) <= 1:
        return None

    # Reference group: any one of them; candidate rest-factor is its contents.
    ref_key = next(iter(groups))
    reference = groups[ref_key]
    ref_support = set(reference)
    # Pick a pivot rest-tuple to derive each group's scalar coefficient.
    pivot = next(iter(ref_support))
    coefficients: Dict[tuple, object] = {}
    for var_value, group in groups.items():
        if set(group) != ref_support:
            return None
        coefficients[var_value] = group[pivot]

    # Normalize: the rest factor uses the reference group's payloads with the
    # pivot coefficient divided out; only attempt this for float payloads
    # (exact division); integer rings succeed when coefficients divide.
    ref_coeff = reference[pivot]
    rest_data: Dict[tuple, object] = {}
    for rest_key, payload in reference.items():
        try:
            ratio = _divide(payload, ref_coeff)
        except ArithmeticError:
            return None
        rest_data[rest_key] = ratio
    # Verify proportionality on every group and cell.
    for var_value, group in groups.items():
        coeff = coefficients[var_value]
        for rest_key, expected_ratio in rest_data.items():
            predicted = ring.mul(coeff, expected_ratio)
            if not ring.eq(predicted, group[rest_key]):
                return None

    u = Relation(f"{relation.name}_{variable}", (variable,), ring, coefficients)
    rest = Relation(f"{relation.name}_rest", rest_attrs, ring, rest_data)
    return u, rest


def _divide(a, b):
    """Payload division for ℤ/ℝ payloads; raises ArithmeticError otherwise."""
    if isinstance(a, bool) or isinstance(b, bool):
        raise ArithmeticError("no division for booleans")
    if isinstance(a, int) and isinstance(b, int):
        if b == 0 or a % b != 0:
            raise ArithmeticError("non-integral ratio")
        return a // b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if b == 0:
            raise ArithmeticError("division by zero")
        return a / b
    raise ArithmeticError(f"cannot divide payloads of type {type(a)}")


def decompose(delta: Relation) -> FactorizedUpdate:
    """Greedy product decomposition of a delta relation (Example 5.1).

    Splits off one variable at a time while the relation factorizes; the
    result is a single product term whose factors multiply back to ``delta``
    (verified by the test suite).  Relations that do not factorize yield the
    trivial one-factor term; the empty delta yields the rank-0 update (no
    terms), which flattens back to the zero relation and propagates as a
    no-op.
    """
    if delta.is_empty:
        return FactorizedUpdate(delta.name, [], ring=delta.ring)
    factors: List[Relation] = []
    current = delta
    made_progress = True
    while made_progress and len(current.schema) > 1:
        made_progress = False
        for variable in current.schema:
            split = _try_split(current, variable)
            if split is not None:
                u, rest = split
                factors.append(u)
                current = rest
                made_progress = True
                break
    factors.append(current)
    return FactorizedUpdate.rank_one(delta.name, factors)
