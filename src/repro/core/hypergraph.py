"""Join hypergraphs: connectivity, components, and GYO reduction.

A query's hypergraph has one vertex per variable and one hyperedge per
relation (its schema).  Appendix B of the paper uses the GYO reduction
(Fagin et al. variant [15]) to decide which candidate indicator projections
participate in a cycle; the same machinery provides acyclicity tests and the
connected-component decomposition that the recursive-IVM baseline uses to
mirror DBToaster's view factoring.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

__all__ = [
    "Hyperedge",
    "gyo_residual",
    "is_acyclic",
    "connected_components",
    "is_connected",
]

#: An identified hyperedge: (label, vertex set).  Labels keep duplicate
#: schemas distinct, which matters when deciding *which* edge is in a cycle.
Hyperedge = Tuple[str, FrozenSet[str]]


def _as_edges(edges: Iterable[Tuple[str, Iterable[str]]]) -> List[Hyperedge]:
    return [(label, frozenset(vertices)) for label, vertices in edges]


def gyo_residual(
    edges: Iterable[Tuple[str, Iterable[str]]]
) -> List[Hyperedge]:
    """Run the GYO ear-removal reduction; return the irreducible residual.

    Repeatedly (a) delete vertices that occur in exactly one hyperedge and
    (b) delete hyperedges contained in another hyperedge.  The hypergraph is
    α-acyclic iff the residual is empty; otherwise the residual edges are
    exactly those participating in the cyclic core — the ``incycle`` set of
    Figure 10.
    """
    work: List[Tuple[str, Set[str]]] = [
        (label, set(vs)) for label, vs in _as_edges(edges)
    ]
    changed = True
    while changed and work:
        changed = False
        # (a) Remove vertices appearing in exactly one edge.
        occurrences: Dict[str, int] = {}
        for _, vs in work:
            for v in vs:
                occurrences[v] = occurrences.get(v, 0) + 1
        for _, vs in work:
            lonely = {v for v in vs if occurrences[v] == 1}
            if lonely:
                vs -= lonely
                changed = True
        # Drop edges that became empty.
        nonempty = [(label, vs) for label, vs in work if vs]
        if len(nonempty) != len(work):
            work = nonempty
            changed = True
        # (b) Remove edges contained in another edge (keep one representative
        # among exact duplicates).
        survivors: List[Tuple[str, Set[str]]] = []
        for i, (label, vs) in enumerate(work):
            absorbed = False
            for j, (_, other) in enumerate(work):
                if i == j:
                    continue
                if vs < other or (vs == other and j < i):
                    absorbed = True
                    break
            if absorbed:
                changed = True
            else:
                survivors.append((label, vs))
        work = survivors
    return [(label, frozenset(vs)) for label, vs in work]


def is_acyclic(edges: Iterable[Tuple[str, Iterable[str]]]) -> bool:
    """Whether the hypergraph is α-acyclic (empty GYO residual)."""
    return not gyo_residual(edges)


def connected_components(
    edges: Iterable[Tuple[str, Iterable[str]]]
) -> List[List[str]]:
    """Partition edge labels into connected components (shared-variable links).

    Edges with no vertices (fully aggregated relations) each form their own
    component.  Used by the recursive-IVM baseline to factor disconnected
    delta queries into products, as DBToaster does.
    """
    edge_list = _as_edges(edges)
    parent: Dict[str, str] = {label: label for label, _ in edge_list}

    def find(x: str) -> str:
        """Union-find root of ``x`` with path halving."""
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        """Merge the components of ``a`` and ``b``."""
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    by_vertex: Dict[str, str] = {}
    for label, vs in edge_list:
        for v in vs:
            if v in by_vertex:
                union(label, by_vertex[v])
            else:
                by_vertex[v] = label

    groups: Dict[str, List[str]] = {}
    for label, _ in edge_list:
        groups.setdefault(find(label), []).append(label)
    return list(groups.values())


def is_connected(edges: Iterable[Tuple[str, Iterable[str]]]) -> bool:
    """Whether all edges form a single connected component."""
    return len(connected_components(edges)) <= 1
