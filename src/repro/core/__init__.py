"""F-IVM core: variable orders, view trees, deltas, materialization, engine."""

from repro.core.analysis import (
    is_hierarchical,
    is_q_hierarchical,
    update_cost_sketch,
)
from repro.core.checkpoint import (
    JournaledFIVMEngine,
    UpdateJournal,
    restore_snapshot,
    take_snapshot,
)
from repro.core.engine import (
    BACKENDS,
    MATERIALIZATIONS,
    STORAGES,
    DeferredRelation,
    FIVMEngine,
)
from repro.core.factorized_update import FactorizedUpdate, decompose
from repro.core.faults import FaultPlan, InjectedCrash, InjectedFault
from repro.core.hypergraph import (
    connected_components,
    gyo_residual,
    is_acyclic,
    is_connected,
)
from repro.core.indicator_trees import IndicatorSpec, add_indicator_projections
from repro.core.materialization import (
    delta_sources,
    materialization_flags,
    materialized_views,
)
from repro.core.multiview import (
    MultiViewClient,
    MultiViewEngine,
)
from repro.core.query import Query
from repro.core.serving import ActiveSet, ViewClient, upquery
from repro.core.sharded import FrameConn, ShardedFIVMEngine, stable_hash
from repro.core.variable_order import VariableOrder, VONode
from repro.core.view_tree import ViewNode, ViewTree, build_view_tree, compute_view

__all__ = [
    "FIVMEngine",
    "BACKENDS",
    "STORAGES",
    "MATERIALIZATIONS",
    "ActiveSet",
    "ViewClient",
    "MultiViewEngine",
    "MultiViewClient",
    "upquery",
    "DeferredRelation",
    "FrameConn",
    "ShardedFIVMEngine",
    "stable_hash",
    "JournaledFIVMEngine",
    "UpdateJournal",
    "take_snapshot",
    "restore_snapshot",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "is_hierarchical",
    "is_q_hierarchical",
    "update_cost_sketch",
    "FactorizedUpdate",
    "decompose",
    "Query",
    "VariableOrder",
    "VONode",
    "ViewNode",
    "ViewTree",
    "build_view_tree",
    "compute_view",
    "materialization_flags",
    "materialized_views",
    "delta_sources",
    "add_indicator_projections",
    "IndicatorSpec",
    "gyo_residual",
    "is_acyclic",
    "is_connected",
    "connected_components",
]
