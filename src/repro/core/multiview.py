"""Many maintained queries over one shared database (the multi-view engine).

A single :class:`~repro.core.engine.FIVMEngine` maintains *one* query
eagerly per update.  Production view services (Snowflake Dynamic Tables,
Materialize) invert both assumptions: **hundreds of registered queries**
share one database, and each view declares a **target lag** — how stale it
may be — instead of refreshing on every write.  This module grows the
engine in those two directions while staying exact:

* **Common sub-view sharing (CSE on the variable order).**  At
  registration every subtree of the query's variable order is
  canonicalized into a sharing key (:func:`repro.core.view_tree.
  subtree_signature`).  When two registered queries agree on a key, the
  sub-view is *cut out*: a dedicated shared sub-engine maintains it once,
  and each subscriber's query is rewritten to read a pseudo-relation fed
  by the shared root's deltas.  The rewrite is the paper's own view-tree
  decomposition — ``⊕`` over the subtree's bound variables distributes
  over the factors outside the subtree (commutative rings only), so
  subscriber results are exactly those of the unshared plan.  Signatures
  seen once are *published*; when a later registration matches a published
  signature, the host view is rebuilt with the cut (promotion), so sharing
  needs no global planning pass.
* **Target-lag scheduling.**  Updates are ingested as per-relation count
  deltas into the shared database immediately, but each view only
  *refreshes* when its oldest pending update is older than its
  ``target_lag`` (an injectable ``clock`` makes this testable).  Pending
  deltas coalesce through the engine's existing
  :meth:`~repro.core.engine.FIVMEngine.apply_batch` path — one merged
  delta per relation per refresh, the paper's batching effect applied
  across time instead of across a batch.  ``target_lag=0`` refreshes
  inline on ingest (the classic eager engine); :meth:`MultiViewEngine.
  tick` drains overdue views most-overdue-first, and
  :meth:`MultiViewEngine.drain` forces everything fresh.
* **Incremental-vs-recompute switching.**  Per refresh, if the coalesced
  pending deltas touch more than ``recompute_fraction`` (default ~30%) of
  the view's base, maintaining incrementally is a loss (the paper's
  IVM-vs-reevaluation crossover, :mod:`repro.baselines.reeval`); the
  refresh then recomputes via :meth:`~repro.core.engine.FIVMEngine.
  initialize` from the shared database instead of propagating deltas.

All per-view and shared engines share one
:class:`~repro.core.plan_exec.ProgramLibrary`, so isomorphic triggers
across hundreds of registrations are generated once and only re-bound per
engine (ring and lifting bindings happen at bind time, making the cache
safe across queries).

Reads go through :class:`MultiViewClient` (or
:class:`repro.serve.ViewServer`, which accepts a multi-view engine and
adds freshness metadata to its reads); every read answers from the view's
last refreshed state, with :meth:`MultiViewEngine.freshness` reporting
how stale that state is.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.engine import FIVMEngine
from repro.core.plan_exec import ProgramLibrary
from repro.core.query import Query
from repro.core.variable_order import VariableOrder, VONode
from repro.core.view_tree import subtree_signature
from repro.data.database import Database
from repro.data.relation import Relation
from repro.rings import INT_RING
from repro.rings.lifting import Lifting

__all__ = ["MultiViewEngine", "MultiViewClient", "RegisteredView", "SharedSubView"]

#: Prefix of the generated pseudo-relation names shared sub-views publish
#: under; user relations may not start with it.
SHARED_PREFIX = "__sv"


class SharedSubView:
    """One shared sub-view: a mini engine maintained once for many views.

    Holds the cut sub-query (relations of the shared subtree, output
    variables as free, subtree-bound variables marginalized with their
    original lifts), the :class:`~repro.core.engine.FIVMEngine` that
    maintains it, the set of subscribing view names, and the pending
    count-deltas not yet applied.  On refresh the root delta fans out to
    every subscriber's inbox as a delta of the pseudo-relation
    :attr:`name` — maintained once, consumed everywhere.
    """

    __slots__ = (
        "name",
        "signature",
        "query",
        "engine",
        "relations",
        "schema",
        "subscribers",
        "pending",
        "pending_since",
        "stats",
    )

    def __init__(self, name: str, signature, query: Query, engine: FIVMEngine):
        self.name = name
        self.signature = signature
        self.query = query
        self.engine = engine
        #: Base relations the sub-view reads (update routing key).
        self.relations = frozenset(query.relations)
        #: Schema of the fanned-out pseudo-relation (the shared root keys).
        self.schema: Tuple[str, ...] = engine.tree.root.keys
        self.subscribers: set = set()
        #: Un-applied ``(relation, counts)`` deltas, in arrival order.
        self.pending: List[Tuple[str, Dict[tuple, int]]] = []
        self.pending_since: Optional[float] = None
        self.stats = {"refreshes": 0, "recomputes": 0, "hits": 0, "fanouts": 0}


class RegisteredView:
    """One registered query: its engine, lag budget, and pending inbox.

    The engine maintains the *rewritten* query (shared subtrees replaced
    by pseudo-relations); :attr:`inbox` holds ring-converted deltas —
    direct base deltas stamped at ingest plus shared-root deltas stamped
    at the shared view's refresh — which one refresh coalesces through
    ``apply_batch`` (or discards, when the refresh recomputes).
    """

    __slots__ = (
        "name",
        "query",
        "order",
        "target_lag",
        "engine",
        "rewritten",
        "deps",
        "direct",
        "inbox",
        "pending_since",
        "last_refresh_at",
        "stats",
    )

    def __init__(
        self, name: str, query: Query, order: VariableOrder, target_lag: float
    ):
        self.name = name
        self.query = query
        self.order = order
        self.target_lag = target_lag
        self.engine: Optional[FIVMEngine] = None
        self.rewritten: Optional[Query] = None
        #: Shared sub-views this view subscribes to, by pseudo-relation name.
        self.deps: Dict[str, SharedSubView] = {}
        #: Base relations the rewritten query reads directly.
        self.direct: frozenset = frozenset()
        self.inbox: List[Relation] = []
        self.pending_since: Optional[float] = None
        self.last_refresh_at: Optional[float] = None
        self.stats = {"refreshes": 0, "incremental": 0, "recomputes": 0}


class MultiViewEngine:
    """Hundreds of registered queries over one shared database.

    Parameters
    ----------
    backend, storage:
        Passed to every per-view and shared engine (see
        :class:`~repro.core.engine.FIVMEngine`); all engines share one
        :class:`~repro.core.plan_exec.ProgramLibrary`.
    sharing:
        Whether to cut common sub-views across registrations (on by
        default; per-query it also requires a commutative ring).
    recompute_fraction:
        A refresh whose coalesced deltas touch more than this fraction of
        the view's base recomputes instead of maintaining incrementally.
    clock:
        Monotonic time source for lag scheduling (injectable for tests).

    The database is **count-based**: updates arrive as
    ``(relation, {key: int})`` multiplicity deltas (or ℤ-ring
    :class:`~repro.data.relation.Relation` deltas) and are converted into
    each registered query's payload ring via ``ring.from_int`` — one
    shared base state, many ring views of it.
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        storage: Optional[str] = None,
        *,
        sharing: bool = True,
        recompute_fraction: float = 0.3,
        clock: Callable[[], float] = time.monotonic,
        program_library: Optional[ProgramLibrary] = None,
    ):
        self.backend = backend
        self.storage = storage
        self.sharing = sharing
        self.recompute_fraction = recompute_fraction
        self._clock = clock
        self._library = program_library or ProgramLibrary()
        #: The authoritative base state: one ℤ-ring relation per name.
        self._db = Database()
        self._views: Dict[str, RegisteredView] = {}
        #: Instantiated shared sub-views by signature and by name.
        self._shared: Dict[tuple, SharedSubView] = {}
        self._shared_by_name: Dict[str, SharedSubView] = {}
        #: Signatures seen exactly once so far: sig → names of the views
        #: currently computing that subtree inline (promotion candidates).
        self._published: Dict[tuple, List[str]] = {}
        #: Update routing: base relation → views reading it directly /
        #: shared sub-views reading it.
        self._rel_users: Dict[str, set] = {}
        self._rel_shared: Dict[str, set] = {}
        self._counter = 0
        self.stats = {"updates": 0, "shared_hits": 0, "fanouts": 0}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        *,
        target_lag: float = 0.0,
        name: Optional[str] = None,
    ) -> str:
        """Register ``query`` for maintenance; returns its view name.

        Admits the query's relations into the shared database (schemas
        must agree with prior registrations), plans sharing cuts against
        the current pool — possibly *promoting* published signatures of
        earlier views, which are then rebuilt with the cut — and brings
        the view's engine up to date with the current database.  The view
        refreshes whenever its staleness would exceed ``target_lag``
        seconds (``0`` means eagerly, on every ingest).
        """
        name = name or query.name
        if name in self._views:
            raise ValueError(f"view {name!r} is already registered")
        for rel, schema in query.relations.items():
            if rel.startswith(SHARED_PREFIX):
                raise ValueError(
                    f"relation name {rel!r} collides with the "
                    f"{SHARED_PREFIX}* pseudo-relation namespace"
                )
            self._admit_relation(rel, schema)
        if order is None:
            order = VariableOrder.auto(query)
        order.validate(query)
        view = RegisteredView(name, query, order, float(target_lag))
        self._views[name] = view
        try:
            self._build(view)
        except Exception:
            self._views.pop(name, None)
            self._unlink(view)
            for shared in view.deps.values():
                shared.subscribers.discard(name)
            raise
        return name

    def deregister(self, name: str) -> None:
        """Drop a registered view, freeing shared sub-views that lose
        their last subscriber (their engines and pending deltas go with
        them) and retracting the view's published signatures."""
        view = self._views.pop(name)
        self._unlink(view)
        for shared in view.deps.values():
            shared.subscribers.discard(name)
            if not shared.subscribers:
                self._free_shared(shared)

    def view_names(self) -> Tuple[str, ...]:
        """Sorted names of the registered views."""
        return tuple(sorted(self._views))

    def set_target_lag(self, name: str, target_lag: float) -> None:
        """Change a view's lag budget (takes effect at the next tick)."""
        self._views[name].target_lag = float(target_lag)

    def _admit_relation(self, rel: str, schema: Tuple[str, ...]) -> None:
        if rel in self._db:
            existing = self._db.relation(rel).schema
            if existing != tuple(schema):
                raise ValueError(
                    f"relation {rel!r} registered with schema "
                    f"{list(schema)} but the shared database has "
                    f"{list(existing)}"
                )
            return
        self._db.add(Relation(rel, schema, INT_RING))

    # ------------------------------------------------------------------
    # Sharing: cut planning, promotion, rebuild
    # ------------------------------------------------------------------

    def _plan_cuts(self, query: Query, order: VariableOrder):
        """Walk the variable order pre-order and cut at the topmost vars
        whose canonical subtree signature matches the shared pool
        (promoting published signatures on the way); signatures of
        candidate subtrees kept inline are returned for publication."""
        cuts: List[SharedSubView] = []
        publications: List[tuple] = []
        if not (self.sharing and query.ring.is_commutative):
            return cuts, publications

        def visit(node: VONode) -> None:
            """Pre-order cut/publish decision for one subtree."""
            sig, relations, marginalized = subtree_signature(
                query, order, node.var
            )
            if relations and (len(relations) > 1 or marginalized):
                shared = self._shared.get(sig)
                if shared is None and self._published.get(sig):
                    shared = self._promote(sig, query, relations, marginalized)
                if shared is not None:
                    cuts.append(shared)
                    return  # shared subtrees do not nest
                publications.append(sig)
            for child in node.children:
                visit(child)

        for root in order.roots:
            visit(root)
        return cuts, publications

    def _promote(
        self, sig: tuple, query: Query, relations, marginalized
    ) -> SharedSubView:
        """A second query matched a published signature: instantiate the
        shared sub-view from the current database and rebuild every view
        that was computing the subtree inline so it subscribes too."""
        shared = self._make_shared(sig, query, relations, marginalized)
        for host in self._published.pop(sig, ()):  # now maintained shared
            self._rebuild(self._views[host])
        return shared

    def _make_shared(
        self, sig: tuple, query: Query, relations, marginalized
    ) -> SharedSubView:
        self._counter += 1
        name = f"{SHARED_PREFIX}{self._counter}__"
        free = tuple(
            sorted(
                {a for schema in relations.values() for a in schema}
                - marginalized
            )
        )
        sub_query = Query(
            name,
            dict(relations),
            free=free,
            ring=query.ring,
            lifting=Lifting(
                query.ring, query.lifting.restricted(marginalized)
            ),
        )
        engine = FIVMEngine(
            sub_query,
            backend=self.backend,
            storage=self.storage,
            program_library=self._library,
        )
        engine.initialize(self._ring_database(sub_query.relations, query.ring))
        shared = SharedSubView(name, sig, sub_query, engine)
        self._shared[sig] = shared
        self._shared_by_name[name] = shared
        for rel in shared.relations:
            self._rel_shared.setdefault(rel, set()).add(name)
        return shared

    def _free_shared(self, shared: SharedSubView) -> None:
        self._shared.pop(shared.signature, None)
        self._shared_by_name.pop(shared.name, None)
        for rel in shared.relations:
            users = self._rel_shared.get(rel)
            if users is not None:
                users.discard(shared.name)
                if not users:
                    del self._rel_shared[rel]

    def _build(self, view: RegisteredView) -> None:
        """Plan cuts, build the view's engine over the rewritten query,
        and load it from the current database (so registration and
        rebuild both leave the view fully fresh)."""
        cuts, publications = self._plan_cuts(view.query, view.order)
        query = view.query
        if cuts:
            cut_rels = frozenset().union(*(s.relations for s in cuts))
            relations: Dict[str, Tuple[str, ...]] = {
                rel: schema
                for rel, schema in query.relations.items()
                if rel not in cut_rels
            }
            for shared in cuts:
                relations[shared.name] = shared.schema
            bound = {
                a for schema in relations.values() for a in schema
            } - set(query.free)
            rewritten = Query(
                query.name,
                relations,
                free=query.free,
                ring=query.ring,
                lifting=Lifting(query.ring, query.lifting.restricted(bound)),
            )
            order = None
        else:
            rewritten = query
            order = view.order
        view.rewritten = rewritten
        view.deps = {shared.name: shared for shared in cuts}
        view.direct = frozenset(
            rel for rel in rewritten.relations if rel not in view.deps
        )
        # A shared dependency with pending deltas must refresh before the
        # snapshot below, or the new view would initialize from a stale
        # shared root and serve a mixed-version state until the next
        # fanout.  (The fanout goes to the *existing* subscribers; this
        # view is subscribed after its engine is loaded.)
        now = self._clock()
        for shared in cuts:
            if shared.pending:
                self._refresh_shared(shared, now)
        view.engine = FIVMEngine(
            rewritten,
            order=order,
            backend=self.backend,
            storage=self.storage,
            program_library=self._library,
        )
        view.engine.initialize(self._view_database(view))
        for shared in cuts:
            shared.subscribers.add(view.name)
        for rel in view.direct:
            self._rel_users.setdefault(rel, set()).add(view.name)
        for sig in publications:
            self._published.setdefault(sig, []).append(view.name)

    def _rebuild(self, view: RegisteredView) -> None:
        """Re-plan and re-initialize a view against the current pool (used
        by promotion).  The rebuilt engine is loaded from the database, so
        the inbox is cleared — the view comes back fully fresh."""
        self._unlink(view)
        for shared in view.deps.values():
            shared.subscribers.discard(view.name)
        view.deps = {}
        self._build(view)
        view.inbox = []
        view.pending_since = None

    def _unlink(self, view: RegisteredView) -> None:
        """Retract a view's update routing and published signatures."""
        for rel in view.direct:
            users = self._rel_users.get(rel)
            if users is not None:
                users.discard(view.name)
                if not users:
                    del self._rel_users[rel]
        for sig in list(self._published):
            hosts = self._published[sig]
            if view.name in hosts:
                hosts.remove(view.name)
                if not hosts:
                    del self._published[sig]

    # ------------------------------------------------------------------
    # Ring conversion of the count-based base state
    # ------------------------------------------------------------------

    def _base_relation(self, rel: str, schema, ring) -> Relation:
        """The shared database's contents for ``rel``, embedded in
        ``ring`` via ``from_int`` (the multiplicity homomorphism)."""
        out = Relation(rel, schema, ring)
        if rel in self._db:
            counts = self._db.relation(rel)._data
            if ring is INT_RING:
                out._data = dict(counts)
            else:
                from_int = ring.from_int
                is_zero = ring.is_zero
                data = {}
                for key, count in counts.items():
                    payload = from_int(count)
                    if not is_zero(payload):
                        data[key] = payload
                out._data = data
        return out

    def _ring_database(self, relations: Mapping[str, Tuple[str, ...]], ring):
        return Database(
            self._base_relation(rel, schema, ring)
            for rel, schema in relations.items()
        )

    def _view_database(self, view: RegisteredView) -> Database:
        """A database snapshot for a view's (re)compute: ring-converted
        base relations plus the current shared roots as pseudo-relations."""
        ring = view.query.ring
        db = Database(
            self._base_relation(rel, view.rewritten.relations[rel], ring)
            for rel in view.direct
        )
        for shared in view.deps.values():
            root = Relation(shared.name, shared.schema, ring)
            root._data = {key: value for key, value in shared.engine.result().items()}
            db.add(root)
        return db

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def apply_update(self, relation, counts: Optional[Mapping] = None):
        """Ingest one count delta — ``apply_update("R", {key: n})`` or a
        ℤ-ring :class:`~repro.data.relation.Relation` — and tick."""
        if counts is None:
            return self.apply_batch([relation])
        return self.apply_batch([(relation, counts)])

    def apply_batch(self, items: Iterable) -> List[str]:
        """Ingest a group of count deltas, then tick the scheduler.

        Each item is ``(relation_name, {key: multiplicity})`` or a ℤ-ring
        :class:`~repro.data.relation.Relation` delta.  The shared database
        absorbs every delta immediately (it is the authoritative state);
        per-view work is deferred into inboxes and pending queues, to be
        coalesced at refresh time.  Views whose target lag is already
        exceeded — in particular eager ``target_lag=0`` views — refresh
        before this returns.  Returns the names of the views refreshed by
        the closing tick.
        """
        now = self._clock()
        for item in items:
            rel, counts = self._coerce(item)
            if rel not in self._db:
                raise KeyError(f"unknown relation {rel!r}")
            if not counts:
                continue
            self.stats["updates"] += 1
            base = self._db.relation(rel)
            delta = Relation(rel, base.schema, INT_RING, counts)
            if delta.is_empty:
                continue
            base.absorb(delta)
            for name in self._rel_shared.get(rel, ()):
                shared = self._shared_by_name[name]
                shared.pending.append((rel, dict(delta._data)))
                if shared.pending_since is None:
                    shared.pending_since = now
                for subscriber in shared.subscribers:
                    sub = self._views[subscriber]
                    if sub.pending_since is None:
                        sub.pending_since = now
            for subscriber in self._rel_users.get(rel, ()):
                view = self._views[subscriber]
                ring = view.query.ring
                view.inbox.append(
                    self._count_delta(rel, delta._data, view, ring)
                )
                if view.pending_since is None:
                    view.pending_since = now
        return self.tick(now=now)

    @staticmethod
    def _coerce(item) -> Tuple[str, Mapping]:
        if isinstance(item, Relation):
            return item.name, item._data
        rel, counts = item
        return rel, counts

    def _count_delta(self, rel: str, counts, view: RegisteredView, ring):
        schema = view.rewritten.relations[rel]
        out = Relation(rel, schema, ring)
        if ring is INT_RING:
            out._data = dict(counts)
        else:
            from_int = ring.from_int
            is_zero = ring.is_zero
            data = {}
            for key, count in counts.items():
                payload = from_int(count)
                if not is_zero(payload):
                    data[key] = payload
            out._data = data
        return out

    # ------------------------------------------------------------------
    # The lag scheduler
    # ------------------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> List[str]:
        """Refresh every view whose staleness exceeds its target lag,
        most-overdue-first; returns the refreshed view names."""
        if now is None:
            now = self._clock()
        due: List[Tuple[float, str]] = []
        for view in self._views.values():
            if view.pending_since is None and not view.inbox:
                continue
            since = now if view.pending_since is None else view.pending_since
            overdue = (now - since) - view.target_lag
            if overdue >= 0:
                due.append((overdue, view.name))
        due.sort(key=lambda entry: (-entry[0], entry[1]))
        refreshed = []
        for _, name in due:
            view = self._views.get(name)
            if view is not None:
                self._refresh(view, now)
                refreshed.append(name)
        return refreshed

    def refresh(self, name: str) -> None:
        """Force one view fresh now, regardless of its target lag."""
        self._refresh(self._views[name], self._clock())

    def drain(self) -> List[str]:
        """Force every stale view fresh (the shutdown / test barrier)."""
        now = self._clock()
        refreshed = []
        for name in self.view_names():
            view = self._views[name]
            if (
                view.pending_since is not None
                or view.inbox
                or any(shared.pending for shared in view.deps.values())
            ):
                self._refresh(view, now)
                refreshed.append(name)
        return refreshed

    def _refresh(self, view: RegisteredView, now: float) -> None:
        """Bring one view up to date with the shared database.

        Shared dependencies refresh first (delivering their root deltas to
        *every* subscriber's inbox, not just this view's), so the inbox
        then holds exactly the difference between the view's state and the
        current database; it is applied incrementally through
        ``apply_batch`` — or discarded in favour of an
        ``initialize``-recompute when it touches more than
        ``recompute_fraction`` of the base (the reevaluation arm of
        :mod:`repro.baselines.reeval`, kept inside the engine so later
        increments continue from the recomputed state).
        """
        for shared in view.deps.values():
            if shared.pending:
                self._refresh_shared(shared, now)
            else:
                shared.stats["hits"] += 1
                self.stats["shared_hits"] += 1
        inbox = view.inbox
        if inbox:
            touched_by_rel: Dict[str, set] = {}
            for delta in inbox:
                touched_by_rel.setdefault(delta.name, set()).update(
                    delta._data
                )
            touched = sum(len(keys) for keys in touched_by_rel.values())
            if touched / max(1, self._view_base_size(view)) > self.recompute_fraction:
                view.engine.initialize(self._view_database(view))
                view.stats["recomputes"] += 1
            else:
                view.engine.apply_batch(inbox)
                view.stats["incremental"] += 1
        view.inbox = []
        view.pending_since = None
        view.last_refresh_at = now
        view.stats["refreshes"] += 1

    def _view_base_size(self, view: RegisteredView) -> int:
        size = sum(
            len(self._db.relation(rel)) for rel in view.direct
            if rel in self._db
        )
        for shared in view.deps.values():
            size += len(shared.engine.result())
        return size

    def _refresh_shared(self, shared: SharedSubView, now: float) -> None:
        """Apply a shared sub-view's pending deltas once and fan the root
        delta out to every subscriber's inbox (stamped with the pseudo-
        relation name the subscribers' rewritten queries read)."""
        ring = shared.query.ring
        pending, shared.pending = shared.pending, []
        shared.pending_since = None
        shared.stats["refreshes"] += 1
        touched_by_rel: Dict[str, set] = {}
        for rel, counts in pending:
            touched_by_rel.setdefault(rel, set()).update(counts)
        touched = sum(len(keys) for keys in touched_by_rel.values())
        base = sum(
            len(self._db.relation(rel)) for rel in shared.relations
        )
        if touched / max(1, base) > self.recompute_fraction:
            before = dict(shared.engine.result().items())
            shared.engine.initialize(
                self._ring_database(shared.query.relations, ring)
            )
            shared.stats["recomputes"] += 1
            root_data = self._diff(before, shared.engine.result(), ring)
        else:
            items = []
            for rel, counts in pending:
                delta = Relation(rel, shared.query.relations[rel], ring)
                if ring is INT_RING:
                    delta._data = dict(counts)
                else:
                    from_int = ring.from_int
                    is_zero = ring.is_zero
                    delta._data = {
                        key: payload
                        for key, count in counts.items()
                        if not is_zero(payload := from_int(count))
                    }
                items.append(delta)
            root_data = dict(shared.engine.apply_batch(items)._data)
        if not root_data:
            return
        for subscriber in shared.subscribers:
            fan = Relation(shared.name, shared.schema, ring)
            fan._data = dict(root_data)
            self._views[subscriber].inbox.append(fan)
            shared.stats["fanouts"] += 1
            self.stats["fanouts"] += 1

    @staticmethod
    def _diff(before: Dict, after: Relation, ring) -> Dict:
        """``after − before`` as a payload dict (the root delta a
        recomputed shared view owes its subscribers)."""
        delta: Dict = {}
        sub, neg, is_zero = ring.sub, ring.neg, ring.is_zero
        for key, value in after.items():
            old = before.pop(key, None)
            change = value if old is None else sub(value, old)
            if not is_zero(change):
                delta[key] = change
        for key, old in before.items():
            delta[key] = neg(old)
        return delta

    # ------------------------------------------------------------------
    # Reads and introspection
    # ------------------------------------------------------------------

    def result(self, name: str) -> Relation:
        """The maintained result of a registered view, keyed in the
        query's declared free-variable order (as of its last refresh)."""
        view = self._views[name]
        root = view.engine.result()
        free = tuple(view.query.free)
        if tuple(root.schema) == free or set(root.schema) != set(free):
            return root
        positions = [root.schema.index(attr) for attr in free]
        out = Relation(root.name, free, view.query.ring)
        out._data = {
            tuple(key[p] for p in positions): value
            for key, value in root.items()
        }
        return out

    def freshness(self, name: str) -> Dict:
        """How stale a view's served state is: seconds since its oldest
        un-applied update (``0.0`` when fully fresh), pending delta count
        (inbox entries plus pending deltas of its shared dependencies),
        the lag budget, and the last refresh timestamp."""
        view = self._views[name]
        now = self._clock()
        pending = len(view.inbox) + sum(
            len(shared.pending) for shared in view.deps.values()
        )
        staleness = (
            0.0 if view.pending_since is None else now - view.pending_since
        )
        return {
            "target_lag": view.target_lag,
            "pending": pending,
            "staleness": staleness,
            "last_refresh_at": view.last_refresh_at,
        }

    def view_stats(self, name: str) -> Dict:
        """Per-view refresh counters plus the freshness snapshot."""
        view = self._views[name]
        out = dict(view.stats)
        out["shared_deps"] = tuple(sorted(view.deps))
        out.update(self.freshness(name))
        return out

    def shared_stats(self) -> Dict[str, Dict]:
        """Per-shared-sub-view counters: subscribers, refreshes (actual
        maintenance passes), hits (refreshes a subscriber skipped because
        the shared state was already fresh), and fanouts."""
        out = {}
        for name in sorted(self._shared_by_name):
            shared = self._shared_by_name[name]
            entry = dict(shared.stats)
            entry["subscribers"] = len(shared.subscribers)
            entry["relations"] = tuple(sorted(shared.relations))
            out[name] = entry
        return out

    def client(self) -> "MultiViewClient":
        """The read front door (duck-compatible with
        :class:`~repro.core.serving.ViewClient` for
        :class:`repro.serve.ViewServer`)."""
        return MultiViewClient(self)


class MultiViewClient:
    """Point lookups over a :class:`MultiViewEngine`'s registered views.

    Mirrors :class:`~repro.core.serving.ViewClient`'s surface — ``lookup``
    / ``lookup_many`` / ``stats`` — so :class:`repro.serve.ViewServer`
    serves a multi-view engine through the same read path; keys are given
    in the registered query's free-variable order.  Reads answer from the
    view's last refreshed state; consult
    :meth:`MultiViewEngine.freshness` (or the server's ``lookup_fresh``)
    for how stale that is.
    """

    def __init__(self, engine: MultiViewEngine):
        self.engine = engine

    def lookup(self, view_name: str, key: Iterable):
        """The payload of ``key`` (in query free order) in a view's
        maintained result, ring zero when absent."""
        view = self.engine._views[view_name]
        root = view.engine.result()
        key = tuple(key)
        free = tuple(view.query.free)
        if tuple(root.schema) != free and set(root.schema) == set(free):
            order = {attr: i for i, attr in enumerate(free)}
            key = tuple(key[order[attr]] for attr in root.schema)
        return root.payload(key)

    def lookup_many(self, view_name: str, keys: Iterable[Iterable]) -> List:
        """Batched :meth:`lookup` (payloads in input order)."""
        return [self.lookup(view_name, key) for key in keys]

    def stats(self, view_name: str) -> Dict:
        """The view's refresh counters and freshness snapshot."""
        return self.engine.view_stats(view_name)
