"""Join-aggregate queries: the paper's query language (Section 2).

A query is::

    Q[X1, ..., Xf] = ⊕_{X_{f+1}} ... ⊕_{X_m}  ⊗_{i ∈ [n]} R_i[S_i]

— a natural join of relations over a ring, with the bound variables
marginalized using per-variable lifting functions and the free variables
retained as group-by keys.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.hypergraph import is_acyclic, is_connected
from repro.data.schema import SchemaError, as_schema
from repro.rings.base import Ring
from repro.rings.lifting import Lifting

__all__ = ["Query"]


class Query:
    """A join query with group-by aggregation over a ring.

    Parameters
    ----------
    name:
        Identifier used for view naming.
    relations:
        Mapping from relation name to its schema (attribute tuple).  These
        are the *logical* occurrences: a self-join registers the same data
        under two names at the application layer.
    free:
        The group-by (free) variables; everything else is marginalized.
    ring:
        The payload ring.
    lifting:
        Per-variable lifting functions (default: everything lifts to 1).
    """

    def __init__(
        self,
        name: str,
        relations: Mapping[str, Sequence[str]],
        free: Iterable[str] = (),
        ring: Optional[Ring] = None,
        lifting: Optional[Lifting] = None,
    ):
        if ring is None:
            raise ValueError("a payload ring is required")
        if not relations:
            raise ValueError("a query needs at least one relation")
        self.name = name
        self.ring = ring
        self.relations: Dict[str, Tuple[str, ...]] = {
            rel: as_schema(schema) for rel, schema in relations.items()
        }
        self.free: Tuple[str, ...] = tuple(free)
        if len(set(self.free)) != len(self.free):
            raise SchemaError(f"duplicate free variables: {self.free}")
        variables: List[str] = []
        for schema in self.relations.values():
            for attr in schema:
                if attr not in variables:
                    variables.append(attr)
        self.variables: Tuple[str, ...] = tuple(variables)
        unknown = set(self.free) - set(self.variables)
        if unknown:
            raise SchemaError(f"free variables {unknown} not in any relation")
        self.bound: Tuple[str, ...] = tuple(
            v for v in self.variables if v not in set(self.free)
        )
        self.lifting = lifting or Lifting(ring)

    # ------------------------------------------------------------------

    def hyperedges(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """The join hypergraph as (relation name, schema) pairs."""
        return [(rel, schema) for rel, schema in self.relations.items()]

    @property
    def is_acyclic(self) -> bool:
        """Whether the join hypergraph is α-acyclic (GYO-reducible)."""
        return is_acyclic(self.hyperedges())

    @property
    def is_connected(self) -> bool:
        """Whether the join hypergraph is one connected component."""
        return is_connected(self.hyperedges())

    def relations_with(self, variable: str) -> Tuple[str, ...]:
        """Names of relations whose schema contains ``variable``."""
        return tuple(
            rel for rel, schema in self.relations.items() if variable in schema
        )

    def schema_of(self, relation: str) -> Tuple[str, ...]:
        """The schema of ``relation``; raises :class:`SchemaError` if unknown."""
        try:
            return self.relations[relation]
        except KeyError:
            raise KeyError(
                f"query {self.name!r} has no relation {relation!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rels = ", ".join(f"{r}{list(s)}" for r, s in self.relations.items())
        return f"Query({self.name}[{', '.join(self.free)}] over {rels})"
