"""Which views to materialize and maintain (Figure 5).

Given a view tree and the set of updatable relations ``U``, a view is
materialized iff

* it is the root (it holds the query result), or
* it is needed to compute its parent's delta for updates to a relation it is
  not itself defined over: ``(rels(parent) \\ rels(V)) ∩ U ≠ ∅``.

Equivalently: a view is stored iff some *sibling* subtree contains an
updatable delta source.  We use that formulation because indicator
projections (Appendix B) introduce delta sources that are not leaves: an
indicator ``∃_A R`` hosted at a view behaves like an extra child of that
view, so when its base relation is updatable the host's other children — and
the siblings along the host-to-root path — must be stored too.

Leaves follow the same rule: a base relation is stored only when some
sibling needs it (Example 4.2: for U = {T}, only the root, V@E_S and V@B_R
are stored).  Bases observed by updatable indicators are additionally stored
to derive support changes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.core.view_tree import ViewNode, ViewTree

__all__ = ["materialization_flags", "materialized_views", "delta_sources"]


def delta_sources(
    tree: ViewTree, updatable: Iterable[str]
) -> Dict[str, FrozenSet[str]]:
    """Per-view delta sources: updatable relations in the subtree plus
    phantom sources for hosted indicator projections over updatable bases.

    Used both by µ (a view is stored iff a sibling subtree has a source) and
    by the engine's delta-join planner (a child can emit deltas iff its
    subtree has a source).
    """
    updates: Set[str] = set(updatable)
    sources: Dict[str, FrozenSet[str]] = {}

    def collect(node: ViewNode) -> FrozenSet[str]:
        """Updatable delta sources reaching ``node``, bottom-up."""
        found: Set[str] = set(node.relations & updates)
        for ind in node.indicators:
            if ind.base_name in updates:
                found.add(f"∃{ind.base_name}@{node.name}")
        for child in node.children:
            found |= collect(child)
        sources[node.name] = frozenset(found)
        return sources[node.name]

    collect(tree.root)
    return sources


def materialization_flags(
    tree: ViewTree, updatable: Iterable[str]
) -> Dict[str, bool]:
    """Map each view name to whether µ(τ, U) materializes it."""
    updates: Set[str] = set(updatable)
    unknown = updates - set(tree.query.relations)
    if unknown:
        raise KeyError(f"updatable relations {sorted(unknown)} not in query")

    sources = delta_sources(tree, updates)

    flags: Dict[str, bool] = {}

    def walk(node: ViewNode, parent: Optional[ViewNode]) -> None:
        """Decide materialization for ``node`` from its parent's sources."""
        if parent is None:
            flags[node.name] = True
        else:
            flags[node.name] = bool(sources[parent.name] - sources[node.name])
        for child in node.children:
            walk(child, node)

    walk(tree.root, None)

    # Indicator projections observe their base relation's support, so the
    # base must be stored whenever it is updatable (Appendix B).
    observed = {
        ind.base_name for node in tree.nodes for ind in node.indicators
    }
    for rel, leaf in tree.leaves.items():
        if rel in observed and rel in updates:
            flags[leaf.name] = True
    return flags


def materialized_views(tree: ViewTree, updatable: Iterable[str]) -> Set[str]:
    """Names of the views µ selects (convenience wrapper)."""
    flags = materialization_flags(tree, updatable)
    return {name for name, flagged in flags.items() if flagged}
