"""F-IVM: factorized incremental view maintenance.

A from-scratch reproduction of "Incremental View Maintenance with Triple
Lock Factorization Benefits" (Nikolic & Olteanu, SIGMOD 2018): a unified,
higher-order IVM engine over ring payloads covering SUM/COUNT aggregates,
matrix chain multiplication with low-rank updates, cofactor-matrix
maintenance for learning linear regression models over joins, and
conjunctive query evaluation with listing or factorized result
representations, plus indicator projections for cyclic joins.

Quickstart::

    from repro import Query, FIVMEngine, Relation, INT_RING

    query = Query("Q", {"R": ("A", "B"), "S": ("B", "C")}, ring=INT_RING)
    engine = FIVMEngine(query)
    engine.apply_update(Relation("R", ("A", "B"), INT_RING, {(1, 2): 1}))
    engine.apply_update(Relation("S", ("B", "C"), INT_RING, {(2, 9): 1}))
    assert engine.result().payload(()) == 1
"""

from repro.apps import (
    ConjunctiveQuery,
    CofactorModel,
    FactorGraph,
    MaxProductInference,
    SumProductInference,
    DenseChainFIVM,
    DenseChainFirstOrder,
    DenseChainReeval,
    MatrixChainIVM,
    TrainedModel,
    cofactor_query,
)
from repro.baselines import (
    FactorizedReevaluator,
    FirstOrderIVM,
    NaiveReevaluator,
    RecursiveIVM,
    ScalarAggregateBank,
    SQLOptCofactor,
)
from repro.core import (
    FIVMEngine,
    FactorizedUpdate,
    Query,
    VariableOrder,
    ViewTree,
    add_indicator_projections,
    build_view_tree,
    decompose,
    materialization_flags,
)
from repro.data import Database, IndicatorView, Relation
from repro.rings import (
    BOOL_SEMIRING,
    INT_RING,
    REAL_RING,
    CofactorRing,
    CofactorTriple,
    IntegerRing,
    Lifting,
    ProductRing,
    RealRing,
    RelationalRing,
    SquareMatrixRing,
    VectorRing,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Query", "VariableOrder", "ViewTree", "build_view_tree", "FIVMEngine",
    "FactorizedUpdate", "decompose", "materialization_flags",
    "add_indicator_projections",
    # data
    "Relation", "Database", "IndicatorView",
    # rings
    "IntegerRing", "RealRing", "INT_RING", "REAL_RING", "BOOL_SEMIRING",
    "SquareMatrixRing", "CofactorRing", "CofactorTriple", "ProductRing",
    "RelationalRing", "VectorRing", "Lifting",
    # apps
    "ConjunctiveQuery", "CofactorModel", "TrainedModel", "cofactor_query",
    "MatrixChainIVM", "DenseChainFIVM", "DenseChainFirstOrder",
    "DenseChainReeval",
    "FactorGraph", "SumProductInference", "MaxProductInference",
    # baselines
    "FirstOrderIVM", "RecursiveIVM", "ScalarAggregateBank",
    "FactorizedReevaluator", "NaiveReevaluator", "SQLOptCofactor",
]
