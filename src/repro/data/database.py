"""Databases: named collections of relations over a common ring."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.data.relation import Relation
from repro.data.schema import SchemaError

__all__ = ["Database"]


class Database:
    """A collection of relations over the same ring (Section 2).

    ``|D|`` (:attr:`size`) is the sum of the relation sizes, as in the paper.
    """

    def __init__(self, relations: Optional[Iterable[Relation]] = None):
        self._relations: Dict[str, Relation] = {}
        for relation in relations or ():
            self.add(relation)

    def add(self, relation: Relation) -> None:
        """Register a relation (names must be unique)."""
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(
                f"no relation {name!r}; have {sorted(self._relations)}"
            ) from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    @property
    def size(self) -> int:
        """Total number of keys with non-zero payloads across relations."""
        return sum(len(r) for r in self._relations.values())

    def schemas(self) -> Mapping[str, Tuple[str, ...]]:
        """Map of relation name to schema, used to derive join hypergraphs."""
        return {name: rel.schema for name, rel in self._relations.items()}

    def apply_update(self, delta: Relation) -> None:
        """Apply ``R := R ⊎ δR`` for the relation named like ``delta``."""
        self.relation(delta.name).absorb(delta)

    def copy(self) -> "Database":
        """A database with copies of all relations (payloads shared)."""
        return Database(rel.copy() for rel in self)

    def partition(
        self,
        shard_attrs: Mapping[str, Optional[str]],
        shards: int,
        hasher,
    ) -> Tuple["Database", ...]:
        """Split into ``shards`` databases for hash-partitioned maintenance.

        ``shard_attrs`` maps each relation name to the attribute (or
        tuple of attributes — a compound key, see
        :meth:`~repro.data.relation.Relation.partition`) it is
        partitioned on, or ``None`` to replicate the relation (a full copy
        in every shard — the broadcast side of a distributed hash join).
        Relations absent from the mapping are replicated too.
        """
        out: Tuple[Database, ...] = tuple(Database() for _ in range(shards))
        for relation in self:
            attr = shard_attrs.get(relation.name)
            if attr is None:
                fragments = [relation.copy() for _ in range(shards)]
            else:
                fragments = relation.partition(attr, shards, hasher)
            for db, fragment in zip(out, fragments):
                db.add(fragment)
        return out
