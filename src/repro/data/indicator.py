"""Incrementally maintained indicator projections ``∃_A R`` (Appendix B).

An indicator projection maps each distinct ``A``-projection of a relation's
support to payload ``1``.  To make deltas cheap, we track for each projected
key *how many* base tuples with non-zero payload project onto it (the
``CNT_Q`` table of Example B.2): a count moving 0→1 emits an insert with
payload ``+1``; 1→0 emits a delete with payload ``-1``; anything else emits
nothing.  Hence ``|δ(∃_A R)| ≤ |δR|`` and maintenance is O(|δR|).

Delta computation and application are split (:meth:`compute_delta` /
:meth:`commit`) so the IVM engine can propagate each indicator's delta with
the *other* indicators in their correct sequential state, matching the
paper's "updates to one relation are followed by a sequence of updates to
its indicator projections".
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.data.relation import Relation
from repro.data.schema import key_projector

__all__ = ["IndicatorView"]


class IndicatorView:
    """Maintains ``∃_A R`` with count-based O(|δR|) deltas."""

    def __init__(self, base_name: str, base_schema: Sequence[str], attrs: Sequence[str], ring, name: str = ""):
        self.base_name = base_name
        self.attrs: Tuple[str, ...] = tuple(attrs)
        self.name = name or f"exists_{''.join(self.attrs)}_{base_name}"
        self.ring = ring
        self._project = key_projector(tuple(base_schema), self.attrs)
        self._counts: Dict[tuple, int] = {}
        self.relation = Relation(self.name, self.attrs, ring)

    @classmethod
    def over(cls, base: Relation, attrs: Sequence[str], name: str = "") -> "IndicatorView":
        """Build an indicator initialized from a base relation's contents."""
        view = cls(base.name, base.schema, attrs, base.ring, name)
        view.reset_from(base)
        return view

    def reset_from(self, base: Relation) -> None:
        """Reinitialize counts and contents from the base relation."""
        self._counts.clear()
        self.relation.clear()
        one = self.ring.one
        for key in base.keys():
            pkey = self._project(key)
            before = self._counts.get(pkey, 0)
            self._counts[pkey] = before + 1
            if before == 0:
                self.relation.add(pkey, one)

    def _bump(self, pkey: tuple, amount: int) -> int:
        """Adjust the support count of ``pkey``; return the signed 0↔1 edge.

        Returns ``+1`` when the key's count crosses 0→positive (insert into
        the indicator), ``-1`` on positive→0 (delete), else ``0``.
        """
        before = self._counts.get(pkey, 0)
        after = before + amount
        if after < 0:
            raise ValueError(f"indicator count for {pkey} would become negative")
        if after == 0:
            self._counts.pop(pkey, None)
        else:
            self._counts[pkey] = after
        if before == 0 and after > 0:
            return +1
        if before > 0 and after == 0:
            return -1
        return 0

    def compute_delta(self, delta: Relation, base_before: Relation) -> Relation:
        """Process ``δR`` against the pre-update base; return ``δ(∃_A R)``.

        Updates the internal support counts but *not* :attr:`relation`; call
        :meth:`commit` with the returned delta once it has been propagated.
        """
        ring = base_before.ring
        out = Relation(f"delta_{self.name}", self.attrs, ring)
        neg_one = ring.neg(ring.one)
        for key, payload in delta.items():
            before = base_before.payload(key)
            after = ring.add(before, payload)
            before_zero = ring.is_zero(before)
            after_zero = ring.is_zero(after)
            if before_zero and not after_zero:
                edge = self._bump(self._project(key), +1)
            elif not before_zero and after_zero:
                edge = self._bump(self._project(key), -1)
            else:
                continue
            if edge > 0:
                out.add(self._project(key), ring.one)
            elif edge < 0:
                out.add(self._project(key), neg_one)
        return out

    def commit(self, delta: Relation) -> None:
        """Apply a previously computed delta to the indicator contents."""
        self.relation.absorb(delta)

    def __len__(self) -> int:
        return len(self.relation)
